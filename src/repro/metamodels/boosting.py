"""Newton gradient boosting on logistic loss — the paper's "x" variant.

This is the algorithmic core of XGBoost (Chen & Guestrin 2016) at the
scale of the paper's experiments: each round fits a shallow CART tree to
the pseudo-response ``-g/h`` with hessian sample weights, then sets each
leaf to the regularised Newton step ``-G / (H + lambda)`` where ``G, H``
are the leaf's gradient/hessian sums.  Shrinkage, row subsampling and
column subsampling are supported; histogram building, sparsity handling
and distributed execution — irrelevant for N <= 3200 — are not.
"""

from __future__ import annotations

import numpy as np

from repro.metamodels.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingModel"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


class GradientBoostingModel:
    """Second-order boosted trees with logistic loss.

    Parameters mirror the common XGBoost names: ``n_rounds``
    (nrounds), ``learning_rate`` (eta), ``max_depth``, ``reg_lambda``
    (L2 on leaf values), ``subsample``, ``colsample`` (per tree),
    ``min_child_weight`` (hessian floor per leaf).
    """

    def __init__(
        self,
        n_rounds: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        colsample: float = 1.0,
        min_child_weight: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < colsample <= 1.0:
            raise ValueError(f"colsample must be in (0, 1], got {colsample}")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.colsample = colsample
        self.min_child_weight = min_child_weight
        self.seed = seed
        self.trees_: list[tuple[DecisionTreeRegressor, np.ndarray]] = []
        self.base_score_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        rng = np.random.default_rng(self.seed)
        n, m = x.shape

        # Start from the log-odds of the base rate.
        rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = float(np.log(rate / (1.0 - rate)))
        raw = np.full(n, self.base_score_)

        self.trees_ = []
        n_cols = max(1, int(round(self.colsample * m)))
        n_rows = max(2, int(round(self.subsample * n)))
        for _ in range(self.n_rounds):
            prob = _sigmoid(raw)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-12)

            rows = (rng.choice(n, size=n_rows, replace=False)
                    if n_rows < n else np.arange(n))
            cols = (np.sort(rng.choice(m, size=n_cols, replace=False))
                    if n_cols < m else np.arange(m))

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=1,
                min_child_weight=self.min_child_weight,
            )
            g_rows, h_rows = grad[rows], hess[rows]
            tree.fit(x[np.ix_(rows, cols)], -g_rows / h_rows, sample_weight=h_rows)

            # Replace leaf means with the regularised Newton step.
            leaves = tree.apply(x[np.ix_(rows, cols)])
            leaf_values: dict[int, float] = {}
            for leaf in np.unique(leaves):
                mask = leaves == leaf
                g_sum = g_rows[mask].sum()
                h_sum = h_rows[mask].sum()
                leaf_values[int(leaf)] = float(-g_sum / (h_sum + self.reg_lambda))
            tree.set_leaf_values(leaf_values)

            raw += self.learning_rate * tree.predict(x[:, cols])
            self.trees_.append((tree, cols))
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds scale)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        raw = np.full(len(x), self.base_score_)
        for tree, cols in self.trees_:
            raw += self.learning_rate * tree.predict(x[:, cols])
        return raw

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Calibrated-by-loss probability estimate ``P(y=1|x)``."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard labels with the 0.5 probability threshold."""
        return (self.predict_proba(x) > 0.5).astype(np.int64)
