"""Newton gradient boosting on logistic loss — the paper's "x" variant.

This is the algorithmic core of XGBoost (Chen & Guestrin 2016) at the
scale of the paper's experiments: each round fits a shallow CART tree to
the pseudo-response ``-g/h`` with hessian sample weights, then sets each
leaf to the regularised Newton step ``-G / (H + lambda)`` where ``G, H``
are the leaf's gradient/hessian sums.  Shrinkage, row subsampling and
column subsampling are supported; histogram building, sparsity handling
and distributed execution — irrelevant for N <= 3200 — are not.

The Newton step reuses the training-row leaf assignments recorded by
``fit`` (``tree.train_leaf_``) and reduces per-leaf gradient/hessian
sums with one ``np.bincount`` over inverse leaf indices instead of a
per-leaf boolean-mask loop.  With the default full row/column sampling
the vectorized engine also computes the
:func:`~repro.metamodels._kernels.dense_ranks` of ``x`` once and reuses
them every round, so no round re-sorts the unchanged features.
"""

from __future__ import annotations

import numpy as np

from repro.engines import resolve as _resolve_engine
from repro.metamodels._kernels import StackedEnsemble, dense_ranks
from repro.metamodels.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingModel"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


class GradientBoostingModel:
    """Second-order boosted trees with logistic loss.

    Parameters mirror the common XGBoost names: ``n_rounds``
    (nrounds), ``learning_rate`` (eta), ``max_depth``, ``reg_lambda``
    (L2 on leaf values), ``subsample``, ``colsample`` (per tree),
    ``min_child_weight`` (hessian floor per leaf).  ``engine`` selects
    the tree-growing and prediction kernels (``"vectorized"`` /
    ``"reference"`` / ``"native"``); fitted models and predictions are
    bit-identical across all three.  ``jobs``/``chunk_rows`` fan the stacked
    prediction walk out over worker processes against shared-memory
    query ranks — a pure throughput knob, bit-identical at every
    setting and irrelevant to fitting.
    """

    def __init__(
        self,
        n_rounds: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        colsample: float = 1.0,
        min_child_weight: float = 1.0,
        seed: int = 0,
        engine: str = "vectorized",
        jobs: int | None = 1,
        chunk_rows: int | None = None,
    ) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < colsample <= 1.0:
            raise ValueError(f"colsample must be in (0, 1], got {colsample}")
        engine = _resolve_engine(engine)
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.colsample = colsample
        self.min_child_weight = min_child_weight
        self.seed = seed
        self.engine = engine
        self.jobs = jobs
        self.chunk_rows = chunk_rows
        self.trees_: list[tuple[DecisionTreeRegressor, np.ndarray]] = []
        self.base_score_: float = 0.0
        self._stacked: StackedEnsemble | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        rng = np.random.default_rng(self.seed)
        n, m = x.shape

        # Start from the log-odds of the base rate.
        rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = float(np.log(rate / (1.0 - rate)))
        raw = np.full(n, self.base_score_)

        self.trees_ = []
        self._stacked = None
        n_cols = max(1, int(round(self.colsample * m)))
        n_rows = max(2, int(round(self.subsample * n)))
        full_rows = n_rows >= n
        full_cols = n_cols >= m
        all_cols = np.arange(m)
        # Features never change across rounds: the vectorized engine
        # ranks them once and every round's tree reuses the (gathered)
        # integer ranks — dense ranks order-embed any row/column subset.
        x_ranks = (dense_ranks(x)
                   if self.engine in ("vectorized", "native") else None)
        for _ in range(self.n_rounds):
            prob = _sigmoid(raw)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-12)

            rows = (rng.choice(n, size=n_rows, replace=False)
                    if not full_rows else None)
            cols = (np.sort(rng.choice(m, size=n_cols, replace=False))
                    if not full_cols else all_cols)

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=1,
                min_child_weight=self.min_child_weight,
                engine=self.engine,
            )
            if rows is None:
                g_rows, h_rows = grad, hess
                x_sub = x if full_cols else x[:, cols]
                ranks_sub = None if x_ranks is None else (
                    x_ranks if full_cols else x_ranks[:, cols])
            else:
                g_rows, h_rows = grad[rows], hess[rows]
                x_sub = x[np.ix_(rows, cols)]
                ranks_sub = None if x_ranks is None else x_ranks[np.ix_(rows, cols)]
            tree.fit(x_sub, -g_rows / h_rows, sample_weight=h_rows,
                     ranks=ranks_sub)

            # Replace leaf means with the regularised Newton step: one
            # bincount over the leaf assignments recorded during fit.
            leaves, inv = np.unique(tree.train_leaf_, return_inverse=True)
            g_sum = np.bincount(inv, weights=g_rows)
            h_sum = np.bincount(inv, weights=h_rows)
            tree.set_leaf_values(leaves, -g_sum / (h_sum + self.reg_lambda))

            raw += self.learning_rate * tree.predict(
                x if full_cols else x[:, cols])
            self.trees_.append((tree, cols))
        return self

    def _ensure_stacked(self) -> StackedEnsemble | None:
        """Build (once) the stacked prediction tables of a fitted model."""
        if (self.engine in ("vectorized", "native") and self.trees_
                and self._stacked is None):
            self._stacked = StackedEnsemble(
                [tree for tree, _ in self.trees_],
                columns=[cols for _, cols in self.trees_])
        return self._stacked

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds scale)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        if self.engine in ("vectorized", "native"):
            return self._ensure_stacked().leaf_value_sum(
                x, scale=self.learning_rate, init=self.base_score_,
                jobs=self.jobs, chunk_rows=self.chunk_rows,
                native=self.engine == "native")
        raw = np.full(len(x), self.base_score_)
        for tree, cols in self.trees_:
            raw += self.learning_rate * tree.predict(x[:, cols])
        return raw

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Calibrated-by-loss probability estimate ``P(y=1|x)``."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard labels with the 0.5 probability threshold."""
        return (self.predict_proba(x) > 0.5).astype(np.int64)
