"""The interface every metamodel implements.

REDS needs exactly two things from a metamodel (Algorithm 4): fit on the
simulated dataset, and produce either hard labels (``predict``) or
soft labels / probabilities (``predict_proba``) for freshly sampled
points.  The ``bnd`` threshold of the paper is folded into ``predict``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Metamodel"]


@runtime_checkable
class Metamodel(Protocol):
    """Protocol for intermediate metamodels (the ``AM`` of Algorithm 4)."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Metamodel":
        """Train on ``(n, m)`` inputs and ``(n,)`` binary labels."""
        ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Estimate ``P(y = 1 | x)`` for each row, shape ``(n,)``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 labels: ``I(f_am(x) > bnd)`` of Algorithm 4, line 5."""
        ...
