"""The interface every metamodel implements, and chunked labeling.

REDS needs exactly two things from a metamodel (Algorithm 4): fit on the
simulated dataset, and produce either hard labels (``predict``) or
soft labels / probabilities (``predict_proba``) for freshly sampled
points.  The ``bnd`` threshold of the paper is folded into ``predict``.

Every metamodel here labels each query row independently of the others,
which makes labeling data-parallel: :func:`predict_chunked` fans
contiguous row chunks out over the executor layer of
:mod:`repro.experiments.parallel`, mapping the query matrix zero-copy
into workers through the shared-memory data plane and shipping the
fitted model once per worker — the multi-core path REDS uses to label
its ``L = 10^5`` pool.
"""

from __future__ import annotations

import copy
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Metamodel", "predict_chunked"]


@runtime_checkable
class Metamodel(Protocol):
    """Protocol for intermediate metamodels (the ``AM`` of Algorithm 4)."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Metamodel":
        """Train on ``(n, m)`` inputs and ``(n,)`` binary labels."""
        ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Estimate ``P(y = 1 | x)`` for each row, shape ``(n,)``."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 labels: ``I(f_am(x) > bnd)`` of Algorithm 4, line 5."""
        ...


def _label_chunk(context, start: int, stop: int) -> np.ndarray:
    """One row chunk of a fanned-out :func:`predict_chunked` call."""
    model = context["model"]
    rows = context["x"][start:stop]
    if context["soft"]:
        return model.predict_proba(rows)
    return model.predict(rows)


def predict_chunked(
    model: Metamodel,
    x: np.ndarray,
    *,
    soft: bool = False,
    jobs: int | None = 1,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Labels (or probabilities) of ``x``, row chunks fanned over workers.

    Bit-identical to ``model.predict(x)`` / ``model.predict_proba(x)``
    for any metamodel that labels rows independently — all families in
    this package do — because each worker runs the very same prediction
    code on a contiguous row slice of the shared query matrix.  With
    ``jobs <= 1`` (the default) the model predicts directly, so callers
    can thread their ``jobs`` knob through unconditionally.

    Parameters
    ----------
    model:
        A fitted metamodel.  It is shipped to each worker once (via the
        plan context), while ``x`` crosses process boundaries zero-copy
        through the shared-memory data plane.
    soft:
        Return ``predict_proba`` instead of hard labels.
    jobs:
        Worker processes (None = all CPUs); ``<= 1`` predicts inline.
    chunk_rows:
        Rows per chunk (default: one contiguous chunk per worker).
    """
    x = np.ascontiguousarray(x, dtype=float)
    n = len(x)
    if (jobs is not None and jobs <= 1) or n <= 1:
        return model.predict_proba(x) if soft else model.predict(x)
    # Prebuild any stacked prediction tables in the parent so every
    # worker inherits them through the context pickle instead of each
    # re-deriving the same arrays.
    ensure = getattr(model, "_ensure_stacked", None)
    if ensure is not None:
        ensure()
    # Ship a shallow copy with jobs=1 when the model has its own fan-out
    # knob: a worker predicting a leaf chunk has nothing left to fan
    # out, so a nested pool would be pure spawn overhead.  (The global
    # worker budget would clamp such a pool to the worker's lease
    # anyway — this keeps the leaf path from even trying.)  The copy
    # shares the fitted arrays, so it costs nothing.
    if getattr(model, "jobs", 1) != 1:
        model = copy.copy(model)
        model.jobs = 1
    from repro.experiments.parallel import run_chunked

    parts = run_chunked(
        _label_chunk, n, jobs=jobs, chunk_rows=chunk_rows,
        context={"model": model, "soft": soft},
        shared={"x": x},
    )
    return np.concatenate(parts)
