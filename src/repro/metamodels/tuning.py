"""Cross-validation and caret-style hyperparameter tuning.

The paper tunes metamodels with "the default hyperparameter-optimization
procedure of the package caret" (Section 8.4.3): a small grid evaluated
with cross-validation, keeping the most accurate configuration.  This
module reproduces that behaviour with compact default grids per
metamodel family and also provides the generic k-fold splitter used by
the subgroup-discovery hyperparameter search.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.metamodels.base import Metamodel
from repro.metamodels.boosting import GradientBoostingModel
from repro.metamodels.forest import RandomForestModel
from repro.metamodels.svm import SVMModel

__all__ = [
    "KFold",
    "cross_val_accuracy",
    "tune_metamodel",
    "make_metamodel",
    "DEFAULT_GRIDS",
]


class KFold:
    """Shuffled k-fold splitter yielding (train_idx, test_idx) pairs."""

    def __init__(self, n_splits: int = 5, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[i] for i in range(self.n_splits) if i != k])
            yield train, test


def cross_val_accuracy(
    factory: Callable[[], Metamodel],
    x: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> float:
    """Mean held-out accuracy of models built by ``factory``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    correct = 0
    total = 0
    for train, test in KFold(n_splits, seed).split(len(x)):
        model = factory().fit(x[train], y[train])
        predictions = model.predict(x[test])
        correct += int((predictions == y[test]).sum())
        total += len(test)
    return correct / total


def _cv_cell(candidate: dict, fold: int, *, kind: str, engine: str | None,
             n_splits: int, seed: int) -> tuple[int, int]:
    """One (candidate, fold) cell of the tuning grid: (correct, total).

    The dataset arrives through the execution-plan context (zero-copy
    shared memory under the process executor) and the fold split is
    rebuilt from its seed, so a worker reaches the exact same train and
    test rows as the serial loop; the integer count pair makes the
    parallel accuracy aggregation bit-identical to the serial sum.
    """
    from repro.experiments.parallel import plan_context

    context = plan_context()
    x, y = context["x"], context["y"]
    splits = list(KFold(n_splits, seed).split(len(x)))
    train, test = splits[fold]
    model = make_metamodel(kind, engine=engine, **candidate).fit(
        x[train], y[train])
    predictions = model.predict(x[test])
    return int((predictions == y[test]).sum()), len(test)


# ----------------------------------------------------------------------
# Default construction and tuning grids (caret-flavoured)
# ----------------------------------------------------------------------

def _forest_grid(m: int) -> list[dict]:
    # caret tunes mtry over a small spread around sqrt(M).
    mtries = sorted({max(1, int(np.sqrt(m))), max(1, m // 3), max(1, (2 * m) // 3)})
    return [{"max_features": k} for k in mtries]


def _boosting_grid(m: int) -> list[dict]:
    return [
        {"max_depth": depth, "n_rounds": rounds}
        for depth in (2, 4)
        for rounds in (60, 150)
    ]


def _svm_grid(m: int) -> list[dict]:
    return [{"c": c} for c in (0.25, 1.0, 4.0)]


DEFAULT_GRIDS: dict[str, Callable[[int], list[dict]]] = {
    "forest": _forest_grid,
    "boosting": _boosting_grid,
    "svm": _svm_grid,
}

_CONSTRUCTORS: dict[str, Callable[..., Metamodel]] = {
    "forest": RandomForestModel,
    "boosting": GradientBoostingModel,
    "svm": SVMModel,
}


#: Families whose constructors take an ``engine`` argument.
_ENGINE_AWARE = frozenset({"forest", "boosting"})


def make_metamodel(kind: str, engine: str | None = None, **params) -> Metamodel:
    """Build a metamodel by family name: "forest", "boosting", "svm".

    ``engine`` selects the tree kernels (``"vectorized"`` /
    ``"reference"``) for the ensemble families and is ignored for
    families without an engine switch (SVM).
    """
    try:
        constructor = _CONSTRUCTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown metamodel {kind!r}; available: {sorted(_CONSTRUCTORS)}"
        ) from None
    if engine is not None and kind in _ENGINE_AWARE:
        params = {**params, "engine": engine}
    return constructor(**params)


def tune_metamodel(
    kind: str,
    x: np.ndarray,
    y: np.ndarray,
    *,
    grid: Sequence[dict] | None = None,
    n_splits: int = 5,
    seed: int = 0,
    engine: str | None = None,
    jobs: int | None = 1,
) -> Metamodel:
    """Grid-search a metamodel with CV accuracy and refit on all data.

    Mirrors caret's default behaviour: evaluate a compact grid, pick the
    most accurate configuration, train the final model on the full
    dataset.  Degenerate single-class data skips the search.  ``engine``
    is threaded through to every candidate fit (the grid search is where
    the metamodel layer burns most of its time: grid x k folds full
    ensemble fits per call).

    With ``jobs`` > 1 (or None for all CPUs) the independent
    (candidate, fold) cells fan out over the executor layer: the
    dataset is published once through the shared-memory data plane and
    each cell returns its integer (correct, total) counts, so the
    per-candidate accuracies — and hence the chosen configuration and
    the refit model — are bit-identical to the serial search.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    candidates = list(grid) if grid is not None else DEFAULT_GRIDS[kind](x.shape[1])
    if len(np.unique(y)) < 2 or len(candidates) == 1:
        params = candidates[0] if candidates else {}
        return make_metamodel(kind, engine=engine, **params).fit(x, y)

    if jobs is None or jobs > 1:
        from repro.experiments.parallel import execute

        tasks = [
            dict(candidate=params, fold=fold, kind=kind, engine=engine,
                 n_splits=n_splits, seed=seed)
            for params in candidates
            for fold in range(n_splits)
        ]
        cells = execute(_cv_cell, tasks, jobs, shared={"x": x, "y": y})
        accuracies = []
        for index in range(len(candidates)):
            counts = cells[index * n_splits:(index + 1) * n_splits]
            correct = sum(c for c, _ in counts)
            total = sum(t for _, t in counts)
            accuracies.append(correct / total)
    else:
        accuracies = [
            cross_val_accuracy(
                lambda p=params: make_metamodel(kind, engine=engine, **p),
                x, y, n_splits=n_splits, seed=seed,
            )
            for params in candidates
        ]

    best_params: dict = {}
    best_accuracy = -1.0
    for params, accuracy in zip(candidates, accuracies):
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_params = params
    return make_metamodel(kind, engine=engine, **best_params).fit(x, y)
