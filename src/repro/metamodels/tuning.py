"""Cross-validation and caret-style hyperparameter tuning.

The paper tunes metamodels with "the default hyperparameter-optimization
procedure of the package caret" (Section 8.4.3): a small grid evaluated
with cross-validation, keeping the most accurate configuration.  This
module reproduces that behaviour with compact default grids per
metamodel family and also provides the generic k-fold splitter used by
the subgroup-discovery hyperparameter search.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.metamodels.base import Metamodel
from repro.metamodels.boosting import GradientBoostingModel
from repro.metamodels.forest import RandomForestModel
from repro.metamodels.svm import SVMModel

__all__ = [
    "KFold",
    "cross_val_accuracy",
    "tune_metamodel",
    "make_metamodel",
    "DEFAULT_GRIDS",
]


class KFold:
    """Shuffled k-fold splitter yielding (train_idx, test_idx) pairs."""

    def __init__(self, n_splits: int = 5, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[i] for i in range(self.n_splits) if i != k])
            yield train, test


def cross_val_accuracy(
    factory: Callable[[], Metamodel],
    x: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> float:
    """Mean held-out accuracy of models built by ``factory``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    correct = 0
    total = 0
    for train, test in KFold(n_splits, seed).split(len(x)):
        model = factory().fit(x[train], y[train])
        predictions = model.predict(x[test])
        correct += int((predictions == y[test]).sum())
        total += len(test)
    return correct / total


# ----------------------------------------------------------------------
# Default construction and tuning grids (caret-flavoured)
# ----------------------------------------------------------------------

def _forest_grid(m: int) -> list[dict]:
    # caret tunes mtry over a small spread around sqrt(M).
    mtries = sorted({max(1, int(np.sqrt(m))), max(1, m // 3), max(1, (2 * m) // 3)})
    return [{"max_features": k} for k in mtries]


def _boosting_grid(m: int) -> list[dict]:
    return [
        {"max_depth": depth, "n_rounds": rounds}
        for depth in (2, 4)
        for rounds in (60, 150)
    ]


def _svm_grid(m: int) -> list[dict]:
    return [{"c": c} for c in (0.25, 1.0, 4.0)]


DEFAULT_GRIDS: dict[str, Callable[[int], list[dict]]] = {
    "forest": _forest_grid,
    "boosting": _boosting_grid,
    "svm": _svm_grid,
}

_CONSTRUCTORS: dict[str, Callable[..., Metamodel]] = {
    "forest": RandomForestModel,
    "boosting": GradientBoostingModel,
    "svm": SVMModel,
}


#: Families whose constructors take an ``engine`` argument.
_ENGINE_AWARE = frozenset({"forest", "boosting"})


def make_metamodel(kind: str, engine: str | None = None, **params) -> Metamodel:
    """Build a metamodel by family name: "forest", "boosting", "svm".

    ``engine`` selects the tree kernels (``"vectorized"`` /
    ``"reference"``) for the ensemble families and is ignored for
    families without an engine switch (SVM).
    """
    try:
        constructor = _CONSTRUCTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown metamodel {kind!r}; available: {sorted(_CONSTRUCTORS)}"
        ) from None
    if engine is not None and kind in _ENGINE_AWARE:
        params = {**params, "engine": engine}
    return constructor(**params)


def tune_metamodel(
    kind: str,
    x: np.ndarray,
    y: np.ndarray,
    *,
    grid: Sequence[dict] | None = None,
    n_splits: int = 5,
    seed: int = 0,
    engine: str | None = None,
) -> Metamodel:
    """Grid-search a metamodel with CV accuracy and refit on all data.

    Mirrors caret's default behaviour: evaluate a compact grid, pick the
    most accurate configuration, train the final model on the full
    dataset.  Degenerate single-class data skips the search.  ``engine``
    is threaded through to every candidate fit (the grid search is where
    the metamodel layer burns most of its time: grid x k folds full
    ensemble fits per call).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    candidates = list(grid) if grid is not None else DEFAULT_GRIDS[kind](x.shape[1])
    if len(np.unique(y)) < 2 or len(candidates) == 1:
        params = candidates[0] if candidates else {}
        return make_metamodel(kind, engine=engine, **params).fit(x, y)

    best_params: dict = {}
    best_accuracy = -1.0
    for params in candidates:
        accuracy = cross_val_accuracy(
            lambda p=params: make_metamodel(kind, engine=engine, **p), x, y,
            n_splits=n_splits, seed=seed,
        )
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_params = params
    return make_metamodel(kind, engine=engine, **best_params).fit(x, y)
