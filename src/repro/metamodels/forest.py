"""Random forest metamodel (Breiman 2001) — the paper's "f" variant.

Bootstrap-aggregated CART trees with per-node feature subsampling.
For a binary response the average of leaf means across trees estimates
``P(y = 1 | x)``, which is exactly what REDS needs: soft labels for the
"p" variants and hard labels via the 0.5 threshold otherwise.

Both engines consume the seed generator identically — all bootstrap
draws first, then one spawned child generator per tree — so fits are
bit-reproducible across engines while the vectorized engine grows
whole blocks of trees level-synchronously through
:func:`repro.metamodels._kernels.grow_forest` and predicts through one
:class:`~repro.metamodels._kernels.StackedEnsemble` walk instead of a
per-tree Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.engines import resolve as _resolve_engine
from repro.metamodels._kernels import StackedEnsemble, grow_forest
from repro.metamodels.tree import DecisionTreeRegressor

__all__ = ["RandomForestModel"]


class RandomForestModel:
    """Random forest probability estimator.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_features:
        Features tried per split: an int, ``"sqrt"`` (default, the
        classification convention) or ``"third"`` (the regression
        convention, M/3).
    min_samples_leaf:
        Leaf size; 1 grows fully deep trees as in the reference
        implementation.
    seed:
        Seed of the internal generator (bootstraps + feature draws).
    engine:
        ``"vectorized"`` (block tree growth + stacked prediction,
        default), ``"reference"`` (per-tree loops) or ``"native"``
        (compiled numba kernels for the level-wise split scan and the
        stacked walk; silently resolves to ``"vectorized"`` when numba
        is missing).  Fitted trees and predictions are bit-identical
        across all three.
    jobs:
        Worker processes (None = all CPUs, default 1) for prediction
        *and* for the vectorized fit: the stacked walk fans contiguous
        row chunks out over the executor layer against shared-memory
        query ranks, and :func:`~repro.metamodels._kernels.grow_forest`
        fans contiguous tree ranges the same way (every tree's stream
        is independent by the draw-then-spawn generator protocol).
        Fits and predictions are bit-identical for every
        ``jobs``/``chunk_rows`` setting, so this is purely a throughput
        knob.
    chunk_rows:
        Rows per prediction fan-out chunk (default: one chunk per
        worker).
    """

    def __init__(
        self,
        n_trees: int = 100,
        max_features: int | str = "sqrt",
        min_samples_leaf: int = 1,
        max_depth: int | None = None,
        seed: int = 0,
        engine: str = "vectorized",
        jobs: int | None = 1,
        chunk_rows: int | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        engine = _resolve_engine(engine)
        self.n_trees = n_trees
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.seed = seed
        self.engine = engine
        self.jobs = jobs
        self.chunk_rows = chunk_rows
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_features_: int | None = None
        self._stacked: StackedEnsemble | None = None

    def _resolve_max_features(self, m: int) -> int:
        if isinstance(self.max_features, int):
            k = self.max_features
        elif self.max_features == "sqrt":
            k = int(np.sqrt(m))
        elif self.max_features == "third":
            k = m // 3
        else:
            raise ValueError(f"unknown max_features {self.max_features!r}")
        return min(max(k, 1), m)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        rng = np.random.default_rng(self.seed)
        n, m = x.shape
        self.n_features_ = m
        mtry = self._resolve_max_features(m)

        self.trees_ = []
        self._stacked = None
        if self.engine in ("vectorized", "native"):
            if self.engine == "native":
                from repro.metamodels._native import grow_forest_native

                grown = grow_forest_native(
                    x, y, n_trees=self.n_trees, max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=mtry, rng=rng, jobs=self.jobs,
                )
            else:
                grown = grow_forest(
                    x, y, n_trees=self.n_trees, max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=mtry, rng=rng, jobs=self.jobs,
                )
            for arrays in grown:
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=mtry, rng=rng,
                )
                (tree.feature, tree.threshold, tree.left, tree.right,
                 tree.value, tree.train_leaf_) = arrays
                self.trees_.append(tree)
        else:
            boot = [rng.integers(0, n, size=n) for _ in range(self.n_trees)]
            rngs = rng.spawn(self.n_trees)
            for t in range(self.n_trees):
                idx = boot[t]
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=mtry, rng=rngs[t], engine="reference",
                )
                tree.fit(x[idx], y[idx])
                self.trees_.append(tree)
        return self

    def _ensure_stacked(self) -> StackedEnsemble | None:
        """Build (once) the stacked prediction tables of a fitted forest."""
        if (self.engine in ("vectorized", "native") and self.trees_
                and self._stacked is None):
            self._stacked = StackedEnsemble(self.trees_)
        return self._stacked

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Mean leaf response across trees, an estimate of ``P(y=1|x)``."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        if self.engine in ("vectorized", "native"):
            total = self._ensure_stacked().leaf_value_sum(
                x, jobs=self.jobs, chunk_rows=self.chunk_rows,
                native=self.engine == "native")
        else:
            total = np.zeros(len(x))
            for tree in self.trees_:
                total += tree.predict(x)
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard labels with the majority (0.5) threshold."""
        return (self.predict_proba(x) > 0.5).astype(np.int64)
