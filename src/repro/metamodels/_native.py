"""Compiled (numba) metamodel kernels — the ``engine="native"`` backend.

PR 4 measured the numpy ceiling on stacked-ensemble prediction at
~2-3x over the reference loops: every (tree, row) step is a dependent
gather that numpy cannot fuse, so the walk is latency-bound no matter
how the tables are laid out.  The two kernels here break that wall by
compiling the walks:

* :func:`stacked_sum` — the ensemble prediction walk over the
  struct-of-arrays node tables cached on
  :class:`~repro.metamodels._kernels.StackedEnsemble`
  (``feature``/``thr_rank``/``left``/``value`` as contiguous
  int32/float64 arrays), with ``prange`` over rows.  Per row it
  accumulates leaf values in tree order with the same elementwise
  operations as the numpy chunk loop, so predictions stay
  bit-identical to both existing engines.
* :func:`_best_splits` — the level-wise split scan of tree growth:
  one ``prange`` iteration per split-eligible node runs a stable LSD
  byte-radix sort of the node's int32 dense-rank keys per candidate
  feature, sequential float64 prefix sums (the exact accumulation
  order of ``np.cumsum``), and the reference gain/tie/threshold
  semantics operation for operation.

:func:`grow_tree_native` / :func:`grow_forest_native` drive the split
kernel through the *reference* breadth-first orchestration (per-level
FIFO, batched :func:`~repro.metamodels._kernels.draw_candidates`, the
draw-bootstraps-then-spawn generator protocol), so fitted trees are
bit-identical to both existing engines by construction — pinned in
``tests/test_native_equivalence.py``.

All kernels are ``@njit(cache=True, parallel=True)``: compiled once to
an on-disk cache, so forked/spawned pool workers load machine code
instead of recompiling (see :func:`repro.engines.warmup_native`).
Without numba the decorator is the identity (see
:mod:`repro.engines`) and the kernels run as plain Python — only the
``REDS_NATIVE_PUREPY`` testing hook takes that path.
"""

from __future__ import annotations

import numpy as np

from repro.engines import njit, prange
from repro.metamodels._kernels import dense_ranks, draw_candidates

__all__ = ["grow_tree_native", "grow_forest_native", "stacked_sum", "warmup"]

_NO_FEATURE = -1


# ----------------------------------------------------------------------
# Stacked-ensemble prediction
# ----------------------------------------------------------------------

@njit(cache=True, parallel=True)
def stacked_sum(feature, thr_rank, left, value, roots, ranks,
                init, scale, use_scale, rank_inf):
    """``init + sum_t scale * value_t(row)`` over flat SoA node tables.

    ``thr_rank[node] == rank_inf`` marks leaves (and padding); internal
    nodes step to ``left[node] + (query rank > threshold rank)``,
    exactly the comparison the numpy walks make.  The per-row
    accumulator adds tree values in tree order — the same elementwise
    operation sequence as the reference / vectorized loops, so results
    are bit-identical.
    """
    n = ranks.shape[0]
    n_trees = roots.shape[0]
    out = np.empty(n)
    for i in prange(n):
        acc = init
        for t in range(n_trees):
            node = roots[t]
            tr = thr_rank[node]
            while tr != rank_inf:
                if ranks[i, feature[node]] > tr:
                    node = left[node] + 1
                else:
                    node = left[node]
                tr = thr_rank[node]
            if use_scale:
                acc = acc + scale * value[node]
            else:
                acc = acc + value[node]
        out[i] = acc
    return out


# ----------------------------------------------------------------------
# Level-wise split scan
# ----------------------------------------------------------------------

@njit(cache=True, parallel=True)
def _best_splits(x, ranks, y, w, rows, starts, lens, cand,
                 min_leaf, min_child_weight):
    """Best (feature, threshold) per split-eligible node, one level.

    ``rows[starts[s] : starts[s] + lens[s]]`` holds node ``s``'s row
    ids (ascending — the reference's subset order); ``cand[s]`` its
    candidate features.  Per (node, feature): stable byte-radix sort of
    the int32 dense-rank keys (stable sort by rank equals the
    reference's stable argsort by value), sequential prefix sums in
    ``np.cumsum`` order, then the reference scan — distinct-value check
    on the x values themselves, ``min_child_weight`` floors, the exact
    gain formula with its 1e-300 guards, NaN-poisoned first-maximum
    argmax, strict improvement over 1e-12, first-feature tie-breaking,
    and the midpoint-partitions-the-node validity test.

    Returns ``(feat, thr)`` arrays with ``feat[s] == -1`` when no valid
    split improves on the gain floor (the node becomes a leaf).
    """
    n_nodes = lens.shape[0]
    k = cand.shape[1]
    out_feat = np.full(n_nodes, -1, dtype=np.int64)
    out_thr = np.zeros(n_nodes)
    for s in prange(n_nodes):
        start = starts[s]
        cnt = lens[s]
        idx0 = np.empty(cnt, dtype=np.int64)
        idx1 = np.empty(cnt, dtype=np.int64)
        key = np.empty(cnt, dtype=np.int64)
        xs = np.empty(cnt)
        cw = np.empty(cnt)
        cwy = np.empty(cnt)
        count = np.empty(256, dtype=np.int64)
        best_gain = 1e-12
        best_feat = -1
        best_thr = 0.0
        for c in range(k):
            feat = cand[s, c]
            mx = np.int64(0)
            for i in range(cnt):
                kv = np.int64(ranks[rows[start + i], feat])
                key[i] = kv
                idx0[i] = i
                if kv > mx:
                    mx = kv
            # Stable LSD byte-radix sort of the rank keys: equal keys
            # keep ascending position order, reproducing the stable
            # argsort tie order of the reference scan.
            shift = 0
            while True:
                for b in range(256):
                    count[b] = 0
                for i in range(cnt):
                    count[(key[idx0[i]] >> shift) & 255] += 1
                tot = np.int64(0)
                for b in range(256):
                    cb = count[b]
                    count[b] = tot
                    tot += cb
                for i in range(cnt):
                    b = (key[idx0[i]] >> shift) & 255
                    idx1[count[b]] = idx0[i]
                    count[b] += 1
                tmp = idx0
                idx0 = idx1
                idx1 = tmp
                shift += 8
                if (mx >> shift) == 0:
                    break
            # Sorted gathers + sequential prefix sums (the accumulation
            # order of np.cumsum, so every partial is bit-identical).
            acc_w = 0.0
            acc_wy = 0.0
            for i in range(cnt):
                r = rows[start + idx0[i]]
                xs[i] = x[r, feat]
                wi = w[r]
                acc_w = acc_w + wi
                acc_wy = acc_wy + wi * y[r]
                cw[i] = acc_w
                cwy[i] = acc_wy
            total_w = cw[cnt - 1]
            total_wy = cwy[cnt - 1]
            if total_w <= 0.0:
                continue
            base = total_wy * total_wy / total_w
            # First-maximum scan over valid positions; a NaN gain wins
            # immediately (np.argmax treats NaN as maximal).
            g_best = -np.inf
            pos_best = -1
            for pos in range(min_leaf - 1, cnt - min_leaf):
                if not (xs[pos] < xs[pos + 1]):
                    continue
                wl = cw[pos]
                wr = total_w - wl
                if min_child_weight > 0.0 and not (
                        wl >= min_child_weight and wr >= min_child_weight):
                    continue
                sl = cwy[pos]
                sr = total_wy - sl
                wl_safe = wl if wl > 1e-300 else 1e-300
                wr_safe = wr if wr > 1e-300 else 1e-300
                g = sl * sl / wl_safe + sr * sr / wr_safe
                g = g - base
                if np.isnan(g):
                    g_best = g
                    pos_best = pos
                    break
                if g > g_best:
                    g_best = g
                    pos_best = pos
            if pos_best < 0:
                continue
            if not (g_best > best_gain):
                # Covers NaN best gains too: nan > x is False, exactly
                # like the reference's `gain[k] > best_gain` skip.
                continue
            thr = 0.5 * (xs[pos_best] + xs[pos_best + 1])
            if not (xs[0] <= thr and (thr < xs[cnt - 1]
                                      or np.isnan(xs[cnt - 1]))):
                continue
            best_gain = g_best
            best_feat = feat
            best_thr = thr
        out_feat[s] = best_feat
        out_thr[s] = best_thr
    return out_feat, out_thr


def grow_tree_native(
    x: np.ndarray,
    y: np.ndarray,
    weight: np.ndarray,
    *,
    max_depth: int | None,
    min_samples_leaf: int,
    min_child_weight: float,
    max_features: int | None,
    rng: np.random.Generator | None,
    ranks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Grow one CART tree with the compiled split scan.

    The orchestration is the reference builder's breadth-first level
    loop verbatim (per-level node values via ``np.average``, the same
    eligibility tests, one batched :func:`draw_candidates` per level,
    the same ``x <= thr`` partition) — only the per-node split search
    runs in :func:`_best_splits`, batched over the whole level.
    Returns the standard flat arrays, bit-identical to both existing
    engines.
    """
    n, m = x.shape
    if ranks is None:
        ranks = dense_ranks(x)
    xc = np.ascontiguousarray(x, dtype=float)
    yc = np.ascontiguousarray(y, dtype=float)
    wc = np.ascontiguousarray(weight, dtype=float)
    ranks32 = np.ascontiguousarray(ranks, dtype=np.int32)
    subsample = max_features is not None and max_features < m

    features: list[int] = []
    thresholds: list[float] = []
    lefts: list[int] = []
    rights: list[int] = []
    values: list[float] = []
    train_leaf = np.empty(n, dtype=np.int64)

    def new_node() -> int:
        features.append(_NO_FEATURE)
        thresholds.append(0.0)
        lefts.append(-1)
        rights.append(-1)
        values.append(0.0)
        return len(features) - 1

    root = new_node()
    level: list[tuple[int, np.ndarray]] = [(root, np.arange(n))]
    depth = 0
    while level:
        eligible: list[tuple[int, np.ndarray]] = []
        for node, idx in level:
            y_node = yc[idx]
            w_node = wc[idx]
            w_sum = w_node.sum()
            values[node] = (float(np.average(y_node, weights=w_node))
                            if w_sum > 0 else 0.0)
            if (
                (max_depth is not None and depth >= max_depth)
                or len(idx) < 2 * min_samples_leaf
                or np.all(y_node == y_node[0])
            ):
                train_leaf[idx] = node
            else:
                eligible.append((node, idx))

        next_level: list[tuple[int, np.ndarray]] = []
        if eligible:
            cand = (draw_candidates(rng, len(eligible), m, max_features)
                    if subsample else None)
            lens = np.array([idx.size for _, idx in eligible],
                            dtype=np.int64)
            starts = np.concatenate(
                ([0], np.cumsum(lens)[:-1])).astype(np.int64)
            rows = np.concatenate([idx for _, idx in eligible]).astype(
                np.int64)
            if cand is None:
                cmat = np.ascontiguousarray(np.broadcast_to(
                    np.arange(m, dtype=np.int64), (len(eligible), m)))
            else:
                cmat = np.ascontiguousarray(cand, dtype=np.int64)
            feat_out, thr_out = _best_splits(
                xc, ranks32, yc, wc, rows, starts, lens, cmat,
                min_samples_leaf, float(min_child_weight))
            for j, (node, idx) in enumerate(eligible):
                feat = int(feat_out[j])
                if feat < 0:
                    train_leaf[idx] = node
                    continue
                thr = float(thr_out[j])
                go_left = xc[idx, feat] <= thr
                left_id = new_node()
                right_id = new_node()
                features[node] = feat
                thresholds[node] = thr
                lefts[node] = left_id
                rights[node] = right_id
                next_level.append((left_id, idx[go_left]))
                next_level.append((right_id, idx[~go_left]))
        level = next_level
        depth += 1

    return (
        np.array(features, dtype=np.int64),
        np.array(thresholds, dtype=float),
        np.array(lefts, dtype=np.int64),
        np.array(rights, dtype=np.int64),
        np.array(values, dtype=float),
        train_leaf,
    )


def _forest_chunk_native(context, start: int, stop: int) -> list:
    """Trees ``[start, stop)`` of a fanned-out :func:`grow_forest_native`.

    The parent drew every bootstrap and spawned every per-tree
    generator before chunking (the shared engine protocol), so this
    range grows exactly the trees the serial loop grows at the same
    positions.  Workers arrive with the kernels warm (see
    ``_init_worker``), so no chunk pays a compilation.
    """
    x = context["x"]
    y = context["y"]
    boot = context["boot"]
    ranks = context["ranks"]
    rngs = context["rngs"]
    results = []
    for t in range(start, stop):
        idx = boot[t]
        results.append(grow_tree_native(
            x[idx], y[idx], np.ones(idx.size),
            max_depth=context["max_depth"],
            min_samples_leaf=context["min_samples_leaf"],
            min_child_weight=0.0,
            max_features=context["max_features"],
            rng=rngs[t],
            ranks=ranks[idx],
        ))
    return results


def grow_forest_native(
    x: np.ndarray,
    y: np.ndarray,
    *,
    n_trees: int,
    max_depth: int | None,
    min_samples_leaf: int,
    max_features: int | None,
    rng: np.random.Generator,
    jobs: int | None = 1,
    chunk_trees: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """All bootstrap trees of a forest through the compiled split scan.

    Consumes the generator exactly like both existing engines — all
    bootstrap draws first, then one spawned child generator per tree —
    so trees are independent of scheduling and bit-identical to the
    serial fit for any ``jobs``/``chunk_trees`` setting.  The dense
    rank matrix is computed once and gathered per bootstrap sample
    (dense ranks order-embed any row subset).
    """
    n, m = x.shape
    boot = [rng.integers(0, n, size=n) for _ in range(n_trees)]
    rngs = rng.spawn(n_trees)
    ranks = dense_ranks(x)
    if (jobs is None or jobs > 1) and n_trees > 1:
        from repro.experiments.parallel import run_chunked

        parts = run_chunked(
            _forest_chunk_native, n_trees, jobs=jobs,
            chunk_rows=chunk_trees,
            context={"rngs": rngs, "max_depth": max_depth,
                     "min_samples_leaf": min_samples_leaf,
                     "max_features": max_features},
            shared={"x": np.ascontiguousarray(x, dtype=float),
                    "y": np.ascontiguousarray(y, dtype=float),
                    "boot": np.stack(boot), "ranks": ranks})
        return [tree for part in parts for tree in part]
    results = []
    for t in range(n_trees):
        idx = boot[t]
        results.append(grow_tree_native(
            x[idx], y[idx], np.ones(idx.size),
            max_depth=max_depth, min_samples_leaf=min_samples_leaf,
            min_child_weight=0.0, max_features=max_features,
            rng=rngs[t], ranks=ranks[idx],
        ))
    return results


def warmup() -> None:
    """Run every kernel once on tiny inputs (compile or cache-load)."""
    rank_inf = np.iinfo(np.int32).max
    feature = np.zeros(1, dtype=np.int32)
    thr_rank = np.full(1, rank_inf, dtype=np.int32)
    left = np.zeros(1, dtype=np.int32)
    value = np.zeros(1)
    roots = np.zeros(1, dtype=np.int64)
    ranks = np.zeros((1, 1), dtype=np.int32)
    stacked_sum(feature, thr_rank, left, value, roots, ranks,
                0.0, 1.0, False, rank_inf)
    stacked_sum(feature, thr_rank, left, value, roots, ranks,
                0.0, 0.5, True, rank_inf)
    x = np.array([[0.0], [1.0], [0.25], [0.75]])
    y = np.array([0.0, 1.0, 0.0, 1.0])
    w = np.ones(4)
    _best_splits(
        x, np.ascontiguousarray(dense_ranks(x), dtype=np.int32), y, w,
        np.arange(4, dtype=np.int64), np.zeros(1, dtype=np.int64),
        np.full(1, 4, dtype=np.int64), np.zeros((1, 1), dtype=np.int64),
        1, 0.0)
