"""RBF-kernel support vector machine — the paper's "s" variant.

C-SVC (Cortes & Vapnik 1995) trained with a working-set SMO solver
(maximal-violating-pair selection, as in LIBSVM).  The kernel width
defaults to the median heuristic, the analogue of kernlab's ``sigest``
that the caret defaults use.  ``predict`` thresholds the decision
function at zero — the natural ``bnd`` for an SVM in Algorithm 4 — and
``predict_proba`` adds Platt scaling for completeness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SVMModel", "rbf_kernel", "median_gamma"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """``exp(-gamma * ||a_i - b_j||^2)`` computed without forming diffs."""
    a2 = (a**2).sum(axis=1)[:, None]
    b2 = (b**2).sum(axis=1)[None, :]
    sq = np.maximum(a2 + b2 - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * sq)


def median_gamma(x: np.ndarray, max_points: int = 500, seed: int = 0) -> float:
    """Median heuristic: ``gamma = 1 / median(||x_i - x_j||^2)``."""
    x = np.asarray(x, dtype=float)
    if len(x) > max_points:
        rng = np.random.default_rng(seed)
        x = x[rng.choice(len(x), size=max_points, replace=False)]
    sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
    med = float(np.median(sq[np.triu_indices(len(x), k=1)]))
    return 1.0 / max(med, 1e-12)


def _smo_solve(kernel: np.ndarray, sign: np.ndarray, c: float, tol: float,
               max_iter: int) -> np.ndarray:
    """SMO with maximal-violating-pair selection.

    Solves ``min 0.5 a'Qa - 1'a`` subject to ``0 <= a <= C`` and
    ``sign'a = 0`` with ``Q = (sign sign') * K``.  Returns ``alpha``.

    Each iteration picks the pair (i, j) maximally violating the KKT
    conditions and moves along the feasible direction ``d = sign_i e_i -
    sign_j e_j`` by the analytically optimal, box-clipped step.
    """
    gradient = -np.ones(len(sign))  # G = Q alpha - 1 at alpha = 0
    alpha = np.zeros(len(sign))

    for _ in range(max_iter):
        violation = -sign * gradient
        up = ((sign > 0) & (alpha < c - 1e-12)) | ((sign < 0) & (alpha > 1e-12))
        low = ((sign > 0) & (alpha > 1e-12)) | ((sign < 0) & (alpha < c - 1e-12))
        if not up.any() or not low.any():
            break
        i = int(np.argmax(np.where(up, violation, -np.inf)))
        j = int(np.argmin(np.where(low, violation, np.inf)))
        gap = violation[i] - violation[j]
        if gap < tol:
            break

        curvature = max(kernel[i, i] + kernel[j, j] - 2.0 * kernel[i, j], 1e-12)
        step = gap / curvature
        # alpha_i moves by +sign_i * step, alpha_j by -sign_j * step;
        # clip the step so both stay inside [0, C].
        step = min(step, c - alpha[i] if sign[i] > 0 else alpha[i])
        step = min(step, alpha[j] if sign[j] > 0 else c - alpha[j])
        if step <= 0:
            break

        alpha[i] += sign[i] * step
        alpha[j] -= sign[j] * step
        # dG = Q d(alpha); with Q = (ss')K this collapses to
        # step * sign * (K_:i - K_:j).
        gradient += step * sign * (kernel[:, i] - kernel[:, j])

    return alpha


class SVMModel:
    """C-SVC with RBF kernel, solved by SMO.

    Parameters
    ----------
    c:
        Soft-margin penalty.
    gamma:
        RBF width; ``None`` uses the median heuristic at fit time.
    tol:
        KKT violation tolerance of the solver.
    max_iter:
        Cap on SMO iterations (pair updates).
    """

    def __init__(
        self,
        c: float = 1.0,
        gamma: float | None = None,
        tol: float = 1e-3,
        max_iter: int = 100_000,
    ) -> None:
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        self.c = c
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self.support_x_: np.ndarray | None = None
        self.support_coef_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.gamma_: float | None = None
        self.platt_a_: float = -1.0
        self.platt_b_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVMModel":
        x = np.asarray(x, dtype=float)
        y01 = np.asarray(y, dtype=float)
        if len(x) != len(y01):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y01)}")
        self.gamma_ = self.gamma if self.gamma is not None else median_gamma(x)
        if len(np.unique(y01)) < 2:
            # Degenerate one-class training set: constant decision.
            self.support_x_ = x[:1]
            self.support_coef_ = np.zeros(1)
            self.bias_ = 1.0 if y01[0] > 0.5 else -1.0
            self._fit_platt(np.full(len(x), self.bias_), y01)
            return self

        sign = np.where(y01 > 0.5, 1.0, -1.0)
        kernel = rbf_kernel(x, x, self.gamma_)
        alpha = _smo_solve(kernel, sign, self.c, self.tol, self.max_iter)

        support = alpha > 1e-10
        if not support.any():  # pathological; keep a constant model
            support = np.zeros(len(x), dtype=bool)
            support[0] = True
        self.support_x_ = x[support]
        self.support_coef_ = (alpha * sign)[support]

        # Bias from the KKT conditions of the free support vectors:
        # y_t * f(x_t) = 1 => b = y_t - sum_s alpha_s y_s K(x_s, x_t).
        margins = kernel[:, support] @ self.support_coef_
        free = (alpha > 1e-8) & (alpha < self.c - 1e-8)
        reference = free if free.any() else support
        self.bias_ = float((sign[reference] - margins[reference]).mean())

        self._fit_platt(margins + self.bias_, y01)
        return self

    def _fit_platt(self, scores: np.ndarray, y01: np.ndarray) -> None:
        """Fit ``P(y=1|s) = sigmoid(a s + b)`` by Newton iterations."""
        n_pos = float(y01.sum())
        n_neg = float(len(y01) - n_pos)
        # Platt's smoothed targets avoid overconfident extremes.
        targets = np.where(
            y01 > 0.5, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0)
        )
        a, b = 1.0, 0.0
        for _ in range(50):
            z = a * scores + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
            residual = p - targets
            grad_a = float((residual * scores).sum())
            grad_b = float(residual.sum())
            w = np.maximum(p * (1.0 - p), 1e-12)
            h_aa = float((w * scores**2).sum()) + 1e-9
            h_ab = float((w * scores).sum())
            h_bb = float(w.sum()) + 1e-9
            det = h_aa * h_bb - h_ab**2
            if abs(det) < 1e-18:
                break
            da = (h_bb * grad_a - h_ab * grad_b) / det
            db = (h_aa * grad_b - h_ab * grad_a) / det
            a -= da
            b -= db
            if abs(da) + abs(db) < 1e-10:
                break
        self.platt_a_, self.platt_b_ = a, b

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin; positive means class 1.  Chunked kernel eval."""
        if self.support_x_ is None:
            raise RuntimeError("SVM is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        out = np.empty(len(x))
        chunk = max(1, 10_000_000 // max(len(self.support_x_), 1))
        for start in range(0, len(x), chunk):
            rows = slice(start, start + chunk)
            k = rbf_kernel(x[rows], self.support_x_, self.gamma_)
            out[rows] = k @ self.support_coef_ + self.bias_
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard labels: sign of the decision function (bnd = 0)."""
        return (self.decision_function(x) > 0.0).astype(np.int64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Platt-calibrated ``P(y=1|x)``."""
        z = self.platt_a_ * self.decision_function(x) + self.platt_b_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
