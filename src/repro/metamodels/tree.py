"""Weighted CART regression tree — the shared building block.

One tree implementation serves both ensemble metamodels:

* the random forest grows deep trees on bootstrap samples with feature
  subsampling, averaging leaf means of the binary response (which makes
  the forest output a probability estimate);
* Newton boosting fits shallow trees to the pseudo-response ``-g/h``
  with hessian sample weights, then replaces the leaf values with the
  regularised Newton step (see :mod:`repro.metamodels.boosting`).

Splits minimise the weighted sum of squared errors, found by the classic
sorted-scan with prefix sums; for a binary response this is equivalent
to Gini-impurity splitting, so nothing is lost relative to a dedicated
classification tree.

Three engines grow the same tree breadth-first:

* ``engine="vectorized"`` (default) — the sort-once level-wise kernel
  of :mod:`repro.metamodels._kernels`: each column is float-sorted once
  per fit into dense integer ranks, every level's splits are found by
  one padded radix-sorted prefix-sum scan over all (node, feature)
  pairs at once, and rows partition into children arithmetically;
* ``engine="reference"`` — the pinned per-node scan that re-argsorts
  every candidate feature at every node;
* ``engine="native"`` — compiled numba split scans
  (:mod:`repro.metamodels._native`), resolved through
  :func:`repro.engines.resolve` (falls back to ``"vectorized"`` when
  numba is absent).

All produce bit-identical flat arrays (feature, threshold, children,
value — pinned by ``tests/test_tree_equivalence.py`` and
``tests/test_native_equivalence.py``), which make batch prediction a
handful of vectorised index operations per tree level instead of a
Python recursion per row.
"""

from __future__ import annotations

import numpy as np

from repro.engines import KNOWN_ENGINES as _ENGINES
from repro.engines import resolve as _resolve_engine
from repro.metamodels._kernels import draw_candidates, grow_tree

__all__ = ["DecisionTreeRegressor"]

_NO_FEATURE = -1


class DecisionTreeRegressor:
    """CART regression tree with sample weights and feature subsampling.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or hit
        ``min_samples_leaf``.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split; ``None`` uses all.  When
        set, a fresh random subset is drawn at every node (the random
        forest convention), which requires ``rng``.
    min_child_weight:
        Minimum total sample weight in each child (used as the hessian
        floor by boosting).
    rng:
        Random generator for feature subsampling.  Both engines draw
        each level's candidate subsets with one batched call
        (:func:`~repro.metamodels._kernels.draw_candidates`), so fits
        are bit-reproducible across engines.
    engine:
        ``"vectorized"`` (sort-once level-wise kernel, default),
        ``"reference"`` (per-node re-sorting scan) or ``"native"``
        (compiled numba split scan; resolves to ``"vectorized"`` with
        one warning when numba is absent).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        min_child_weight: float = 0.0,
        rng: np.random.Generator | None = None,
        engine: str = "vectorized",
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and rng is None:
            raise ValueError("feature subsampling (max_features) requires rng")
        engine = _resolve_engine(engine)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_child_weight = min_child_weight
        self.rng = rng
        self.engine = engine
        # Flat representation, filled by fit().
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        #: Leaf node of each training row, recorded during fit() so
        #: boosting's Newton step never re-walks the training data.
        self.train_leaf_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None,
            ranks: np.ndarray | None = None) -> "DecisionTreeRegressor":
        """Fit the tree.

        ``ranks`` optionally passes the precomputed
        :func:`~repro.metamodels._kernels.dense_ranks` of ``x`` so
        repeated fits on the same inputs (boosting rounds) skip the
        sort-once step; it is ignored by the reference engine, which
        re-sorts per node anyway.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        if sample_weight is None:
            weight = np.ones(len(y))
        else:
            weight = np.asarray(sample_weight, dtype=float)
            if (weight < 0).any() or weight.sum() <= 0:
                raise ValueError("sample weights must be non-negative with positive sum")

        if self.engine == "vectorized":
            arrays = grow_tree(
                x, y, weight,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_child_weight=self.min_child_weight,
                max_features=self.max_features,
                rng=self.rng,
                ranks=ranks,
            )
        elif self.engine == "native":
            from repro.metamodels._native import grow_tree_native

            arrays = grow_tree_native(
                x, y, weight,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_child_weight=self.min_child_weight,
                max_features=self.max_features,
                rng=self.rng,
                ranks=ranks,
            )
        else:
            arrays = self._grow_reference(x, y, weight)
        (self.feature, self.threshold, self.left, self.right,
         self.value, self.train_leaf_) = arrays
        return self

    def _grow_reference(self, x: np.ndarray, y: np.ndarray, weight: np.ndarray):
        """Breadth-first per-node builder (the pinned reference engine).

        Nodes are processed level by level in FIFO order, which numbers
        each level's nodes contiguously — what lets the level-wise
        kernel produce bit-identical arrays.  Candidate feature subsets
        for all of a level's split-eligible nodes are drawn with one
        batched :func:`~repro.metamodels._kernels.draw_candidates` call
        (the kernel issues the identical call), so fits with feature
        subsampling are bit-reproducible across engines.
        """
        n, m = x.shape
        subsample = self.max_features is not None and self.max_features < m
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        train_leaf = np.empty(n, dtype=np.int64)

        def new_node() -> int:
            features.append(_NO_FEATURE)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(0.0)
            return len(features) - 1

        root = new_node()
        level: list[tuple[int, np.ndarray]] = [(root, np.arange(n))]
        depth = 0
        while level:
            eligible: list[tuple[int, np.ndarray]] = []
            for node, idx in level:
                y_node = y[idx]
                w_node = weight[idx]
                w_sum = w_node.sum()
                values[node] = (float(np.average(y_node, weights=w_node))
                                if w_sum > 0 else 0.0)
                if (
                    (self.max_depth is not None and depth >= self.max_depth)
                    or len(idx) < 2 * self.min_samples_leaf
                    or np.all(y_node == y_node[0])
                ):
                    train_leaf[idx] = node
                else:
                    eligible.append((node, idx))

            cand = (draw_candidates(self.rng, len(eligible), m,
                                    self.max_features)
                    if subsample and eligible else None)

            next_level: list[tuple[int, np.ndarray]] = []
            for j, (node, idx) in enumerate(eligible):
                candidates = cand[j] if cand is not None else np.arange(m)
                split = self._best_split(x[idx], y[idx], weight[idx],
                                         candidates)
                if split is None:
                    train_leaf[idx] = node
                    continue
                feat, thr = split
                go_left = x[idx, feat] <= thr
                left_id = new_node()
                right_id = new_node()
                features[node] = feat
                thresholds[node] = thr
                lefts[node] = left_id
                rights[node] = right_id
                next_level.append((left_id, idx[go_left]))
                next_level.append((right_id, idx[~go_left]))
            level = next_level
            depth += 1

        return (
            np.array(features, dtype=np.int64),
            np.array(thresholds, dtype=float),
            np.array(lefts, dtype=np.int64),
            np.array(rights, dtype=np.int64),
            np.array(values, dtype=float),
            train_leaf,
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray, w: np.ndarray,
                    candidates: np.ndarray) -> tuple[int, float] | None:
        """Weighted-SSE-optimal (feature, threshold) or None.

        Scans candidate features with the sorted prefix-sum trick: for a
        split after sorted position k, the SSE reduction is
        ``Sl^2/Wl + Sr^2/Wr - S^2/W`` with ``S`` the weighted response
        sums — only the first two terms vary, so we maximise those.
        """
        n, m = x.shape
        best_gain = 1e-12  # require a strictly positive improvement
        best: tuple[int, float] | None = None
        min_leaf = self.min_samples_leaf
        for feat in candidates:
            order = np.argsort(x[:, feat], kind="stable")
            xs = x[order, feat]
            ws = w[order]
            wys = ws * y[order]

            cum_w = np.cumsum(ws)
            cum_wy = np.cumsum(wys)
            total_w = cum_w[-1]
            total_wy = cum_wy[-1]
            if total_w <= 0:
                continue

            # Split positions: after index k (0-based), left has k+1 points.
            pos = np.arange(min_leaf - 1, n - min_leaf)
            if len(pos) == 0:
                continue
            # Exclude splits between equal feature values.
            distinct = xs[pos] < xs[pos + 1]
            pos = pos[distinct]
            if len(pos) == 0:
                continue

            wl = cum_w[pos]
            wr = total_w - wl
            if self.min_child_weight > 0:
                ok = (wl >= self.min_child_weight) & (wr >= self.min_child_weight)
                pos, wl, wr = pos[ok], wl[ok], wr[ok]
                if len(pos) == 0:
                    continue
            sl = cum_wy[pos]
            sr = total_wy - sl
            # Explicit multiplications, not `** 2`: scalar float64 pow
            # takes the C `pow` path, which can be an ulp away from the
            # multiply the array path uses — the engines must agree.
            gain = sl * sl / np.maximum(wl, 1e-300) \
                + sr * sr / np.maximum(wr, 1e-300)
            gain -= total_wy * total_wy / total_w

            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                thr = float(0.5 * (xs[pos[k]] + xs[pos[k] + 1]))
                # A usable threshold must partition the node: midpoints
                # that fall outside [min, max) (NaN from inf-straddling
                # values, or +/-inf from overflowing huge ones) would
                # leave one child empty and the other equal to its
                # parent — growth would never terminate.  A NaN column
                # maximum means NaN rows exist, and those always land in
                # the right child, so only `min <= thr` matters then.
                if not (xs[0] <= thr and (thr < xs[-1] or np.isnan(xs[-1]))):
                    continue
                best_gain = float(gain[k])
                best = (int(feat), thr)
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.feature is None:
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf index for each row of ``x`` (vectorised level-wise walk)."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        node = np.zeros(len(x), dtype=np.int64)
        active = self.feature[node] != _NO_FEATURE
        while active.any():
            rows = np.nonzero(active)[0]
            cur = node[rows]
            feat = self.feature[cur]
            go_left = x[rows, feat] <= self.threshold[cur]
            node[rows] = np.where(go_left, self.left[cur], self.right[cur])
            active[rows] = self.feature[node[rows]] != _NO_FEATURE
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf mean response for each row of ``x``."""
        return self.value[self.apply(x)]

    def set_leaf_values(self, leaf_values, values: np.ndarray | None = None) -> None:
        """Overwrite leaf predictions (used by Newton boosting).

        Accepts either a ``{leaf: value}`` dict or two parallel arrays
        of leaf indices and values; both forms validate that every
        target node is a leaf and apply one array scatter.
        """
        self._check_fitted()
        if values is not None:
            leaves = np.asarray(leaf_values, dtype=np.int64)
            values = np.asarray(values, dtype=float)
        else:
            if not leaf_values:
                return
            leaves = np.fromiter(leaf_values.keys(), dtype=np.int64,
                                 count=len(leaf_values))
            values = np.fromiter(leaf_values.values(), dtype=float,
                                 count=len(leaf_values))
        if not leaves.size:
            return
        internal = self.feature[leaves] != _NO_FEATURE
        if internal.any():
            offender = int(leaves[np.argmax(internal)])
            raise ValueError(f"node {offender} is not a leaf")
        self.value[leaves] = values

    @property
    def n_nodes(self) -> int:
        self._check_fitted()
        return len(self.feature)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (root-only tree has depth 0)."""
        self._check_fitted()
        depth = 0
        frontier = np.array([0], dtype=np.int64)
        while True:
            splitting = frontier[self.feature[frontier] != _NO_FEATURE]
            if not splitting.size:
                return depth
            frontier = np.concatenate(
                (self.left[splitting], self.right[splitting]))
            depth += 1
