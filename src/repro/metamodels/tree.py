"""Weighted CART regression tree — the shared building block.

One tree implementation serves both ensemble metamodels:

* the random forest grows deep trees on bootstrap samples with feature
  subsampling, averaging leaf means of the binary response (which makes
  the forest output a probability estimate);
* Newton boosting fits shallow trees to the pseudo-response ``-g/h``
  with hessian sample weights, then replaces the leaf values with the
  regularised Newton step (see :mod:`repro.metamodels.boosting`).

Splits minimise the weighted sum of squared errors, found by the classic
sorted-scan with prefix sums; for a binary response this is equivalent
to Gini-impurity splitting, so nothing is lost relative to a dedicated
classification tree.

Trees are stored as flat arrays (feature, threshold, children, value)
which makes batch prediction a handful of vectorised index operations
per tree level instead of a Python recursion per row.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor"]

_NO_FEATURE = -1


class DecisionTreeRegressor:
    """CART regression tree with sample weights and feature subsampling.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or hit
        ``min_samples_leaf``.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split; ``None`` uses all.  When
        set, a fresh random subset is drawn at every node (the random
        forest convention), which requires ``rng``.
    min_child_weight:
        Minimum total sample weight in each child (used as the hessian
        floor by boosting).
    rng:
        Random generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        min_child_weight: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and rng is None:
            raise ValueError("feature subsampling (max_features) requires rng")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_child_weight = min_child_weight
        self.rng = rng
        # Flat representation, filled by fit().
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        if sample_weight is None:
            weight = np.ones(len(y))
        else:
            weight = np.asarray(sample_weight, dtype=float)
            if (weight < 0).any() or weight.sum() <= 0:
                raise ValueError("sample weights must be non-negative with positive sum")

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def new_node() -> int:
            features.append(_NO_FEATURE)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(0.0)
            return len(features) - 1

        # Iterative depth-first build; each stack item is (node_id,
        # sample indices, depth).
        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(len(y)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            y_node = y[idx]
            w_node = weight[idx]
            w_sum = w_node.sum()
            values[node] = float(np.average(y_node, weights=w_node)) if w_sum > 0 else 0.0

            if (
                (self.max_depth is not None and depth >= self.max_depth)
                or len(idx) < 2 * self.min_samples_leaf
                or np.all(y_node == y_node[0])
            ):
                continue

            split = self._best_split(x[idx], y_node, w_node)
            if split is None:
                continue
            feat, thr = split
            go_left = x[idx, feat] <= thr
            left_id = new_node()
            right_id = new_node()
            features[node] = feat
            thresholds[node] = thr
            lefts[node] = left_id
            rights[node] = right_id
            stack.append((left_id, idx[go_left], depth + 1))
            stack.append((right_id, idx[~go_left], depth + 1))

        self.feature = np.array(features, dtype=np.int64)
        self.threshold = np.array(thresholds, dtype=float)
        self.left = np.array(lefts, dtype=np.int64)
        self.right = np.array(rights, dtype=np.int64)
        self.value = np.array(values, dtype=float)
        return self

    def _best_split(self, x: np.ndarray, y: np.ndarray,
                    w: np.ndarray) -> tuple[int, float] | None:
        """Weighted-SSE-optimal (feature, threshold) or None.

        Scans candidate features with the sorted prefix-sum trick: for a
        split after sorted position k, the SSE reduction is
        ``Sl^2/Wl + Sr^2/Wr - S^2/W`` with ``S`` the weighted response
        sums — only the first two terms vary, so we maximise those.
        """
        n, m = x.shape
        if self.max_features is not None and self.max_features < m:
            candidates = self.rng.choice(m, size=self.max_features, replace=False)
        else:
            candidates = np.arange(m)

        best_gain = 1e-12  # require a strictly positive improvement
        best: tuple[int, float] | None = None
        min_leaf = self.min_samples_leaf
        for feat in candidates:
            order = np.argsort(x[:, feat], kind="stable")
            xs = x[order, feat]
            ws = w[order]
            wys = ws * y[order]

            cum_w = np.cumsum(ws)
            cum_wy = np.cumsum(wys)
            total_w = cum_w[-1]
            total_wy = cum_wy[-1]
            if total_w <= 0:
                continue

            # Split positions: after index k (0-based), left has k+1 points.
            pos = np.arange(min_leaf - 1, n - min_leaf)
            if len(pos) == 0:
                continue
            # Exclude splits between equal feature values.
            distinct = xs[pos] < xs[pos + 1]
            pos = pos[distinct]
            if len(pos) == 0:
                continue

            wl = cum_w[pos]
            wr = total_w - wl
            if self.min_child_weight > 0:
                ok = (wl >= self.min_child_weight) & (wr >= self.min_child_weight)
                pos, wl, wr = pos[ok], wl[ok], wr[ok]
                if len(pos) == 0:
                    continue
            sl = cum_wy[pos]
            sr = total_wy - sl
            gain = sl**2 / np.maximum(wl, 1e-300) + sr**2 / np.maximum(wr, 1e-300)
            gain -= total_wy**2 / total_w

            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best = (int(feat), float(0.5 * (xs[pos[k]] + xs[pos[k] + 1])))
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.feature is None:
            raise RuntimeError("tree is not fitted; call fit() first")

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf index for each row of ``x`` (vectorised level-wise walk)."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        node = np.zeros(len(x), dtype=np.int64)
        active = self.feature[node] != _NO_FEATURE
        while active.any():
            rows = np.nonzero(active)[0]
            cur = node[rows]
            feat = self.feature[cur]
            go_left = x[rows, feat] <= self.threshold[cur]
            node[rows] = np.where(go_left, self.left[cur], self.right[cur])
            active[rows] = self.feature[node[rows]] != _NO_FEATURE
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf mean response for each row of ``x``."""
        return self.value[self.apply(x)]

    def set_leaf_values(self, leaf_values: dict[int, float]) -> None:
        """Overwrite leaf predictions (used by Newton boosting)."""
        self._check_fitted()
        for leaf, val in leaf_values.items():
            if self.feature[leaf] != _NO_FEATURE:
                raise ValueError(f"node {leaf} is not a leaf")
            self.value[leaf] = val

    @property
    def n_nodes(self) -> int:
        self._check_fitted()
        return len(self.feature)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (root-only tree has depth 0)."""
        self._check_fitted()
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            if self.feature[node] != _NO_FEATURE:
                depths[self.left[node]] = depths[node] + 1
                depths[self.right[node]] = depths[node] + 1
        return int(depths.max())
