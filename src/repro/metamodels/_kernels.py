"""Vectorized metamodel kernels: sort-once tree growth, stacked prediction.

The reference tree builder (``DecisionTreeRegressor._grow_reference``)
re-argsorts every candidate feature at every node and scans them in a
Python loop; ensemble prediction walks 100-150 trees one at a time over
the full query matrix.  This module applies the subgroup-kernel
discipline of :mod:`repro.subgroup._kernels` (sort once, maintain
sorted orders incrementally, replace per-item Python loops with batched
array passes) to the metamodel layer:

* :func:`grow_tree` / :func:`grow_forest` float-sort each column **once
  per fit** (:func:`dense_ranks`: per-column dense integer value ranks)
  and grow level-wise from there: the only per-row state carried
  between levels is the row list grouped by node (maintained by an
  arithmetic stable partition — one cumsum, no sorting), and each
  level's split search lays every (node, candidate-feature) pair out as
  one row of a zero-padded matrix whose per-column orderings come from
  a stable **radix** argsort of the uint16 rank keys.  The
  weighted-SSE gain scan is then a single ``cumsum`` + elementwise gain
  evaluation + ``argmax`` per matrix.  Zero padding keeps the per-node
  prefix sums bit-identical to a fresh per-node ``np.cumsum`` (trailing
  zeros never perturb a running prefix), rank-key stability reproduces
  the reference's tie order, the elementwise gain formula is copied
  operation for operation from the reference, and ties break by the
  same first-strict-maximum rule — so the chosen (feature, threshold)
  pairs, the node numbering (both engines grow breadth-first) and the
  fitted flat arrays are bit-identical to ``engine="reference"``.
  :func:`grow_forest` additionally grows whole blocks of bootstrap
  trees level-synchronously (independent spawned generators make tree
  interleaving immaterial), amortizing per-level call overhead — the
  cost floor of deep-tree growth — across the block.

* :class:`StackedEnsemble` pads the flat arrays of all trees of a
  forest / boosting model into one array set and replaces the per-tree
  prediction loop with a vectorized level-wise walk over (tree, row)
  pairs, chunked over rows for cache residency.  Thresholds are
  replaced by their **ranks** among each feature's sorted unique
  ensemble thresholds and queries by their ``searchsorted`` ranks, so
  the inner walk compares small ints from L1/L2-resident tables
  (``x > t``  iff  ``rank(x) > rank(t)``, an exact equivalence).
  Shallow ensembles (boosting) are padded to **complete heap-indexed
  trees** whose child step is pure arithmetic (``2h + 1 + go``) with no
  child-pointer gather; deep ensembles (fully grown forests) use a
  pointer walk over depth-sorted tree blocks with periodic compaction
  of finished (tree, row) walkers.  Per-tree leaf values are
  accumulated in tree order with the same elementwise operations as the
  reference loops, so ensemble predictions are bit-identical as well.

Feature subsampling draws one batched ``rng.random`` per tree level
(:func:`draw_candidates`, shared by both engines), which keeps random
forests bit-reproducible across engines too.

Categorical inputs: the ordinal fallback
----------------------------------------
Mixed-type datasets reach this layer with their categorical columns
holding integer codes ``0 .. K-1`` (see
:func:`repro.sampling.designs.quantize_levels`).  The split scan
deliberately treats those codes as **ordered integers** — a code column
dense-ranks like any float column and splits are ``code <= t``
thresholds — rather than growing one-vs-rest category branches.  Trees
recover arbitrary category subsets by stacking at most ``K - 1``
ordinal splits on the same column, so no expressiveness is lost for the
small ``K`` of scenario levers, and both engines stay bit-identical by
sharing one code path.  Category-subset semantics live exclusively in
the subgroup layer (:mod:`repro.subgroup._kernels`), where the box
description — not just the fitted response — is the product.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grow_tree", "grow_forest", "draw_candidates", "dense_ranks",
           "StackedEnsemble"]

_NO_FEATURE = -1

#: Strictly-positive improvement a split must reach (shared with the
#: reference scan in ``DecisionTreeRegressor._best_split``).
MIN_GAIN = 1e-12

#: Element budget for one padded (max_node_len, n_columns) scan block;
#: eligible nodes are chunked by size so the padded temporaries stay a
#: few MB with bounded padding waste.
_SCAN_CHUNK_ELEMENTS = 1 << 21


def draw_candidates(rng: np.random.Generator, n_nodes: int,
                    n_features: int, max_features: int) -> np.ndarray:
    """Candidate feature subsets for one level's split-eligible nodes.

    One uniform draw without replacement per node, implemented as a
    single batched random-key argsort so that both tree engines consume
    the generator stream identically (exactly one ``rng.random`` call
    per tree level with subsampling-eligible nodes).
    """
    keys = rng.random((n_nodes, n_features))
    return np.argsort(keys, axis=1, kind="stable")[:, :max_features]


def dense_ranks(x: np.ndarray) -> np.ndarray:
    """Per-column dense value ranks of ``x`` (equal values share a rank).

    An order-embedding of each column with ties collapsed, so a stable
    argsort of ``ranks[idx]`` equals the stable argsort of ``x[idx]``
    for any row multiset ``idx`` — and integer keys (uint16 whenever
    they fit) take numpy's O(n) radix path instead of float timsort.
    """
    n, m = x.shape
    order = np.argsort(x, axis=0, kind="stable")
    sv = np.take_along_axis(x, order, axis=0)
    step = np.empty((n, m), dtype=np.int64)
    step[0] = 0
    # NaNs sort together at the end and must share one rank, exactly
    # like any other tied value.
    step[1:] = (sv[1:] != sv[:-1]) & ~(np.isnan(sv[1:]) & np.isnan(sv[:-1]))
    dense = np.cumsum(step, axis=0)
    ranks = np.empty((n, m), dtype=np.int64)
    np.put_along_axis(ranks, order, dense, axis=0)
    if n <= np.iinfo(np.uint16).max:
        return ranks.astype(np.uint16)
    return ranks


def grow_tree(
    x: np.ndarray,
    y: np.ndarray,
    weight: np.ndarray,
    *,
    max_depth: int | None,
    min_samples_leaf: int,
    min_child_weight: float,
    max_features: int | None,
    rng: np.random.Generator | None,
    ranks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Grow one CART regression tree level-wise from rank-sorted columns.

    Returns the flat tree arrays ``(feature, threshold, left, right,
    value, train_leaf)`` where ``train_leaf[i]`` is the leaf node of
    training row ``i`` — bit-identical to the breadth-first reference
    builder fed the same inputs.  ``ranks`` may hold the
    :func:`dense_ranks` of ``x`` computed elsewhere (boosting reuses
    one rank matrix across all rounds that train on the full dataset);
    it is only read, never mutated.
    """
    n, m = x.shape
    if ranks is None:
        ranks = dense_ranks(x)
    return _grow_block(
        x, y, weight, ranks,
        n_trees=1, n_samp=n, max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        min_child_weight=min_child_weight,
        max_features=max_features, rngs=[rng],
    )[0]


#: Trees grown level-synchronously per forest block: per-level numpy
#: call overhead (the cost floor for one deep tree) amortizes over the
#: whole block while its working set stays cache-sized.
_FOREST_TREE_BLOCK = 16


def _forest_chunk(context, start: int, stop: int) -> list:
    """Trees ``[start, stop)`` of a fanned-out :func:`grow_forest`.

    The parent drew every bootstrap and spawned every per-tree
    generator before chunking, so this range grows exactly the trees
    the serial loop grows at the same positions — whatever the chunk
    boundaries, and whatever block the range sub-divides into.
    """
    x = context["x"]
    y = context["y"]
    boot = context["boot"]
    ranks = context["ranks"]
    rngs = context["rngs"]
    block = context["block"]
    n_samp = context["n_samp"]
    results = []
    for b in range(start, stop, block):
        hi = min(b + block, stop)
        # Rows of consecutive bootstrap draws, stacked tree-major —
        # identical to concatenating the per-tree index vectors.
        idx = boot[b:hi].reshape(-1)
        results.extend(_grow_block(
            x[idx], y[idx], np.ones(idx.size), ranks[idx],
            n_trees=hi - b, n_samp=n_samp,
            max_depth=context["max_depth"],
            min_samples_leaf=context["min_samples_leaf"],
            min_child_weight=0.0,
            max_features=context["max_features"],
            rngs=list(rngs[b:hi]),
        ))
    return results


def grow_forest(
    x: np.ndarray,
    y: np.ndarray,
    *,
    n_trees: int,
    max_depth: int | None,
    min_samples_leaf: int,
    max_features: int | None,
    rng: np.random.Generator,
    block: int = _FOREST_TREE_BLOCK,
    jobs: int | None = 1,
    chunk_trees: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Grow all bootstrap trees of a random forest, block-level-wise.

    Consumes the generator exactly like the reference engine: all
    ``n_trees`` bootstrap draws first, then one spawned child generator
    per tree for its feature subsampling — which makes every tree's
    stream independent of how trees are interleaved, so whole blocks of
    trees grow level-synchronously through one kernel loop (per-level
    call overhead amortizes across the block) while staying
    bit-identical to fitting each tree alone.  The dense rank matrix is
    computed once and gathered per bootstrap sample; no per-tree float
    sorting happens at all.

    The same independence makes the fit data-parallel: with ``jobs`` >
    1 (or ``None`` for all CPUs) contiguous tree ranges fan out over
    the executor layer — ``x``/``y``, the bootstrap index matrix and
    the rank matrix cross process boundaries zero-copy through the data
    plane, the spawned generators ship once per worker, and each worker
    runs the very same block loop over its range.  Trees come back in
    tree order, bit-identical to the serial fit for any
    ``jobs``/``chunk_trees`` setting.

    Returns one ``(feature, threshold, left, right, value, train_leaf)``
    tuple per tree, where ``train_leaf`` indexes the tree's bootstrap
    sample rows.
    """
    n, m = x.shape
    boot = [rng.integers(0, n, size=n) for _ in range(n_trees)]
    rngs = rng.spawn(n_trees)
    ranks = dense_ranks(x)
    if (jobs is None or jobs > 1) and n_trees > 1:
        from repro.experiments.parallel import run_chunked

        parts = run_chunked(
            _forest_chunk, n_trees, jobs=jobs, chunk_rows=chunk_trees,
            context={
                "rngs": rngs, "block": int(block), "n_samp": n,
                "max_depth": max_depth,
                "min_samples_leaf": min_samples_leaf,
                "max_features": max_features,
            },
            shared={"x": np.ascontiguousarray(x, dtype=float),
                    "y": np.ascontiguousarray(y, dtype=float),
                    "boot": np.stack(boot), "ranks": ranks})
        return [tree for part in parts for tree in part]
    results = []
    for b in range(0, n_trees, block):
        tb = range(b, min(b + block, n_trees))
        idx = np.concatenate([boot[t] for t in tb])
        results.extend(_grow_block(
            x[idx], y[idx], np.ones(idx.size), ranks[idx],
            n_trees=len(tb), n_samp=n, max_depth=max_depth,
            min_samples_leaf=min_samples_leaf, min_child_weight=0.0,
            max_features=max_features, rngs=[rngs[t] for t in tb],
        ))
    return results


def _grow_block(
    xb: np.ndarray,
    yb: np.ndarray,
    wb: np.ndarray,
    ranks: np.ndarray,
    *,
    n_trees: int,
    n_samp: int,
    max_depth: int | None,
    min_samples_leaf: int,
    min_child_weight: float,
    max_features: int | None,
    rngs,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Level-synchronous growth of ``n_trees`` independent trees whose
    rows are stacked tree-major in ``xb``/``yb``/``wb`` (``n_samp`` rows
    each); ``ranks`` holds each row's per-column dense value rank.
    Returns per-tree flat arrays.

    The only per-row state carried between levels is ``node_rows`` (row
    ids grouped by node, ascending within each node).  Each level's
    split scan rebuilds its padded (position, node x feature) columns
    by a stable **radix** argsort of the integer rank keys — stability
    reproduces the reference's tie order (ascending row position), and
    re-sorting small integers per level is cheaper than maintaining
    every feature's sorted order through an m-wide stable partition.
    """
    V, m = xb.shape
    min_leaf = min_samples_leaf
    subsample = max_features is not None and max_features < m
    k = max_features if subsample else m

    xF = np.asfortranarray(xb)
    x_flat = xF.reshape(-1, order="F")
    rkF = np.asfortranarray(ranks)
    rk_flat = rkF.reshape(-1, order="F")
    sent = np.iinfo(ranks.dtype).max

    # NaN feature values sort last and never admit a split on either
    # side of them (any comparison with NaN is False in the reference
    # scan); per-column NaN ranks let the rank-based distinct check
    # reproduce that exactly.
    has_nan = bool(np.isnan(xb).any())
    if has_nan:
        nan_rank = np.full(m, sent, dtype=np.int64)
        for j in range(m):
            nan_j = np.isnan(xb[:, j])
            if nan_j.any():
                nan_rank[j] = int(ranks[nan_j, j][0])

    # With unit weights and a binary response — the random-forest hot
    # path — every per-node sum is integer-exact: segmented cumsum
    # differences equal the reference's fresh pairwise slice sums bit
    # for bit, the per-node value loop vectorizes away entirely, and the
    # scan's weight prefix sums are plain position counts.
    exact_sums = bool((wb == 1.0).all()) and bool(((yb == 0.0) | (yb == 1.0)).all())
    # In the exact regime every prefix sum is a small integer, so the
    # whole scan runs in uint8/int32 and only the gain divisions touch
    # floats — int/int true division of exact integers is bit-identical
    # to dividing the same integers held in float64.  int32 squares need
    # counts <= 46340; larger exact fits fall back to the float path.
    exact_int = exact_sums and n_samp <= 46_000
    # Sentinel slot V: padding rows gather a zero contribution.
    if exact_int:
        y8 = np.concatenate((yb, [0.0])).astype(np.uint8)
    wy = yb if exact_sums else wb * yb
    wyx = np.concatenate((wy, [0.0]))
    if not exact_sums:
        wx = np.concatenate((wb, [0.0]))

    # Row ids grouped by node in ascending original order — the order
    # the reference sees y[idx] in, which makes the per-node value (a
    # pairwise slice sum) bit-identical to np.average(y[idx], w[idx]).
    node_rows = np.arange(V)

    # Flat tree arrays, one block per level, tagged with (tree, local
    # node id) for the final per-tree assembly.
    feat_parts = [np.full(n_trees, _NO_FEATURE, dtype=np.int64)]
    thr_parts = [np.zeros(n_trees)]
    left_parts = [np.full(n_trees, -1, dtype=np.int64)]
    right_parts = [np.full(n_trees, -1, dtype=np.int64)]
    val_parts = [np.zeros(n_trees)]
    tree_parts = [np.arange(n_trees)]
    id_parts = [np.zeros(n_trees, dtype=np.int64)]
    tree_n_nodes = np.ones(n_trees, dtype=np.int64)
    train_leaf = np.empty(V, dtype=np.int64)

    seg_counts = np.full(n_trees, n_samp, dtype=np.int64)
    seg_tree = np.arange(n_trees)           # owning tree per segment
    seg_node = np.zeros(n_trees, dtype=np.int64)  # local node id per segment
    depth = 0

    while True:
        n_seg = seg_counts.size
        n_active = node_rows.size
        ends = np.cumsum(seg_counts)
        starts = ends - seg_counts
        val_blk = val_parts[-1]

        y_rows = yb[node_rows]

        # ------------------------------------------------------------------
        # Node values (same ops as np.average over each node's rows) and
        # purity, whole level at once where the sums are integer-exact.
        # ------------------------------------------------------------------
        if exact_sums:
            # Unit weights, binary y: the node value is ones/count and a
            # node is pure iff its ones count is 0 or everything.
            csum = np.concatenate(([0.0], np.cumsum(y_rows)))
            seg_sum = csum[ends] - csum[starts]
            val_blk[:] = seg_sum / np.maximum(seg_counts, 1)
            impure = (seg_sum > 0) & (seg_sum < seg_counts)
        else:
            w_rows = wb[node_rows]
            wy_rows = wy[node_rows]
            for i in range(n_seg):
                s, e = int(starts[i]), int(ends[i])
                scl = w_rows[s:e].sum()
                val_blk[i] = wy_rows[s:e].sum() / scl if scl > 0 else 0.0
            # A node is pure iff no adjacent response pair differs.
            if n_active > 1:
                change = np.empty(n_active, dtype=np.int64)
                change[0] = 0
                change[1:] = y_rows[1:] != y_rows[:-1]
                cs = np.cumsum(change)
                impure = (cs[ends - 1] - cs[starts]) > 0
            else:
                impure = np.zeros(n_seg, dtype=bool)

        at_cap = max_depth is not None and depth >= max_depth
        if at_cap:
            elig = np.empty(0, dtype=np.int64)
        else:
            elig = np.flatnonzero(impure & (seg_counts >= 2 * min_leaf))

        # Candidate features per eligible node, one batched draw per
        # (tree, level) from the tree's own generator — the reference
        # draws the identical matrices in the identical order.
        if elig.size and subsample:
            if n_trees == 1:
                cand = draw_candidates(rngs[0], elig.size, m, k)
            else:
                cnt = np.bincount(seg_tree[elig], minlength=n_trees)
                cand = np.concatenate(
                    [draw_candidates(rngs[t], int(c), m, k)
                     for t, c in enumerate(cnt) if c])
        else:
            cand = np.broadcast_to(np.arange(m), (elig.size, m))

        # ------------------------------------------------------------------
        # Level-wise split search over padded (position, node x feature)
        # matrices; nodes are chunked largest-first so each block's
        # padding waste stays bounded.
        # ------------------------------------------------------------------
        split_feat = np.full(n_seg, _NO_FEATURE, dtype=np.int64)
        split_thr = np.zeros(n_seg)

        if elig.size:
            lengths = seg_counts[elig]
            by_size = np.argsort(-lengths, kind="stable")
            sorted_len = lengths[by_size]
            ptr = 0
            while ptr < by_size.size:
                # Greedy waste-bounded chunking: extend while the padded
                # area stays under twice the actual data (and the element
                # budget), so big and small nodes never share a block
                # unless the small ones are numerous enough to amortize.
                max_len = int(sorted_len[ptr])
                actual = 0
                q = 0
                while ptr + q < by_size.size:
                    nxt = int(sorted_len[ptr + q])
                    if q and (max_len * (q + 1) * k > _SCAN_CHUNK_ELEMENTS
                              or max_len * (q + 1) > 2 * (actual + nxt)):
                        break
                    actual += nxt
                    q += 1
                sel = by_size[ptr:ptr + q]
                ptr += q
                e_idx = elig[sel]
                n_cols = q * k

                # One flat scatter builds all padded columns; a stable
                # argsort of the integer rank keys then sorts every
                # column at once (radix for uint16 ranks), with padding
                # (rank `sent`, row V) sinking to the bottom.
                col_len = np.repeat(lengths[sel], k)
                tot = int(col_len.sum())
                col_off = np.concatenate(([0], np.cumsum(col_len)[:-1]))
                ar = np.arange(tot) - np.repeat(col_off, col_len)
                src_pos = np.repeat(np.repeat(starts[e_idx], k), col_len) + ar
                src_col = np.repeat(cand[sel].ravel(), col_len)
                src_row = node_rows[src_pos]
                dst = np.repeat(np.arange(n_cols) * max_len, col_len) + ar

                # Columns live as contiguous rows of (n_cols, max_len)
                # matrices, so the per-column sorts, prefix sums and
                # argmaxes below all run over contiguous memory.
                row_pad = np.full((n_cols, max_len), V, dtype=np.int64)
                rank_pad = np.full((n_cols, max_len), sent,
                                   dtype=ranks.dtype)
                row_pad.ravel()[dst] = src_row
                rank_pad.ravel()[dst] = rk_flat[src_row + V * src_col]
                perm = np.argsort(rank_pad, axis=1, kind="stable")
                # Column-flat gathers (take_along_axis builds full index
                # grids in Python; one add does the same job).
                pflat = perm + (np.arange(n_cols) * max_len)[:, None]
                row_srt = row_pad.ravel()[pflat]
                rank_srt = rank_pad.ravel()[pflat]

                # Per-column prefix sums: trailing zero padding leaves
                # the running prefixes identical to per-node cumsums.
                # Split after sorted position p: left spans [0, p]; the
                # gain expression mirrors the reference line for line so
                # every surviving element is bit-identical.
                cix = np.arange(n_cols)
                n_pos = max_len - 1
                pos_grid = np.arange(n_pos)[None, :]
                if exact_int:
                    # Integer fast path: weights are position counts and
                    # response sums are ones counts, so prefix sums stay
                    # int32 and (at valid positions, where wl, wr >=
                    # min_leaf >= 1) the reference's 1e-300 floors are
                    # bitwise no-ops.
                    cum_wy = np.cumsum(y8[row_srt], axis=1,
                                       dtype=np.int32)
                    total_wy = cum_wy[cix, col_len - 1]
                    cl32 = col_len.astype(np.int32)
                    wl = (pos_grid + 1).astype(np.int32)
                    sl = cum_wy[:, :n_pos]
                    with np.errstate(divide="ignore", invalid="ignore"):
                        wr = cl32[:, None] - wl
                        sr = total_wy[:, None] - sl
                        gain = sl * sl / wl + sr * sr / wr
                        gain -= (total_wy * total_wy / cl32)[:, None]
                else:
                    wy_pad = wyx[row_srt]
                    cum_wy = np.cumsum(wy_pad, axis=1)
                    total_wy = cum_wy[cix, col_len - 1]
                    if exact_sums:
                        total_w = col_len.astype(float)
                        wl = (pos_grid + 1).astype(float)
                    else:
                        w_pad = wx[row_srt]
                        cum_w = np.cumsum(w_pad, axis=1)
                        total_w = cum_w[cix, col_len - 1]
                        wl = cum_w[:, :n_pos]
                    sl = cum_wy[:, :n_pos]
                    with np.errstate(divide="ignore", invalid="ignore",
                                     over="ignore"):
                        wr = total_w[:, None] - wl
                        sr = total_wy[:, None] - sl
                        if exact_sums:
                            wl_safe, wr_safe = wl, wr
                        else:
                            wl_safe = np.maximum(wl, 1e-300)
                            wr_safe = np.maximum(wr, 1e-300)
                        gain = sl * sl / wl_safe + sr * sr / wr_safe
                        gain -= (total_wy * total_wy
                                 / np.where(total_w > 0, total_w, 1.0))[:, None]

                valid = (pos_grid >= min_leaf - 1) \
                    & (pos_grid <= (col_len - min_leaf - 1)[:, None])
                # Distinct-value check on ranks (dense ranks embed the
                # value order with ties collapsed).
                valid &= rank_srt[:, :n_pos] < rank_srt[:, 1:]
                if has_nan:
                    # x < NaN is False in the reference scan, so the
                    # position just before a column's NaN run admits no
                    # split either.
                    valid &= rank_srt[:, 1:] != nan_rank[src_col[col_off]][:, None]
                if min_child_weight > 0:
                    valid &= (wl >= min_child_weight) & (wr >= min_child_weight)
                if not exact_sums:
                    valid &= (total_w > 0)[:, None]
                gain[~valid] = -np.inf

                # First maximum per column (argmax keeps the reference's
                # first-win tie rule; a NaN gain at a valid position
                # poisons its column exactly like the reference's
                # `nan > best` comparison skips the feature).
                best_pos = np.argmax(gain, axis=1)
                best_gain = gain[cix, best_pos]
                # A usable threshold must partition the node: midpoints
                # that fall outside [min, max) (NaN from inf-straddling
                # values, or +/-inf from overflowing huge ones) would
                # leave one child empty and the other equal to its
                # parent — growth would never terminate.  A NaN column
                # maximum means NaN rows exist, and those always land in
                # the right child, so only `min <= thr` matters then.
                # The reference skips such features; mask them before
                # the across-feature argmax.
                fcol = src_col[col_off]
                thr_col = 0.5 * (x_flat[row_srt[cix, best_pos] + V * fcol]
                                 + x_flat[row_srt[cix, best_pos + 1] + V * fcol])
                x_lo = x_flat[row_srt[:, 0] + V * fcol]
                x_hi = x_flat[row_srt[cix, col_len - 1] + V * fcol]
                degenerate = ~((x_lo <= thr_col)
                               & ((thr_col < x_hi) | np.isnan(x_hi)))
                bg = np.where(np.isnan(best_gain) | degenerate, -np.inf,
                              best_gain).reshape(q, k)
                f_arg = np.argmax(bg, axis=1)
                g_sel = bg[np.arange(q), f_arg]
                okx = np.flatnonzero(g_sel > MIN_GAIN)
                col_ok = f_arg[okx] + okx * k
                tgt = e_idx[okx]
                split_feat[tgt] = cand[sel[okx], f_arg[okx]]
                split_thr[tgt] = thr_col[col_ok]

        # ------------------------------------------------------------------
        # Mark leaf rows, allocate children (breadth-first numbering per
        # tree: each tree's splitting segments appear in its own BFS
        # order, so local ids follow from the tree's node count plus the
        # segment's rank among its tree's splits this level).
        # ------------------------------------------------------------------
        splitting = np.flatnonzero(split_feat != _NO_FEATURE)
        n_split = splitting.size

        leaf_pos = np.repeat(split_feat < 0, seg_counts)
        train_leaf[node_rows[leaf_pos]] = \
            np.repeat(seg_node, seg_counts)[leaf_pos]

        if n_split == 0:
            break

        split_trees = seg_tree[splitting]
        per_tree = np.bincount(split_trees, minlength=n_trees)
        tree_first = np.concatenate(([0], np.cumsum(per_tree)[:-1]))
        occ = np.arange(n_split) - tree_first[split_trees]
        left_ids = tree_n_nodes[split_trees] + 2 * occ
        tree_n_nodes += 2 * per_tree

        feat_parts[-1][splitting] = split_feat[splitting]
        thr_parts[-1][splitting] = split_thr[splitting]
        left_parts[-1][splitting] = left_ids
        right_parts[-1][splitting] = left_ids + 1

        nb = 2 * n_split
        feat_parts.append(np.full(nb, _NO_FEATURE, dtype=np.int64))
        thr_parts.append(np.zeros(nb))
        left_parts.append(np.full(nb, -1, dtype=np.int64))
        right_parts.append(np.full(nb, -1, dtype=np.int64))
        val_parts.append(np.zeros(nb))
        new_seg_tree = np.repeat(split_trees, 2)
        new_seg_node = np.empty(nb, dtype=np.int64)
        new_seg_node[0::2] = left_ids
        new_seg_node[1::2] = left_ids + 1
        tree_parts.append(new_seg_tree)
        id_parts.append(new_seg_node)

        # ------------------------------------------------------------------
        # Stable partition of the row list into child segments, computed
        # arithmetically: each row's child is decided by the split-value
        # comparison (the same ``x <= thr`` rule prediction uses), and
        # its new position is its child's base offset plus its rank
        # among same-side rows of its segment — one cumsum.
        # ------------------------------------------------------------------
        Ls = seg_counts[splitting]
        tot = int(Ls.sum())
        cstart = np.concatenate(([0], np.cumsum(Ls)[:-1]))
        rep_seg = np.repeat(np.arange(n_split), Ls)
        within = np.arange(tot) - cstart[rep_seg]
        src_pos = starts[splitting][rep_seg] + within
        rows_c = node_rows[src_pos]
        feat_rep = split_feat[splitting][rep_seg]
        # Same rule as the reference partition and as prediction:
        # go_left = (x <= thr), negated (not rewritten as `>`, which
        # would disagree on NaN thresholds from degenerate midpoints).
        il = x_flat[rows_c + V * feat_rep] <= split_thr[splitting][rep_seg]

        left_cnt = np.bincount(rep_seg[il], minlength=n_split)
        new_counts = np.empty(nb, dtype=np.int64)
        new_counts[0::2] = left_cnt
        new_counts[1::2] = Ls - left_cnt
        new_ends = np.cumsum(new_counts)
        new_starts = new_ends - new_counts
        nsl = new_starts[0::2]
        nsr = new_starts[1::2]

        exr = np.cumsum(il) - il
        rank_l = exr - exr[cstart][rep_seg]
        # Left rows land at their child's base plus their left rank;
        # right rows at base + (position - left rank).
        npos = np.where(il, nsl[rep_seg] + rank_l,
                        nsr[rep_seg] + within - rank_l)
        new_node_rows = np.empty(tot, dtype=np.int64)
        new_node_rows[npos] = rows_c

        node_rows = new_node_rows
        seg_counts = new_counts
        seg_tree = new_seg_tree
        seg_node = new_seg_node
        depth += 1

    # ------------------------------------------------------------------
    # Assemble per-tree flat arrays: every level entry carries its
    # (tree, local node id) tag, so one scatter per array sorts the
    # whole block into tree-contiguous BFS layout.
    # ------------------------------------------------------------------
    offsets = np.concatenate(([0], np.cumsum(tree_n_nodes)))
    gidx = offsets[np.concatenate(tree_parts)] + np.concatenate(id_parts)
    total = int(offsets[-1])

    def _assemble(parts):
        src = np.concatenate(parts)
        out = np.empty(total, dtype=src.dtype)
        out[gidx] = src
        return out

    feat_all = _assemble(feat_parts)
    thr_all = _assemble(thr_parts)
    left_all = _assemble(left_parts)
    right_all = _assemble(right_parts)
    val_all = _assemble(val_parts)
    leaf2d = train_leaf.reshape(n_trees, n_samp)
    return [
        (feat_all[offsets[t]:offsets[t + 1]],
         thr_all[offsets[t]:offsets[t + 1]],
         left_all[offsets[t]:offsets[t + 1]],
         right_all[offsets[t]:offsets[t + 1]],
         val_all[offsets[t]:offsets[t + 1]],
         leaf2d[t])
        for t in range(n_trees)
    ]


# ----------------------------------------------------------------------
# Stacked ensemble prediction
# ----------------------------------------------------------------------

#: Query rows per walk chunk — the chunk's rank matrix (chunk x M
#: int32) stays L1/L2-resident while every tree block traverses it.
_PREDICT_ROW_CHUNK = 4096

#: Trees per pointer-walk block — bounds the block's node tables to the
#: L2 cache while walkers of all block trees gather from them.
_PREDICT_TREE_BLOCK = 16

#: Deepest ensemble stored as complete heap-indexed trees (2^(d+1) - 1
#: slots per tree); deeper ensembles fall back to the pointer walk.
_HEAP_MAX_DEPTH = 8

#: Pointer walk: depth at which compaction of finished walkers starts,
#: and how many levels pass between compactions (measured optimum at
#: paper scale — compacting too eagerly costs more than the spins).
_COMPACT_FROM = 12
_COMPACT_EVERY = 6

_RANK_INF = np.iinfo(np.int32).max


class StackedEnsemble:
    """All trees of a fitted ensemble padded into one array set.

    Parameters
    ----------
    trees:
        Fitted :class:`~repro.metamodels.tree.DecisionTreeRegressor`
        instances.
    columns:
        Optional per-tree global column indices (boosting's per-round
        ``colsample`` draws); tree-local split features are remapped to
        the full input space so the walk runs on the caller's ``x``.

    Notes
    -----
    Split thresholds are quantized to their index among the feature's
    sorted unique thresholds across the whole ensemble, and queries are
    ranked once per :meth:`leaf_value_sum` call with ``searchsorted``.
    ``x > t``  iff  ``#(thresholds < x) > index(t)``, exactly — so the
    int-rank walk reproduces the float comparisons bit for bit while
    keeping the hot tables small and cache-resident.
    """

    def __init__(self, trees, columns=None) -> None:
        n_trees = len(trees)
        max_nodes = max(tree.n_nodes for tree in trees)
        n_features = 0
        feature = np.zeros((n_trees, max_nodes), dtype=np.int64)
        threshold = np.full((n_trees, max_nodes), np.inf)
        left = np.empty((n_trees, max_nodes), dtype=np.int64)
        left[:] = (np.arange(n_trees, dtype=np.int64)[:, None] * max_nodes
                   + np.arange(max_nodes))
        value = np.zeros((n_trees, max_nodes))
        internal2d = np.zeros((n_trees, max_nodes), dtype=bool)
        depths = np.empty(n_trees, dtype=np.int64)
        for t, tree in enumerate(trees):
            kn = tree.n_nodes
            internal = tree.feature != _NO_FEATURE
            if not np.array_equal(tree.right[internal],
                                  tree.left[internal] + 1):
                raise ValueError(
                    "stacked prediction requires right == left + 1 "
                    "(breadth-first flat trees)")
            feat = tree.feature
            if columns is not None:
                feat = feat.copy()
                feat[internal] = np.asarray(columns[t])[feat[internal]]
            feature[t, :kn][internal] = feat[internal]
            threshold[t, :kn][internal] = tree.threshold[internal]
            left[t, :kn][internal] = t * max_nodes + tree.left[internal]
            value[t, :kn] = tree.value
            internal2d[t, :kn] = internal
            depths[t] = tree.depth
            if internal.any():
                n_features = max(n_features, int(feat[internal].max()) + 1)

        self.n_trees = n_trees
        self.max_nodes = max_nodes
        self.n_features = n_features
        self._depths = depths
        self._depth = int(depths.max())
        self._value = value.ravel()

        # Per-feature sorted unique thresholds + per-node threshold
        # ranks; leaves/padding keep rank INT32_MAX so every comparison
        # sends them left (their self-loop / value-propagating child).
        featf = feature.ravel()
        thrf = threshold.ravel()
        internal_all = internal2d.ravel()
        self._uniq = []
        rank = np.full(featf.size, _RANK_INF, dtype=np.int64)
        for j in range(n_features):
            sel = internal_all & (featf == j)
            uniq = np.unique(thrf[sel])
            self._uniq.append(uniq)
            rank[sel] = np.searchsorted(uniq, thrf[sel])
        self._feature = featf
        self._thr_rank = rank.astype(np.int32)
        self._left = left.ravel()
        self._native_tables_cache = None

        if self._depth <= _HEAP_MAX_DEPTH:
            self._build_heap(feature, internal2d, value)
        else:
            self._heap = None
            self._depth_order = np.argsort(depths, kind="stable")

    # ------------------------------------------------------------------
    def _build_heap(self, feature, internal2d, value) -> None:
        """Pad every tree to a complete heap-indexed tree of the
        ensemble depth: child of heap slot ``h`` is ``2h + 1 + go``, so
        the walk needs no child-pointer gather.  Leaves replicate their
        value down their left spine (their rank stays INT32_MAX, which
        no query rank exceeds)."""
        d = self._depth
        size = (1 << (d + 1)) - 1
        T = self.n_trees
        h_feat = np.zeros((T, size), dtype=np.int64)
        h_rank = np.full((T, size), _RANK_INF, dtype=np.int32)
        h_val = np.zeros((T, size))

        rank2d = self._thr_rank.reshape(T, self.max_nodes)
        feat2d = feature
        left2d = (self._left.reshape(T, self.max_nodes)
                  - np.arange(T, dtype=np.int64)[:, None] * self.max_nodes)
        tix = np.arange(T)
        heap_pos = np.zeros(T, dtype=np.int64)
        flat_pos = np.zeros(T, dtype=np.int64)
        for _ in range(d + 1):
            f = feat2d[tix, flat_pos]
            internal = internal2d[tix, flat_pos]
            h_feat[tix, heap_pos] = np.where(internal, f, 0)
            h_rank[tix, heap_pos] = np.where(
                internal, rank2d[tix, flat_pos], _RANK_INF)
            h_val[tix, heap_pos] = value[tix, flat_pos]
            # Internal nodes descend both ways; leaves propagate down
            # their left child only (comparisons always send them left).
            lc = left2d[tix, flat_pos]
            nt = np.concatenate((tix, tix[internal]))
            nh = np.concatenate((2 * heap_pos + 1, 2 * heap_pos[internal] + 2))
            nf = np.concatenate((np.where(internal, lc, flat_pos),
                                 lc[internal] + 1))
            keep = nh < size
            tix, heap_pos, flat_pos = nt[keep], nh[keep], nf[keep]
            if not tix.size:
                break
        self._heap = (h_feat.ravel(), h_rank.ravel(), h_val.ravel(), size)

    # ------------------------------------------------------------------
    def _native_tables(self):
        """Flattened struct-of-arrays node layout for the compiled walk.

        Built once per fitted ensemble and cached: contiguous
        feature / threshold-rank / left-child / leaf-value arrays plus
        per-tree root offsets.  Indices shrink to int32 whenever the
        flattened node space fits, keeping the hot tables SIMD- and
        cache-friendly at typical ensemble sizes.
        """
        if self._native_tables_cache is None:
            total = self.n_trees * self.max_nodes
            idx_dtype = np.int32 if total < np.iinfo(np.int32).max else np.int64
            self._native_tables_cache = (
                np.ascontiguousarray(self._feature, dtype=idx_dtype),
                np.ascontiguousarray(self._thr_rank, dtype=np.int32),
                np.ascontiguousarray(self._left, dtype=idx_dtype),
                np.ascontiguousarray(self._value, dtype=np.float64),
                np.arange(self.n_trees, dtype=np.int64) * self.max_nodes,
            )
        return self._native_tables_cache

    # ------------------------------------------------------------------
    def _rank_queries(self, x: np.ndarray) -> np.ndarray:
        """``out[i, j] = #(ensemble thresholds on feature j < x[i, j])``."""
        n = len(x)
        m = max(self.n_features, 1)
        ranks = np.zeros((n, m), dtype=np.int32)
        for j, uniq in enumerate(self._uniq):
            if uniq.size:
                ranks[:, j] = np.searchsorted(uniq, x[:, j], side="left")
        return ranks

    # ------------------------------------------------------------------
    def leaf_value_sum(self, x: np.ndarray, *, scale: float | None = None,
                       init: float = 0.0,
                       chunk: int = _PREDICT_ROW_CHUNK,
                       jobs: int | None = 1,
                       chunk_rows: int | None = None,
                       native: bool = False) -> np.ndarray:
        """``init + sum_t scale * value_t(row)`` for every row of ``x``.

        The per-tree accumulation runs in tree order with the same
        elementwise operations as the reference per-tree loops
        (``out += tree.predict(x)`` / ``out += lr * tree.predict(x)``),
        so results are bit-identical to them.

        With ``jobs`` > 1 (or None for all CPUs) contiguous row chunks
        of ``chunk_rows`` fan out over worker processes through
        :func:`repro.experiments.parallel.run_chunked`: the query rank
        matrix is published once through the shared-memory data plane
        and every worker walks its rows with this very code path, so
        the concatenated result is bit-identical to the single-process
        call for every ``jobs``/``chunk_rows`` choice.
        """
        x = np.ascontiguousarray(x, dtype=float)
        n = len(x)
        if x.ndim != 2 or (self.n_features and x.shape[1] < self.n_features):
            raise ValueError(
                f"x must be 2-D with >= {self.n_features} columns, "
                f"got shape {x.shape}")
        ranks = self._rank_queries(x)
        if (jobs is None or jobs > 1) and n > 1:
            from repro.experiments.parallel import run_chunked

            parts = run_chunked(
                _stacked_chunk, n, jobs=jobs, chunk_rows=chunk_rows,
                context={"ensemble": self, "scale": scale, "init": init,
                         "chunk": chunk, "native": native},
                shared={"ranks": ranks},
            )
            return np.concatenate(parts)
        return self._sum_ranked(ranks, scale=scale, init=init, chunk=chunk,
                                native=native)

    def _sum_ranked(self, ranks: np.ndarray, *, scale: float | None,
                    init: float, chunk: int = _PREDICT_ROW_CHUNK,
                    native: bool = False) -> np.ndarray:
        """The walk itself, over precomputed query ranks (row-wise)."""
        if native:
            from repro.engines import native_ready

            if native_ready():
                from repro.metamodels import _native

                feature, thr_rank, left, value, roots = self._native_tables()
                return _native.stacked_sum(
                    feature, thr_rank, left, value, roots,
                    np.ascontiguousarray(ranks, dtype=np.int32),
                    float(init), 0.0 if scale is None else float(scale),
                    scale is not None, _RANK_INF)
        n = len(ranks)
        m = ranks.shape[1]
        T = self.n_trees
        out = np.full(n, init)

        for s in range(0, n, chunk):
            rc = np.ascontiguousarray(ranks[s:s + chunk])
            c = len(rc)
            rc_flat = rc.ravel()
            rowm = np.arange(c, dtype=np.int64) * m
            if self._heap is not None:
                vals = self._walk_heap(rc_flat, rowm, c)
            else:
                vals = self._walk_pointer(rc_flat, rowm, c)
            oc = out[s:s + c]
            if scale is None:
                for t in range(T):
                    oc += vals[t]
            else:
                for t in range(T):
                    oc += scale * vals[t]
        return out

    def _walk_heap(self, rc_flat, rowm, c):
        h_feat, h_rank, h_val, size = self._heap
        T = self.n_trees
        tbase = np.repeat(np.arange(T, dtype=np.int64) * size, c)
        rm = np.tile(rowm, T)
        node = np.zeros(T * c, dtype=np.int64)
        for _ in range(self._depth):
            g = tbase + node
            fv = np.take(h_feat, g)
            rv = np.take(rc_flat, rm + fv)
            go = rv > np.take(h_rank, g)
            node += node
            node += 1
            node += go
        return np.take(h_val, tbase + node).reshape(T, c)

    def _walk_pointer(self, rc_flat, rowm, c):
        feature, thr_rank = self._feature, self._thr_rank
        left, value = self._left, self._value
        T, max_nodes = self.n_trees, self.max_nodes
        vals = np.empty((T, c))
        for b in range(0, T, _PREDICT_TREE_BLOCK):
            tb = self._depth_order[b:b + _PREDICT_TREE_BLOCK]
            nb = tb.size
            d = int(self._depths[tb].max())
            node = np.repeat(tb * max_nodes, c)
            rm = np.tile(rowm, nb)
            vbuf = np.empty(nb * c)
            out_idx = None
            lvl = 0
            while True:
                fv = np.take(feature, node)
                rv = np.take(rc_flat, rm + fv)
                go = rv > np.take(thr_rank, node)
                node = np.take(left, node) + go
                lvl += 1
                if lvl >= d:
                    break
                # Finished (tree, row) walkers self-loop on their leaf;
                # periodically drop them so late levels shrink.
                if lvl >= _COMPACT_FROM \
                        and (lvl - _COMPACT_FROM) % _COMPACT_EVERY == 0:
                    fin = np.take(thr_rank, node) == _RANK_INF
                    if fin.any():
                        if out_idx is None:
                            out_idx = np.arange(nb * c)
                        done = np.flatnonzero(fin)
                        vbuf[np.take(out_idx, done)] = \
                            np.take(value, np.take(node, done))
                        keep = np.flatnonzero(~fin)
                        node = np.take(node, keep)
                        rm = np.take(rm, keep)
                        out_idx = np.take(out_idx, keep)
                        if not node.size:
                            break
            if out_idx is None:
                vbuf[:] = np.take(value, node)
            elif node.size:
                vbuf[out_idx] = np.take(value, node)
            vals[tb] = vbuf.reshape(nb, c)
        return vals


def _stacked_chunk(context, start: int, stop: int) -> np.ndarray:
    """One row chunk of a fanned-out :meth:`StackedEnsemble.leaf_value_sum`.

    The ensemble arrives once per worker through the plan context and
    the full query-rank matrix is a zero-copy shared-memory map; each
    chunk walks its row slice with the exact single-process code.
    """
    ensemble: StackedEnsemble = context["ensemble"]
    ranks = context["ranks"][start:stop]
    return ensemble._sum_ranked(ranks, scale=context["scale"],
                                init=context["init"], chunk=context["chunk"],
                                native=context.get("native", False))
