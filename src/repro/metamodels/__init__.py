"""Metamodel substrate: the intermediate ML models used by REDS.

The paper uses random forest, XGBoost and an RBF-kernel SVM as the
accurate intermediate metamodels (Section 6.1).  None of those libraries
are available offline, so this package implements them from scratch on
numpy: a weighted CART tree as the shared building block, bagged trees
for the forest, Newton (second-order) boosting for the XGBoost
equivalent, an SMO solver for the SVM, and caret-style cross-validated
grid search for hyperparameter tuning.
"""

from repro.metamodels.base import Metamodel
from repro.metamodels.tree import DecisionTreeRegressor
from repro.metamodels.forest import RandomForestModel
from repro.metamodels.boosting import GradientBoostingModel
from repro.metamodels.svm import SVMModel
from repro.metamodels.tuning import KFold, cross_val_accuracy, tune_metamodel, make_metamodel

__all__ = [
    "Metamodel",
    "DecisionTreeRegressor",
    "RandomForestModel",
    "GradientBoostingModel",
    "SVMModel",
    "KFold",
    "cross_val_accuracy",
    "tune_metamodel",
    "make_metamodel",
]
