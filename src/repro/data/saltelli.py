"""The "morris" and "sobol" sensitivity-analysis functions.

Both appear in Saltelli, Chan & Scott (2000) and are provided by the R
package "sensitivity" the paper uses.  The Morris function is the
central workload of the paper's Section 9.2 experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morris", "sobol_g"]


def _morris_w(x: np.ndarray) -> np.ndarray:
    """Morris's transformed inputs w_i on [-1, 1]."""
    w = 2.0 * (x - 0.5)
    for j in (2, 4, 6):  # the paper's inputs 3, 5, 7 (1-based)
        w[:, j] = 2.0 * (1.1 * x[:, j] / (x[:, j] + 0.1) - 0.5)
    return w


def morris(x: np.ndarray) -> np.ndarray:
    """Morris (1991) 20-input screening function.

    First-order coefficients: 20 for inputs 1..10, ``(-1)^i`` otherwise;
    second order: -15 for inputs 1..6, ``(-1)^(i+j)`` otherwise; third
    order: -10 for inputs 1..5; fourth order: 5 for inputs 1..4.
    All 20 inputs affect the output.
    """
    w = _morris_w(np.asarray(x, dtype=float))
    n, m = w.shape
    if m != 20:
        raise ValueError(f"morris expects 20 inputs, got {m}")

    signs = (-1.0) ** np.arange(1, m + 1)  # (-1)^i for 1-based i
    beta1 = np.where(np.arange(m) < 10, 20.0, signs)
    y = w @ beta1

    # Second-order terms: beta_ij = -15 for i<j<=6, (-1)^(i+j) otherwise.
    pair_signs = signs[:, None] * signs[None, :]  # (-1)^(i+j)
    beta2 = pair_signs.copy()
    beta2[:6, :6] = -15.0
    beta2 = np.triu(beta2, k=1)
    y += np.einsum("ni,ij,nj->n", w, beta2, w)

    # Third-order: -10 for i<j<l<=5; fourth-order: 5 for i<j<l<s<=4.
    w5 = w[:, :5]
    sums5 = w5.sum(axis=1)
    sq5 = (w5**2).sum(axis=1)
    cube5 = (w5**3).sum(axis=1)
    e3 = (sums5**3 - 3.0 * sums5 * sq5 + 2.0 * cube5) / 6.0
    y += -10.0 * e3

    w4 = w[:, :4]
    # Elementary symmetric polynomial e4 of exactly four variables is
    # simply their product.
    y += 5.0 * np.prod(w4, axis=1)
    return y


def sobol_g(x: np.ndarray, a: np.ndarray | None = None) -> np.ndarray:
    """Sobol' g-function with 8 inputs.

    Uses the standard coefficient vector ``a = (0, 1, 4.5, 9, 99, 99, 99,
    99)``: the first inputs dominate but every input has a (possibly
    tiny) effect, hence I = 8 in Table 1.
    """
    x = np.asarray(x, dtype=float)
    if a is None:
        a = np.array([0.0, 1.0, 4.5, 9.0, 99.0, 99.0, 99.0, 99.0])
    if x.shape[1] != len(a):
        raise ValueError(f"sobol_g expects {len(a)} inputs, got {x.shape[1]}")
    return np.prod((np.abs(4.0 * x - 2.0) + a) / (1.0 + a), axis=1)
