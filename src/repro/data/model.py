"""The :class:`SimulationModel` abstraction shared by every data source.

A simulation model, in the sense of the paper, is a black box mapping a
point of the input space to an output.  Scenario discovery always works
with the *unit-cube parameterisation* of the inputs: design points live
in ``[0, 1]^M`` and are scaled to the model's native domain internally.
This mirrors the paper's setup (Latin hypercube sampling from
``[0, 1]^M``, Section 8.5) and means hyperboxes found by subgroup
discovery are directly comparable across models.

Three kinds of models exist:

``"real"``
    A deterministic real-valued function, binarised with a threshold:
    ``y = 1`` iff the raw output is *below* ``thr`` (the paper's
    convention, Section 8.3).

``"prob"``
    A stochastic simulation defining ``f(x) = P(y = 1 | x)``; labels are
    Bernoulli draws.  The Dalal et al. "noisy" functions are of this kind.

``"binary"``
    A deterministic simulation that directly outputs ``y`` in ``{0, 1}``,
    e.g. the "dsgc" grid-stability model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from repro.sampling.designs import get_sampler, quantize_levels

__all__ = ["SimulationModel", "make_dataset"]

ModelKind = Literal["real", "prob", "binary"]


@dataclass(frozen=True)
class SimulationModel:
    """A simulation model with a binary "interesting" output.

    Parameters
    ----------
    name:
        Identifier used in Table 1 of the paper (e.g. ``"borehole"``).
    dim:
        Number of inputs ``M``.
    relevant:
        Indices (0-based) of inputs that affect the output; ``I`` of
        Table 1 is ``len(relevant)``.  Used by the "number of
        irrelevantly restricted inputs" quality measure.
    kind:
        One of ``"real"``, ``"prob"``, ``"binary"`` (see module docs).
    raw:
        Vectorised function of an ``(n, dim)`` array in *native* domain
        coordinates returning an ``(n,)`` array: the real output for
        ``"real"`` models, ``P(y=1|x)`` for ``"prob"`` models, hard 0/1
        labels for ``"binary"`` models.
    threshold:
        Binarisation threshold ``thr`` for ``"real"`` models
        (``y = 1`` iff ``raw(x) < thr``); ``None`` otherwise.
    domain:
        Optional ``(2, dim)`` array of per-input ``(low, high)`` bounds of
        the native domain.  ``None`` means the native domain already is
        the unit cube.
    default_sampler:
        Sampler name used by the paper for this model (``"lhs"`` for all
        analytic functions, ``"halton"`` for dsgc).
    cat_cols:
        Indices of categorical inputs (the mixed-type lever models).
        Design points on these columns are quantized from ``[0, 1]`` to
        integer codes before the model sees them, and discovery treats
        them as unordered categories.
    cat_sizes:
        Level counts aligned with ``cat_cols`` (each >= 2).
    """

    name: str
    dim: int
    relevant: tuple[int, ...]
    kind: ModelKind
    raw: Callable[[np.ndarray], np.ndarray]
    threshold: float | None = None
    domain: np.ndarray | None = None
    default_sampler: str = "lhs"
    reference: str = ""
    cat_cols: tuple[int, ...] = ()
    cat_sizes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if not all(0 <= j < self.dim for j in self.relevant):
            raise ValueError("relevant indices must lie in [0, dim)")
        if self.kind == "real" and self.threshold is None:
            raise ValueError(f"model {self.name!r} is 'real' but has no threshold")
        if len(self.cat_cols) != len(self.cat_sizes):
            raise ValueError("cat_cols and cat_sizes must align")
        if not all(0 <= j < self.dim for j in self.cat_cols):
            raise ValueError("cat_cols indices must lie in [0, dim)")
        if not all(k >= 2 for k in self.cat_sizes):
            raise ValueError("every categorical input needs >= 2 levels")
        if self.domain is not None:
            dom = np.asarray(self.domain, dtype=float)
            if dom.shape != (2, self.dim):
                raise ValueError(
                    f"domain must have shape (2, {self.dim}), got {dom.shape}"
                )
            if not (dom[1] > dom[0]).all():
                raise ValueError("domain upper bounds must exceed lower bounds")

    # ------------------------------------------------------------------
    # Coordinate handling
    # ------------------------------------------------------------------
    def scale(self, u: np.ndarray) -> np.ndarray:
        """Map unit-cube points ``u`` to the model's native domain."""
        u = np.asarray(u, dtype=float)
        if u.ndim != 2 or u.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {u.shape}")
        if self.domain is None:
            return u
        low, high = np.asarray(self.domain, dtype=float)
        return low + u * (high - low)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, u: np.ndarray) -> np.ndarray:
        """Raw model output at unit-cube points ``u``."""
        return np.asarray(self.raw(self.scale(u)), dtype=float)

    def prob(self, u: np.ndarray) -> np.ndarray:
        """``P(y = 1 | x)`` at unit-cube points ``u``.

        Deterministic models return an indicator in ``{0.0, 1.0}``.
        """
        out = self.evaluate(u)
        if self.kind == "real":
            return (out < self.threshold).astype(float)
        if self.kind == "binary":
            return out.astype(float)
        return np.clip(out, 0.0, 1.0)

    def label(self, u: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Binary labels at unit-cube points ``u``.

        ``rng`` is required for stochastic (``"prob"``) models.
        """
        p = self.prob(u)
        if self.kind != "prob":
            return p.astype(np.int64)
        if rng is None:
            raise ValueError(f"model {self.name!r} is stochastic; pass rng to label()")
        return (rng.random(len(p)) < p).astype(np.int64)

    @property
    def cat_levels_map(self) -> dict[int, int]:
        """``{column index: level count}`` for the categorical inputs."""
        return dict(zip(self.cat_cols, self.cat_sizes))

    def quantize(self, u: np.ndarray) -> np.ndarray:
        """Quantize unit-cube design points to this model's input space.

        Categorical columns are mapped from ``[0, 1]`` to their integer
        codes (:func:`repro.sampling.designs.quantize_levels`); for a
        purely numeric model the design is returned unchanged.
        """
        if not self.cat_cols:
            return np.asarray(u, dtype=float)
        return quantize_levels(u, self.cat_levels_map)

    @property
    def n_relevant(self) -> int:
        """``I`` of Table 1: the number of inputs affecting the output."""
        return len(self.relevant)

    @property
    def irrelevant(self) -> tuple[int, ...]:
        """Indices of inputs with no influence on the output."""
        rel = set(self.relevant)
        return tuple(j for j in range(self.dim) if j not in rel)

    def share(self, n: int = 100_000, seed: int = 0) -> float:
        """Monte-Carlo estimate of ``P(y = 1)`` under uniform inputs.

        Categorical inputs are sampled uniformly over their levels.
        """
        rng = np.random.default_rng(seed)
        u = self.quantize(rng.random((n, self.dim)))
        return float(self.prob(u).mean())


def make_dataset(
    model: SimulationModel,
    n: int,
    rng: np.random.Generator,
    *,
    sampler: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``n`` simulations: sample a design, evaluate, binarise.

    Returns ``(X, y)`` with ``X`` in unit-cube coordinates, matching the
    paper's experiment pipeline (Section 8.5).  ``sampler`` defaults to
    the model's paper-prescribed design (LHS, or Halton for dsgc).
    Categorical columns of mixed-type models come back as integer codes
    (the design's stratification makes their level counts near-balanced
    under LHS/Halton bases — see
    :func:`repro.sampling.designs.quantize_levels`).
    """
    design = get_sampler(sampler or model.default_sampler)
    x = model.quantize(design(n, model.dim, rng))
    y = model.label(x, rng)
    return x, y
