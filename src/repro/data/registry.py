"""Registry of every data source in Table 1 of the REDS paper.

``get_model(name)`` returns a ready-to-use :class:`SimulationModel` for
any of the 33 functions (32 analytic + the dsgc simulation);
``third_party_dataset(name)`` returns the fixed "TGL"/"lake" tables.

Thresholds
----------
For functions whose published closed form we reproduce exactly, the
paper's binarisation threshold from Table 1 is used directly.  For the
documented surrogates (see DESIGN.md) the threshold is *calibrated*: it
is set to the quantile of the raw output (over a fixed seeded
Monte-Carlo sample) matching the paper's share of interesting outcomes,
so the class balance of every workload equals the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.data import dalal, ellipse as ellipse_mod, saltelli, surjanovic
from repro.data.dsgc import DSGC_DIM, dsgc_unstable
from repro.data.lake import lake_dataset
from repro.data.levers import LEVER_MODELS
from repro.data.model import SimulationModel
from repro.data.tgl import tgl_dataset

__all__ = [
    "TABLE1",
    "Table1Entry",
    "get_model",
    "list_models",
    "third_party_dataset",
    "ALL_FUNCTIONS",
    "CONTINUOUS_FUNCTIONS",
    "MIXED_INPUT_FUNCTIONS",
    "LEVER_FUNCTIONS",
    "THIRD_PARTY",
]

_CALIBRATION_SAMPLE = 200_000
_CALIBRATION_SEED = 7


@dataclass(frozen=True)
class Table1Entry:
    """One row of Table 1: the paper-reported workload characteristics."""

    name: str
    dim: int
    n_relevant: int
    reference: str
    threshold: float | None  # None = output already binary ("na" rows)
    share: float             # expected share of y = 1, in [0, 1]
    calibrated: bool = False  # threshold recomputed to match `share`?


#: Paper's Table 1 (share column converted to fractions).
TABLE1: tuple[Table1Entry, ...] = (
    Table1Entry("1", 5, 2, "[22]", None, 0.476),
    Table1Entry("2", 5, 2, "[22]", None, 0.257),
    Table1Entry("3", 5, 2, "[22]", None, 0.082),
    Table1Entry("4", 5, 2, "[22]", None, 0.180),
    Table1Entry("5", 5, 2, "[22]", None, 0.080),
    Table1Entry("6", 5, 2, "[22]", None, 0.081),
    Table1Entry("7", 5, 2, "[22]", None, 0.350),
    Table1Entry("8", 5, 2, "[22]", None, 0.109),
    Table1Entry("102", 15, 9, "[22]", None, 0.672),
    # The standard borehole formula yields flow rates far below the
    # paper's threshold of 1000 (their implementation evidently used a
    # different output scale), so the threshold is calibrated to the
    # paper's share instead.
    Table1Entry("borehole", 8, 8, "[91]", 1000.0, 0.309, calibrated=True),
    Table1Entry("dsgc", 12, 12, "[85]", None, 0.537),
    Table1Entry("ellipse", 15, 10, "our", 0.8, 0.225, calibrated=True),
    Table1Entry("hart3", 3, 3, "[91]", -1.0, 0.335),
    Table1Entry("hart4", 4, 4, "[91]", -0.5, 0.301),
    Table1Entry("hart6sc", 6, 6, "[91]", 1.0, 0.226, calibrated=True),
    Table1Entry("ishigami", 3, 3, "[91]", 1.0, 0.255),
    Table1Entry("linketal06dec", 10, 8, "[91]", 0.15, 0.253),
    Table1Entry("linketal06simple", 10, 4, "[91]", 0.33, 0.285),
    Table1Entry("linketal06sin", 10, 2, "[91]", 0.0, 0.272),
    Table1Entry("loepetal13", 10, 7, "[91]", 9.0, 0.389),
    Table1Entry("moon10hd", 20, 20, "[91]", 0.0, 0.421, calibrated=True),
    Table1Entry("moon10hdc1", 20, 5, "[91]", 0.0, 0.342, calibrated=True),
    Table1Entry("moon10low", 3, 3, "[91]", 1.5, 0.456, calibrated=True),
    Table1Entry("morretal06", 30, 10, "[91]", -330.0, 0.345, calibrated=True),
    Table1Entry("morris", 20, 20, "[81]", 20.0, 0.301),
    Table1Entry("oakoh04", 15, 15, "[91]", 10.0, 0.249, calibrated=True),
    Table1Entry("otlcircuit", 6, 6, "[91]", 4.5, 0.225),
    Table1Entry("piston", 7, 7, "[91]", 0.4, 0.368),
    Table1Entry("soblev99", 20, 19, "[91]", 2000.0, 0.413, calibrated=True),
    Table1Entry("sobol", 8, 8, "[81]", 0.7, 0.392),
    Table1Entry("welchetal92", 20, 18, "[91]", 0.0, 0.356),
    Table1Entry("willetal06", 3, 2, "[91]", -1.0, 0.249, calibrated=True),
    Table1Entry("wingweight", 10, 10, "[91]", 250.0, 0.378),
    Table1Entry("TGL", 9, 0, "[12]", None, 0.101),
    Table1Entry("lake", 5, 0, "[56]", None, 0.335),
)

_TABLE1_BY_NAME = {entry.name: entry for entry in TABLE1}

#: All 33 simulation models of the main experiments (Section 9.1).
ALL_FUNCTIONS: tuple[str, ...] = tuple(
    entry.name for entry in TABLE1 if entry.name not in ("TGL", "lake")
)
CONTINUOUS_FUNCTIONS = ALL_FUNCTIONS
#: The mixed-input study excludes "dsgc" (Section 9.1.2).
MIXED_INPUT_FUNCTIONS: tuple[str, ...] = tuple(
    name for name in ALL_FUNCTIONS if name != "dsgc"
)
THIRD_PARTY: tuple[str, ...] = ("TGL", "lake")
#: Mixed numeric+categorical lever models (not part of Table 1; see
#: :mod:`repro.data.levers`).
LEVER_FUNCTIONS: tuple[str, ...] = tuple(sorted(LEVER_MODELS))

# (raw callable, native domain or None) for every deterministic function.
_REAL_FUNCTIONS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], np.ndarray | None]] = {
    "borehole": (surjanovic.borehole, surjanovic.BOREHOLE_DOMAIN),
    "ellipse": (ellipse_mod.ellipse, None),
    "hart3": (surjanovic.hart3, None),
    "hart4": (surjanovic.hart4, None),
    "hart6sc": (surjanovic.hart6sc, None),
    "ishigami": (surjanovic.ishigami, surjanovic.ISHIGAMI_DOMAIN),
    "linketal06dec": (surjanovic.linketal06dec, None),
    "linketal06simple": (surjanovic.linketal06simple, None),
    "linketal06sin": (surjanovic.linketal06sin, None),
    "loepetal13": (surjanovic.loepetal13, None),
    "moon10hd": (surjanovic.moon10hd, None),
    "moon10hdc1": (surjanovic.moon10hdc1, None),
    "moon10low": (surjanovic.moon10low, None),
    "morretal06": (surjanovic.morretal06, None),
    "morris": (saltelli.morris, None),
    "oakoh04": (surjanovic.oakoh04, None),
    "otlcircuit": (surjanovic.otlcircuit, surjanovic.OTL_DOMAIN),
    "piston": (surjanovic.piston, surjanovic.PISTON_DOMAIN),
    "soblev99": (surjanovic.soblev99, None),
    "sobol": (saltelli.sobol_g, None),
    "welchetal92": (surjanovic.welchetal92, surjanovic.WELCH_DOMAIN),
    "willetal06": (surjanovic.willetal06, None),
    "wingweight": (surjanovic.wingweight, surjanovic.WINGWEIGHT_DOMAIN),
}

_RELEVANT_OVERRIDES: dict[str, tuple[int, ...]] = {
    # welchetal92: x8 and x16 (1-based) do not appear in the formula.
    "welchetal92": tuple(j for j in range(20) if j not in (7, 15)),
    # soblev99: b_20 = 0.
    "soblev99": tuple(range(19)),
    # Functions with a leading block of active inputs.
    "linketal06dec": tuple(range(8)),
    "linketal06simple": tuple(range(4)),
    "linketal06sin": (0, 1),
    "loepetal13": tuple(range(7)),
    "moon10hdc1": tuple(range(5)),
    "morretal06": tuple(range(10)),
    "ellipse": tuple(range(10)),
    "willetal06": (0, 1),
}


def _calibrate_threshold(raw: Callable[[np.ndarray], np.ndarray],
                         domain: np.ndarray | None, dim: int,
                         share: float) -> float:
    """Threshold = `share`-quantile of the raw output under uniform inputs."""
    rng = np.random.default_rng(_CALIBRATION_SEED)
    u = rng.random((_CALIBRATION_SAMPLE, dim))
    if domain is not None:
        low, high = np.asarray(domain, dtype=float)
        u = low + u * (high - low)
    return float(np.quantile(raw(u), share))


@lru_cache(maxsize=None)
def get_model(name: str) -> SimulationModel:
    """Build the :class:`SimulationModel` for a Table 1 or lever name."""
    if name in LEVER_MODELS:
        return LEVER_MODELS[name]
    entry = _TABLE1_BY_NAME.get(name)
    if entry is None or name in THIRD_PARTY:
        available = sorted(ALL_FUNCTIONS) + sorted(LEVER_FUNCTIONS)
        raise KeyError(
            f"unknown simulation model {name!r}; available: {available}"
        )

    if name in dalal.NOISY_FUNCTIONS:
        noisy = dalal.NOISY_FUNCTIONS[name]
        return SimulationModel(
            name=name,
            dim=noisy.dim,
            relevant=noisy.relevant,
            kind="prob",
            raw=noisy.prob,
            reference=entry.reference,
        )

    if name == "dsgc":
        return SimulationModel(
            name=name,
            dim=DSGC_DIM,
            relevant=tuple(range(DSGC_DIM)),
            kind="binary",
            raw=dsgc_unstable,
            default_sampler="halton",
            reference=entry.reference,
        )

    raw, domain = _REAL_FUNCTIONS[name]
    relevant = _RELEVANT_OVERRIDES.get(name, tuple(range(entry.dim)))
    if len(relevant) != entry.n_relevant:
        raise AssertionError(
            f"registry bug: {name} has {len(relevant)} relevant inputs, "
            f"Table 1 says {entry.n_relevant}"
        )
    threshold = entry.threshold
    if entry.calibrated:
        threshold = _calibrate_threshold(raw, domain, entry.dim, entry.share)
    return SimulationModel(
        name=name,
        dim=entry.dim,
        relevant=relevant,
        kind="real",
        raw=raw,
        threshold=threshold,
        domain=domain,
        reference=entry.reference,
    )


def list_models() -> tuple[str, ...]:
    """Names of all simulation models (excludes the third-party tables)."""
    return ALL_FUNCTIONS


@lru_cache(maxsize=None)
def third_party_dataset(name: str) -> tuple[np.ndarray, np.ndarray]:
    """The fixed third-party tables of Section 9.3 (``"TGL"``, ``"lake"``).

    Cached: repeated cross-validation re-reads the same fixed table per
    (repetition, fold) cell, and the lake table alone takes a 100-step
    simulation to build.  As with ``get_test_data``, the cached arrays
    are read-only so no caller can corrupt them for everyone else.
    """
    if name == "TGL":
        x, y = tgl_dataset()
    elif name == "lake":
        x, y = lake_dataset()
    else:
        raise KeyError(
            f"unknown third-party dataset {name!r}; available: {THIRD_PARTY}")
    x.setflags(write=False)
    y.setflags(write=False)
    return x, y
