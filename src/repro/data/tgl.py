"""Synthetic stand-in for the "TGL" third-party dataset.

The REDS paper uses the 882-example dataset of Bryant & Lempert,
"Thinking inside the box" (Technol. Forecast. Soc. Change 77, 2010): a
policy analysis of a U.S. renewable-energy standard where ~10 % of the
simulated futures are "interesting".  The raw RAND data is not
redistributable, so we generate a table with exactly the documented
shape — 882 rows, 9 inputs, a 10.1 % share of interesting outcomes —
whose interesting region is (like in the original study) concentrated in
a low-dimensional corner of the input space plus background noise.
DESIGN.md records this substitution.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.designs import latin_hypercube

__all__ = ["tgl_dataset", "tgl_prob", "TGL_DIM", "TGL_SIZE"]

TGL_DIM = 9
TGL_SIZE = 882

# The interesting region: a box over the first three inputs.  Side
# length 0.451 makes P(inside) ~ 0.0917; with the probabilities below
# the overall share is 0.9 * 0.0917 + 0.02 * 0.9083 = 0.1007 ~ 10.1 %.
_BOX_SIDE = 0.451
_P_INSIDE = 0.90
_P_OUTSIDE = 0.02


def tgl_prob(x: np.ndarray) -> np.ndarray:
    """``P(y = 1 | x)`` of the synthetic TGL generator."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[1] != TGL_DIM:
        raise ValueError(f"expected shape (n, {TGL_DIM}), got {x.shape}")
    inside = (x[:, :3] <= _BOX_SIDE).all(axis=1)
    return np.where(inside, _P_INSIDE, _P_OUTSIDE)


def tgl_dataset(seed: int = 12) -> tuple[np.ndarray, np.ndarray]:
    """The fixed 882-row third-party table used in Section 9.3."""
    rng = np.random.default_rng(seed)
    x = latin_hypercube(TGL_SIZE, TGL_DIM, rng)
    y = (rng.random(TGL_SIZE) < tgl_prob(x)).astype(np.int64)
    return x, y
