"""The paper's own "ellipse" function (Section 8.3).

``f_e(x) = sum_{j=1}^{15} w_j (x_j - c_j)^2`` with ``w_j, c_j`` constants
in [0, 1] and ``w_j = 0`` for ``j > 10``, i.e. 10 of 15 inputs are
relevant.  The paper does not publish the constants, so we fix them with
a seeded draw; the threshold 0.8 then yields a share of interesting
outcomes close to the paper's 22.5 % (calibrated in registry.py).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ellipse", "ELLIPSE_WEIGHTS", "ELLIPSE_CENTERS"]

_rng = np.random.default_rng(1713)  # arXiv number of the paper, for fun
ELLIPSE_WEIGHTS = np.concatenate([_rng.uniform(0.1, 1.0, size=10), np.zeros(5)])
ELLIPSE_CENTERS = _rng.uniform(0.0, 1.0, size=15)


def ellipse(x: np.ndarray) -> np.ndarray:
    """Weighted squared distance to a fixed centre; inputs 11-15 inert."""
    x = np.asarray(x, dtype=float)
    if x.shape[1] != 15:
        raise ValueError(f"ellipse expects 15 inputs, got {x.shape[1]}")
    return ((x - ELLIPSE_CENTERS) ** 2) @ ELLIPSE_WEIGHTS
