"""Stochastic "noisy" functions 1-8 and 102 after Dalal et al. (2013).

The REDS paper takes nine stochastic binary-output functions from Dalal
et al., "Improving scenario discovery using orthogonal rotations"
(Environ. Model. Softw. 48, 2013).  The exact closed forms are not
recoverable offline, so this module provides documented substitutes that
reproduce every characteristic the REDS experiments rely on (see
DESIGN.md):

* functions 1-8 have 5 inputs of which exactly 2 are relevant;
  function 102 has 15 inputs of which 9 are relevant;
* outputs are Bernoulli with a smooth probability field
  ``P(y=1|x) = sigmoid(s * (t - g(x)))`` — a noisy boundary around the
  level set ``g(x) = t``, mimicking a stochastic simulation;
* the expected share of ``y = 1`` under uniform inputs matches Table 1
  of the REDS paper (the offset ``t`` is the matching quantile of
  ``g``, computed once from a fixed seeded Monte-Carlo sample);
* the geometric shapes vary (oblique half-plane, corner, disc, diagonal
  band, rotated ellipse, wavy boundary, L-shape, ring, union of boxes),
  covering both PRIM-friendly axis-aligned and PRIM-hostile oblique
  regions — the regime Dalal et al. designed their functions for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["NOISY_FUNCTIONS", "NoisyFunction"]

_CALIBRATION_SAMPLE = 200_000
_CALIBRATION_SEED = 42


@dataclass(frozen=True)
class NoisyFunction:
    """A stochastic binary simulation ``P(y=1|x) = sigmoid(s (t - g(x)))``."""

    name: str
    dim: int
    relevant: tuple[int, ...]
    target_share: float
    g: Callable[[np.ndarray], np.ndarray]
    offset: float
    steepness: float

    def prob(self, x: np.ndarray) -> np.ndarray:
        """``P(y = 1 | x)`` for points ``x`` in the unit cube."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {x.shape}")
        z = self.steepness * (self.offset - self.g(x))
        return 1.0 / (1.0 + np.exp(-z))


def _calibrate(g: Callable[[np.ndarray], np.ndarray], dim: int,
               share: float) -> tuple[float, float]:
    """Pick the sigmoid offset so the *expected* share matches exactly.

    The steepness is scaled to the interquartile range of ``g`` so every
    function has a comparable (clearly noticeable but not overwhelming)
    noise band.  The offset is then found by bisection on the fixed
    Monte-Carlo sample: ``mean sigmoid(s (t - g)) = share`` is monotone
    increasing in ``t``, so this converges and corrects for any
    curvature-induced asymmetry of the noise around the boundary.
    """
    rng = np.random.default_rng(_CALIBRATION_SEED)
    values = g(rng.random((_CALIBRATION_SAMPLE, dim)))
    q75, q25 = np.percentile(values, [75, 25])
    steepness = 12.0 / max(q75 - q25, 1e-12)

    lo, hi = float(values.min()) - 1.0, float(values.max()) + 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        mean_prob = float(np.mean(1.0 / (1.0 + np.exp(-steepness * (mid - values)))))
        if mean_prob < share:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi), steepness


def _make(name: str, dim: int, relevant: tuple[int, ...], share: float,
          g: Callable[[np.ndarray], np.ndarray]) -> NoisyFunction:
    offset, steepness = _calibrate(g, dim, share)
    return NoisyFunction(name, dim, relevant, share, g, offset, steepness)


# ----------------------------------------------------------------------
# Geometric shapes over the two relevant inputs u = x1, v = x2
# ----------------------------------------------------------------------

def _halfplane(x):
    return x[:, 0] + x[:, 1]


def _corner(x):
    return np.maximum(x[:, 0], x[:, 1])


def _disc(x):
    return (x[:, 0] - 0.7) ** 2 + (x[:, 1] - 0.3) ** 2


def _diagonal_band(x):
    return np.abs(x[:, 0] - x[:, 1])


def _rotated_ellipse(x):
    s = x[:, 0] + x[:, 1] - 1.0
    d = x[:, 0] - x[:, 1]
    return 2.0 * s**2 + 8.0 * d**2


def _wavy_boundary(x):
    return x[:, 1] - 0.25 * np.sin(2.0 * np.pi * x[:, 0])


def _l_shape(x):
    return np.minimum(x[:, 0], x[:, 1])


def _ring(x):
    radius = np.sqrt((x[:, 0] - 0.5) ** 2 + (x[:, 1] - 0.5) ** 2)
    return np.abs(radius - 0.35)


# Function 102: the complement of a union of two 9-dimensional boxes
# (share of y=1 is large, 67.2 %, so the "uninteresting" part is the
# union of box neighbourhoods).
_BOX1_CENTER = np.linspace(0.2, 0.8, 9)
_BOX2_CENTER = np.linspace(0.75, 0.25, 9)


def _union_of_boxes(x):
    active = x[:, :9]
    d1 = np.abs(active - _BOX1_CENTER).max(axis=1)
    d2 = np.abs(active - _BOX2_CENTER).max(axis=1)
    return -np.minimum(d1, d2)  # negated: y=1 away from both boxes


#: The nine stochastic functions keyed by their Table 1 names.
NOISY_FUNCTIONS: dict[str, NoisyFunction] = {
    "1": _make("1", 5, (0, 1), 0.476, _halfplane),
    "2": _make("2", 5, (0, 1), 0.257, _corner),
    "3": _make("3", 5, (0, 1), 0.082, _disc),
    "4": _make("4", 5, (0, 1), 0.180, _diagonal_band),
    "5": _make("5", 5, (0, 1), 0.080, _rotated_ellipse),
    "6": _make("6", 5, (0, 1), 0.081, _wavy_boundary),
    "7": _make("7", 5, (0, 1), 0.350, _l_shape),
    "8": _make("8", 5, (0, 1), 0.109, _ring),
    "102": _make("102", 15, tuple(range(9)), 0.672, _union_of_boxes),
}
