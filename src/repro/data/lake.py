"""The shallow-lake eutrophication model behind the "lake" dataset.

The REDS paper takes the "lake" dataset from Kwakkel's exploratory
modeling workbench (Environ. Model. Softw. 96, 2017), which samples the
classic shallow-lake problem (Carpenter, Ludwig & Brock 1999): a town
discharges phosphorus into a lake whose internal recycling makes the
clean (oligotrophic) state collapse into a polluted (eutrophic) one once
loading crosses a tipping point.

Phosphorus dynamics over ``T`` years::

    X_{t+1} = X_t + a + X_t^q / (1 + X_t^q) - b * X_t + eps_t

with anthropogenic loading ``a`` (fixed policy), natural inflows
``eps_t ~ Lognormal(mean, stdev)``, decay rate ``b`` and recycling
exponent ``q``.  The five deeply uncertain inputs are those of the
workbench example:

======== ========== ===============
column    quantity   native range
======== ========== ===============
0         b          [0.1, 0.45]
1         q          [2.0, 4.5]
2         mean       [0.01, 0.05]
3         stdev      [0.001, 0.005]
4         delta      [0.93, 0.99]
======== ========== ===============

``delta`` (the discount rate) affects only the utility stream, not the
dynamics — so, like in the original dataset, it is an input with no
influence on the outcome.  The outcome of interest is whether the lake
*stays polluted*: ``y = 1`` iff the average phosphorus concentration
exceeds the critical threshold ``X_crit`` (the unstable equilibrium of
the deterministic dynamics) at the end of the horizon.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.designs import latin_hypercube

__all__ = ["lake_outcome", "lake_dataset", "LAKE_DIM", "LAKE_DOMAIN"]

LAKE_DIM = 5
LAKE_DOMAIN = np.array([
    [0.10, 2.0, 0.01, 0.001, 0.93],
    [0.45, 4.5, 0.05, 0.005, 0.99],
])

_HORIZON = 100
# Constant anthropogenic phosphorus release; calibrated so the share of
# flipped lakes matches the paper's 33.5 % (Table 1).
_POLICY_LOADING = 0.012


def _critical_threshold(b: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Unstable equilibrium of ``x^q/(1+x^q) = b x`` via bisection.

    For the parameter ranges used here the recycling curve crosses the
    decay line twice on (0, 2]; the relevant tipping point is the
    crossing below the inflection, found by bisection on (0.01, 1.5].
    """
    lo = np.full_like(b, 0.01)
    hi = np.full_like(b, 1.5)

    def excess(x: np.ndarray) -> np.ndarray:
        return x**q / (1.0 + x**q) - b * x

    # excess < 0 below the tipping point, > 0 between the two equilibria.
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        below = excess(mid) < 0.0
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    return 0.5 * (lo + hi)


def lake_outcome(u: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Simulate the lake for each unit-cube input row; 1 = lake flips.

    Natural inflows are stochastic, so repeated evaluation with
    different ``rng`` states yields different labels near the tipping
    region — the model is of kind "prob" in registry terms, and this
    function performs one Bernoulli realisation per row.
    """
    u = np.asarray(u, dtype=float)
    if u.ndim != 2 or u.shape[1] != LAKE_DIM:
        raise ValueError(f"expected shape (n, {LAKE_DIM}), got {u.shape}")
    low, high = LAKE_DOMAIN
    x = low + u * (high - low)
    b, q, mean, stdev = x[:, 0], x[:, 1], x[:, 2], x[:, 3]

    # Lognormal natural inflows with the given mean and stdev of the
    # *lognormal* variable (workbench convention).
    var = stdev**2
    log_sigma2 = np.log(1.0 + var / mean**2)
    log_mu = np.log(mean) - log_sigma2 / 2.0
    log_sigma = np.sqrt(log_sigma2)

    n = len(x)
    phosphorus = np.zeros(n)
    mean_level = np.zeros(n)
    shocks = rng.normal(size=(_HORIZON, n))
    for t in range(_HORIZON):
        inflow = np.exp(log_mu + log_sigma * shocks[t])
        recycling = phosphorus**q / (1.0 + phosphorus**q)
        phosphorus = phosphorus + _POLICY_LOADING + recycling - b * phosphorus + inflow
        mean_level += phosphorus
    mean_level /= _HORIZON

    return (mean_level > _critical_threshold(b, q)).astype(float)


def lake_dataset(n: int = 1000, seed: int = 56) -> tuple[np.ndarray, np.ndarray]:
    """The fixed third-party "lake" table used in Section 9.3.

    Returns ``(X, y)`` with ``X`` in unit-cube coordinates; the paper
    uses the first 1000 rows of the published dataset, we regenerate an
    equivalent sample (LHS design, fixed seed) from the same simulation.
    """
    rng = np.random.default_rng(seed)
    x = latin_hypercube(n, LAKE_DIM, rng)
    y = lake_outcome(x, rng).astype(np.int64)
    return x, y
