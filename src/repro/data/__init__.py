"""Simulation-model substrate: every data source of Table 1 of the paper.

The registry exposes 33 simulation models (analytic test functions plus
the "dsgc" smart-grid simulation) and the two third-party datasets
("TGL" and "lake").  Each model maps points of the unit hypercube to a
binary "interesting" label, exactly as in the paper's experimental
pipeline: sample inputs, simulate, binarise with a threshold.
"""

from repro.data.levers import LEVER_MODELS, get_lever_model
from repro.data.model import SimulationModel, make_dataset
from repro.data.registry import (
    get_model,
    list_models,
    third_party_dataset,
    ALL_FUNCTIONS,
    CONTINUOUS_FUNCTIONS,
    MIXED_INPUT_FUNCTIONS,
    LEVER_FUNCTIONS,
    THIRD_PARTY,
    TABLE1,
    Table1Entry,
)

__all__ = [
    "SimulationModel",
    "make_dataset",
    "get_model",
    "get_lever_model",
    "list_models",
    "third_party_dataset",
    "ALL_FUNCTIONS",
    "CONTINUOUS_FUNCTIONS",
    "MIXED_INPUT_FUNCTIONS",
    "LEVER_FUNCTIONS",
    "LEVER_MODELS",
    "THIRD_PARTY",
    "TABLE1",
    "Table1Entry",
]
