"""Mixed numeric+categorical lever models: the discrete-mode workloads.

Real scenario-discovery inputs are rarely all continuous: policy
studies mix numeric levers (budgets, rates) with categorical ones
(operating modes, technology variants, dispatch rules) — the scope
shape of tmip-emat, where real, integer and categorical parameters ride
one design.  This family supplies deterministic mixed-type generators
whose interesting region spans numeric *intervals* and category
*subsets*, so categorical peeling/refinement has ground truth to
recover.

Every model here is ``kind="binary"`` with ``domain=None``: inputs stay
in unit-cube coordinates except the categorical columns, which hold
integer codes ``0 .. K-1`` produced by the design quantization
(:meth:`repro.data.model.SimulationModel.quantize`).  The generators
read the codes directly — no scaling is ever applied to them.

The three members cover the interesting structural cases:

``policy``
    Numeric interval x category subset, plus an irrelevant categorical
    column — exercises mixed boxes and the irrelevant-restriction
    quality measure.
``dispatch``
    The category's effect shifts a numeric threshold (interaction
    between a numeric lever and a mode), so neither marginal alone
    separates the classes.
``portfolio``
    Purely categorical interesting set over two columns — discovery
    must work with no numeric restriction at all.
"""

from __future__ import annotations

import numpy as np

from repro.data.model import SimulationModel

__all__ = ["LEVER_MODELS", "get_lever_model"]


def _policy_raw(x: np.ndarray) -> np.ndarray:
    # Interesting iff the budget lever sits in a mid interval, the
    # uptake lever is not extreme, and the mode is 0 or 2.  Column 5
    # (variant) is irrelevant.
    budget, uptake, mode = x[:, 0], x[:, 1], x[:, 4]
    return ((budget >= 0.15) & (budget <= 0.65)
            & (uptake <= 0.7)
            & np.isin(mode, (0.0, 2.0))).astype(float)


def _dispatch_raw(x: np.ndarray) -> np.ndarray:
    # Each dispatch rule shifts the capacity threshold: under rules
    # {0, 3} the plant fails below 0.55 capacity, under {1, 2, 4} only
    # below 0.25 — a numeric-categorical interaction.  The carrier
    # column only matters through a mild demand offset.
    capacity, demand = x[:, 0], x[:, 1]
    rule, carrier = x[:, 5], x[:, 6]
    threshold = np.where(np.isin(rule, (0.0, 3.0)), 0.55, 0.25)
    return ((capacity <= threshold) & (demand + 0.05 * carrier >= 0.4)).astype(float)


def _portfolio_raw(x: np.ndarray) -> np.ndarray:
    # Interesting iff the technology is in {1, 3} and the contract type
    # is 0 — no numeric column matters at all.
    tech, contract = x[:, 3], x[:, 4]
    return (np.isin(tech, (1.0, 3.0)) & (contract == 0.0)).astype(float)


#: The mixed-type lever family: name -> ready SimulationModel.
LEVER_MODELS: dict[str, SimulationModel] = {
    "policy": SimulationModel(
        name="policy",
        dim=6,
        relevant=(0, 1, 4),
        kind="binary",
        raw=_policy_raw,
        reference="levers",
        cat_cols=(4, 5),
        cat_sizes=(4, 3),
    ),
    "dispatch": SimulationModel(
        name="dispatch",
        dim=8,
        relevant=(0, 1, 5, 6),
        kind="binary",
        raw=_dispatch_raw,
        reference="levers",
        cat_cols=(5, 6, 7),
        cat_sizes=(5, 4, 2),
    ),
    "portfolio": SimulationModel(
        name="portfolio",
        dim=5,
        relevant=(3, 4),
        kind="binary",
        raw=_portfolio_raw,
        reference="levers",
        cat_cols=(3, 4),
        cat_sizes=(4, 3),
    ),
}


def get_lever_model(name: str) -> SimulationModel:
    """Look up a mixed-type lever model by name.

    Parameters
    ----------
    name : str
        One of ``"policy"``, ``"dispatch"``, ``"portfolio"``.

    Returns
    -------
    SimulationModel

    Examples
    --------
    >>> model = get_lever_model("policy")
    >>> model.cat_levels_map
    {4: 4, 5: 3}
    """
    try:
        return LEVER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown lever model {name!r}; available: {sorted(LEVER_MODELS)}"
        ) from None
