"""Decentral Smart Grid Control stability simulation ("dsgc").

Re-implementation of the simulation model of Schäfer et al., "Decentral
Smart Grid Control" (New J. Phys. 17, 2015), as configured in the REDS
paper: a four-node star grid (one producer feeding three consumers)
whose participants adapt their power in response to the locally measured
grid frequency — demand response through real-time pricing.  The model
has 12 environmental inputs and one binary output, grid stability.

Physics
-------
Each node ``j`` obeys the swing equation with delayed DSGC feedback::

    theta_j'' = P_j - alpha * theta_j'
                + sum_k K_jk sin(theta_k - theta_j)
                - gamma_j * mean(theta_j') over [t - tau_j - T, t - tau_j]

The price signal reacts to the frequency deviation *averaged* over a
fixed measurement window ``T`` and observed ``tau_j`` seconds ago
(communication and reaction delay), following Schäfer et al.'s model of
demand response through real-time pricing; ``gamma_j`` is the price
elasticity of node ``j``.  Large delays combined with strong elasticity
destabilise the synchronous state — the central finding of Schäfer et
al. and the structure scenario discovery should recover.  The averaging
window is set to 3.5 s, which reproduces the paper's share of unstable
outcomes (53.7 %) within one percentage point.

The model is solved by direct time integration of the delay
differential equations (Heun scheme, ring-buffer history), batched with
numpy across samples.  A run starts at the synchronous fixed point with
a small frequency perturbation; the grid is *unstable* (the interesting
outcome, ``y = 1``) iff the perturbation amplitude grows over the
simulation horizon.

Inputs (unit-cube columns, scaled internally):

======== ===================== ==============
columns   quantity              native range
======== ===================== ==============
0-3       tau_1..tau_4 (s)      [0.5, 10]
4-6       P_2..P_4 (consumers)  [-2, -0.5]
7-10      gamma_1..gamma_4      [0.05, 1]
11        coupling strength K   [6, 10]
======== ===================== ==============

The producer's power balances the consumers, ``P_1 = -(P_2+P_3+P_4)``.
Twelve inputs, all relevant, matching Table 1 (M = I = 12).
"""

from __future__ import annotations

import numpy as np

__all__ = ["dsgc_unstable", "simulate_dsgc", "DSGC_DIM", "DSGC_ALPHA"]

DSGC_DIM = 12
#: Damping constant alpha of the swing equation (Schäfer et al. use 0.1).
DSGC_ALPHA = 0.1

_TAU_RANGE = (0.5, 10.0)
_POWER_RANGE = (-2.0, -0.5)
_GAMMA_RANGE = (0.05, 1.0)
_COUPLING_RANGE = (6.0, 10.0)

_DT = 0.025           # integration step (s)
_HORIZON = 50.0       # simulated time (s)
_AVG_WINDOW = 3.5     # frequency-measurement averaging window T (s)
_PERTURBATION = np.array([0.10, -0.05, 0.08, -0.12])  # initial omega (rad/s)
_CHUNK = 4096         # samples integrated per batch (bounds buffer memory)


def _scale_inputs(u: np.ndarray) -> tuple[np.ndarray, ...]:
    """Map unit-cube rows to (tau[n,4], p[n,4], gamma[n,4], k[n])."""
    u = np.asarray(u, dtype=float)
    if u.ndim != 2 or u.shape[1] != DSGC_DIM:
        raise ValueError(f"expected shape (n, {DSGC_DIM}), got {u.shape}")
    tau = _TAU_RANGE[0] + u[:, 0:4] * (_TAU_RANGE[1] - _TAU_RANGE[0])
    consumers = _POWER_RANGE[0] + u[:, 4:7] * (_POWER_RANGE[1] - _POWER_RANGE[0])
    power = np.column_stack([-consumers.sum(axis=1), consumers])
    gamma = _GAMMA_RANGE[0] + u[:, 7:11] * (_GAMMA_RANGE[1] - _GAMMA_RANGE[0])
    coupling = _COUPLING_RANGE[0] + u[:, 11] * (_COUPLING_RANGE[1] - _COUPLING_RANGE[0])
    return tau, power, gamma, coupling


def _fixed_point_phases(power: np.ndarray, coupling: np.ndarray) -> np.ndarray:
    """Synchronous-state phases for the star grid (hub phase = 0).

    A leaf node ``j`` at equilibrium satisfies ``P_j + K sin(theta_hub -
    theta_j) = 0``, i.e. ``theta_j = arcsin(P_j / K)`` relative to the
    hub.  Consumer powers lie within ``[-2, -0.5]`` and K >= 6, so the
    fixed point always exists.
    """
    theta = np.zeros_like(power)
    theta[:, 1:] = np.arcsin(power[:, 1:] / coupling[:, None])
    return theta


def _accelerations(theta: np.ndarray, omega: np.ndarray,
                   omega_delayed: np.ndarray, power: np.ndarray,
                   gamma: np.ndarray, coupling: np.ndarray) -> np.ndarray:
    """Right-hand side of the omega equations for the star topology."""
    # Flow on the edge hub -> leaf j: K sin(theta_hub - theta_j).
    edge = coupling[:, None] * np.sin(theta[:, 0:1] - theta[:, 1:])
    acc = power - DSGC_ALPHA * omega - gamma * omega_delayed
    acc[:, 1:] += edge
    acc[:, 0] -= edge.sum(axis=1)
    return acc


def simulate_dsgc(u: np.ndarray) -> np.ndarray:
    """Amplification factor of a frequency perturbation for each row.

    Returns ``max |omega| over the last fifth of the horizon`` divided by
    ``max |omega| over the first fifth``; values above 1 mean the
    synchronous state is unstable.
    """
    u = np.asarray(u, dtype=float)
    out = np.empty(len(u))
    for start in range(0, len(u), _CHUNK):
        block = slice(start, min(start + _CHUNK, len(u)))
        out[block] = _simulate_chunk(u[block])
    return out


def _simulate_chunk(u: np.ndarray) -> np.ndarray:
    tau, power, gamma, coupling = _scale_inputs(u)
    n = len(u)
    steps = int(round(_HORIZON / _DT))
    delay_steps = np.maximum(np.rint(tau / _DT).astype(np.int64), 1)
    avg_steps = int(round(_AVG_WINDOW / _DT))
    buffer_len = int(delay_steps.max()) + 1

    theta = _fixed_point_phases(power, coupling)
    omega = np.tile(_PERTURBATION, (n, 1))

    # Two ring buffers: raw omega over the averaging window (to maintain
    # the running mean) and the averaged signal m over the largest
    # delay.  History before t=0 equals the initial perturbation (the
    # system sat at the perturbed state).
    omega_hist = np.empty((avg_steps, n, 4), dtype=np.float64)
    omega_hist[:] = omega[None, :, :]
    running_sum = omega * avg_steps
    mean_hist = np.empty((buffer_len, n, 4), dtype=np.float64)
    mean_hist[:] = omega[None, :, :]

    rows = np.arange(n)[:, None]
    cols = np.arange(4)[None, :]
    window = max(int(round(steps / 5)), 1)
    early_amp = np.zeros(n)
    late_amp = np.zeros(n)

    for step in range(steps):
        pos = step % buffer_len
        delayed_mean = mean_hist[(pos - delay_steps) % buffer_len, rows, cols]

        # Heun (RK2): delayed values held constant within the step,
        # which is O(dt^2)-accurate for the smooth histories here.
        acc1 = _accelerations(theta, omega, delayed_mean, power, gamma, coupling)
        theta_mid = theta + _DT * omega
        omega_mid = omega + _DT * acc1
        acc2 = _accelerations(theta_mid, omega_mid, delayed_mean, power, gamma, coupling)
        theta = theta + _DT * 0.5 * (omega + omega_mid)
        omega = omega + _DT * 0.5 * (acc1 + acc2)

        # Guard against numerical blow-up of strongly unstable runs.
        np.clip(omega, -1e6, 1e6, out=omega)

        avg_pos = step % avg_steps
        running_sum += omega - omega_hist[avg_pos]
        np.clip(running_sum, -1e9, 1e9, out=running_sum)
        omega_hist[avg_pos] = omega
        mean_hist[pos] = running_sum / avg_steps

        amp = np.abs(omega).max(axis=1)
        if step < window:
            np.maximum(early_amp, amp, out=early_amp)
        elif step >= steps - window:
            np.maximum(late_amp, amp, out=late_amp)

    return late_amp / np.maximum(early_amp, 1e-12)


def dsgc_unstable(u: np.ndarray) -> np.ndarray:
    """Binary instability labels for unit-cube inputs ``u`` (1 = unstable)."""
    return (simulate_dsgc(u) > 1.0).astype(float)
