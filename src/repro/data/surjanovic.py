"""Test functions from the Virtual Library of Simulation Experiments.

These are the 20 deterministic functions of Table 1 credited to
Surjanovic & Bingham (http://www.sfu.ca/~ssurjano).  Where the published
closed form is standard (borehole, Hartmann family, Ishigami, OTL
circuit, piston, wing weight, Welch et al., Linkletter et al., Loeppky
et al., Sobol-Levitan) we implement it directly.  For the handful of
functions whose exact constants are not reproducible offline
(``willetal06``, ``moon10*``, ``morretal06``, ``oakoh04``) we implement
structurally equivalent surrogates — same dimensionality, same set of
relevant inputs, same smooth nonlinear character — built from fixed,
seeded coefficients; DESIGN.md documents this substitution.  All
binarisation thresholds are calibrated (see ``registry.py``) so the
share of interesting outcomes matches Table 1.

Every function takes an ``(n, M)`` array in its native domain and
returns an ``(n,)`` array.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "borehole", "BOREHOLE_DOMAIN",
    "hart3", "hart4", "hart6sc",
    "ishigami", "ISHIGAMI_DOMAIN",
    "linketal06dec", "linketal06simple", "linketal06sin",
    "loepetal13",
    "moon10hd", "moon10hdc1", "moon10low",
    "morretal06",
    "oakoh04",
    "otlcircuit", "OTL_DOMAIN",
    "piston", "PISTON_DOMAIN",
    "soblev99",
    "welchetal92", "WELCH_DOMAIN",
    "willetal06",
    "wingweight", "WINGWEIGHT_DOMAIN",
]


# ----------------------------------------------------------------------
# Physics-based functions with published closed forms
# ----------------------------------------------------------------------

BOREHOLE_DOMAIN = np.array([
    [0.05, 100.0, 63070.0, 990.0, 63.1, 700.0, 1120.0, 9855.0],
    [0.15, 50000.0, 115600.0, 1110.0, 116.0, 820.0, 1680.0, 12045.0],
])


def borehole(x: np.ndarray) -> np.ndarray:
    """Water flow rate through a borehole (m^3/yr); 8 inputs, all active."""
    rw, r, tu, hu, tl, hl, length, kw = x.T
    log_ratio = np.log(r / rw)
    numerator = 2.0 * np.pi * tu * (hu - hl)
    denominator = log_ratio * (
        1.0 + 2.0 * length * tu / (log_ratio * rw**2 * kw) + tu / tl
    )
    return numerator / denominator


OTL_DOMAIN = np.array([
    [50.0, 25.0, 0.5, 1.2, 0.25, 50.0],
    [150.0, 70.0, 3.0, 2.5, 1.20, 300.0],
])


def otlcircuit(x: np.ndarray) -> np.ndarray:
    """Midpoint voltage of an output transformerless push-pull circuit."""
    rb1, rb2, rf, rc1, rc2, beta = x.T
    vb1 = 12.0 * rb2 / (rb1 + rb2)
    bc = beta * (rc2 + 9.0)
    return (
        (vb1 + 0.74) * bc / (bc + rf)
        + 11.35 * rf / (bc + rf)
        + 0.74 * rf * bc / ((bc + rf) * rc1)
    )


PISTON_DOMAIN = np.array([
    [30.0, 0.005, 0.002, 1000.0, 90000.0, 290.0, 340.0],
    [60.0, 0.020, 0.010, 5000.0, 110000.0, 296.0, 360.0],
])


def piston(x: np.ndarray) -> np.ndarray:
    """Cycle time (s) of a piston moving within a cylinder."""
    mass, s, v0, k, p0, ta, t0 = x.T
    a = p0 * s + 19.62 * mass - k * v0 / s
    v = s / (2.0 * k) * (np.sqrt(a**2 + 4.0 * k * p0 * v0 * ta / t0) - a)
    return 2.0 * np.pi * np.sqrt(mass / (k + s**2 * p0 * v0 * ta / (t0 * v**2)))


WINGWEIGHT_DOMAIN = np.array([
    [150.0, 220.0, 6.0, -10.0, 16.0, 0.5, 0.08, 2.5, 1700.0, 0.025],
    [200.0, 300.0, 10.0, 10.0, 45.0, 1.0, 0.18, 6.0, 2500.0, 0.080],
])


def wingweight(x: np.ndarray) -> np.ndarray:
    """Weight (lb) of a light aircraft wing; 10 inputs, all active."""
    sw, wfw, a, lam_deg, q, taper, tc, nz, wdg, wp = x.T
    lam = np.deg2rad(lam_deg)
    return (
        0.036
        * sw**0.758
        * wfw**0.0035
        * (a / np.cos(lam) ** 2) ** 0.6
        * q**0.006
        * taper**0.04
        * (100.0 * tc / np.cos(lam)) ** (-0.3)
        * (nz * wdg) ** 0.49
        + sw * wp
    )


ISHIGAMI_DOMAIN = np.array([[-np.pi] * 3, [np.pi] * 3])


def ishigami(x: np.ndarray, a: float = 7.0, b: float = 0.1) -> np.ndarray:
    """Ishigami function, the classic 3-input sensitivity-analysis example."""
    x1, x2, x3 = x.T
    return np.sin(x1) + a * np.sin(x2) ** 2 + b * x3**4 * np.sin(x1)


# ----------------------------------------------------------------------
# Hartmann family (standard constants)
# ----------------------------------------------------------------------

_HART3_ALPHA = np.array([1.0, 1.2, 3.0, 3.2])
_HART3_A = np.array([
    [3.0, 10.0, 30.0],
    [0.1, 10.0, 35.0],
    [3.0, 10.0, 30.0],
    [0.1, 10.0, 35.0],
])
_HART3_P = 1e-4 * np.array([
    [3689.0, 1170.0, 2673.0],
    [4699.0, 4387.0, 7470.0],
    [1091.0, 8732.0, 5547.0],
    [381.0, 5743.0, 8828.0],
])

_HART6_ALPHA = np.array([1.0, 1.2, 3.0, 3.2])
_HART6_A = np.array([
    [10.0, 3.0, 17.0, 3.5, 1.7, 8.0],
    [0.05, 10.0, 17.0, 0.1, 8.0, 14.0],
    [3.0, 3.5, 1.7, 10.0, 17.0, 8.0],
    [17.0, 8.0, 0.05, 10.0, 0.1, 14.0],
])
_HART6_P = 1e-4 * np.array([
    [1312.0, 1696.0, 5569.0, 124.0, 8283.0, 5886.0],
    [2329.0, 4135.0, 8307.0, 3736.0, 1004.0, 9991.0],
    [2348.0, 1451.0, 3522.0, 2883.0, 3047.0, 6650.0],
    [4047.0, 8828.0, 8732.0, 5743.0, 1091.0, 381.0],
])


def _hartmann_outer(x: np.ndarray, alpha: np.ndarray, a: np.ndarray,
                    p: np.ndarray) -> np.ndarray:
    # outer = sum_i alpha_i * exp(-sum_j A_ij (x_j - P_ij)^2)
    diff = x[:, None, :] - p[None, :, :]
    inner = np.einsum("nij,ij->ni", diff**2, a)
    return np.exp(-inner) @ alpha


def hart3(x: np.ndarray) -> np.ndarray:
    """Hartmann 3-D function on [0, 1]^3 (minimum approx. -3.86)."""
    return -_hartmann_outer(x, _HART3_ALPHA, _HART3_A, _HART3_P)


def hart4(x: np.ndarray) -> np.ndarray:
    """Hartmann 4-D (Picheny et al. rescaling of the 6-D version)."""
    outer = _hartmann_outer(x, _HART6_ALPHA, _HART6_A[:, :4], _HART6_P[:, :4])
    return (1.1 - outer) / 0.839


def hart6sc(x: np.ndarray) -> np.ndarray:
    """Hartmann 6-D, rescaled (Picheny et al. log variant)."""
    outer = _hartmann_outer(x, _HART6_ALPHA, _HART6_A, _HART6_P)
    return -(2.58 + np.log(np.maximum(outer, 1e-300))) / 1.94


# ----------------------------------------------------------------------
# Screening / variable-selection functions
# ----------------------------------------------------------------------

def linketal06simple(x: np.ndarray) -> np.ndarray:
    """Linkletter et al. (2006) 'simple': 4 active inputs of 10."""
    return 0.2 * (x[:, 0] + x[:, 1] + x[:, 2] + x[:, 3])


def linketal06dec(x: np.ndarray) -> np.ndarray:
    """Linkletter et al. (2006) 'decreasing coefficients': 8 active of 10."""
    coeffs = 0.2 / 2.0 ** np.arange(8)
    return x[:, :8] @ coeffs


def linketal06sin(x: np.ndarray) -> np.ndarray:
    """Linkletter et al. (2006) 'sine': 2 active inputs of 10."""
    return np.sin(x[:, 0]) + np.sin(5.0 * x[:, 1])


def loepetal13(x: np.ndarray) -> np.ndarray:
    """Loeppky, Sacks & Welch (2013): 7 active inputs of 10."""
    x1, x2, x3, x4, x5, x6, x7 = (x[:, j] for j in range(7))
    return (
        6.0 * x1 + 4.0 * x2 + 5.5 * x3
        + 3.0 * x1 * x2 + 2.2 * x1 * x3 + 1.4 * x2 * x3
        + x4 + 0.5 * x5 + 0.2 * x6 + 0.1 * x7
    )


WELCH_DOMAIN = np.array([[-0.5] * 20, [0.5] * 20])


def welchetal92(x: np.ndarray) -> np.ndarray:
    """Welch et al. (1992) 20-D screening function; x8 and x16 inactive."""
    # Columns are 0-based: x[:, j] is the paper's x_{j+1}.
    x1, x2, x3, x4, x5 = x[:, 0], x[:, 1], x[:, 2], x[:, 3], x[:, 4]
    x6, x7, x9, x10 = x[:, 5], x[:, 6], x[:, 8], x[:, 9]
    x11, x12, x13, x14 = x[:, 10], x[:, 11], x[:, 12], x[:, 13]
    x15, x17, x18, x19, x20 = x[:, 14], x[:, 16], x[:, 17], x[:, 18], x[:, 19]
    return (
        5.0 * x12 / (1.0 + x1)
        + 5.0 * (x4 - x20) ** 2
        + x5
        + 40.0 * x19**3
        - 5.0 * x19
        + 0.05 * x2
        + 0.08 * x3
        - 0.03 * x6
        + 0.03 * x7
        - 0.09 * x9
        - 0.01 * x10
        - 0.07 * x11
        + 0.25 * x13**2
        - 0.04 * x14
        + 0.06 * x15
        - 0.01 * x17
        - 0.03 * x18
    )


def soblev99(x: np.ndarray) -> np.ndarray:
    """Sobol & Levitan (1999) exponential function; 19 active inputs of 20.

    ``f(x) = exp(sum b_j x_j) - I0`` with ``I0 = prod (e^{b_j} - 1) / b_j``
    so that the mean over the unit cube is zero.  We use the common
    20-input coefficient choice with a strong first block and one inert
    input (b_20 = 0), which reproduces Table 1's I = 19.
    """
    b = np.concatenate([np.full(10, 0.6), np.full(9, 0.2), [0.0]])
    nonzero = b[b != 0.0]
    i0 = np.prod((np.exp(nonzero) - 1.0) / nonzero)
    return np.exp(x @ b) - i0


# ----------------------------------------------------------------------
# Structurally equivalent surrogates (constants not recoverable offline)
# ----------------------------------------------------------------------
# Each surrogate keeps the documented (M, I) signature of the original
# and combines linear, quadratic and interaction terms with fixed seeded
# coefficients.  Thresholds are calibrated in registry.py to match the
# paper's share of interesting outcomes.

def _seeded_coefficients(seed: int, *shapes: tuple[int, ...]) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.uniform(-1.0, 1.0, size=shape) for shape in shapes]


_WILL_A, = _seeded_coefficients(19, (3,))


def willetal06(x: np.ndarray) -> np.ndarray:
    """Surrogate for Williams et al. (2006): 3 inputs, 2 active.

    A smooth interaction of the first two inputs; the third input is
    inert, matching Table 1 (M = 3, I = 2).
    """
    x1, x2 = x[:, 0], x[:, 1]
    return -2.0 * np.sin(2.0 * np.pi * x1 * x2) + 1.5 * (x1 - 0.3) * (x2 - 0.7)


_MOONHD_LIN, _MOONHD_QUAD = _seeded_coefficients(20, (20,), (20, 20))
# Symmetrise and sparsify the interaction matrix: keep a band so every
# input interacts with a few neighbours, as in Moon's construction.
_MOONHD_QUAD = np.triu(_MOONHD_QUAD, k=1)
_MOONHD_QUAD[np.abs(_MOONHD_QUAD) < 0.5] = 0.0


def moon10hd(x: np.ndarray) -> np.ndarray:
    """Surrogate for Moon (2010) high-dimensional function: 20 active inputs."""
    linear = x @ (2.0 * _MOONHD_LIN)
    interactions = np.einsum("ni,ij,nj->n", x, _MOONHD_QUAD, x)
    return linear + 2.0 * interactions


_MOONC1_LIN, = _seeded_coefficients(21, (5,))


def moon10hdc1(x: np.ndarray) -> np.ndarray:
    """Surrogate for Moon (2010) 'c1' variant: only 5 of 20 inputs active."""
    active = x[:, :5]
    linear = active @ (1.0 + np.abs(_MOONC1_LIN))
    return linear + 2.5 * active[:, 0] * active[:, 1] - 1.8 * active[:, 2] ** 2


def moon10low(x: np.ndarray) -> np.ndarray:
    """Surrogate for Moon (2010) low-dimensional function: 3 active inputs."""
    x1, x2, x3 = x.T
    return x1 + 1.5 * x2 + 2.0 * x3 + 2.0 * x1 * x3 - 1.2 * x2**2


def morretal06(x: np.ndarray, k: int = 30) -> np.ndarray:
    """Morris et al. (2006) function: 30 inputs, first 10 active.

    ``f(x) = alpha * sum_{i<=10} x_i + beta * sum_{i<j<=10} x_i x_j`` with
    ``alpha = sqrt(12) - 6 sqrt(0.1 (k - 1))`` and
    ``beta = 12 sqrt(0.1 (k - 1))`` — the published construction that
    makes main effects cancel against pairwise interactions.
    """
    alpha = np.sqrt(12.0) - 6.0 * np.sqrt(0.1 * (k - 1))
    beta = 12.0 * np.sqrt(0.1 * (k - 1))
    active = x[:, :10]
    sums = active.sum(axis=1)
    # sum_{i<j} x_i x_j = ((sum x)^2 - sum x^2) / 2
    pair_sum = (sums**2 - (active**2).sum(axis=1)) / 2.0
    return alpha * sums + beta * pair_sum


_OAK_A1, _OAK_A2, _OAK_A3, _OAK_M = _seeded_coefficients(
    22, (15,), (15,), (15,), (15, 15)
)


def oakoh04(x: np.ndarray) -> np.ndarray:
    """Surrogate for Oakley & O'Hagan (2004): 15 inputs, all active.

    Same structural form as the original, ``a1'x + a2' sin(x) + a3' cos(x)
    + x' M x``, with fixed seeded coefficient vectors/matrix in place of
    the published (not memorisable) constants.
    """
    linear = x @ _OAK_A1
    trig = np.sin(x) @ _OAK_A2 + np.cos(x) @ _OAK_A3
    quad = np.einsum("ni,ij,nj->n", x, _OAK_M, x)
    return linear + trig + 0.3 * quad
