"""repro — full reproduction of REDS (Arzamasov & Böhm, SIGMOD 2021).

REDS improves scenario discovery from few simulation runs by training an
intermediate metamodel and using it to label a much larger synthetic
sample before running a conventional subgroup-discovery algorithm.

Quickstart::

    import numpy as np
    from repro import discover, get_model, make_dataset
    from repro.metrics import trajectory_of

    model = get_model("borehole")
    rng = np.random.default_rng(0)
    x, y = make_dataset(model, 400, rng)            # 400 "simulations"
    result = discover("RPx", x, y, seed=0)          # REDS + PRIM + boosting
    x_test, y_test = make_dataset(model, 20_000, rng)
    points, auc = trajectory_of(result.boxes, x_test, y_test)
    print(result.chosen_box, auc)

See DESIGN.md for the module map and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.methods import discover, parse_method, DiscoveryResult
from repro.core.reds import reds, REDSResult
from repro.data import get_model, make_dataset, third_party_dataset
from repro.subgroup.box import Hyperbox

__version__ = "1.0.0"

__all__ = [
    "discover",
    "parse_method",
    "DiscoveryResult",
    "reds",
    "REDSResult",
    "get_model",
    "make_dataset",
    "third_party_dataset",
    "Hyperbox",
    "__version__",
]
