"""Command-line interface: ``python -m repro <command>``.

Four commands cover the everyday workflows:

* ``list-models`` — the Table 1 catalogue with measured shares;
* ``discover`` — run one method on one simulation model and print the
  scenario (rule form, trajectory summary, test metrics);
* ``compare`` — run several methods with repetitions and print a
  Table 3-style comparison;
* ``session`` — the same comparison served from one warm execution
  session (cached pools, resident data plane, memoized metamodel
  fits), printing the warm-cache counters alongside the table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.methods import discover as run_discover
from repro.data import LEVER_MODELS, TABLE1, get_model
from repro.experiments.harness import aggregate, get_test_data, run_batch
from repro.experiments.parallel import (
    EXECUTORS,
    GridFailureError,
    RetryPolicy,
    parse_shard,
)
from repro.experiments.report import format_table
from repro.experiments.store import open_store
from repro.metrics import precision_recall, trajectory_of
from repro.engines import available_engines
from repro.subgroup.describe import describe_box, describe_trajectory

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REDS scenario discovery (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list the Table 1 simulation models")

    one = sub.add_parser("discover", help="discover scenarios for one model")
    one.add_argument("--function", required=True, help="Table 1 model name")
    one.add_argument("--method", default="RPx", help="method name (Sec. 8.2)")
    one.add_argument("--n", type=int, default=400, help="number of simulations")
    one.add_argument("--seed", type=int, default=0)
    one.add_argument("--n-new", type=int, default=None, help="REDS L override")
    one.add_argument("--no-tune", action="store_true",
                     help="skip metamodel hyperparameter tuning")
    one.add_argument("--test-size", type=int, default=10_000)
    one.add_argument("--engine", choices=available_engines(),
                     default="vectorized",
                     help="kernel engine for every layer of the run "
                          "(reference = slow exact twin; native = "
                          "compiled kernels, falls back to vectorized "
                          "without numba)")
    one.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the run's data-parallel "
                          "stages — REDS pool labeling and metamodel "
                          "tuning folds (0 = all CPUs); results are "
                          "bit-identical at every setting")
    one.add_argument("--retries", type=int, default=0,
                     help="re-attempt a failed discovery up to this many "
                          "extra times (exponential backoff)")

    many = sub.add_parser("compare", help="compare methods on one model")
    many.add_argument("--function", required=True)
    many.add_argument("--methods", default="P,Pc,RPx",
                      help="comma-separated method names")
    many.add_argument("--n", type=int, default=400)
    many.add_argument("--reps", type=int, default=5)
    many.add_argument("--n-new", type=int, default=20_000)
    many.add_argument("--no-tune", action="store_true")
    many.add_argument("--test-size", type=int, default=10_000)
    many.add_argument("--engine", choices=available_engines(),
                      default="vectorized",
                      help="kernel engine threaded into every grid cell "
                           "(reference = slow exact twin; native = "
                           "compiled kernels, falls back to vectorized "
                           "without numba)")
    many.add_argument("--jobs", type=int, default=1,
                      help="total worker budget for the whole run "
                           "(0 = all CPUs): the planner splits it "
                           "between grid cells and each cell's inner "
                           "fan-out, so N never means NxN processes")
    many.add_argument("--executor", choices=EXECUTORS, default=None,
                      help="execution strategy (default: serial or "
                           "process, picked from --jobs)")
    many.add_argument("--shard", metavar="I/K", default=None,
                      help="run shard I of K of the grid and read the "
                           "other shards' records from --store; "
                           "concurrent invocations cooperate on one "
                           "grid with zero duplicated work")
    many.add_argument("--store", metavar="DIR", default=None,
                      help="persistent result store: finished grid cells "
                           "are cached there and re-used on the next run")
    many.add_argument("--retries", type=int, default=0,
                      help="re-attempt each failed grid cell up to this "
                           "many extra times (exponential backoff, seeded "
                           "jitter); cells that exhaust their budget are "
                           "quarantined and summarised instead of killing "
                           "the grid on first error")
    many.add_argument("--task-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-cell wall-clock limit: a worker whose cell "
                           "outlives it is killed, the pool respawned and "
                           "the cell retried (needs --jobs > 1)")
    cache = many.add_mutually_exclusive_group()
    cache.add_argument("--resume", dest="resume", action="store_true",
                       default=True,
                       help="with --store, load cached records and run only "
                            "the missing cells (the default)")
    cache.add_argument("--no-cache", dest="resume", action="store_false",
                       help="with --store, ignore cached records; recompute "
                            "everything and overwrite the store entries")

    warm = sub.add_parser(
        "session",
        help="compare methods through one warm execution session")
    warm.add_argument("--function", required=True)
    warm.add_argument("--methods", default="P,RPx,RPxp",
                      help="comma-separated method names, served one batch "
                           "per method against shared warm state (methods "
                           "over the same metamodel share one fit)")
    warm.add_argument("--n", type=int, default=400)
    warm.add_argument("--reps", type=int, default=5)
    warm.add_argument("--n-new", type=int, default=20_000)
    warm.add_argument("--no-tune", action="store_true")
    warm.add_argument("--test-size", type=int, default=10_000)
    warm.add_argument("--engine", choices=available_engines(),
                      default="vectorized",
                      help="kernel engine threaded into every request")
    warm.add_argument("--jobs", type=int, default=1,
                      help="total worker budget for the session "
                           "(0 = all CPUs); pools are cached per "
                           "(workers, lease, plan signature) and reused "
                           "across requests")
    warm.add_argument("--store", metavar="DIR", default=None,
                      help="persistent result store shared by the "
                           "session's requests")
    return parser


def _cmd_list_models() -> int:
    print(f"{'name':<18} {'M':>3} {'I':>3} {'share %':>8}  reference")
    for entry in TABLE1:
        print(f"{entry.name:<18} {entry.dim:>3} {entry.n_relevant:>3} "
              f"{entry.share * 100:>8.1f}  {entry.reference}")
    print("\nmixed numeric+categorical lever models "
          "(categorical columns as K-level codes):")
    print(f"{'name':<18} {'M':>3} {'I':>3} {'cat levels':>12}  reference")
    for name in sorted(LEVER_MODELS):
        model = LEVER_MODELS[name]
        cats = ",".join(f"{j}:{k}" for j, k in model.cat_levels_map.items())
        print(f"{name:<18} {model.dim:>3} {model.n_relevant:>3} "
              f"{cats:>12}  {model.reference}")
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    model = get_model(args.function)
    rng = np.random.default_rng(args.seed)
    from repro.data import make_dataset

    x, y = make_dataset(model, args.n, rng)
    print(f"{args.function}: {args.n} simulations, "
          f"{y.mean():.1%} interesting outcomes")

    policy = RetryPolicy(max_attempts=args.retries + 1)
    attempt = 0
    while True:
        try:
            result = run_discover(
                args.method, x, y,
                seed=args.seed,
                n_new=args.n_new,
                tune_metamodel=not args.no_tune,
                engine=args.engine,
                jobs=args.jobs if args.jobs > 0 else None,
                cat_levels=model.cat_levels_map or None,
            )
            break
        except Exception as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            print(f"attempt {attempt} failed ({type(exc).__name__}: {exc}); "
                  f"retrying", file=sys.stderr)
            import time

            time.sleep(policy.delay("cli-discover", attempt))
    x_test, y_test = get_test_data(args.function, size=args.test_size)
    _, auc = trajectory_of(result.boxes, x_test, y_test)
    precision, recall = precision_recall(result.chosen_box, x_test, y_test)

    print(f"\nmethod {args.method} finished in {result.runtime:.1f}s "
          f"(hyperparameters: {result.hyperparams})")
    print(f"test PR AUC {auc:.3f}; chosen box: precision {precision:.3f}, "
          f"recall {recall:.3f}")
    print("\nscenario:")
    print(" ", describe_box(result.chosen_box, domain=model.domain))
    print("\npeeling trajectory (test data):")
    print(describe_trajectory(result.boxes, x_test, y_test))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    try:
        shard = parse_shard(args.shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.executor == "sharded" and shard is None:
        print("error: --executor sharded needs --shard I/K", file=sys.stderr)
        return 2
    if shard is not None and args.executor not in (None, "sharded"):
        print(f"error: --shard runs on the sharded executor; drop "
              f"--executor {args.executor}", file=sys.stderr)
        return 2
    if (shard is not None or args.executor == "sharded") and args.store is None:
        print("error: --shard coordinates through the store; pass --store DIR",
              file=sys.stderr)
        return 2
    if shard is not None and not args.resume:
        print("error: --shard requires resume semantics (the store is the "
              "coordination channel); use a fresh --store directory instead "
              "of --no-cache", file=sys.stderr)
        return 2
    store = open_store(args.store)
    try:
        records = run_batch(
            (args.function,), methods, args.n, args.reps,
            n_new=args.n_new,
            tune_metamodel=not args.no_tune,
            test_size=args.test_size,
            jobs=args.jobs if args.jobs > 0 else None,
            store=store,
            resume=args.resume,
            engine=args.engine,
            executor=args.executor,
            shard=shard,
            retries=args.retries,
            task_timeout=args.task_timeout,
        )
    except GridFailureError as exc:
        # Everything that could complete did (and is in the store);
        # report the casualties compactly instead of a raw traceback.
        print(f"error: grid incomplete\n{exc.summary()}", file=sys.stderr)
        if store is not None:
            print(f"store {args.store}: {store.hits} cached, "
                  f"{store.writes} computed; re-run to retry the "
                  f"quarantined cells", file=sys.stderr)
        return 1
    if store is not None:
        print(f"store {args.store}: {store.hits} cached, "
              f"{store.writes} computed")
    aggregated = aggregate(records)
    rows = {method: aggregated[(args.function, method)] for method in methods}
    print(format_table(
        f"{args.function}: N={args.n}, {args.reps} repetitions",
        rows,
        (("pr_auc", "PR AUC %", 100.0),
         ("precision", "precision %", 100.0),
         ("wracc", "WRAcc %", 100.0),
         ("consistency", "consistency %", 100.0),
         ("n_restricted", "# restricted", 1.0),
         ("n_irrelevant", "# irrel", 1.0),
         ("runtime", "runtime s", 1.0)),
        method_order=methods,
    ))
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    from repro.experiments.session import Session

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    store = open_store(args.store)
    all_records = []
    with Session(jobs=args.jobs if args.jobs > 0 else None,
                 engine=args.engine, tune=not args.no_tune):
        # One batch per method: within the session the batches share
        # cached pools, resident test/train arrays and memoized
        # metamodel fits — e.g. RPx and RPxp reuse one fitted model.
        for method in methods:
            all_records.extend(run_batch(
                (args.function,), (method,), args.n, args.reps,
                n_new=args.n_new,
                tune_metamodel=not args.no_tune,
                test_size=args.test_size,
                jobs=args.jobs if args.jobs > 0 else None,
                store=store,
                engine=args.engine,
            ))
        from repro.core.reds import fit_stats
        from repro.experiments.dataplane import resident_stats
        from repro.experiments.parallel import pool_stats

        pools = pool_stats()
        plane = resident_stats()
        fits = fit_stats()
    if store is not None:
        print(f"store {args.store}: {store.hits} cached, "
              f"{store.writes} computed")
    aggregated = aggregate(all_records)
    rows = {method: aggregated[(args.function, method)] for method in methods}
    print(format_table(
        f"{args.function}: N={args.n}, {args.reps} repetitions (warm session)",
        rows,
        (("pr_auc", "PR AUC %", 100.0),
         ("precision", "precision %", 100.0),
         ("wracc", "WRAcc %", 100.0),
         ("consistency", "consistency %", 100.0),
         ("n_restricted", "# restricted", 1.0),
         ("n_irrelevant", "# irrel", 1.0),
         ("runtime", "runtime s", 1.0)),
        method_order=methods,
    ))
    print(f"\nwarm session: {fits['fits']} metamodel fit(s), "
          f"{fits['hits']} memo hit(s); "
          f"{pools['spawned']} pool(s) spawned, "
          f"{pools['reused']} checkout(s) served warm; "
          f"{plane['published']} segment(s) published, "
          f"{plane['reused']} republish(es) avoided")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-models":
        return _cmd_list_models()
    if args.command == "discover":
        return _cmd_discover(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "session":
        return _cmd_session(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
