"""Compiled (numba) subgroup kernels — the ``engine="native"`` backend.

Two scan-bound walks of the BestInterval beam search get compiled
twins here:

* :func:`max_sum_run_native` — the max-sum-run search over per-group
  WRAcc weight sums.  The kernel replicates the vectorized scorer's
  operation order exactly (sequential ``cumsum`` prefixes, a
  NaN-propagating running minimum, first-maximum argmax with NaN
  poisoning, the rightmost-tied-minimum run start), so refined bounds
  are bit-identical to both existing engines.
* :func:`box_membership` — the interval part of the batched
  membership kernel (``contains_many``), ``prange`` over boxes with
  the same comparison direction as the numpy broadcasts (every
  dimension is compared, restricted or not, so NaN rows fall outside
  exactly as before).  Categorical restrictions stay in Python on top
  of the kernel's boolean matrix, through the very same
  ``cat_mask`` helper the other engines use.

Kernels are ``@njit(cache=True)`` — compiled once to disk, loaded by
pool workers via :func:`repro.engines.warmup_native`.  Without numba
the decorator is the identity and the kernels run as plain Python
(the ``REDS_NATIVE_PUREPY`` testing hook).
"""

from __future__ import annotations

import numpy as np

from repro.engines import njit, prange

__all__ = ["max_sum_run_native", "box_membership", "warmup"]


@njit(cache=True)
def _max_sum_run_kernel(s):
    """(start, end, best) of the max-sum run — vectorized-scorer ops.

    Sequential prefix sums (the accumulation order of ``np.cumsum``),
    a NaN-propagating running minimum (``np.minimum.accumulate``
    semantics), ``scores[i] = prefix[i] - min(running_min[i-1], 0.0)``,
    a first-maximum argmax where NaN wins immediately, and the run
    start at the latest prefix achieving the floor — every intermediate
    is bit-identical to :func:`repro.subgroup._kernels.max_sum_run`.
    """
    n = s.shape[0]
    prefix = np.empty(n)
    running_min = np.empty(n)
    scores = np.empty(n)
    prefix[0] = s[0]
    for i in range(1, n):
        prefix[i] = prefix[i - 1] + s[i]
    running_min[0] = prefix[0]
    for i in range(1, n):
        pm = running_min[i - 1]
        pi = prefix[i]
        if np.isnan(pm) or np.isnan(pi):
            running_min[i] = np.nan
        elif pi < pm:
            running_min[i] = pi
        else:
            running_min[i] = pm
    scores[0] = prefix[0]
    for i in range(1, n):
        rm = running_min[i - 1]
        if rm < 0.0 or np.isnan(rm):
            floor = rm
        else:
            floor = 0.0
        scores[i] = prefix[i] - floor
    end = 0
    best = scores[0]
    if not np.isnan(best):
        for i in range(1, n):
            v = scores[i]
            if np.isnan(v):
                end = i
                best = v
                break
            if v > best:
                end = i
                best = v
    if end == 0:
        floor_at_end = 0.0
    else:
        rm = running_min[end - 1]
        # Python's builtin min(rm, 0.0): 0.0 only when 0.0 < rm.
        floor_at_end = 0.0 if 0.0 < rm else rm
    start = 0
    for j in range(end - 1, -1, -1):
        if prefix[j] == floor_at_end:
            start = j + 1
            break
    return start, end, best


def max_sum_run_native(sums: np.ndarray) -> tuple[int, int, float]:
    """Drop-in compiled twin of
    :func:`repro.subgroup._kernels.max_sum_run`."""
    s = np.ascontiguousarray(sums, dtype=float)
    if len(s) == 0:
        return 0, 0, float(-np.inf)
    start, end, best = _max_sum_run_kernel(s)
    return int(start), int(end), float(best)


@njit(cache=True, parallel=True)
def box_membership(lowers, uppers, xt):
    """Interval membership of every point in every box.

    ``xt`` is the data transposed to (dim, n) C-order so each
    dimension's sweep streams contiguous memory (the same locality
    trick as the Fortran-order numpy kernel).  Every dimension is
    compared — even unrestricted ones, whose infinite bounds still
    exclude NaN values — so the boolean matrix equals the numpy
    broadcasts bit for bit.
    """
    n_boxes = lowers.shape[0]
    dim = xt.shape[0]
    n = xt.shape[1]
    out = np.empty((n_boxes, n), dtype=np.bool_)
    for b in prange(n_boxes):
        for i in range(n):
            out[b, i] = True
        for j in range(dim):
            lo = lowers[b, j]
            hi = uppers[b, j]
            for i in range(n):
                v = xt[j, i]
                if not (v >= lo and v <= hi):
                    out[b, i] = False
    return out


def warmup() -> None:
    """Run every kernel once on tiny inputs (compile or cache-load)."""
    _max_sum_run_kernel(np.array([1.0, -2.0, 3.0]))
    box_membership(np.zeros((1, 2)), np.ones((1, 2)),
                   np.zeros((2, 3)))
