"""PCA-PRIM: scenario discovery with orthogonal rotations.

Re-implementation of Dalal et al., "Improving scenario discovery using
orthogonal rotations" (Environ. Model. Softw. 48, 2013) — the PRIM
improvement the REDS paper cites as compatible with (and orthogonal to)
REDS.  The interesting region is often not axis-aligned; PCA-PRIM
rotates the input space so that PRIM's axis-parallel cuts align with
the data's principal directions:

1. standardise the inputs;
2. compute the principal components of the *uninteresting* examples
   (y = 0), following Dalal et al. — the rotation that de-correlates
   the background makes deviating (interesting) structure axis-aligned;
3. run PRIM in the rotated coordinates;
4. report boxes in rotated space together with the rotation, so rules
   read as bounds on linear combinations of the original inputs.

The price is interpretability: each restricted "input" is now a linear
combination.  :class:`RotatedBox` keeps the rotation so callers can
evaluate membership of raw points and inspect the loadings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup.box import Hyperbox
from repro.subgroup.prim import PRIMResult, prim_peel

__all__ = ["Rotation", "RotatedBox", "pca_rotation", "pca_prim"]


@dataclass(frozen=True)
class Rotation:
    """An affine map ``z = (x - center) / scale @ components.T``."""

    center: np.ndarray
    scale: np.ndarray
    components: np.ndarray  # (dim, dim), rows are principal directions

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return ((x - self.center) / self.scale) @ self.components.T

    @property
    def dim(self) -> int:
        return len(self.center)


@dataclass(frozen=True)
class RotatedBox:
    """A hyperbox living in the rotated coordinate system."""

    box: Hyperbox
    rotation: Rotation

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Membership of *raw* (unrotated) points."""
        return self.box.contains(self.rotation.transform(x))

    @property
    def n_restricted(self) -> int:
        return self.box.n_restricted

    def loadings(self, dim: int) -> np.ndarray:
        """Original-input weights of one rotated coordinate."""
        return self.rotation.components[dim] / self.rotation.scale


def pca_rotation(x: np.ndarray, y: np.ndarray | None = None) -> Rotation:
    """The Dalal et al. rotation: PCA of the uninteresting examples.

    When ``y`` is None, all examples enter the PCA.  Inputs are
    standardised first so no input dominates through its scale.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    center = x.mean(axis=0)
    scale = x.std(axis=0)
    scale = np.where(scale > 1e-12, scale, 1.0)

    reference = x
    if y is not None:
        y = np.asarray(y)
        if len(y) != len(x):
            raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
        background = y == 0
        # Need enough background points for a stable covariance.
        if background.sum() >= max(2 * x.shape[1], 10):
            reference = x[background]

    standardised = (reference - center) / scale
    covariance = np.cov(standardised, rowvar=False)
    covariance = np.atleast_2d(covariance)
    _, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; principal directions first.
    components = eigenvectors[:, ::-1].T
    return Rotation(center=center, scale=scale, components=components)


def pca_prim(
    x: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 0.05,
    min_support: int = 20,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    objective: str = "mean",
) -> tuple[PRIMResult, Rotation, list[RotatedBox]]:
    """Run PRIM in PCA-rotated coordinates (Dalal et al. 2013).

    Parameters
    ----------
    x, y:
        Training data in original coordinates.
    alpha, min_support, x_val, y_val, objective:
        Passed through to :func:`repro.subgroup.prim.prim_peel`, which
        runs on the rotated inputs (validation inputs are rotated too).

    Returns
    -------
    result : PRIMResult
        The raw peeling result; its boxes live in rotated space.
    rotation : Rotation
        The fitted standardise-then-rotate map.
    rotated : list of RotatedBox
        The trajectory wrapped so ``contains`` accepts *raw* points —
        directly usable with the metric functions that only need
        membership.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    rotation = pca_rotation(x, y)
    z = rotation.transform(x)
    z_val = rotation.transform(x_val) if x_val is not None else None
    result = prim_peel(
        z, y,
        alpha=alpha, min_support=min_support,
        x_val=z_val, y_val=y_val,
        objective=objective,
    )
    rotated = [RotatedBox(box, rotation) for box in result.boxes]
    return result, rotation, rotated
