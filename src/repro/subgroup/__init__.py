"""Subgroup-discovery substrate: hyperboxes and the three algorithms.

Implements the algorithms of Section 3 of the paper, one module each:

* :mod:`repro.subgroup.box` — the hyperbox scenario representation
  (Section 3.1, Definition 2 volumes);
* :mod:`repro.subgroup.prim` — PRIM peeling/pasting (Algorithm 1),
  backed by the vectorized kernel in :mod:`repro.subgroup._kernels`;
* :mod:`repro.subgroup.bumping` — PRIM with bumping (Algorithm 2);
* :mod:`repro.subgroup.best_interval` — BestInterval beam search
  (Algorithm 3);
* :mod:`repro.subgroup.covering` — several subgroups by successive
  removal (Section 3.2);
* :mod:`repro.subgroup.pca_prim` — PCA-PRIM orthogonal rotations
  (cited related work, Dalal et al. 2013);
* :mod:`repro.subgroup.describe` — rule rendering for analysts
  (Section 5).
"""

from repro.subgroup.box import Hyperbox, cat_mask
from repro.subgroup.prim import PRIMResult, prim_peel, OBJECTIVES, ENGINES
from repro.subgroup.bumping import BumpingResult, pareto_front, prim_bumping
from repro.subgroup.best_interval import (
    BIResult,
    BI_ENGINES,
    best_interval,
    best_interval_for_dim,
)
from repro.subgroup.covering import covering
from repro.subgroup._kernels import (
    BoxBatchEvaluation,
    SortedDataset,
    best_cat_subset,
    contains_many,
    evaluate_boxes,
)
from repro.subgroup.pca_prim import pca_prim, pca_rotation, Rotation, RotatedBox
from repro.subgroup.describe import (
    describe_box,
    describe_trajectory,
    box_to_dict,
    box_from_dict,
    summarize_box,
)

__all__ = [
    "Hyperbox",
    "cat_mask",
    "best_cat_subset",
    "PRIMResult",
    "prim_peel",
    "OBJECTIVES",
    "ENGINES",
    "BumpingResult",
    "pareto_front",
    "prim_bumping",
    "BIResult",
    "BI_ENGINES",
    "best_interval",
    "best_interval_for_dim",
    "covering",
    "BoxBatchEvaluation",
    "SortedDataset",
    "contains_many",
    "evaluate_boxes",
    "pca_prim",
    "pca_rotation",
    "Rotation",
    "RotatedBox",
    "describe_box",
    "describe_trajectory",
    "box_to_dict",
    "box_from_dict",
    "summarize_box",
]
