"""Subgroup-discovery substrate: hyperboxes and the three algorithms.

Implements the algorithms of Section 3 of the paper: PRIM's peeling
(+ optional pasting), PRIM with bumping (bagged random boxes), and the
BestInterval beam search, plus the covering approach for finding
several subgroups.
"""

from repro.subgroup.box import Hyperbox
from repro.subgroup.prim import PRIMResult, prim_peel, OBJECTIVES, ENGINES
from repro.subgroup.bumping import BumpingResult, prim_bumping
from repro.subgroup.best_interval import BIResult, best_interval, best_interval_for_dim
from repro.subgroup.covering import covering
from repro.subgroup.pca_prim import pca_prim, pca_rotation, Rotation, RotatedBox
from repro.subgroup.describe import (
    describe_box,
    describe_trajectory,
    box_to_dict,
    summarize_box,
)

__all__ = [
    "Hyperbox",
    "PRIMResult",
    "prim_peel",
    "OBJECTIVES",
    "ENGINES",
    "BumpingResult",
    "prim_bumping",
    "BIResult",
    "best_interval",
    "best_interval_for_dim",
    "covering",
    "pca_prim",
    "pca_rotation",
    "Rotation",
    "RotatedBox",
    "describe_box",
    "describe_trajectory",
    "box_to_dict",
    "summarize_box",
]
