"""Hyperboxes: the scenario representation.

A hyperbox is a conjunction of per-input intervals
``prod_j [lower_j, upper_j]`` with ``-inf``/``+inf`` denoting an
unrestricted side (Section 3.1 of the paper).  Boxes are immutable;
peeling and refinement produce new boxes via :meth:`Hyperbox.replace`.

Volume computations follow Definition 2 of the paper: infinities are
replaced by the bounds of the reference domain (the unit cube for all
our data), and for discrete inputs the count of distinct covered levels
is used instead of interval length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Hyperbox"]


@dataclass(frozen=True)
class Hyperbox:
    """An axis-aligned box with possibly unbounded sides.

    The scenario representation of Section 3.1: a conjunction of
    per-input intervals, rendered to analysts as an IF-THEN rule.
    Immutable — every refinement returns a new box.

    Parameters
    ----------
    lower, upper:
        Equal-length bound vectors; ``-inf``/``+inf`` mark an
        unrestricted side.

    Examples
    --------
    >>> import numpy as np
    >>> box = Hyperbox.unrestricted(2).replace(0, lower=0.25, upper=0.75)
    >>> box
    Hyperbox(0.25 <= a1 <= 0.75)
    >>> box.contains(np.array([[0.5, 0.9], [0.1, 0.9]])).tolist()
    [True, False]
    >>> box.n_restricted, round(box.volume(), 3)
    (1, 0.5)
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float)
        upper = np.asarray(self.upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError(
                f"bounds must be equal-length vectors, got {lower.shape} / {upper.shape}"
            )
        if not (lower <= upper).all():
            raise ValueError("lower bounds must not exceed upper bounds")
        # Freeze the arrays so the dataclass is genuinely immutable.
        lower.setflags(write=False)
        upper.setflags(write=False)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def unrestricted(cls, dim: int) -> "Hyperbox":
        """The full input space ``prod_j [-inf, +inf]``."""
        return cls(np.full(dim, -np.inf), np.full(dim, np.inf))

    def replace(self, dim: int, lower: float | None = None,
                upper: float | None = None) -> "Hyperbox":
        """New box with one dimension's bounds changed."""
        new_lower = self.lower.copy()
        new_upper = self.upper.copy()
        if lower is not None:
            new_lower[dim] = lower
        if upper is not None:
            new_upper[dim] = upper
        return Hyperbox(new_lower, new_upper)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.lower)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean membership mask for rows of ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {x.shape}")
        return ((x >= self.lower) & (x <= self.upper)).all(axis=1)

    @property
    def restricted_dims(self) -> np.ndarray:
        """Indices of inputs restricted by this box."""
        return np.nonzero(np.isfinite(self.lower) | np.isfinite(self.upper))[0]

    @property
    def n_restricted(self) -> int:
        """The paper's #restricted interpretability measure."""
        return len(self.restricted_dims)

    def key(self) -> tuple:
        """Hashable identity of the box (for dedup in beam search).

        Cached on first use: beam search and the refinement memo of
        :func:`repro.subgroup.best_interval.best_interval` key every
        box many times per iteration, and the box is immutable.
        """
        cached = getattr(self, "_key", None)
        if cached is None:
            cached = (tuple(self.lower.tolist()), tuple(self.upper.tolist()))
            object.__setattr__(self, "_key", cached)
        return cached

    # ------------------------------------------------------------------
    # Volumes (Definition 2)
    # ------------------------------------------------------------------
    def _clipped_bounds(self, reference_lower: np.ndarray,
                        reference_upper: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lower = np.maximum(self.lower, reference_lower)
        upper = np.minimum(self.upper, reference_upper)
        return lower, np.maximum(upper, lower)

    def volume(
        self,
        reference_lower: np.ndarray | None = None,
        reference_upper: np.ndarray | None = None,
        discrete_levels: dict[int, np.ndarray] | None = None,
    ) -> float:
        """Normalised volume within the reference domain.

        Continuous dimensions contribute their clipped interval length
        divided by the reference length; discrete dimensions (keys of
        ``discrete_levels``) contribute the fraction of levels covered.
        The unrestricted box therefore has volume 1.
        """
        ref_lo = np.zeros(self.dim) if reference_lower is None else np.asarray(reference_lower, dtype=float)
        ref_hi = np.ones(self.dim) if reference_upper is None else np.asarray(reference_upper, dtype=float)
        lower, upper = self._clipped_bounds(ref_lo, ref_hi)
        fractions = (upper - lower) / (ref_hi - ref_lo)
        if discrete_levels:
            for j, levels in discrete_levels.items():
                levels = np.asarray(levels, dtype=float)
                covered = ((levels >= lower[j]) & (levels <= upper[j])).sum()
                fractions[j] = covered / len(levels)
        return float(np.prod(fractions))

    def intersection(self, other: "Hyperbox") -> "Hyperbox | None":
        """The overlap box, or None if the boxes are disjoint."""
        lower = np.maximum(self.lower, other.lower)
        upper = np.minimum(self.upper, other.upper)
        if (lower > upper).any():
            return None
        return Hyperbox(lower, upper)

    def __repr__(self) -> str:  # compact rule-like rendering
        parts = []
        for j in self.restricted_dims:
            lo = self.lower[j]
            hi = self.upper[j]
            if np.isfinite(lo) and np.isfinite(hi):
                parts.append(f"{lo:.3g} <= a{j + 1} <= {hi:.3g}")
            elif np.isfinite(lo):
                parts.append(f"a{j + 1} >= {lo:.3g}")
            else:
                parts.append(f"a{j + 1} <= {hi:.3g}")
        body = " AND ".join(parts) if parts else "TRUE"
        return f"Hyperbox({body})"
