"""Hyperboxes: the scenario representation.

A hyperbox is a conjunction of per-input conditions (Section 3.1 of the
paper).  Numeric inputs are restricted to an interval
``[lower_j, upper_j]`` with ``-inf``/``+inf`` denoting an unrestricted
side; categorical inputs are restricted to a *set* of allowed category
codes (``cats[j]``), mirroring the classic PRIM treatment where each
peel removes one category.  Boxes are immutable; peeling and refinement
produce new boxes via :meth:`Hyperbox.replace` / :meth:`Hyperbox.with_cats`.

Volume computations follow Definition 2 of the paper: infinities are
replaced by the bounds of the reference domain (the unit cube for all
our data), and for discrete inputs the count of distinct covered levels
is used instead of interval length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Hyperbox", "cat_mask"]


def cat_mask(column: np.ndarray, allowed) -> np.ndarray:
    """Boolean membership mask of ``column`` values in a category set.

    The single shared implementation of categorical membership: both
    engines (``Hyperbox.contains`` row-wise, the batched
    :func:`repro.subgroup._kernels.contains_many`, the peel/refine
    kernels) route through this helper so their masks are bit-identical
    by construction.

    Parameters
    ----------
    column : ndarray of shape (n,)
        Category codes for one input column.
    allowed : iterable of float
        The allowed category codes (typically a ``frozenset``).

    Returns
    -------
    ndarray of bool, shape (n,)

    Examples
    --------
    >>> import numpy as np
    >>> cat_mask(np.array([0.0, 1.0, 2.0, 1.0]), frozenset({1.0, 2.0})).tolist()
    [False, True, True, True]
    """
    codes = np.array(sorted(allowed), dtype=float)
    return np.isin(np.asarray(column, dtype=float), codes)


def _normalise_cats(cats, dim: int):
    """Validate/canonicalise a per-column category-set tuple.

    Returns ``None`` when every entry is ``None`` (a pure-numeric box),
    else a tuple of ``frozenset | None`` of length ``dim``.
    """
    if cats is None:
        return None
    cats = tuple(cats)
    if len(cats) != dim:
        raise ValueError(f"cats must have one entry per dimension ({dim}), got {len(cats)}")
    out = []
    for allowed in cats:
        if allowed is None:
            out.append(None)
            continue
        allowed = frozenset(float(c) for c in allowed)
        if not allowed:
            raise ValueError("a categorical restriction must allow at least one category")
        out.append(allowed)
    if all(a is None for a in out):
        return None
    return tuple(out)


@dataclass(frozen=True)
class Hyperbox:
    """An axis-aligned box with possibly unbounded sides.

    The scenario representation of Section 3.1: a conjunction of
    per-input conditions, rendered to analysts as an IF-THEN rule.
    Numeric inputs carry interval bounds; categorical inputs carry a
    set of allowed category codes.  Immutable — every refinement
    returns a new box.

    Parameters
    ----------
    lower, upper : ndarray
        Equal-length bound vectors; ``-inf``/``+inf`` mark an
        unrestricted side.
    cats : tuple of (frozenset or None), optional
        Per-column allowed category codes. ``None`` (the default) or an
        all-``None`` tuple means no categorical restriction anywhere.
        A dimension with a categorical restriction must keep its
        numeric bounds unrestricted (``-inf``/``+inf``) — membership on
        that column is purely set-based.

    Examples
    --------
    >>> import numpy as np
    >>> box = Hyperbox.unrestricted(2).replace(0, lower=0.25, upper=0.75)
    >>> box
    Hyperbox(0.25 <= a1 <= 0.75)
    >>> box.contains(np.array([[0.5, 0.9], [0.1, 0.9]])).tolist()
    [True, False]
    >>> box.n_restricted, round(box.volume(), 3)
    (1, 0.5)
    >>> mixed = box.with_cats(1, {0.0, 2.0})
    >>> mixed
    Hyperbox(0.25 <= a1 <= 0.75 AND a2 in {0, 2})
    >>> mixed.contains(np.array([[0.5, 2.0], [0.5, 1.0]])).tolist()
    [True, False]
    """

    lower: np.ndarray
    upper: np.ndarray
    cats: tuple | None = None

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float)
        upper = np.asarray(self.upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError(
                f"bounds must be equal-length vectors, got {lower.shape} / {upper.shape}"
            )
        if not (lower <= upper).all():
            raise ValueError("lower bounds must not exceed upper bounds")
        cats = _normalise_cats(self.cats, len(lower))
        if cats is not None:
            for j, allowed in enumerate(cats):
                if allowed is not None and (np.isfinite(lower[j]) or np.isfinite(upper[j])):
                    raise ValueError(
                        f"dimension {j} is categorically restricted; its numeric "
                        "bounds must stay -inf/+inf"
                    )
        # Freeze the arrays so the dataclass is genuinely immutable.
        lower.setflags(write=False)
        upper.setflags(write=False)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "cats", cats)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def unrestricted(cls, dim: int) -> "Hyperbox":
        """The full input space ``prod_j [-inf, +inf]``."""
        return cls(np.full(dim, -np.inf), np.full(dim, np.inf))

    def replace(self, dim: int, lower: float | None = None,
                upper: float | None = None) -> "Hyperbox":
        """New box with one dimension's numeric bounds changed."""
        new_lower = self.lower.copy()
        new_upper = self.upper.copy()
        if lower is not None:
            new_lower[dim] = lower
        if upper is not None:
            new_upper[dim] = upper
        return Hyperbox(new_lower, new_upper, self.cats)

    def with_cats(self, dim: int, allowed) -> "Hyperbox":
        """New box with one dimension's categorical restriction changed.

        Parameters
        ----------
        dim : int
            The column to restrict.
        allowed : iterable of float or None
            Allowed category codes; ``None`` removes the restriction.
            The dimension's numeric bounds are reset to ``-inf``/``+inf``
            either way (a column is restricted *either* numerically *or*
            categorically, never both).

        Returns
        -------
        Hyperbox
        """
        cats = list(self.cats) if self.cats is not None else [None] * self.dim
        cats[dim] = None if allowed is None else frozenset(float(c) for c in allowed)
        lower = self.lower.copy()
        upper = self.upper.copy()
        lower[dim] = -np.inf
        upper[dim] = np.inf
        return Hyperbox(lower, upper, tuple(cats))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.lower)

    def cat_restriction(self, dim: int):
        """The allowed-category frozenset for ``dim``, or None."""
        return None if self.cats is None else self.cats[dim]

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean membership mask for rows of ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {x.shape}")
        inside = ((x >= self.lower) & (x <= self.upper)).all(axis=1)
        if self.cats is not None:
            for j, allowed in enumerate(self.cats):
                if allowed is not None:
                    inside &= cat_mask(x[:, j], allowed)
        return inside

    @property
    def restricted_dims(self) -> np.ndarray:
        """Indices of inputs restricted by this box (numeric or categorical)."""
        restricted = np.isfinite(self.lower) | np.isfinite(self.upper)
        if self.cats is not None:
            restricted = restricted | np.array(
                [allowed is not None for allowed in self.cats])
        return np.nonzero(restricted)[0]

    @property
    def n_restricted(self) -> int:
        """The paper's #restricted interpretability measure."""
        return len(self.restricted_dims)

    def key(self) -> tuple:
        """Hashable identity of the box (for dedup in beam search).

        A 3-tuple ``(lower, upper, cats)`` where ``cats`` is ``None``
        for pure-numeric boxes, else a per-column tuple of ``None`` or
        sorted category codes.  Cached on first use: beam search and
        the refinement memo of
        :func:`repro.subgroup.best_interval.best_interval` key every
        box many times per iteration, and the box is immutable.
        """
        cached = getattr(self, "_key", None)
        if cached is None:
            if self.cats is None:
                cats_key = None
            else:
                cats_key = tuple(
                    None if allowed is None else tuple(sorted(allowed))
                    for allowed in self.cats)
            cached = (tuple(self.lower.tolist()), tuple(self.upper.tolist()),
                      cats_key)
            object.__setattr__(self, "_key", cached)
        return cached

    # ------------------------------------------------------------------
    # Volumes (Definition 2)
    # ------------------------------------------------------------------
    def _clipped_bounds(self, reference_lower: np.ndarray,
                        reference_upper: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lower = np.maximum(self.lower, reference_lower)
        upper = np.minimum(self.upper, reference_upper)
        return lower, np.maximum(upper, lower)

    def volume(
        self,
        reference_lower: np.ndarray | None = None,
        reference_upper: np.ndarray | None = None,
        discrete_levels: dict[int, np.ndarray] | None = None,
    ) -> float:
        """Normalised volume within the reference domain.

        Continuous dimensions contribute their clipped interval length
        divided by the reference length; discrete dimensions (keys of
        ``discrete_levels``) contribute the fraction of levels covered.
        The unrestricted box therefore has volume 1.

        A categorically restricted dimension contributes the fraction
        of its ``discrete_levels[j]`` entries that are allowed; when no
        level set is supplied for it, it contributes 1 (callers that
        want categorical volume must pass the level grid).
        """
        ref_lo = np.zeros(self.dim) if reference_lower is None else np.asarray(reference_lower, dtype=float)
        ref_hi = np.ones(self.dim) if reference_upper is None else np.asarray(reference_upper, dtype=float)
        lower, upper = self._clipped_bounds(ref_lo, ref_hi)
        fractions = (upper - lower) / (ref_hi - ref_lo)
        if self.cats is not None:
            for j, allowed in enumerate(self.cats):
                if allowed is not None:
                    fractions[j] = 1.0
        if discrete_levels:
            for j, levels in discrete_levels.items():
                levels = np.asarray(levels, dtype=float)
                allowed = self.cat_restriction(j)
                if allowed is not None:
                    fractions[j] = cat_mask(levels, allowed).sum() / len(levels)
                else:
                    covered = ((levels >= lower[j]) & (levels <= upper[j])).sum()
                    fractions[j] = covered / len(levels)
        return float(np.prod(fractions))

    def intersection(self, other: "Hyperbox") -> "Hyperbox | None":
        """The overlap box, or None if the boxes are disjoint.

        Categorical restrictions intersect set-wise (an unrestricted
        side is the universe); an empty intersection on any column
        means the boxes are disjoint.
        """
        lower = np.maximum(self.lower, other.lower)
        upper = np.minimum(self.upper, other.upper)
        if (lower > upper).any():
            return None
        if self.cats is None and other.cats is None:
            return Hyperbox(lower, upper)
        cats = []
        for j in range(self.dim):
            a = self.cat_restriction(j)
            b = other.cat_restriction(j)
            if a is None:
                merged = b
            elif b is None:
                merged = a
            else:
                merged = a & b
                if not merged:
                    return None
            cats.append(merged)
            if merged is not None:
                # One side may restrict the column numerically while the
                # other restricts it categorically; the intersection is
                # categorical with the numeric filter folded away only
                # when the numeric side is unrestricted.
                if np.isfinite(lower[j]) or np.isfinite(upper[j]):
                    a_arr = np.array(sorted(merged))
                    kept = a_arr[(a_arr >= lower[j]) & (a_arr <= upper[j])]
                    if len(kept) == 0:
                        return None
                    cats[j] = frozenset(kept.tolist())
                    lower = lower.copy()
                    upper = upper.copy()
                    lower[j] = -np.inf
                    upper[j] = np.inf
        return Hyperbox(lower, upper, tuple(cats))

    def __repr__(self) -> str:  # compact rule-like rendering
        parts = []
        for j in self.restricted_dims:
            allowed = self.cat_restriction(j)
            if allowed is not None:
                codes = ", ".join(f"{c:g}" for c in sorted(allowed))
                parts.append(f"a{j + 1} in {{{codes}}}")
                continue
            lo = self.lower[j]
            hi = self.upper[j]
            if np.isfinite(lo) and np.isfinite(hi):
                parts.append(f"{lo:.3g} <= a{j + 1} <= {hi:.3g}")
            elif np.isfinite(lo):
                parts.append(f"a{j + 1} >= {lo:.3g}")
            else:
                parts.append(f"a{j + 1} <= {hi:.3g}")
        body = " AND ".join(parts) if parts else "TRUE"
        return f"Hyperbox({body})"
