"""Human-readable scenario descriptions and structured export.

PRIM's selling point for scenario discovery is that domain experts read
the result (Section 5 of the paper).  This module turns boxes into the
artefacts an analyst actually consumes: named IF-THEN rules with bounds
in the model's native units, per-box coverage statistics, a textual
peeling-trajectory summary, and a JSON-compatible dict export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup.box import Hyperbox

__all__ = ["describe_box", "describe_trajectory", "box_to_dict",
           "summarize_box", "BoxSummary"]


@dataclass(frozen=True)
class BoxSummary:
    """Coverage statistics of one box on one dataset."""

    n_covered: int
    n_positive_covered: int
    precision: float
    recall: float
    volume: float
    n_restricted: int


def summarize_box(box: Hyperbox, x: np.ndarray, y: np.ndarray) -> BoxSummary:
    """Compute the coverage statistics of ``box`` on ``(x, y)``."""
    y = np.asarray(y, dtype=float)
    inside = box.contains(x)
    # Computed inline (not via repro.metrics) to keep the subgroup
    # package import-cycle free: metrics builds on subgroup, not vice
    # versa.
    n = int(inside.sum())
    covered_pos = float(y[inside].sum())
    total_pos = float(y.sum())
    prec = covered_pos / n if n else 0.0
    rec = covered_pos / total_pos if total_pos else 0.0
    return BoxSummary(
        n_covered=int(inside.sum()),
        n_positive_covered=int(y[inside].sum()),
        precision=prec,
        recall=rec,
        volume=box.volume(),
        n_restricted=box.n_restricted,
    )


def _format_bound(value: float, precision: int) -> str:
    return f"{value:.{precision}g}"


def describe_box(
    box: Hyperbox,
    *,
    input_names: list[str] | None = None,
    domain: np.ndarray | None = None,
    digits: int = 3,
) -> str:
    """Render a box as an IF-THEN rule (the Section 5 presentation).

    Parameters
    ----------
    box:
        The scenario to render.
    input_names:
        Replaces the generic ``a1..aM``.
    domain:
        A ``(2, M)`` array of native bounds; converts the unit-cube
        bounds to the model's native units — the form an expert expects.
    digits:
        Significant digits per bound.

    Returns
    -------
    str
        One-line rule, e.g. ``IF 0.2 <= a1 <= 0.6 THEN y = 1``.

    Examples
    --------
    >>> from repro.subgroup.box import Hyperbox
    >>> box = Hyperbox.unrestricted(3).replace(0, lower=0.2, upper=0.6)
    >>> describe_box(box.replace(2, upper=0.5), input_names=["rain", "temp", "cost"])
    'IF 0.2 <= rain <= 0.6 AND cost <= 0.5 THEN y = 1'
    """
    names = input_names or [f"a{j + 1}" for j in range(box.dim)]
    if len(names) != box.dim:
        raise ValueError(f"need {box.dim} input names, got {len(names)}")
    lower = box.lower.copy()
    upper = box.upper.copy()
    if domain is not None:
        dom = np.asarray(domain, dtype=float)
        if dom.shape != (2, box.dim):
            raise ValueError(f"domain must be (2, {box.dim}), got {dom.shape}")
        width = dom[1] - dom[0]
        lower = np.where(np.isfinite(lower), dom[0] + lower * width, -np.inf)
        upper = np.where(np.isfinite(upper), dom[0] + upper * width, np.inf)

    conditions = []
    for j in box.restricted_dims:
        has_lower = np.isfinite(lower[j])
        has_upper = np.isfinite(upper[j])
        if has_lower and has_upper:
            conditions.append(
                f"{_format_bound(lower[j], digits)} <= {names[j]}"
                f" <= {_format_bound(upper[j], digits)}")
        elif has_lower:
            conditions.append(f"{names[j]} >= {_format_bound(lower[j], digits)}")
        else:
            conditions.append(f"{names[j]} <= {_format_bound(upper[j], digits)}")
    if not conditions:
        return "IF TRUE THEN y = 1"
    return "IF " + " AND ".join(conditions) + " THEN y = 1"


def describe_trajectory(
    boxes: list[Hyperbox],
    x: np.ndarray,
    y: np.ndarray,
    *,
    max_rows: int = 15,
) -> str:
    """A textual peeling-trajectory table (the PRIM 'dialogue').

    One row per box: support, precision, recall, volume, #restricted —
    what an analyst scans to pick the box matching their needs.  Long
    trajectories are thinned to ``max_rows`` evenly spaced rows (the
    last box is always shown).
    """
    if not boxes:
        raise ValueError("trajectory is empty")
    indices = np.arange(len(boxes))
    if len(boxes) > max_rows:
        indices = np.unique(np.linspace(0, len(boxes) - 1, max_rows).astype(int))

    lines = [f"{'box':>5} {'n':>7} {'precision':>10} {'recall':>8} "
             f"{'volume':>8} {'#restr':>7}"]
    for i in indices:
        summary = summarize_box(boxes[i], x, y)
        lines.append(
            f"{i:>5} {summary.n_covered:>7} {summary.precision:>10.3f} "
            f"{summary.recall:>8.3f} {summary.volume:>8.4f} "
            f"{summary.n_restricted:>7}")
    return "\n".join(lines)


def box_to_dict(box: Hyperbox, *, input_names: list[str] | None = None) -> dict:
    """JSON-compatible export: restricted dims with their bounds."""
    names = input_names or [f"a{j + 1}" for j in range(box.dim)]
    if len(names) != box.dim:
        raise ValueError(f"need {box.dim} input names, got {len(names)}")
    restrictions = {}
    for j in box.restricted_dims:
        restrictions[names[j]] = {
            "lower": float(box.lower[j]) if np.isfinite(box.lower[j]) else None,
            "upper": float(box.upper[j]) if np.isfinite(box.upper[j]) else None,
        }
    return {
        "dim": box.dim,
        "n_restricted": box.n_restricted,
        "restrictions": restrictions,
    }
