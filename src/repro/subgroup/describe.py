"""Human-readable scenario descriptions and structured export.

PRIM's selling point for scenario discovery is that domain experts read
the result (Section 5 of the paper).  This module turns boxes into the
artefacts an analyst actually consumes: named IF-THEN rules with bounds
in the model's native units, per-box coverage statistics, a textual
peeling-trajectory summary, and a JSON-compatible dict export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup.box import Hyperbox

__all__ = ["describe_box", "describe_trajectory", "box_to_dict",
           "box_from_dict", "summarize_box", "BoxSummary"]


@dataclass(frozen=True)
class BoxSummary:
    """Coverage statistics of one box on one dataset."""

    n_covered: int
    n_positive_covered: int
    precision: float
    recall: float
    volume: float
    n_restricted: int


def summarize_box(box: Hyperbox, x: np.ndarray, y: np.ndarray) -> BoxSummary:
    """Compute the coverage statistics of ``box`` on ``(x, y)``."""
    y = np.asarray(y, dtype=float)
    inside = box.contains(x)
    # Computed inline (not via repro.metrics) to keep the subgroup
    # package import-cycle free: metrics builds on subgroup, not vice
    # versa.
    n = int(inside.sum())
    covered_pos = float(y[inside].sum())
    total_pos = float(y.sum())
    prec = covered_pos / n if n else 0.0
    rec = covered_pos / total_pos if total_pos else 0.0
    return BoxSummary(
        n_covered=int(inside.sum()),
        n_positive_covered=int(y[inside].sum()),
        precision=prec,
        recall=rec,
        volume=box.volume(),
        n_restricted=box.n_restricted,
    )


def _format_bound(value: float, precision: int) -> str:
    return f"{value:.{precision}g}"


def describe_box(
    box: Hyperbox,
    *,
    input_names: list[str] | None = None,
    domain: np.ndarray | None = None,
    digits: int = 3,
) -> str:
    """Render a box as an IF-THEN rule (the Section 5 presentation).

    Parameters
    ----------
    box:
        The scenario to render.
    input_names:
        Replaces the generic ``a1..aM``.
    domain:
        A ``(2, M)`` array of native bounds; converts the unit-cube
        bounds to the model's native units — the form an expert expects.
    digits:
        Significant digits per bound.

    Returns
    -------
    str
        One-line rule, e.g. ``IF 0.2 <= a1 <= 0.6 THEN y = 1``.

    Examples
    --------
    >>> from repro.subgroup.box import Hyperbox
    >>> box = Hyperbox.unrestricted(3).replace(0, lower=0.2, upper=0.6)
    >>> describe_box(box.replace(2, upper=0.5), input_names=["rain", "temp", "cost"])
    'IF 0.2 <= rain <= 0.6 AND cost <= 0.5 THEN y = 1'
    >>> describe_box(box.with_cats(1, {0.0, 2.0}), input_names=["rain", "mode", "cost"])
    'IF 0.2 <= rain <= 0.6 AND mode in {0, 2} THEN y = 1'
    """
    names = input_names or [f"a{j + 1}" for j in range(box.dim)]
    if len(names) != box.dim:
        raise ValueError(f"need {box.dim} input names, got {len(names)}")
    lower = box.lower.copy()
    upper = box.upper.copy()
    if domain is not None:
        dom = np.asarray(domain, dtype=float)
        if dom.shape != (2, box.dim):
            raise ValueError(f"domain must be (2, {box.dim}), got {dom.shape}")
        width = dom[1] - dom[0]
        lower = np.where(np.isfinite(lower), dom[0] + lower * width, -np.inf)
        upper = np.where(np.isfinite(upper), dom[0] + upper * width, np.inf)

    conditions = []
    for j in box.restricted_dims:
        allowed = box.cat_restriction(j)
        if allowed is not None:
            # Category codes are nominal identifiers, never unit-cube
            # coordinates, so domain scaling does not apply to them.
            codes = ", ".join(f"{c:g}" for c in sorted(allowed))
            conditions.append(f"{names[j]} in {{{codes}}}")
            continue
        has_lower = np.isfinite(lower[j])
        has_upper = np.isfinite(upper[j])
        if has_lower and has_upper:
            conditions.append(
                f"{_format_bound(lower[j], digits)} <= {names[j]}"
                f" <= {_format_bound(upper[j], digits)}")
        elif has_lower:
            conditions.append(f"{names[j]} >= {_format_bound(lower[j], digits)}")
        else:
            conditions.append(f"{names[j]} <= {_format_bound(upper[j], digits)}")
    if not conditions:
        return "IF TRUE THEN y = 1"
    return "IF " + " AND ".join(conditions) + " THEN y = 1"


def describe_trajectory(
    boxes: list[Hyperbox],
    x: np.ndarray,
    y: np.ndarray,
    *,
    max_rows: int = 15,
) -> str:
    """A textual peeling-trajectory table (the PRIM 'dialogue').

    One row per box: support, precision, recall, volume, #restricted —
    what an analyst scans to pick the box matching their needs.  Long
    trajectories are thinned to ``max_rows`` evenly spaced rows (the
    last box is always shown).
    """
    if not boxes:
        raise ValueError("trajectory is empty")
    indices = np.arange(len(boxes))
    if len(boxes) > max_rows:
        indices = np.unique(np.linspace(0, len(boxes) - 1, max_rows).astype(int))

    lines = [f"{'box':>5} {'n':>7} {'precision':>10} {'recall':>8} "
             f"{'volume':>8} {'#restr':>7}"]
    for i in indices:
        summary = summarize_box(boxes[i], x, y)
        lines.append(
            f"{i:>5} {summary.n_covered:>7} {summary.precision:>10.3f} "
            f"{summary.recall:>8.3f} {summary.volume:>8.4f} "
            f"{summary.n_restricted:>7}")
    return "\n".join(lines)


def box_to_dict(box: Hyperbox, *, input_names: list[str] | None = None) -> dict:
    """JSON-compatible export: restricted dims with their restrictions.

    Numeric restrictions export ``lower``/``upper`` (``None`` for an
    unbounded side); categorical restrictions export ``categories``, the
    ascending list of allowed codes.  :func:`box_from_dict` inverts the
    export exactly.
    """
    names = input_names or [f"a{j + 1}" for j in range(box.dim)]
    if len(names) != box.dim:
        raise ValueError(f"need {box.dim} input names, got {len(names)}")
    restrictions = {}
    for j in box.restricted_dims:
        allowed = box.cat_restriction(j)
        if allowed is not None:
            restrictions[names[j]] = {"categories": sorted(allowed)}
            continue
        restrictions[names[j]] = {
            "lower": float(box.lower[j]) if np.isfinite(box.lower[j]) else None,
            "upper": float(box.upper[j]) if np.isfinite(box.upper[j]) else None,
        }
    return {
        "dim": box.dim,
        "n_restricted": box.n_restricted,
        "restrictions": restrictions,
    }


def box_from_dict(data: dict, *, input_names: list[str] | None = None) -> Hyperbox:
    """Rebuild a :class:`Hyperbox` from a :func:`box_to_dict` export.

    Parameters
    ----------
    data : dict
        A mapping with ``dim`` and ``restrictions`` keys as produced by
        :func:`box_to_dict`.
    input_names : list of str, optional
        The same names the export was made with; defaults to the
        generic ``a1..aM``.

    Returns
    -------
    Hyperbox
        A box whose :meth:`~repro.subgroup.box.Hyperbox.key` equals the
        exported box's key (the describe/restrict round-trip pinned by
        ``tests/test_categorical.py``).

    Examples
    --------
    >>> from repro.subgroup.box import Hyperbox
    >>> box = Hyperbox.unrestricted(2).replace(0, lower=0.25).with_cats(1, {1.0})
    >>> box_from_dict(box_to_dict(box)).key() == box.key()
    True
    """
    dim = int(data["dim"])
    names = input_names or [f"a{j + 1}" for j in range(dim)]
    if len(names) != dim:
        raise ValueError(f"need {dim} input names, got {len(names)}")
    index_of = {name: j for j, name in enumerate(names)}
    box = Hyperbox.unrestricted(dim)
    for name, restriction in data["restrictions"].items():
        j = index_of.get(name)
        if j is None:
            raise ValueError(f"unknown input name {name!r}")
        if "categories" in restriction:
            box = box.with_cats(j, restriction["categories"])
            continue
        lower = restriction.get("lower")
        upper = restriction.get("upper")
        box = box.replace(
            j,
            lower=-np.inf if lower is None else float(lower),
            upper=np.inf if upper is None else float(upper),
        )
    return box
