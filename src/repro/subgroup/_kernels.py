"""Vectorized subgroup-discovery kernels: sort once, then run sums.

The reference peel (:func:`repro.subgroup.prim._best_peel`) builds a
boolean mask and recomputes a mean for every one of the 2M candidate
cuts of a peeling step.  :class:`VectorizedPeeler` instead sorts every
dimension once per run and keeps the per-dimension sorted orders up to
date as the box shrinks (removing rows preserves sortedness, so each
peel is a filter, not a re-sort).  Every candidate cut keeps a
contiguous run of a column's sorted points: its support comes from two
binary searches and its output sum from the box total minus one slice
sum over the short removed run (about ``alpha * n`` rows) — no
per-candidate masking at all.

The kernel reproduces the reference semantics exactly:

* quantile cuts keep ties at the boundary inside (``values >= low_q``
  / ``values <= high_q``), with the quantiles computed from the sorted
  columns by :func:`sorted_quantile`, a bit-identical replication of
  ``np.quantile``'s default linear interpolation;
* when the whole box ties at an extreme value (discrete inputs), the
  cut falls back to peeling that entire level;
* all three peeling objectives (``mean`` / ``gain`` / ``wracc``) use
  :func:`peel_score`, shared with the scalar reference;
* candidates are ordered as in the reference iteration — dimension
  major, lower cut before upper cut — and the first maximum wins.  For
  binary outputs every candidate sum is an exact integer, so the
  vectorized scores equal the reference's bit for bit and the argmax
  breaks ties identically; for soft labels, near-tied candidates are
  re-scored through the reference formula (a pairwise-summed mean over
  the kept rows in original order) before picking the winner, so exact
  ties cannot be flipped by slice-sum rounding.

:func:`sorted_group_sums` and :func:`max_sum_run` are the analogous
sort-once machinery for BestInterval's exact one-dimensional
refinement (:func:`repro.subgroup.best_interval.best_interval_for_dim`).
:class:`SortedDataset` extends them into a reusable index: the
per-column stable argsorts of one ``(x, y)`` dataset are computed once
and shared by every refinement call of a BestInterval beam search —
filtering a pre-sorted column by a membership mask replaces the
per-call re-sort, because a stable sort of a subset equals the subset
of the stable sort.

:func:`contains_many` and :func:`evaluate_boxes` are the batched
box-evaluation layer: membership of ``n`` points in ``B`` boxes is one
chunked broadcasted comparison instead of ``B`` Python-level
:meth:`Hyperbox.contains` calls, with per-box sums and means computed
through the same reductions as the scalar code paths (pairwise
``ndarray.sum``/``mean`` over the masked rows; exact integer counts
for binary labels), so batched consumers stay bit-identical to their
per-box references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup.box import cat_mask

__all__ = [
    "PeelCandidate",
    "VectorizedPeeler",
    "best_peel",
    "peel_score",
    "sorted_quantile",
    "sorted_group_sums",
    "max_sum_run",
    "best_cat_subset",
    "SortedDataset",
    "BoxBatchEvaluation",
    "contains_many",
    "evaluate_boxes",
]

#: Relative width of the near-tie window: candidates whose vectorized
#: score comes this close to the maximum are re-scored exactly.  The
#: slice-sum rounding error is O(n * eps) ~ 1e-12 for n = 1e4, so 1e-9
#: comfortably covers it while excluding genuinely distinct candidates.
_TIE_RTOL = 1e-9


def peel_score(objective: str, mean_after: float, kept: int, n: int,
               mean_before: float, total_mean: float, total_n: int) -> float:
    """Score of one candidate peel under the given objective."""
    if objective == "mean":
        return mean_after
    if objective == "gain":
        removed = n - kept
        return (mean_after - mean_before) / max(removed, 1)
    # "wracc": coverage-weighted lift of the remaining box w.r.t. the
    # full dataset.
    return (kept / total_n) * (mean_after - total_mean)


def sorted_quantile(v: np.ndarray, q: float) -> np.ndarray:
    """Per-column quantile of column-sorted data.

    Bit-identical to ``np.quantile(..., axis=0)`` with the default
    linear method: virtual index ``(n - 1) * q``, then numpy's
    branching lerp between the two neighbouring order statistics.
    """
    n = v.shape[0]
    virtual = (n - 1) * q
    if virtual >= n - 1:
        return v[n - 1]
    previous = int(np.floor(virtual))
    gamma = virtual - previous
    a = v[previous]
    b = v[previous + 1]
    diff = b - a
    if gamma >= 0.5:
        return b - diff * (1.0 - gamma)
    return a + diff * gamma


@dataclass(frozen=True)
class PeelCandidate:
    """The winning cut of one peeling step.

    ``keep_rows`` holds the ascending row indices (into the arrays the
    peeler was built from) that survive the cut.  A categorical winner
    sets ``new_cats`` — the remaining allowed codes after removing one
    category — and leaves both bounds ``None``.
    """

    dim: int
    new_lower: float | None
    new_upper: float | None
    keep_rows: np.ndarray
    score: float
    new_cats: tuple | None = None


class VectorizedPeeler:
    """Incremental candidate-cut evaluator for one PRIM peeling run.

    Construction sorts every dimension once; :meth:`best_peel` scores
    every candidate cut of the current box from prefix sums — two
    alpha-cuts per numeric dimension, one removed level per categorical
    dimension (``cat_cols``) — and :meth:`apply` shrinks the maintained
    sorted orders to the rows kept by an accepted cut.  Categorical
    candidates ride the same sort-once machinery: equal codes form one
    contiguous run of the sorted column, so removing a category is a
    slice sum exactly like an alpha-cut.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, alpha: float,
                 objective: str, total_mean: float, total_n: int,
                 cat_cols=()) -> None:
        self.y = y
        self.alpha = alpha
        self.objective = objective
        self.total_mean = total_mean
        self.total_n = total_n
        self.cat_cols = frozenset(int(c) for c in cat_cols)
        self.in_box = np.arange(len(x))
        # Column j of sorted_rows: row indices ordered by x[:, j];
        # values holds the corresponding (column-sorted) x values.
        # Fortran order keeps every column contiguous for the
        # per-column binary searches and slice sums of the hot loop.
        self.sorted_rows = np.asfortranarray(np.argsort(x, axis=0))
        self.values = np.asfortranarray(
            np.take_along_axis(x, self.sorted_rows, axis=0))
        self._member = np.zeros(len(x), dtype=bool)
        # Binary outputs make every candidate sum an exact integer, so
        # the vectorized scores already equal the reference's bit for
        # bit and no near-tie re-scoring is ever needed.
        self._exact_sums = bool(np.all((y == 0.0) | (y == 1.0)))

    def best_peel(self) -> PeelCandidate | None:
        """The best-scoring candidate peel across all faces, or None."""
        v = self.values
        n, n_dim = v.shape
        if n < 2:
            return None
        y, rows = self.y, self.sorted_rows
        y_box = y[self.in_box]
        total_y = float(y_box.sum())
        mean_before = float(y_box.mean())
        low_q = sorted_quantile(v, self.alpha)
        high_q = sorted_quantile(v, 1.0 - self.alpha)

        # Candidate layout matches the reference iteration order:
        # dimension major; a numeric dimension contributes its lower
        # then its upper alpha-cut, a categorical dimension one
        # candidate per in-box level in ascending code order.  Every
        # candidate removes one contiguous run [start, stop) of its
        # column's sorted order (equal codes are adjacent after the
        # sort), so each candidate sum is one slice sum over the short
        # removed run, never a full pass.
        dims: list[int] = []
        bounds: list[float] = []
        starts: list[int] = []
        stops: list[int] = []
        cat_flags: list[bool] = []
        kept_counts: list[int] = []
        kept_sums: list[float] = []
        for j in range(n_dim):
            vj = v[:, j]

            if j in self.cat_cols:
                # One candidate per removable category: drop the whole
                # level's run; a single remaining level cannot be peeled.
                group_starts = np.flatnonzero(
                    np.concatenate(([True], vj[1:] > vj[:-1])))
                if len(group_starts) < 2:
                    continue
                group_stops = np.append(group_starts[1:], n)
                for g0, g1 in zip(group_starts.tolist(), group_stops.tolist()):
                    dims.append(j)
                    bounds.append(float(vj[g0]))
                    starts.append(g0)
                    stops.append(g1)
                    cat_flags.append(True)
                    kept_counts.append(n - (g1 - g0))
                    kept_sums.append(total_y - float(y[rows[g0:g1, j]].sum()))
                continue

            # Lower cut: drop everything below the alpha-quantile; if
            # the whole box ties at the minimum, peel that entire level.
            cut = int(np.searchsorted(vj, low_q[j], side="left"))
            bound = low_q[j]
            if cut == 0:
                cut = int(np.searchsorted(vj, vj[0], side="right"))
                if cut < n:
                    bound = vj[cut]
            if 0 < cut < n:
                dims.append(j)
                bounds.append(float(bound))
                starts.append(0)
                stops.append(cut)
                cat_flags.append(False)
                kept_counts.append(n - cut)
                kept_sums.append(total_y - float(y[rows[:cut, j]].sum()))

            # Upper cut: drop everything above the (1 - alpha)-quantile;
            # same whole-level fallback at the maximum.
            cut = int(np.searchsorted(vj, high_q[j], side="right"))
            bound = high_q[j]
            if cut == n:
                cut = int(np.searchsorted(vj, vj[n - 1], side="left"))
                if cut > 0:
                    bound = vj[cut - 1]
            if 0 < cut < n:
                dims.append(j)
                bounds.append(float(bound))
                starts.append(cut)
                stops.append(n)
                cat_flags.append(False)
                kept_counts.append(cut)
                kept_sums.append(total_y - float(y[rows[cut:, j]].sum()))

        if not dims:
            return None

        kept = np.array(kept_counts, dtype=np.int64)
        sums = np.array(kept_sums)
        mean_after = sums / np.maximum(kept, 1)
        if self.objective == "mean":
            scores = mean_after
        elif self.objective == "gain":
            scores = (mean_after - mean_before) / np.maximum(n - kept, 1)
        else:  # "wracc"
            scores = (kept / self.total_n) * (mean_after - self.total_mean)

        best = int(np.argmax(scores))
        if not self._exact_sums:
            best = self._resolve_near_ties(scores, best, dims, starts, stops,
                                           mean_before)

        dim = dims[best]
        start, stop = starts[best], stops[best]
        bound = bounds[best]
        # The removed run is short (about alpha * n rows, or one
        # category's level), so the ascending kept set comes cheaper
        # from deleting its positions in the ascending in_box than from
        # sorting the kept slice.
        removed = np.sort(rows[start:stop, dim])
        keep_rows = np.delete(self.in_box, np.searchsorted(self.in_box, removed))
        if cat_flags[best]:
            new_cats = tuple(float(c) for c in np.unique(v[:, dim])
                             if c != bound)
            return PeelCandidate(dim=dim, new_lower=None, new_upper=None,
                                 keep_rows=keep_rows,
                                 score=float(scores[best]), new_cats=new_cats)
        is_lower = start == 0
        return PeelCandidate(
            dim=dim,
            new_lower=bound if is_lower else None,
            new_upper=None if is_lower else bound,
            keep_rows=keep_rows,
            score=float(scores[best]),
        )

    def _resolve_near_ties(self, scores: np.ndarray, best: int, dims, starts,
                           stops, mean_before: float) -> int:
        """First candidate winning under exact reference scoring.

        Slice sums of soft labels carry rounding noise, so candidates
        whose true scores are equal (typically cuts keeping the same
        rows through different dimensions) may come out of the argmax
        in the wrong order.  Re-score every near-tied candidate the way
        the reference does — a numpy pairwise mean over the kept rows
        in original order — and keep the first strict maximum.
        """
        best_score = scores[best]
        tol = _TIE_RTOL * max(1.0, abs(best_score))
        contenders = np.nonzero(scores >= best_score - tol)[0]
        if len(contenders) < 2:
            return best
        n = self.values.shape[0]
        winner, winner_score = best, -np.inf
        for i in contenders:
            i = int(i)
            col = self.sorted_rows[:, dims[i]]
            rows = np.sort(np.concatenate((col[:starts[i]], col[stops[i]:])))
            exact = peel_score(
                self.objective, float(self.y[rows].mean()), len(rows), n,
                mean_before, self.total_mean, self.total_n,
            )
            if exact > winner_score:
                winner, winner_score = i, exact
        return winner

    def apply(self, step: PeelCandidate) -> None:
        """Shrink the maintained sorted orders to ``step.keep_rows``."""
        rows = self.sorted_rows
        n_dim = rows.shape[1]
        self._member[step.keep_rows] = True
        keep = self._member[rows]
        self._member[step.keep_rows] = False
        n_new = len(step.keep_rows)
        # Row removal preserves each column's sortedness, so peeling is
        # a per-column compaction (via the transpose, since each column
        # keeps a different pattern of positions), never a re-sort.
        self.sorted_rows = rows.T[keep.T].reshape(n_dim, n_new).T
        self.values = self.values.T[keep.T].reshape(n_dim, n_new).T
        self.in_box = step.keep_rows


def best_peel(
    x_box: np.ndarray,
    y_box: np.ndarray,
    alpha: float,
    objective: str = "mean",
    total_mean: float = 0.0,
    total_n: int = 1,
    cat_cols=(),
) -> PeelCandidate | None:
    """One-shot candidate search over the rows of ``x_box``/``y_box``."""
    peeler = VectorizedPeeler(x_box, y_box, alpha, objective,
                              total_mean, total_n, cat_cols=cat_cols)
    return peeler.best_peel()


def sorted_group_sums(values: np.ndarray,
                      weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct values in ascending order plus their summed weights.

    The sort-once/group-reduce step shared by interval optimisers: an
    interval either includes all points with a value or none of them,
    so only per-level weight sums matter.
    """
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    boundaries = np.empty(len(values), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = values[1:] > values[:-1]
    group_ids = np.cumsum(boundaries) - 1
    group_sums = np.bincount(group_ids, weights=weights)
    return values[boundaries], group_sums


def max_sum_run(sums: np.ndarray) -> tuple[int, int, float]:
    """Vectorized Kadane: (start, end, best_sum) of the max-sum run.

    The run ending at ``i`` with the largest sum starts right after the
    lowest prefix sum seen before ``i``, so the whole search is three
    scans — ``cumsum``, a running ``minimum.accumulate`` of the prefix
    sums, and one ``argmax`` — instead of a Python-level loop.  Tie
    handling replicates the sequential reset-on-nonpositive Kadane it
    replaces: at least one group is always included, among equal-sum
    runs the first-ending one wins, and the run start is the *latest*
    index achieving the prefix minimum (a sequential Kadane resets on
    ``run_sum <= 0``, which keeps the rightmost tied minimum).

    Both BestInterval engines share this scorer (like the PRIM engines
    share :func:`peel_score`), which is what makes their outputs
    bit-identical.  Prefix *differences* round differently than
    restart-based run sums in the last ulp, so on mathematically tied
    soft-label runs the winner may differ from the pre-vectorization
    sequential implementation — exact-arithmetic inputs (binary labels
    with dyadic base rates, integer weights) are unaffected, and the
    differential test in ``tests/test_bi_equivalence.py`` pins the
    exact-arithmetic agreement.
    """
    s = np.asarray(sums, dtype=float)
    n = len(s)
    if n == 0:
        return 0, 0, float(-np.inf)
    prefix = np.cumsum(s)
    # floor[i] = lowest prefix sum strictly left of i (0.0 for the
    # empty prefix), computed in place of an explicit shifted copy.
    running_min = np.minimum.accumulate(prefix)
    scores = np.empty(n)
    scores[0] = prefix[0]
    np.subtract(prefix[1:], np.minimum(running_min[:-1], 0.0),
                out=scores[1:])
    end = int(np.argmax(scores))  # first maximum wins
    floor_at_end = 0.0 if end == 0 else min(float(running_min[end - 1]), 0.0)
    # Run start: latest index whose left-prefix equals the floor at
    # `end` (a sequential Kadane resets on run_sum <= 0, keeping the
    # rightmost tied minimum; the empty prefix before index 0 is 0.0).
    matches = np.nonzero(prefix[:end] == floor_at_end)[0]
    start = int(matches[-1]) + 1 if len(matches) else 0
    return start, end, float(scores[end])


def best_cat_subset(group_sums: np.ndarray) -> np.ndarray:
    """Selection mask of the WRAcc-optimal unordered category subset.

    The categorical analogue of :func:`max_sum_run`: category levels
    are unordered, so the subset maximising the summed WRAcc weights
    ``y - pi`` is simply every level with a positive weight sum.  At
    least one level is always selected (a subgroup must be non-empty):
    when no sum is positive the first level attaining the maximum wins,
    mirroring the first-maximum convention of the interval scorer.
    Zero-sum levels are excluded — they leave the quality unchanged and
    excluding them yields the tighter description.

    Both BestInterval engines share this scorer, which is what makes
    their categorical refinements bit-identical.

    Parameters
    ----------
    group_sums : ndarray of shape (G,)
        Summed WRAcc weights per distinct level, ascending level order
        (as produced by :func:`sorted_group_sums`).

    Returns
    -------
    ndarray of bool, shape (G,)

    Examples
    --------
    >>> import numpy as np
    >>> best_cat_subset(np.array([0.5, -1.0, 0.25])).tolist()
    [True, False, True]
    >>> best_cat_subset(np.array([-2.0, -0.5, -0.5])).tolist()
    [False, True, False]
    """
    sums = np.asarray(group_sums, dtype=float)
    selected = sums > 0.0
    if not selected.any():
        selected = np.zeros(len(sums), dtype=bool)
        selected[int(np.argmax(sums))] = True
    return selected


class SortedDataset:
    """Per-column sorted index of one ``(x, y)`` dataset, built once.

    The substrate for vectorized BestInterval refinements: every column
    of ``x`` is stable-argsorted a single time, and each refinement
    call filters the pre-sorted column by a membership mask.  Because
    the argsort is stable, the filtered values and weights come out in
    exactly the order a fresh ``np.argsort(values, kind="stable")`` of
    the subset would produce, so group sums (and therefore refined
    bounds) are bit-identical to the re-sorting reference
    (:func:`sorted_group_sums`).

    Parameters
    ----------
    x, y:
        The full dataset as float arrays; ``y`` may be binary or soft
        labels in [0, 1].
    base_rate:
        Precomputed ``pi = y.mean()``; ``None`` computes it here.
    native:
        Route the max-sum-run search through the compiled kernel
        (:func:`repro.subgroup._native.max_sum_run_native`) — set by
        ``engine="native"`` callers; refined bounds stay bit-identical.
    """

    __slots__ = ("x", "y", "n", "dim", "base_rate", "order", "values",
                 "sorted_weights", "columns", "use_native")

    def __init__(self, x: np.ndarray, y: np.ndarray,
                 base_rate: float | None = None,
                 native: bool = False) -> None:
        self.use_native = bool(native)
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.n, self.dim = self.x.shape
        self.base_rate = float(self.y.mean()) if base_rate is None else base_rate
        # Column j of order: row indices sorted by x[:, j] (stable, so
        # ties keep ascending row order); values/sorted_weights hold the
        # corresponding column-sorted x values and WRAcc contributions.
        # Fortran order keeps each column contiguous for the per-column
        # filters of the hot loop; columns is the unsorted x in the same
        # layout for fast single-dimension interval checks.
        self.order = np.asfortranarray(np.argsort(self.x, axis=0, kind="stable"))
        self.values = np.asfortranarray(
            np.take_along_axis(self.x, self.order, axis=0))
        self.sorted_weights = np.asfortranarray(
            (self.y - self.base_rate)[self.order])
        self.columns = np.asfortranarray(self.x)

    def except_masks(self, box):
        """Membership masks ignoring one dimension, all from one pass.

        Returns a callable ``mask_for(j)`` giving the boolean mask of
        rows inside ``box`` on every restricted dimension except ``j``
        — the reference's ``_contains_except`` — but the per-dimension
        interval checks run once per *box* instead of once per
        ``(box, dim)`` pair: a row is inside-except-``j`` iff it
        violates no restricted dimension, or only violates ``j``.
        """
        restricted = box.restricted_dims
        if len(restricted) == 0:
            everything = np.ones(self.n, dtype=bool)
            return lambda j: everything
        # Same comparison direction as the masking reference so that
        # non-finite values fall on the same side.
        outside = ~((self.x[:, restricted] >= box.lower[restricted])
                    & (self.x[:, restricted] <= box.upper[restricted]))
        if getattr(box, "cats", None) is not None:
            # Categorically restricted columns carry -inf/+inf numeric
            # bounds, so the interval pass above leaves them all-inside;
            # overwrite with the shared set-membership mask.
            for i, d in enumerate(restricted):
                allowed = box.cats[d]
                if allowed is not None:
                    outside[:, i] = ~cat_mask(self.x[:, d], allowed)
        violations = outside.sum(axis=1)
        no_violation = violations == 0
        only_violation = violations == 1
        column_of = {int(d): i for i, d in enumerate(restricted)}

        def mask_for(j: int) -> np.ndarray:
            i = column_of.get(j)
            if i is None:
                return no_violation
            return no_violation | (only_violation & outside[:, i])

        return mask_for

    def _filtered_groups(self, j: int, mask: np.ndarray):
        """``(group_values, group_sums)`` of column ``j`` over ``mask``.

        Filter the pre-sorted column by the membership mask, then group
        equal values — bit-identical to re-sorting the subset (stable
        sort of a subset equals the subset of the stable sort), shared
        by the interval and categorical refinements.  Returns ``None``
        when the mask selects no rows.
        """
        keep = np.flatnonzero(mask[self.order[:, j]])
        if len(keep) == 0:
            return None
        vals = self.values[:, j].take(keep)
        weights = self.sorted_weights[:, j].take(keep)
        boundaries = np.empty(len(vals), dtype=bool)
        boundaries[0] = True
        np.greater(vals[1:], vals[:-1], out=boundaries[1:])
        if boundaries.all():
            # All values distinct (the common continuous-data case):
            # every point is its own group, so the group-reduce is the
            # identity and the whole grouping pass can be skipped.
            return vals, weights
        group_ids = np.cumsum(boundaries) - 1
        group_sums = np.bincount(group_ids, weights=weights)
        return vals[boundaries], group_sums

    def interval_bounds(self, j: int,
                        mask: np.ndarray) -> tuple[float, float] | None:
        """Best-WRAcc interval of column ``j`` over the rows in ``mask``.

        The sort-free core of one BestInterval refinement: filter the
        pre-sorted column, group equal values, and run the max-sum-run
        search over the per-group weight sums.  Returns the
        ``(lower, upper)`` bounds with ``-inf``/``+inf`` when the
        winning run touches the data extremes, or ``None`` when the
        mask selects no rows (the caller keeps the box unchanged).
        """
        groups = self._filtered_groups(j, mask)
        if groups is None:
            return None
        group_values, group_sums = groups
        if self.use_native:
            from repro.subgroup._native import max_sum_run_native

            start, end, _ = max_sum_run_native(group_sums)
        else:
            start, end, _ = max_sum_run(group_sums)
        lower = -np.inf if start == 0 else float(group_values[start])
        upper = (np.inf if end == len(group_values) - 1
                 else float(group_values[end]))
        return lower, upper

    def cat_allowed(self, j: int, mask: np.ndarray):
        """Best-WRAcc category subset of column ``j`` over ``mask``.

        The categorical counterpart of :meth:`interval_bounds`: group
        the filtered column's codes and hand the per-level weight sums
        to :func:`best_cat_subset`.  Returns ``None`` when the mask
        selects no rows (box unchanged), the empty tuple ``()`` when
        every observed level is selected (the dimension becomes
        unrestricted — the analogue of a winning run touching both data
        extremes), else the ascending tuple of allowed codes.  The
        non-empty-subgroup guarantee of :func:`best_cat_subset` means a
        genuine restriction is never encoded as ``()``.
        """
        groups = self._filtered_groups(j, mask)
        if groups is None:
            return None
        group_values, group_sums = groups
        selected = best_cat_subset(group_sums)
        if selected.all():
            return ()
        return tuple(float(v) for v in group_values[selected])


#: Boolean-element budget per chunk of the batched membership kernel
#: (chunk_boxes * n_points); bounds peak temporaries to a few MB.
_CONTAINS_CHUNK_ELEMENTS = 1 << 23


def contains_many(boxes, x: np.ndarray, native: bool = False) -> np.ndarray:
    """Membership of every row of ``x`` in every box, batched.

    The batched replacement for per-box :meth:`Hyperbox.contains`
    loops: box bounds are stacked into ``(B, dim)`` matrices and
    membership is one broadcasted comparison per dimension, chunked
    over boxes to bound memory.  Each output row is bit-identical to
    ``box.contains(x)``.

    Parameters
    ----------
    boxes:
        Sequence of hyperboxes (anything exposing ``lower``/``upper``).
    x:
        Data matrix of shape ``(n, dim)``.
    native:
        Run the interval comparisons through the compiled
        :func:`repro.subgroup._native.box_membership` kernel
        (``prange`` over boxes); categorical restrictions still apply
        per box through the shared ``cat_mask`` helper, so rows stay
        bit-identical.

    Returns
    -------
    np.ndarray
        Boolean matrix of shape ``(len(boxes), n)``.
    """
    # Column-contiguous layout: every dimension's comparison streams
    # one contiguous column across all boxes (about 3x faster than
    # striding through C-order rows, for one cheap copy).
    x = np.asfortranarray(x, dtype=float)
    n, dim = x.shape
    boxes = list(boxes)
    n_boxes = len(boxes)
    out = np.empty((n_boxes, n), dtype=bool)
    if n_boxes == 0:
        return out
    lowers = np.array([box.lower for box in boxes])
    uppers = np.array([box.upper for box in boxes])
    if native:
        from repro.engines import native_ready

        if native_ready():
            from repro.subgroup._native import box_membership

            # x.T of the Fortran-order matrix is C-order: each
            # dimension's sweep streams contiguous memory, the same
            # locality the chunked numpy path gets from its columns.
            inside = box_membership(
                np.ascontiguousarray(lowers, dtype=float),
                np.ascontiguousarray(uppers, dtype=float),
                np.ascontiguousarray(x.T))
            for b, box in enumerate(boxes):
                cats = getattr(box, "cats", None)
                if cats is not None:
                    for j, allowed in enumerate(cats):
                        if allowed is not None:
                            inside[b] &= cat_mask(x[:, j], allowed)
            out[:] = inside
            return out
    chunk = max(1, _CONTAINS_CHUNK_ELEMENTS // max(n, 1))
    for s in range(0, n_boxes, chunk):
        lo = lowers[s:s + chunk]
        hi = uppers[s:s + chunk]
        inside = np.ones((len(lo), n), dtype=bool)
        for j in range(dim):
            column = x[:, j]
            inside &= column >= lo[:, j, None]
            inside &= column <= hi[:, j, None]
        # Categorical restrictions (a minority of boxes in mixed runs)
        # apply per box through the same shared membership helper as
        # Hyperbox.contains, so batched rows stay bit-identical.
        for offset in range(len(lo)):
            cats = getattr(boxes[s + offset], "cats", None)
            if cats is not None:
                for j, allowed in enumerate(cats):
                    if allowed is not None:
                        inside[offset] &= cat_mask(x[:, j], allowed)
        out[s:s + chunk] = inside
    return out


@dataclass(frozen=True)
class BoxBatchEvaluation:
    """Per-box coverage statistics of one :func:`evaluate_boxes` call.

    ``y_sums``/``y_means`` are bit-identical to ``y[mask].sum()`` /
    ``y[mask].mean()`` computed per box (``y_means`` is 0 for empty
    boxes), so quality measures derived from them match their scalar
    reference formulas exactly.
    """

    masks: np.ndarray      # (B, n) bool membership matrix
    n_inside: np.ndarray   # (B,) int64 coverage counts
    y_sums: np.ndarray     # (B,) float sums of y over each box
    y_means: np.ndarray    # (B,) float means of y over each box
    n_total: int
    y_total: float
    base_rate: float

    def precision_recall(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-box ``(n+/n, n+/N+)``, empty boxes / no positives = 0.

        The one shared derivation of the scalar convention
        (:func:`repro.metrics.quality.precision_recall`): element for
        element, ``y_sums[i]/n_inside[i]`` and ``y_sums[i]/y_total``
        with the same zero-guards.
        """
        count = len(self.n_inside)
        precisions = np.divide(
            self.y_sums, self.n_inside,
            out=np.zeros(count), where=self.n_inside > 0)
        recalls = (self.y_sums / self.y_total if self.y_total
                   else np.zeros(count))
        return precisions, recalls


def _evaluate_boxes_chunk(context, start: int, stop: int) -> "BoxBatchEvaluation":
    """Boxes ``[start, stop)`` of a fanned-out :func:`evaluate_boxes`."""
    return evaluate_boxes(context["boxes"][start:stop], context["x"],
                          context["y"], binary=context["binary"])


def evaluate_boxes(boxes, x: np.ndarray, y: np.ndarray,
                   binary: bool | None = None, *, jobs: int | None = 1,
                   chunk_boxes: int | None = None) -> BoxBatchEvaluation:
    """Batched coverage statistics for many boxes on one dataset.

    One :func:`contains_many` call replaces the per-box masking loops
    of the bumping precision/recall pass, the covering loop and the
    subgroup-set metrics.  For binary labels the per-box positive
    counts come from one exact integer reduction over the positive
    columns; for soft labels each box's sum and mean run through the
    same pairwise ``ndarray`` reductions as the scalar code, keeping
    every derived measure bit-identical to its reference.

    With ``jobs`` > 1 (or ``None`` for all CPUs) contiguous box chunks
    fan out over the executor layer — the large-test-set path of the
    harness: ``x``/``y`` cross process boundaries zero-copy through the
    data plane, each worker runs this very function on its slice, and
    the per-box statistics concatenate in box order.  Every per-box
    value is computed from the full ``y`` exactly as in the serial
    call (the ``binary`` regime is resolved once on the whole label
    vector, the totals come from the parent), so results stay
    bit-identical for any ``jobs``/``chunk_boxes`` setting.
    """
    y = np.asarray(y, dtype=float)
    if binary is None:
        binary = bool(np.all((y == 0.0) | (y == 1.0)))
    boxes = list(boxes)
    if (jobs is None or jobs > 1) and len(boxes) > 1:
        from repro.experiments.parallel import run_chunked

        parts = run_chunked(
            _evaluate_boxes_chunk, len(boxes), jobs=jobs,
            chunk_rows=chunk_boxes,
            context={"boxes": boxes, "binary": binary},
            shared={"x": np.ascontiguousarray(x, dtype=float), "y": y})
        return BoxBatchEvaluation(
            masks=np.vstack([part.masks for part in parts]),
            n_inside=np.concatenate([part.n_inside for part in parts]),
            y_sums=np.concatenate([part.y_sums for part in parts]),
            y_means=np.concatenate([part.y_means for part in parts]),
            n_total=len(y),
            y_total=float(y.sum()),
            base_rate=float(y.mean()),
        )
    masks = contains_many(boxes, x)
    n_inside = masks.sum(axis=1)
    n_total = len(y)
    if binary:
        # Integer sums are exact under any summation order.
        y_sums = masks[:, y == 1.0].sum(axis=1).astype(float)
        y_means = np.divide(y_sums, n_inside,
                            out=np.zeros(len(masks)), where=n_inside > 0)
    else:
        y_sums = np.zeros(len(masks))
        y_means = np.zeros(len(masks))
        for i, mask in enumerate(masks):
            if n_inside[i]:
                covered = y[mask]
                y_sums[i] = float(covered.sum())
                y_means[i] = float(covered.mean())
    return BoxBatchEvaluation(
        masks=masks,
        n_inside=n_inside,
        y_sums=y_sums,
        y_means=y_means,
        n_total=n_total,
        y_total=float(y.sum()),
        base_rate=float(y.mean()),
    )
