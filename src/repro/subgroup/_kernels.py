"""Vectorized subgroup-discovery kernels: sort once, then run sums.

The reference peel (:func:`repro.subgroup.prim._best_peel`) builds a
boolean mask and recomputes a mean for every one of the 2M candidate
cuts of a peeling step.  :class:`VectorizedPeeler` instead sorts every
dimension once per run and keeps the per-dimension sorted orders up to
date as the box shrinks (removing rows preserves sortedness, so each
peel is a filter, not a re-sort).  Every candidate cut keeps a
contiguous run of a column's sorted points: its support comes from two
binary searches and its output sum from the box total minus one slice
sum over the short removed run (about ``alpha * n`` rows) — no
per-candidate masking at all.

The kernel reproduces the reference semantics exactly:

* quantile cuts keep ties at the boundary inside (``values >= low_q``
  / ``values <= high_q``), with the quantiles computed from the sorted
  columns by :func:`sorted_quantile`, a bit-identical replication of
  ``np.quantile``'s default linear interpolation;
* when the whole box ties at an extreme value (discrete inputs), the
  cut falls back to peeling that entire level;
* all three peeling objectives (``mean`` / ``gain`` / ``wracc``) use
  :func:`peel_score`, shared with the scalar reference;
* candidates are ordered as in the reference iteration — dimension
  major, lower cut before upper cut — and the first maximum wins.  For
  binary outputs every candidate sum is an exact integer, so the
  vectorized scores equal the reference's bit for bit and the argmax
  breaks ties identically; for soft labels, near-tied candidates are
  re-scored through the reference formula (a pairwise-summed mean over
  the kept rows in original order) before picking the winner, so exact
  ties cannot be flipped by slice-sum rounding.

:func:`sorted_group_sums` and :func:`max_sum_run` are the analogous
sort-once machinery for BestInterval's exact one-dimensional
refinement (:func:`repro.subgroup.best_interval.best_interval_for_dim`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PeelCandidate",
    "VectorizedPeeler",
    "best_peel",
    "peel_score",
    "sorted_quantile",
    "sorted_group_sums",
    "max_sum_run",
]

#: Relative width of the near-tie window: candidates whose vectorized
#: score comes this close to the maximum are re-scored exactly.  The
#: slice-sum rounding error is O(n * eps) ~ 1e-12 for n = 1e4, so 1e-9
#: comfortably covers it while excluding genuinely distinct candidates.
_TIE_RTOL = 1e-9


def peel_score(objective: str, mean_after: float, kept: int, n: int,
               mean_before: float, total_mean: float, total_n: int) -> float:
    """Score of one candidate peel under the given objective."""
    if objective == "mean":
        return mean_after
    if objective == "gain":
        removed = n - kept
        return (mean_after - mean_before) / max(removed, 1)
    # "wracc": coverage-weighted lift of the remaining box w.r.t. the
    # full dataset.
    return (kept / total_n) * (mean_after - total_mean)


def sorted_quantile(v: np.ndarray, q: float) -> np.ndarray:
    """Per-column quantile of column-sorted data.

    Bit-identical to ``np.quantile(..., axis=0)`` with the default
    linear method: virtual index ``(n - 1) * q``, then numpy's
    branching lerp between the two neighbouring order statistics.
    """
    n = v.shape[0]
    virtual = (n - 1) * q
    if virtual >= n - 1:
        return v[n - 1]
    previous = int(np.floor(virtual))
    gamma = virtual - previous
    a = v[previous]
    b = v[previous + 1]
    diff = b - a
    if gamma >= 0.5:
        return b - diff * (1.0 - gamma)
    return a + diff * gamma


@dataclass(frozen=True)
class PeelCandidate:
    """The winning cut of one peeling step.

    ``keep_rows`` holds the ascending row indices (into the arrays the
    peeler was built from) that survive the cut.
    """

    dim: int
    new_lower: float | None
    new_upper: float | None
    keep_rows: np.ndarray
    score: float


class VectorizedPeeler:
    """Incremental candidate-cut evaluator for one PRIM peeling run.

    Construction sorts every dimension once; :meth:`best_peel` scores
    all 2M candidate cuts of the current box from prefix sums, and
    :meth:`apply` shrinks the maintained sorted orders to the rows kept
    by an accepted cut.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, alpha: float,
                 objective: str, total_mean: float, total_n: int) -> None:
        self.y = y
        self.alpha = alpha
        self.objective = objective
        self.total_mean = total_mean
        self.total_n = total_n
        self.in_box = np.arange(len(x))
        # Column j of sorted_rows: row indices ordered by x[:, j];
        # values holds the corresponding (column-sorted) x values.
        # Fortran order keeps every column contiguous for the
        # per-column binary searches and slice sums of the hot loop.
        self.sorted_rows = np.asfortranarray(np.argsort(x, axis=0))
        self.values = np.asfortranarray(
            np.take_along_axis(x, self.sorted_rows, axis=0))
        self._member = np.zeros(len(x), dtype=bool)
        # Binary outputs make every candidate sum an exact integer, so
        # the vectorized scores already equal the reference's bit for
        # bit and no near-tie re-scoring is ever needed.
        self._exact_sums = bool(np.all((y == 0.0) | (y == 1.0)))

    def best_peel(self) -> PeelCandidate | None:
        """The best-scoring candidate peel across all 2M faces, or None."""
        v = self.values
        n, n_dim = v.shape
        if n < 2:
            return None
        y, rows = self.y, self.sorted_rows
        y_box = y[self.in_box]
        total_y = float(y_box.sum())
        mean_before = float(y_box.mean())
        low_q = sorted_quantile(v, self.alpha)
        high_q = sorted_quantile(v, 1.0 - self.alpha)

        # Candidate layout matches the reference iteration order: index
        # 2j is dimension j's lower cut, 2j + 1 its upper cut.  An
        # alpha-cut removes only a short sorted run, so each candidate
        # sum is one slice sum over the removed side, never a full pass.
        cuts = np.zeros(2 * n_dim, dtype=np.int64)
        bounds = np.zeros(2 * n_dim)
        kept = np.zeros(2 * n_dim, dtype=np.int64)
        kept_sums = np.zeros(2 * n_dim)
        valid = np.zeros(2 * n_dim, dtype=bool)
        for j in range(n_dim):
            vj = v[:, j]

            # Lower cut: drop everything below the alpha-quantile; if
            # the whole box ties at the minimum, peel that entire level.
            cut = int(np.searchsorted(vj, low_q[j], side="left"))
            bound = low_q[j]
            if cut == 0:
                cut = int(np.searchsorted(vj, vj[0], side="right"))
                if cut < n:
                    bound = vj[cut]
            if 0 < cut < n:
                i = 2 * j
                cuts[i], bounds[i], valid[i] = cut, bound, True
                kept[i] = n - cut
                kept_sums[i] = total_y - float(y[rows[:cut, j]].sum())

            # Upper cut: drop everything above the (1 - alpha)-quantile;
            # same whole-level fallback at the maximum.
            cut = int(np.searchsorted(vj, high_q[j], side="right"))
            bound = high_q[j]
            if cut == n:
                cut = int(np.searchsorted(vj, vj[n - 1], side="left"))
                if cut > 0:
                    bound = vj[cut - 1]
            if 0 < cut < n:
                i = 2 * j + 1
                cuts[i], bounds[i], valid[i] = cut, bound, True
                kept[i] = cut
                kept_sums[i] = total_y - float(y[rows[cut:, j]].sum())

        if not valid.any():
            return None

        mean_after = kept_sums / np.maximum(kept, 1)
        if self.objective == "mean":
            scores = mean_after
        elif self.objective == "gain":
            scores = (mean_after - mean_before) / np.maximum(n - kept, 1)
        else:  # "wracc"
            scores = (kept / self.total_n) * (mean_after - self.total_mean)
        scores = np.where(valid, scores, -np.inf)

        best = int(np.argmax(scores))
        if not self._exact_sums:
            best = self._resolve_near_ties(scores, best, n, cuts, mean_before)

        start, stop = self._keep_run(best, cuts, n)
        bound = float(bounds[best])
        is_lower = best % 2 == 0
        # The removed run is short (about alpha * n rows), so the
        # ascending kept set comes cheaper from deleting its positions
        # in the ascending in_box than from sorting the kept slice.
        removed = np.sort(rows[:start, best // 2] if is_lower
                          else rows[stop:, best // 2])
        keep_rows = np.delete(self.in_box, np.searchsorted(self.in_box, removed))
        return PeelCandidate(
            dim=best // 2,
            new_lower=bound if is_lower else None,
            new_upper=None if is_lower else bound,
            keep_rows=keep_rows,
            score=float(scores[best]),
        )

    @staticmethod
    def _keep_run(candidate: int, cuts: np.ndarray, n: int) -> tuple[int, int]:
        """The sorted-order run a candidate keeps: tail for lower cuts,
        head for upper cuts."""
        if candidate % 2 == 0:
            return int(cuts[candidate]), n
        return 0, int(cuts[candidate])

    def _resolve_near_ties(self, scores: np.ndarray, best: int, n: int,
                           cuts: np.ndarray, mean_before: float) -> int:
        """First candidate winning under exact reference scoring.

        Slice sums of soft labels carry rounding noise, so candidates
        whose true scores are equal (typically cuts keeping the same
        rows through different dimensions) may come out of the argmax
        in the wrong order.  Re-score every near-tied candidate the way
        the reference does — a numpy pairwise mean over the kept rows
        in original order — and keep the first strict maximum.
        """
        best_score = scores[best]
        tol = _TIE_RTOL * max(1.0, abs(best_score))
        contenders = np.nonzero(scores >= best_score - tol)[0]
        if len(contenders) < 2:
            return best
        winner, winner_score = best, -np.inf
        for i in contenders:
            start, stop = self._keep_run(int(i), cuts, n)
            rows = np.sort(self.sorted_rows[start:stop, i // 2])
            exact = peel_score(
                self.objective, float(self.y[rows].mean()), stop - start, n,
                mean_before, self.total_mean, self.total_n,
            )
            if exact > winner_score:
                winner, winner_score = int(i), exact
        return winner

    def apply(self, step: PeelCandidate) -> None:
        """Shrink the maintained sorted orders to ``step.keep_rows``."""
        rows = self.sorted_rows
        n_dim = rows.shape[1]
        self._member[step.keep_rows] = True
        keep = self._member[rows]
        self._member[step.keep_rows] = False
        n_new = len(step.keep_rows)
        # Row removal preserves each column's sortedness, so peeling is
        # a per-column compaction (via the transpose, since each column
        # keeps a different pattern of positions), never a re-sort.
        self.sorted_rows = rows.T[keep.T].reshape(n_dim, n_new).T
        self.values = self.values.T[keep.T].reshape(n_dim, n_new).T
        self.in_box = step.keep_rows


def best_peel(
    x_box: np.ndarray,
    y_box: np.ndarray,
    alpha: float,
    objective: str = "mean",
    total_mean: float = 0.0,
    total_n: int = 1,
) -> PeelCandidate | None:
    """One-shot candidate search over the rows of ``x_box``/``y_box``."""
    peeler = VectorizedPeeler(x_box, y_box, alpha, objective,
                              total_mean, total_n)
    return peeler.best_peel()


def sorted_group_sums(values: np.ndarray,
                      weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct values in ascending order plus their summed weights.

    The sort-once/group-reduce step shared by interval optimisers: an
    interval either includes all points with a value or none of them,
    so only per-level weight sums matter.
    """
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    boundaries = np.empty(len(values), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = values[1:] > values[:-1]
    group_ids = np.cumsum(boundaries) - 1
    group_sums = np.bincount(group_ids, weights=weights)
    return values[boundaries], group_sums


def max_sum_run(sums: np.ndarray) -> tuple[int, int, float]:
    """Kadane's algorithm: (start, end, best_sum) of the max-sum run.

    At least one group is always included; among equal-sum runs the
    first found is returned.
    """
    best_sum = -np.inf
    best_start = best_end = 0
    run_sum = 0.0
    run_start = 0
    for i, value in enumerate(sums):
        if run_sum <= 0.0:
            run_sum = value
            run_start = i
        else:
            run_sum += value
        if run_sum > best_sum:
            best_sum = run_sum
            best_start, best_end = run_start, i
    return best_start, best_end, float(best_sum)
