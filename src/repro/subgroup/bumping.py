"""PRIM with bumping (Kwakkel & Cunningham 2016) — Algorithm 2.

Runs PRIM on ``n_repeats`` bootstrap samples, each restricted to a
random subset of ``n_features`` inputs, pools every box of every peeling
trajectory, and returns the boxes not dominated in (precision, recall)
on the validation data.  The non-dominated set plays the role of the
peeling trajectory for the PR AUC measure; its highest-precision element
is the "last box".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.subgroup._kernels import evaluate_boxes
from repro.subgroup.box import Hyperbox
from repro.subgroup.prim import prim_peel

__all__ = ["BumpingResult", "pareto_front", "prim_bumping"]


@dataclass
class BumpingResult:
    """Non-dominated boxes sorted by decreasing recall.

    ``precisions``/``recalls`` are measured on the validation data the
    Pareto filter used.  ``chosen`` indexes the highest-precision box.
    """

    boxes: list[Hyperbox]
    precisions: np.ndarray
    recalls: np.ndarray

    @property
    def chosen(self) -> int:
        return int(np.argmax(self.precisions))

    @property
    def chosen_box(self) -> Hyperbox:
        return self.boxes[self.chosen]

    def __len__(self) -> int:
        return len(self.boxes)


def _precision_recall(box: Hyperbox, x: np.ndarray, y: np.ndarray,
                      total_pos: float) -> tuple[float, float]:
    inside = box.contains(x)
    n = int(inside.sum())
    pos = float(y[inside].sum())
    precision = pos / n if n else 0.0
    recall = pos / total_pos if total_pos else 0.0
    return precision, recall


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Indices of points not dominated by any other (maximising all axes).

    Dominance as in Definition 1 of the paper: ``b`` is dominated by
    ``B`` iff ``B`` is >= on every measure and > on at least one.
    Duplicate points are all kept.

    The two-measure case — the (precision, recall) filter of
    Algorithm 2, where candidate counts grow with ``Q`` times the
    trajectory length — runs as an ``O(n log n)`` sort-and-sweep
    instead of the ``O(n^2)`` pairwise scan, which survives as the
    reference for other dimensionalities (and for the differential
    test in ``tests/test_bumping_covering.py``).
    """
    points = np.asarray(points)
    if points.ndim == 2 and points.shape[1] == 2 and len(points) > 1:
        return _pareto_front_2d(points)
    return _pareto_front_reference(points)


def _pareto_front_reference(points: np.ndarray) -> np.ndarray:
    """Pairwise-scan Pareto filter for any number of measures."""
    n = len(points)
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        geq = (points >= points[i]).all(axis=1)
        gt = (points > points[i]).any(axis=1)
        if (geq & gt).any():
            keep[i] = False
    return np.nonzero(keep)[0]


def _pareto_front_2d(points: np.ndarray) -> np.ndarray:
    """Sort-and-sweep Pareto filter for two measures.

    Sorted by the first measure descending (second descending within
    ties), a point survives iff its second measure equals the maximum
    of its first-measure group *and* strictly exceeds every earlier
    group's maximum — identical keep-set to the pairwise scan,
    duplicates included.
    """
    first, second = points[:, 0], points[:, 1]
    order = np.lexsort((-second, -first))
    f_sorted = first[order]
    s_sorted = second[order]
    # Group boundaries over equal first-measure values; each group's
    # maximal second measure is its first element (ties sorted desc).
    starts = np.empty(len(order), dtype=bool)
    starts[0] = True
    np.not_equal(f_sorted[1:], f_sorted[:-1], out=starts[1:])
    group_ids = np.cumsum(starts) - 1
    group_max = s_sorted[starts]
    # Best second measure over groups with strictly greater first
    # measure: running max of previous groups' maxima.
    best_above = np.empty(len(group_max))
    best_above[0] = -np.inf
    np.maximum.accumulate(group_max[:-1], out=best_above[1:])
    keep_sorted = ((s_sorted == group_max[group_ids])
                   & (s_sorted > best_above[group_ids]))
    keep = np.zeros(len(points), dtype=bool)
    keep[order[keep_sorted]] = True
    return np.nonzero(keep)[0]


def _embed_box(small_box: Hyperbox, subset: np.ndarray, dim: int) -> Hyperbox:
    """Embed a box over the feature subset back into the full space."""
    lower = np.full(dim, -np.inf)
    upper = np.full(dim, np.inf)
    lower[subset] = small_box.lower
    upper[subset] = small_box.upper
    cats = None
    if small_box.cats is not None:
        full: list[frozenset | None] = [None] * dim
        for i, d in enumerate(subset):
            full[int(d)] = small_box.cats[i]
        if any(c is not None for c in full):
            cats = tuple(full)
    return Hyperbox(lower, upper, cats)


def _bumping_chunk(context: dict, start: int, stop: int) -> list[Hyperbox]:
    """Run bumping repeats ``[start, stop)`` and pool their boxes.

    Module-level so :func:`repro.experiments.parallel.run_chunked` can
    fan repeats out over worker processes: the repeat randomness
    (bootstrap rows, feature subsets) is pre-drawn in the parent and
    shipped through the shared-memory data plane, so every repeat does
    identical work wherever it runs.
    """
    x, y = context["x"], context["y"]
    samples, subsets = context["samples"], context["subsets"]
    cat_cols = frozenset(context["cat_cols"])
    dim = x.shape[1]
    boxes: list[Hyperbox] = []
    for r in range(start, stop):
        sample = samples[r]
        subset = subsets[r]
        local_cats = tuple(
            i for i, d in enumerate(subset) if int(d) in cat_cols)
        result = prim_peel(
            x[np.ix_(sample, subset)], y[sample],
            alpha=context["alpha"], min_support=context["min_support"],
            engine=context["engine"], cat_cols=local_cats,
        )
        boxes.extend(
            _embed_box(small_box, subset, dim) for small_box in result.boxes)
    return boxes


def prim_bumping(
    x: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 0.05,
    min_support: int = 20,
    n_repeats: int = 50,
    n_features: int | None = None,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
    cat_cols: Sequence[int] = (),
    jobs: int | None = 1,
    chunk_repeats: int | None = None,
) -> BumpingResult:
    """Algorithm 2: bootstrap + random feature subsets + Pareto filter.

    Parameters
    ----------
    x, y:
        Training data; ``y`` may be binary or soft labels in [0, 1].
    alpha, min_support:
        Passed to the inner :func:`prim_peel` runs.
    n_repeats:
        The ``Q`` hyperparameter: number of bootstrap PRIM runs.
    n_features:
        The ``m`` hyperparameter: random input subset size per run
        (defaults to all inputs).
    x_val, y_val:
        Validation data for the Pareto filter; defaults to the training
        data, as in the paper's experiments.
    rng:
        Source of bootstrap/subset randomness (fresh default if None).
    engine:
        Peeling engine of the inner PRIM runs (see :func:`prim_peel`).
    cat_cols:
        Column indices of categorical inputs (full-space indices).
        Inner PRIM runs peel those columns category-wise; repeats whose
        random feature subset hits a categorical column remap it to the
        subset-local index and the resulting category restrictions are
        embedded back into the full space.
    jobs:
        Worker processes (None = all CPUs, default 1) for the
        ``n_repeats`` independent PRIM runs.  The bootstrap/subset draws
        happen up front in the parent — one rng stream regardless of
        scheduling — so the pooled box set, and hence the returned
        Pareto front, is bit-identical for every ``jobs`` /
        ``chunk_repeats`` setting (pinned by
        ``tests/test_budget_fanout.py``).
    chunk_repeats:
        Repeats per fan-out chunk (default: one contiguous chunk per
        worker).

    Returns
    -------
    BumpingResult
        The (precision, recall)-non-dominated boxes sorted by
        decreasing recall — the trajectory for PR AUC — with the
        highest-precision box as ``chosen_box``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if rng is None:
        rng = np.random.default_rng()
    if (x_val is None) != (y_val is None):
        raise ValueError("x_val and y_val must be provided together")
    if x_val is None:
        x_val, y_val = x, y
    else:
        x_val = np.asarray(x_val, dtype=float)
        y_val = np.asarray(y_val, dtype=float)

    n, dim = x.shape
    m = dim if n_features is None else min(max(n_features, 1), dim)
    cat_set = frozenset(int(c) for c in cat_cols)
    if not all(0 <= c < dim for c in cat_set):
        raise ValueError(f"cat_cols must lie in [0, {dim}), got {sorted(cat_set)}")

    # Draw every repeat's randomness up front, in the exact order the
    # historical sequential loop consumed the stream (rows, then
    # subset, per repeat) — the fan-out below then cannot perturb it.
    samples = np.empty((n_repeats, n), dtype=np.int64)
    subsets = np.empty((n_repeats, m), dtype=np.int64)
    for r in range(n_repeats):
        samples[r] = rng.integers(0, n, size=n)
        subsets[r] = np.sort(rng.choice(dim, size=m, replace=False))

    from repro.experiments.parallel import run_chunked

    chunks = run_chunked(
        _bumping_chunk, n_repeats,
        jobs=jobs, chunk_rows=chunk_repeats,
        context=dict(alpha=alpha, min_support=min_support, engine=engine,
                     cat_cols=tuple(sorted(cat_set))),
        shared=dict(x=x, y=y, samples=samples, subsets=subsets),
    )
    all_boxes: list[Hyperbox] = [box for chunk in chunks for box in chunk]

    # Precision/recall of every pooled box in one batched kernel call
    # (bit-identical to mapping _precision_recall over the boxes).
    total_pos = float(y_val.sum())
    evaluation = evaluate_boxes(all_boxes, x_val, y_val)
    stats = np.column_stack(evaluation.precision_recall())
    front = pareto_front(stats)

    # Deduplicate identical (precision, recall) pairs, keeping one box
    # per point, then sort by decreasing recall to form a trajectory.
    seen: dict[tuple[float, float], int] = {}
    for idx in front:
        seen.setdefault((stats[idx, 0], stats[idx, 1]), int(idx))
    kept = sorted(seen.values(), key=lambda i: -stats[i, 1])

    boxes = [all_boxes[i] for i in kept]
    precisions = stats[kept, 0]
    recalls = stats[kept, 1]

    # Anchor the trajectory at the unrestricted box (the common starting
    # point A of every peeling trajectory, Figure 5 of the paper) so the
    # PR AUC of the front is comparable with PRIM's.  The front may
    # legitimately dominate it, but as the trajectory origin it is kept.
    full_box = Hyperbox.unrestricted(dim)
    full_precision, full_recall = _precision_recall(full_box, x_val, y_val, total_pos)
    if not boxes or recalls[0] < 1.0 or precisions[0] > full_precision:
        boxes.insert(0, full_box)
        precisions = np.concatenate([[full_precision], precisions])
        recalls = np.concatenate([[full_recall], recalls])

    return BumpingResult(boxes=boxes, precisions=precisions, recalls=recalls)
