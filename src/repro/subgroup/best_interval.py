"""The BestInterval (BI) algorithm (Mampaey et al. 2012) — Algorithm 3.

Beam search over hyperboxes maximising Weighted Relative Accuracy.  The
core subroutine re-optimises one input's interval exactly and in linear
time after sorting: WRAcc of a box equals ``(sum over covered points of
(y_i - pi)) / N`` with ``pi = N+/N`` the base rate, so the best interval
along a dimension is the maximum-sum run of sorted points — Kadane's
algorithm over groups of equal values.  The sort-once/group-reduce step
is shared with the PRIM peeling kernel (:mod:`repro.subgroup._kernels`).

Soft labels are supported for REDS: the derivation only uses sums of
``y``, never counts of positives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup._kernels import max_sum_run, sorted_group_sums
from repro.subgroup.box import Hyperbox

__all__ = ["BIResult", "best_interval", "best_interval_for_dim", "wracc"]


def wracc(box: Hyperbox, x: np.ndarray, y: np.ndarray,
          base_rate: float | None = None) -> float:
    """Weighted Relative Accuracy of ``box`` on the dataset ``(x, y)``.

    The quality measure BI maximises (Section 3.1 of the paper):
    ``(n/N) * (mean(y inside) - pi)`` with ``pi`` the base rate.

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    base_rate:
        Precomputed ``pi = y.mean()``.  The base rate is a constant of
        the dataset, so callers scoring many boxes (the beam search's
        inner loop) pass it once instead of re-reducing ``y`` on every
        call.  ``None`` computes it here.

    Returns
    -------
    float
        The WRAcc value; 0.0 for an empty box.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())
    inside = box.contains(x)
    n = int(inside.sum())
    if n == 0:
        return 0.0
    total = len(y)
    return (n / total) * (float(y[inside].mean()) - base_rate)


@dataclass
class BIResult:
    """Output of a BI run: the best box and its training WRAcc."""

    box: Hyperbox
    wracc: float
    n_iterations: int


def best_interval_for_dim(
    x: np.ndarray,
    y: np.ndarray,
    box: Hyperbox,
    dim: int,
    base_rate: float | None = None,
) -> Hyperbox:
    """Exact best re-optimisation of one dimension's interval.

    The ``RefineInterval`` subroutine of Algorithm 3: considers the
    points inside ``box`` on every *other* dimension and finds the
    closed interval of ``x[:, dim]`` values maximising WRAcc with
    respect to the full dataset, in ``O(n log n)``.

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    box:
        Current candidate box.
    dim:
        Index of the input whose interval is re-optimised.
    base_rate:
        Precomputed ``pi = y.mean()``; ``None`` computes it here.

    Returns
    -------
    Hyperbox
        The refined box — possibly wider than the current one, or fully
        unrestricted on ``dim`` if no interval beats covering everything.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())

    mask = _contains_except(x, box, dim)
    if not mask.any():
        return box

    values = x[mask, dim]
    weights = y[mask] - base_rate  # per-point WRAcc contribution * N

    # Group equal values: an interval either includes all points with a
    # value or none of them.
    group_values, group_sums = sorted_group_sums(values, weights)

    start, end, _ = max_sum_run(group_sums)
    lower = float(group_values[start])
    upper = float(group_values[end])

    # Unbounded sides stay unbounded when the run touches the extremes,
    # preserving interpretability (#restricted) exactly as BI does.
    new_lower = -np.inf if start == 0 else lower
    new_upper = np.inf if end == len(group_values) - 1 else upper
    return box.replace(dim, lower=new_lower, upper=new_upper)


def _contains_except(x: np.ndarray, box: Hyperbox, skip_dim: int) -> np.ndarray:
    mask = np.ones(len(x), dtype=bool)
    for j in box.restricted_dims:
        if j == skip_dim:
            continue
        mask &= (x[:, j] >= box.lower[j]) & (x[:, j] <= box.upper[j])
    return mask


def best_interval(
    x: np.ndarray,
    y: np.ndarray,
    *,
    depth: int | None = None,
    beam_size: int = 1,
    max_iterations: int = 50,
) -> BIResult:
    """Algorithm 3: beam search with exact one-dimensional refinements.

    Parameters
    ----------
    depth:
        Maximal number of restricted inputs (the ``m`` hyperparameter);
        ``None`` allows all.
    beam_size:
        Number of candidate boxes kept between iterations (``bs``).
    max_iterations:
        Safety cap on the outer while loop (it normally converges in
        about ``depth`` iterations).

    Returns
    -------
    BIResult
        The best box found, its training WRAcc, and the number of beam
        iterations until convergence.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")

    dim = x.shape[1]
    max_restricted = dim if depth is None else max(1, depth)
    base_rate = float(y.mean())

    start = Hyperbox.unrestricted(dim)
    beam: dict[tuple, tuple[Hyperbox, float]] = {start.key(): (start, 0.0)}

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        pool = dict(beam)
        for box, _ in beam.values():
            for j in range(dim):
                refined = best_interval_for_dim(x, y, box, j, base_rate)
                if refined.n_restricted > max_restricted:
                    continue
                key = refined.key()
                if key not in pool:
                    pool[key] = (refined, wracc(refined, x, y, base_rate))

        ranked = sorted(pool.values(), key=lambda item: -item[1])[:beam_size]
        new_beam = {box.key(): (box, quality) for box, quality in ranked}
        if set(new_beam) == set(beam):
            beam = new_beam
            break
        beam = new_beam

    best_box, best_quality = max(beam.values(), key=lambda item: item[1])
    return BIResult(box=best_box, wracc=best_quality, n_iterations=iterations)
