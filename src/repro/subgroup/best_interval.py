"""The BestInterval (BI) algorithm (Mampaey et al. 2012) — Algorithm 3.

Beam search over hyperboxes maximising Weighted Relative Accuracy.  The
core subroutine re-optimises one input's interval exactly and in linear
time after sorting: WRAcc of a box equals ``(sum over covered points of
(y_i - pi)) / N`` with ``pi = N+/N`` the base rate, so the best interval
along a dimension is the maximum-sum run of sorted points — a
max-sum-run search over groups of equal values.  The sort-once
machinery is shared with the PRIM peeling kernel
(:mod:`repro.subgroup._kernels`).

Soft labels are supported for REDS: the derivation only uses sums of
``y``, never counts of positives.

Two beam-search engines produce identical results:
``engine="vectorized"`` (the default) rides the
:class:`~repro.subgroup._kernels.SortedDataset` index — every column
is sorted once per run, refinements filter the pre-sorted columns,
``(box, dim)`` refinements are memoized across beam iterations, and
candidate boxes are scored through the batched
:func:`~repro.subgroup._kernels.evaluate_boxes` kernel.
``engine="reference"`` keeps the original per-call re-sorting and
per-candidate masking loops for differential testing (see
``tests/test_bi_equivalence.py``).  ``y`` is converted to float once
at :func:`best_interval` entry; the engines' inner loops never convert
or copy it again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines import KNOWN_ENGINES
from repro.engines import resolve as _resolve_engine
from repro.subgroup._kernels import (
    SortedDataset,
    best_cat_subset,
    contains_many,
    max_sum_run,
    sorted_group_sums,
)
from repro.subgroup.box import Hyperbox, cat_mask

__all__ = ["BIResult", "BI_ENGINES", "best_interval", "best_interval_for_dim",
           "wracc"]

#: Valid beam-search engines — the central registry's names: the
#: sort-once kernel, the re-sorting masking reference, and the compiled
#: (numba) kernels riding the same sort-once index.
BI_ENGINES = KNOWN_ENGINES


def wracc(box: Hyperbox, x: np.ndarray, y: np.ndarray,
          base_rate: float | None = None) -> float:
    """Weighted Relative Accuracy of ``box`` on the dataset ``(x, y)``.

    The quality measure BI maximises (Section 3.1 of the paper):
    ``(n/N) * (mean(y inside) - pi)`` with ``pi`` the base rate.

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    base_rate:
        Precomputed ``pi = y.mean()``.  The base rate is a constant of
        the dataset, so callers scoring many boxes pass it once instead
        of re-reducing ``y`` on every call.  ``None`` computes it here.

    Returns
    -------
    float
        The WRAcc value; 0.0 for an empty box.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())
    inside = box.contains(x)
    n = int(inside.sum())
    if n == 0:
        return 0.0
    total = len(y)
    return (n / total) * (float(y[inside].mean()) - base_rate)


@dataclass
class BIResult:
    """Output of a BI run: the best box and its training WRAcc."""

    box: Hyperbox
    wracc: float
    n_iterations: int


def best_interval_for_dim(
    x: np.ndarray,
    y: np.ndarray,
    box: Hyperbox,
    dim: int,
    base_rate: float | None = None,
    categorical: bool = False,
) -> Hyperbox:
    """Exact best re-optimisation of one dimension's restriction.

    The ``RefineInterval`` subroutine of Algorithm 3: considers the
    points inside ``box`` on every *other* dimension and finds the
    closed interval of ``x[:, dim]`` values maximising WRAcc with
    respect to the full dataset, in ``O(n log n)``.  With
    ``categorical=True`` the dimension's codes are treated as unordered
    and the WRAcc-optimal *subset* of categories is selected instead
    (every level with positive summed ``y - pi`` weight — the exact
    unordered analogue of the max-sum run).

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    box:
        Current candidate box.
    dim:
        Index of the input whose restriction is re-optimised.
    base_rate:
        Precomputed ``pi = y.mean()``; ``None`` computes it here.
    categorical:
        Treat ``x[:, dim]`` as unordered category codes.

    Returns
    -------
    Hyperbox
        The refined box — possibly wider than the current one, or fully
        unrestricted on ``dim`` if no interval (or category subset)
        beats covering everything.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())
    return _refine_reference(x, y, box, dim, base_rate, categorical)


def _refine_reference(x: np.ndarray, y: np.ndarray, box: Hyperbox,
                      dim: int, base_rate: float,
                      categorical: bool = False) -> Hyperbox:
    """One refinement through the original re-sorting code path."""
    mask = _contains_except(x, box, dim)
    if not mask.any():
        return box

    values = x[mask, dim]
    weights = y[mask] - base_rate  # per-point WRAcc contribution * N

    # Group equal values: an interval (or category subset) either
    # includes all points with a value or none of them.
    group_values, group_sums = sorted_group_sums(values, weights)

    if categorical:
        # Unordered codes: the optimal subset is every level with a
        # positive weight sum; selecting all observed levels means the
        # dimension carries no information and becomes unrestricted.
        selected = best_cat_subset(group_sums)
        if selected.all():
            return box.with_cats(dim, None)
        return box.with_cats(
            dim, tuple(float(v) for v in group_values[selected]))

    start, end, _ = max_sum_run(group_sums)
    lower = float(group_values[start])
    upper = float(group_values[end])

    # Unbounded sides stay unbounded when the run touches the extremes,
    # preserving interpretability (#restricted) exactly as BI does.
    new_lower = -np.inf if start == 0 else lower
    new_upper = np.inf if end == len(group_values) - 1 else upper
    return box.replace(dim, lower=new_lower, upper=new_upper)


def _contains_except(x: np.ndarray, box: Hyperbox, skip_dim: int) -> np.ndarray:
    mask = np.ones(len(x), dtype=bool)
    for j in box.restricted_dims:
        if j == skip_dim:
            continue
        allowed = box.cat_restriction(j)
        if allowed is not None:
            mask &= cat_mask(x[:, j], allowed)
        else:
            mask &= (x[:, j] >= box.lower[j]) & (x[:, j] <= box.upper[j])
    return mask


class _ReferenceRefiner:
    """Per-call masking/re-sorting engine (the original code path)."""

    def __init__(self, x: np.ndarray, y: np.ndarray, base_rate: float,
                 cat_cols: frozenset = frozenset()) -> None:
        self.x = x
        self.y = y
        self.base_rate = base_rate
        self.dim = x.shape[1]
        self.cat_cols = cat_cols

    def refinements(self, box: Hyperbox):
        for j in range(self.dim):
            yield _refine_reference(self.x, self.y, box, j, self.base_rate,
                                    categorical=j in self.cat_cols)

    def score(self, pending: dict) -> dict:
        return {key: (box, wracc(box, self.x, self.y, self.base_rate))
                for key, box in pending.items()}


class _VectorizedRefiner:
    """Sort-once engine: shared column index, memoized refinements,
    incremental candidate scoring."""

    def __init__(self, x: np.ndarray, y: np.ndarray, base_rate: float,
                 cat_cols: frozenset = frozenset(),
                 native: bool = False) -> None:
        self.native = bool(native)
        self.dataset = SortedDataset(x, y, base_rate, native=native)
        self.binary = bool(np.all((y == 0.0) | (y == 1.0)))
        self.positives = (y == 1.0) if self.binary else None
        self.cat_cols = cat_cols
        self._no_cats = (None,) * x.shape[1]
        # Surviving beam boxes are re-refined on every iteration, and a
        # refinement only depends on the bounds of the *other*
        # dimensions (the refined dimension's interval is recomputed
        # from scratch), so the memo is keyed by that except-footprint:
        # re-refining a box along the dimension that produced it — or
        # any sibling differing only there — is a guaranteed hit.
        # Qualities are cached per box key (WRAcc on the training data
        # is a pure function of the box) so re-discovered candidates
        # never re-scan the data either.
        self.memo: dict[tuple, tuple[float, float] | None] = {}
        self.quality_cache: dict[tuple, float] = {}
        # For freshly refined candidates, membership equals the parent's
        # except-mask intersected with the new interval on the refined
        # dimension — stashed here so scoring skips the full
        # all-dimensions contains pass.
        self._pending_masks: dict[tuple, tuple[np.ndarray, int]] = {}

    def refinements(self, box: Hyperbox):
        lower_key, upper_key, cats_key = box.key()
        if cats_key is None:
            cats_key = self._no_cats
        mask_for = None
        for j in range(self.dataset.dim):
            footprint = (lower_key[:j] + lower_key[j + 1:],
                         upper_key[:j] + upper_key[j + 1:],
                         cats_key[:j] + cats_key[j + 1:], j)
            fresh = footprint not in self.memo
            if fresh:
                if mask_for is None:
                    mask_for = self.dataset.except_masks(box)
                mask = mask_for(j)
                if j in self.cat_cols:
                    # None = no rows (box unchanged); () = every level
                    # selected (unrestricted); tuple = allowed codes.
                    self.memo[footprint] = self.dataset.cat_allowed(j, mask)
                else:
                    self.memo[footprint] = self.dataset.interval_bounds(j, mask)
            result = self.memo[footprint]
            if result is None:
                refined = box
            elif j in self.cat_cols:
                refined = box.with_cats(j, None if result == () else result)
            else:
                refined = box.replace(j, lower=result[0], upper=result[1])
            if fresh:
                key = refined.key()
                if key not in self._pending_masks:
                    self._pending_masks[key] = (mask, j)
            yield refined

    def score(self, pending: dict) -> dict:
        scored = {}
        for key, box in pending.items():
            quality = self.quality_cache.get(key)
            if quality is None:
                quality = self._wracc(key, box)
                self.quality_cache[key] = quality
            scored[key] = (box, quality)
        self._pending_masks.clear()
        return scored

    def _wracc(self, key: tuple, box: Hyperbox) -> float:
        """WRAcc of one candidate, bit-identical to :func:`wracc`.

        The membership mask comes from the stashed parent except-mask
        plus one single-column interval check (set-identical to
        ``box.contains``: the candidate only changed that column's
        bounds); re-discovered candidates without a stashed mask fall
        back to the batched contains kernel.
        """
        dataset = self.dataset
        stashed = self._pending_masks.get(key)
        if stashed is None:
            # columns is already Fortran-ordered, so the kernel's
            # column-contiguous conversion is a no-op.
            inside = contains_many((box,), dataset.columns,
                                   native=self.native)[0]
        else:
            except_mask, j = stashed
            column = dataset.columns[:, j]
            allowed = box.cat_restriction(j)
            if allowed is not None:
                inside = except_mask & cat_mask(column, allowed)
            else:
                inside = except_mask & (column >= box.lower[j])
                inside &= column <= box.upper[j]
        n = int(np.count_nonzero(inside))
        if n == 0:
            return 0.0
        if self.binary:
            # Pairwise summation of 0/1 labels is an exact integer, so
            # the count-based mean equals y[inside].mean() bit for bit.
            mean = int(np.count_nonzero(inside & self.positives)) / n
        else:
            mean = float(dataset.y[np.flatnonzero(inside)].mean())
        return (n / dataset.n) * (mean - dataset.base_rate)


def best_interval(
    x: np.ndarray,
    y: np.ndarray,
    *,
    depth: int | None = None,
    beam_size: int = 1,
    max_iterations: int = 50,
    engine: str = "vectorized",
    cat_cols=(),
) -> BIResult:
    """Algorithm 3: beam search with exact one-dimensional refinements.

    Parameters
    ----------
    depth:
        Maximal number of restricted inputs (the ``m`` hyperparameter);
        ``None`` allows all.
    beam_size:
        Number of candidate boxes kept between iterations (``bs``).
    max_iterations:
        Safety cap on the outer while loop (it normally converges in
        about ``depth`` iterations).
    engine:
        ``"vectorized"`` (the default) runs refinements over a shared
        sort-once column index with memoization and batched candidate
        scoring; ``"reference"`` keeps the original per-call re-sorting
        loops; ``"native"`` rides the same sort-once index with the
        compiled max-sum-run and membership kernels (silently resolving
        to ``"vectorized"`` when numba is missing).  All return
        identical results bit for bit (see
        ``tests/test_bi_equivalence.py`` and
        ``tests/test_native_equivalence.py``).
    cat_cols:
        Column indices holding categorical codes.  Refining such a
        dimension selects the WRAcc-optimal unordered *subset* of its
        categories (every level with positive summed ``y - pi`` weight)
        instead of an interval; the refined boxes carry category sets
        (:attr:`Hyperbox.cats`) on these columns.

    Returns
    -------
    BIResult
        The best box found, its training WRAcc, and the number of beam
        iterations until convergence.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")
    engine = _resolve_engine(engine)
    cat_cols = frozenset(int(c) for c in cat_cols)
    if any(c < 0 or c >= x.shape[1] for c in cat_cols):
        raise ValueError(f"cat_cols out of range for {x.shape[1]} columns: "
                         f"{sorted(cat_cols)}")

    dim = x.shape[1]
    max_restricted = dim if depth is None else max(1, depth)
    base_rate = float(y.mean())
    refiner = (_ReferenceRefiner(x, y, base_rate, cat_cols)
               if engine == "reference"
               else _VectorizedRefiner(x, y, base_rate, cat_cols,
                                       native=engine == "native"))

    start = Hyperbox.unrestricted(dim)
    beam: dict[tuple, tuple[Hyperbox, float]] = {start.key(): (start, 0.0)}

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        pool = dict(beam)
        pending: dict[tuple, Hyperbox] = {}
        for box, _ in beam.values():
            for refined in refiner.refinements(box):
                if refined.n_restricted > max_restricted:
                    continue
                key = refined.key()
                if key not in pool and key not in pending:
                    pending[key] = refined
        pool.update(refiner.score(pending))

        ranked = sorted(pool.values(), key=lambda item: -item[1])[:beam_size]
        new_beam = {box.key(): (box, quality) for box, quality in ranked}
        if set(new_beam) == set(beam):
            beam = new_beam
            break
        beam = new_beam

    best_box, best_quality = max(beam.values(), key=lambda item: item[1])
    return BIResult(box=best_box, wracc=best_quality, n_iterations=iterations)
