"""The BestInterval (BI) algorithm (Mampaey et al. 2012) — Algorithm 3.

Beam search over hyperboxes maximising Weighted Relative Accuracy.  The
core subroutine re-optimises one input's interval exactly and in linear
time after sorting: WRAcc of a box equals ``(sum over covered points of
(y_i - pi)) / N`` with ``pi = N+/N`` the base rate, so the best interval
along a dimension is the maximum-sum run of sorted points — a
max-sum-run search over groups of equal values.  The sort-once
machinery is shared with the PRIM peeling kernel
(:mod:`repro.subgroup._kernels`).

Soft labels are supported for REDS: the derivation only uses sums of
``y``, never counts of positives.

Two beam-search engines produce identical results:
``engine="vectorized"`` (the default) rides the
:class:`~repro.subgroup._kernels.SortedDataset` index — every column
is sorted once per run, refinements filter the pre-sorted columns,
``(box, dim)`` refinements are memoized across beam iterations, and
candidate boxes are scored through the batched
:func:`~repro.subgroup._kernels.evaluate_boxes` kernel.
``engine="reference"`` keeps the original per-call re-sorting and
per-candidate masking loops for differential testing (see
``tests/test_bi_equivalence.py``).  ``y`` is converted to float once
at :func:`best_interval` entry; the engines' inner loops never convert
or copy it again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.subgroup._kernels import (
    SortedDataset,
    contains_many,
    max_sum_run,
    sorted_group_sums,
)
from repro.subgroup.box import Hyperbox

__all__ = ["BIResult", "BI_ENGINES", "best_interval", "best_interval_for_dim",
           "wracc"]

#: Valid beam-search engines: the sort-once kernel and the re-sorting
#: masking reference.
BI_ENGINES = ("vectorized", "reference")


def wracc(box: Hyperbox, x: np.ndarray, y: np.ndarray,
          base_rate: float | None = None) -> float:
    """Weighted Relative Accuracy of ``box`` on the dataset ``(x, y)``.

    The quality measure BI maximises (Section 3.1 of the paper):
    ``(n/N) * (mean(y inside) - pi)`` with ``pi`` the base rate.

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    base_rate:
        Precomputed ``pi = y.mean()``.  The base rate is a constant of
        the dataset, so callers scoring many boxes pass it once instead
        of re-reducing ``y`` on every call.  ``None`` computes it here.

    Returns
    -------
    float
        The WRAcc value; 0.0 for an empty box.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())
    inside = box.contains(x)
    n = int(inside.sum())
    if n == 0:
        return 0.0
    total = len(y)
    return (n / total) * (float(y[inside].mean()) - base_rate)


@dataclass
class BIResult:
    """Output of a BI run: the best box and its training WRAcc."""

    box: Hyperbox
    wracc: float
    n_iterations: int


def best_interval_for_dim(
    x: np.ndarray,
    y: np.ndarray,
    box: Hyperbox,
    dim: int,
    base_rate: float | None = None,
) -> Hyperbox:
    """Exact best re-optimisation of one dimension's interval.

    The ``RefineInterval`` subroutine of Algorithm 3: considers the
    points inside ``box`` on every *other* dimension and finds the
    closed interval of ``x[:, dim]`` values maximising WRAcc with
    respect to the full dataset, in ``O(n log n)``.

    Parameters
    ----------
    x, y:
        The full dataset; ``y`` may be binary or soft labels in [0, 1].
    box:
        Current candidate box.
    dim:
        Index of the input whose interval is re-optimised.
    base_rate:
        Precomputed ``pi = y.mean()``; ``None`` computes it here.

    Returns
    -------
    Hyperbox
        The refined box — possibly wider than the current one, or fully
        unrestricted on ``dim`` if no interval beats covering everything.
    """
    y = np.asarray(y, dtype=float)
    if base_rate is None:
        base_rate = float(y.mean())
    return _refine_reference(x, y, box, dim, base_rate)


def _refine_reference(x: np.ndarray, y: np.ndarray, box: Hyperbox,
                      dim: int, base_rate: float) -> Hyperbox:
    """One refinement through the original re-sorting code path."""
    mask = _contains_except(x, box, dim)
    if not mask.any():
        return box

    values = x[mask, dim]
    weights = y[mask] - base_rate  # per-point WRAcc contribution * N

    # Group equal values: an interval either includes all points with a
    # value or none of them.
    group_values, group_sums = sorted_group_sums(values, weights)

    start, end, _ = max_sum_run(group_sums)
    lower = float(group_values[start])
    upper = float(group_values[end])

    # Unbounded sides stay unbounded when the run touches the extremes,
    # preserving interpretability (#restricted) exactly as BI does.
    new_lower = -np.inf if start == 0 else lower
    new_upper = np.inf if end == len(group_values) - 1 else upper
    return box.replace(dim, lower=new_lower, upper=new_upper)


def _contains_except(x: np.ndarray, box: Hyperbox, skip_dim: int) -> np.ndarray:
    mask = np.ones(len(x), dtype=bool)
    for j in box.restricted_dims:
        if j == skip_dim:
            continue
        mask &= (x[:, j] >= box.lower[j]) & (x[:, j] <= box.upper[j])
    return mask


class _ReferenceRefiner:
    """Per-call masking/re-sorting engine (the original code path)."""

    def __init__(self, x: np.ndarray, y: np.ndarray, base_rate: float) -> None:
        self.x = x
        self.y = y
        self.base_rate = base_rate
        self.dim = x.shape[1]

    def refinements(self, box: Hyperbox):
        for j in range(self.dim):
            yield _refine_reference(self.x, self.y, box, j, self.base_rate)

    def score(self, pending: dict) -> dict:
        return {key: (box, wracc(box, self.x, self.y, self.base_rate))
                for key, box in pending.items()}


class _VectorizedRefiner:
    """Sort-once engine: shared column index, memoized refinements,
    incremental candidate scoring."""

    def __init__(self, x: np.ndarray, y: np.ndarray, base_rate: float) -> None:
        self.dataset = SortedDataset(x, y, base_rate)
        self.binary = bool(np.all((y == 0.0) | (y == 1.0)))
        self.positives = (y == 1.0) if self.binary else None
        # Surviving beam boxes are re-refined on every iteration, and a
        # refinement only depends on the bounds of the *other*
        # dimensions (the refined dimension's interval is recomputed
        # from scratch), so the memo is keyed by that except-footprint:
        # re-refining a box along the dimension that produced it — or
        # any sibling differing only there — is a guaranteed hit.
        # Qualities are cached per box key (WRAcc on the training data
        # is a pure function of the box) so re-discovered candidates
        # never re-scan the data either.
        self.memo: dict[tuple, tuple[float, float] | None] = {}
        self.quality_cache: dict[tuple, float] = {}
        # For freshly refined candidates, membership equals the parent's
        # except-mask intersected with the new interval on the refined
        # dimension — stashed here so scoring skips the full
        # all-dimensions contains pass.
        self._pending_masks: dict[tuple, tuple[np.ndarray, int]] = {}

    def refinements(self, box: Hyperbox):
        lower_key, upper_key = box.key()
        mask_for = None
        for j in range(self.dataset.dim):
            footprint = (lower_key[:j] + lower_key[j + 1:],
                         upper_key[:j] + upper_key[j + 1:], j)
            if footprint in self.memo:
                bounds = self.memo[footprint]
                refined = (box if bounds is None
                           else box.replace(j, lower=bounds[0], upper=bounds[1]))
            else:
                if mask_for is None:
                    mask_for = self.dataset.except_masks(box)
                mask = mask_for(j)
                bounds = self.dataset.interval_bounds(j, mask)
                self.memo[footprint] = bounds
                refined = (box if bounds is None
                           else box.replace(j, lower=bounds[0], upper=bounds[1]))
                key = refined.key()
                if key not in self._pending_masks:
                    self._pending_masks[key] = (mask, j)
            yield refined

    def score(self, pending: dict) -> dict:
        scored = {}
        for key, box in pending.items():
            quality = self.quality_cache.get(key)
            if quality is None:
                quality = self._wracc(key, box)
                self.quality_cache[key] = quality
            scored[key] = (box, quality)
        self._pending_masks.clear()
        return scored

    def _wracc(self, key: tuple, box: Hyperbox) -> float:
        """WRAcc of one candidate, bit-identical to :func:`wracc`.

        The membership mask comes from the stashed parent except-mask
        plus one single-column interval check (set-identical to
        ``box.contains``: the candidate only changed that column's
        bounds); re-discovered candidates without a stashed mask fall
        back to the batched contains kernel.
        """
        dataset = self.dataset
        stashed = self._pending_masks.get(key)
        if stashed is None:
            # columns is already Fortran-ordered, so the kernel's
            # column-contiguous conversion is a no-op.
            inside = contains_many((box,), dataset.columns)[0]
        else:
            except_mask, j = stashed
            column = dataset.columns[:, j]
            inside = except_mask & (column >= box.lower[j])
            inside &= column <= box.upper[j]
        n = int(np.count_nonzero(inside))
        if n == 0:
            return 0.0
        if self.binary:
            # Pairwise summation of 0/1 labels is an exact integer, so
            # the count-based mean equals y[inside].mean() bit for bit.
            mean = int(np.count_nonzero(inside & self.positives)) / n
        else:
            mean = float(dataset.y[np.flatnonzero(inside)].mean())
        return (n / dataset.n) * (mean - dataset.base_rate)


def best_interval(
    x: np.ndarray,
    y: np.ndarray,
    *,
    depth: int | None = None,
    beam_size: int = 1,
    max_iterations: int = 50,
    engine: str = "vectorized",
) -> BIResult:
    """Algorithm 3: beam search with exact one-dimensional refinements.

    Parameters
    ----------
    depth:
        Maximal number of restricted inputs (the ``m`` hyperparameter);
        ``None`` allows all.
    beam_size:
        Number of candidate boxes kept between iterations (``bs``).
    max_iterations:
        Safety cap on the outer while loop (it normally converges in
        about ``depth`` iterations).
    engine:
        ``"vectorized"`` (the default) runs refinements over a shared
        sort-once column index with memoization and batched candidate
        scoring; ``"reference"`` keeps the original per-call re-sorting
        loops.  Both return identical results bit for bit (see
        ``tests/test_bi_equivalence.py``).

    Returns
    -------
    BIResult
        The best box found, its training WRAcc, and the number of beam
        iterations until convergence.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")
    if engine not in BI_ENGINES:
        raise ValueError(f"engine must be one of {BI_ENGINES}, got {engine!r}")

    dim = x.shape[1]
    max_restricted = dim if depth is None else max(1, depth)
    base_rate = float(y.mean())
    refiner = (_VectorizedRefiner(x, y, base_rate) if engine == "vectorized"
               else _ReferenceRefiner(x, y, base_rate))

    start = Hyperbox.unrestricted(dim)
    beam: dict[tuple, tuple[Hyperbox, float]] = {start.key(): (start, 0.0)}

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        pool = dict(beam)
        pending: dict[tuple, Hyperbox] = {}
        for box, _ in beam.values():
            for refined in refiner.refinements(box):
                if refined.n_restricted > max_restricted:
                    continue
                key = refined.key()
                if key not in pool and key not in pending:
                    pending[key] = refined
        pool.update(refiner.score(pending))

        ranked = sorted(pool.values(), key=lambda item: -item[1])[:beam_size]
        new_beam = {box.key(): (box, quality) for box, quality in ranked}
        if set(new_beam) == set(beam):
            beam = new_beam
            break
        beam = new_beam

    best_box, best_quality = max(beam.values(), key=lambda item: item[1])
    return BIResult(box=best_box, wracc=best_quality, n_iterations=iterations)
