"""PRIM: the Patient Rule Induction Method (Friedman & Fisher 1999).

Implements the peeling phase exactly as Algorithm 1 of the REDS paper:
starting from the unrestricted box, repeatedly cut off the share
``alpha`` of in-box points with the highest or lowest values of one
input, choosing the cut that leaves the highest mean output, while the
box keeps at least ``min_support`` points on both the training and the
validation set.  The optional pasting phase (re-expanding the chosen
box) is included for completeness; the paper found its effect
negligible and disables it, as do we by default.

The response may be real-valued in ``[0, 1]``: the mean-maximising
objective ``n+/n`` generalises verbatim to soft labels, which is what
the "p" variants of REDS rely on (Section 6.1).

Alternative peeling objectives (Kwakkel & Jaxa-Rozen 2016, which the
paper lists as REDS-compatible and orthogonal) are supported through
the ``objective`` parameter:

* ``"mean"`` — original PRIM: maximise the mean output of the
  remaining box;
* ``"gain"`` — "lenient" peeling: maximise the mean improvement per
  removed point, which prefers small cuts with a big effect;
* ``"wracc"`` — maximise the Weighted Relative Accuracy of the
  remaining box with respect to the full dataset, trading purity
  against coverage at every step.

Two peeling engines produce identical results: ``engine="vectorized"``
(the default) evaluates all candidate cuts through the sort-once /
prefix-sum kernel in :mod:`repro.subgroup._kernels`, while
``engine="reference"`` keeps the original per-candidate masking loop
for differential testing (see ``tests/test_prim_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines import KNOWN_ENGINES
from repro.engines import resolve as _resolve_engine
from repro.subgroup import _kernels
from repro.subgroup.box import Hyperbox, cat_mask

__all__ = ["PRIMResult", "prim_peel", "OBJECTIVES", "ENGINES"]


@dataclass
class PRIMResult:
    """A peeling run: the nested box sequence plus train-side statistics.

    ``boxes[0]`` is the unrestricted box; ``boxes[chosen]`` is the box
    with the highest validation mean — the paper's default "last box"
    used for the precision / #restricted / consistency measures.
    """

    boxes: list[Hyperbox]
    train_means: np.ndarray
    train_support: np.ndarray
    val_means: np.ndarray
    chosen: int

    @property
    def chosen_box(self) -> Hyperbox:
        return self.boxes[self.chosen]

    def __len__(self) -> int:
        return len(self.boxes)


def _mean(values: np.ndarray) -> float:
    return float(values.mean()) if len(values) else 0.0


#: Valid peeling objectives (see module docstring).
OBJECTIVES = ("mean", "gain", "wracc")

#: Valid peeling engines — the central registry's names.  PRIM has no
#: gather-bound walk of its own, so ``"native"`` shares the vectorized
#: peeler (all engines are bit-identical anyway).
ENGINES = KNOWN_ENGINES


def prim_peel(
    x: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 0.05,
    min_support: int = 20,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    paste: bool = False,
    objective: str = "mean",
    engine: str = "vectorized",
    cat_cols=(),
) -> PRIMResult:
    """Run one PRIM peeling (and optionally pasting) pass.

    Parameters
    ----------
    x, y:
        Training data; ``y`` may be binary or soft labels in [0, 1].
    alpha:
        Peeling fraction (share of in-box points removed per step).
    min_support:
        The ``mp`` of Algorithm 1: minimal number of points the box must
        keep on the training *and* validation data.
    x_val, y_val:
        Validation data used to select the final box; defaults to the
        training data (the paper uses ``D_val = D`` in Section 8.5).
    paste:
        Run the pasting phase from the chosen box.
    objective:
        Peeling criterion: ``"mean"`` (original PRIM), ``"gain"`` or
        ``"wracc"`` (Kwakkel & Jaxa-Rozen style alternatives).
    engine:
        ``"vectorized"`` (sort-once/prefix-sum kernel, the default),
        ``"reference"`` (per-candidate masking) or ``"native"`` (the
        registry's compiled-kernel engine — PRIM's peeling has no
        gather-bound walk, so it shares the vectorized peeler); all
        return identical results.
    cat_cols:
        Column indices holding categorical codes.  Those dimensions
        peel one category at a time — one candidate per removable level,
        the classic Friedman & Fisher categorical rule — and pasting
        re-admits one category at a time; the resulting boxes carry
        category sets (:attr:`Hyperbox.cats`) instead of interval
        bounds on these columns.

    Returns
    -------
    PRIMResult
        The nested box sequence ``boxes`` (``boxes[0]`` unrestricted),
        per-box train/validation statistics, and ``chosen`` — the index
        of the box with the highest validation mean, the paper's "last
        box" (Section 8.5).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if (x_val is None) != (y_val is None):
        raise ValueError("x_val and y_val must be provided together")
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    engine = _resolve_engine(engine)
    if x_val is None:
        x_val, y_val = x, y
    else:
        x_val = np.asarray(x_val, dtype=float)
        y_val = np.asarray(y_val, dtype=float)
    cat_cols = frozenset(int(c) for c in cat_cols)
    if any(c < 0 or c >= x.shape[1] for c in cat_cols):
        raise ValueError(f"cat_cols out of range for {x.shape[1]} columns: "
                         f"{sorted(cat_cols)}")

    dim = x.shape[1]
    box = Hyperbox.unrestricted(dim)
    in_box = np.arange(len(x))
    in_val = np.arange(len(x_val))

    boxes = [box]
    train_means = [_mean(y)]
    train_support = [len(x)]
    val_means = [_mean(y_val)]

    total_mean = _mean(y)
    total_n = len(y)
    peeler = (None if engine == "reference" else
              _kernels.VectorizedPeeler(x, y, alpha, objective,
                                        total_mean, total_n,
                                        cat_cols=cat_cols))
    while True:
        if peeler is None:
            step = _best_peel(x, y, in_box, alpha, objective, total_mean,
                              total_n, cat_cols)
            new_in_box = None if step is None else in_box[step.keep_mask]
        else:
            step = peeler.best_peel()
            new_in_box = None if step is None else step.keep_rows
        if step is None:
            break
        if step.new_cats is not None:
            new_box = box.with_cats(step.dim, step.new_cats)
        else:
            new_box = box.replace(step.dim, lower=step.new_lower,
                                  upper=step.new_upper)
        # A peel only tightens one dimension, and in_val already
        # satisfies the current box, so one column check updates
        # membership (set membership for a categorical peel).
        if step.new_cats is not None:
            new_in_val = in_val[cat_mask(x_val[in_val, step.dim],
                                         step.new_cats)]
        elif step.new_lower is not None:
            new_in_val = in_val[x_val[in_val, step.dim] >= step.new_lower]
        else:
            new_in_val = in_val[x_val[in_val, step.dim] <= step.new_upper]
        if len(new_in_box) < min_support or len(new_in_val) < min_support:
            break

        if peeler is not None:
            peeler.apply(step)
        box, in_box, in_val = new_box, new_in_box, new_in_val
        boxes.append(box)
        train_means.append(_mean(y[in_box]))
        train_support.append(len(in_box))
        val_means.append(_mean(y_val[in_val]))

    val_means_arr = np.array(val_means)
    chosen = int(np.argmax(val_means_arr))

    if paste and chosen > 0:
        pasted = _paste(x, y, boxes[chosen], alpha, chosen_mean=train_means[chosen])
        if pasted is not None:
            boxes[chosen] = pasted
            inside = pasted.contains(x)
            train_means[chosen] = _mean(y[inside])
            train_support[chosen] = int(inside.sum())
            inside_val = pasted.contains(x_val)
            val_means_arr[chosen] = _mean(y_val[inside_val])

    return PRIMResult(
        boxes=boxes,
        train_means=np.array(train_means),
        train_support=np.array(train_support, dtype=np.int64),
        val_means=val_means_arr,
        chosen=chosen,
    )


@dataclass(frozen=True)
class _PeelStep:
    dim: int
    new_lower: float | None
    new_upper: float | None
    keep_mask: np.ndarray
    score: float
    new_cats: tuple | None = None


# Shared with the vectorized kernel so both engines score candidates
# through the same formulas.
_peel_score = _kernels.peel_score


def _best_peel(x: np.ndarray, y: np.ndarray, in_box: np.ndarray,
               alpha: float, objective: str = "mean",
               total_mean: float = 0.0, total_n: int = 1,
               cat_cols: frozenset = frozenset()) -> _PeelStep | None:
    """The best-scoring candidate peel across all faces, or None.

    For each numeric input, the candidate cuts remove the points below
    the alpha-quantile or above the (1-alpha)-quantile of the in-box
    values (ties at the quantile stay inside, as in the reference
    implementation).  When more than an alpha share of points ties at
    the extreme value — the discrete-input case — the cut falls back to
    removing that entire level.  Inputs listed in ``cat_cols`` generate
    one candidate per in-box category (ascending code order), each
    removing that category — Friedman & Fisher's categorical peel.
    Candidates that remove nothing or everything are invalid.
    """
    y_box = y[in_box]
    n = len(in_box)
    mean_before = float(y_box.mean()) if n else 0.0
    best: _PeelStep | None = None
    for dim in range(x.shape[1]):
        values = x[in_box, dim]

        if dim in cat_cols:
            levels = np.unique(values)
            if len(levels) < 2:
                continue  # a single remaining level cannot be peeled
            for code in levels:
                keep = values != code
                kept = int(keep.sum())
                mean_after = float(y_box[keep].mean())
                score = _peel_score(objective, mean_after, kept, n,
                                    mean_before, total_mean, total_n)
                if best is None or score > best.score:
                    best = _PeelStep(
                        dim=dim, new_lower=None, new_upper=None,
                        keep_mask=keep, score=score,
                        new_cats=tuple(float(lv) for lv in levels
                                       if lv != code),
                    )
            continue

        low_q, high_q = np.quantile(values, (alpha, 1.0 - alpha))

        for is_lower, bound in ((True, low_q), (False, high_q)):
            keep = values >= bound if is_lower else values <= bound
            kept = int(keep.sum())
            if kept == n:
                # Tie fallback: peel the whole extreme level.
                if is_lower:
                    keep = values > values.min()
                    if not keep.any():
                        continue
                    bound = float(values[keep].min())
                else:
                    keep = values < values.max()
                    if not keep.any():
                        continue
                    bound = float(values[keep].max())
                kept = int(keep.sum())
            if kept == n or kept == 0:
                continue
            mean_after = float(y_box[keep].mean())
            score = _peel_score(objective, mean_after, kept, n,
                                mean_before, total_mean, total_n)
            if best is None or score > best.score:
                best = _PeelStep(
                    dim=dim,
                    new_lower=float(bound) if is_lower else None,
                    new_upper=None if is_lower else float(bound),
                    keep_mask=keep,
                    score=score,
                )
    return best


def _paste(x: np.ndarray, y: np.ndarray, box: Hyperbox, alpha: float,
           chosen_mean: float) -> Hyperbox | None:
    """Friedman & Fisher's pasting: greedily re-expand box faces.

    Repeatedly tries to widen each face so that about ``alpha * n`` new
    points enter; the expansion with the best resulting mean is kept
    while the mean does not decrease.  Returns the expanded box, or
    None if no expansion was accepted.
    """
    current = box
    current_mean = chosen_mean
    improved_any = False
    for _ in range(100):  # hard cap; each iteration grows the box
        inside = current.contains(x)
        n_inside = int(inside.sum())
        if n_inside == 0:
            break
        n_add = max(1, int(round(alpha * n_inside)))

        best_box: Hyperbox | None = None
        best_mean = current_mean
        for dim in range(x.shape[1]):
            others = _contains_except(x, current, dim)
            values = x[:, dim]
            allowed = current.cat_restriction(dim)
            if allowed is not None:
                # Categorical paste: one candidate per re-admittable
                # category (present in the others-mask rows but not
                # currently allowed), ascending code order.
                excluded = others & ~cat_mask(values, allowed)
                for code in np.unique(values[excluded]):
                    candidate_box = current.with_cats(
                        dim, allowed | {float(code)})
                    mean = _mean(y[candidate_box.contains(x)])
                    if mean > best_mean:
                        best_mean = mean
                        best_box = candidate_box
                continue
            for side in ("lower", "upper"):
                bound = current.lower[dim] if side == "lower" else current.upper[dim]
                if not np.isfinite(bound):
                    continue
                if side == "lower":
                    outside = others & (values < bound)
                    if not outside.any():
                        continue
                    candidates = np.sort(values[outside])[::-1]
                    new_bound = candidates[min(n_add, len(candidates)) - 1]
                    candidate_box = current.replace(dim, lower=float(new_bound))
                else:
                    outside = others & (values > bound)
                    if not outside.any():
                        continue
                    candidates = np.sort(values[outside])
                    new_bound = candidates[min(n_add, len(candidates)) - 1]
                    candidate_box = current.replace(dim, upper=float(new_bound))
                mean = _mean(y[candidate_box.contains(x)])
                if mean > best_mean:
                    best_mean = mean
                    best_box = candidate_box
        if best_box is None:
            break
        current, current_mean = best_box, best_mean
        improved_any = True
    return current if improved_any else None


def _contains_except(x: np.ndarray, box: Hyperbox, skip_dim: int) -> np.ndarray:
    """Membership ignoring one dimension's restriction."""
    mask = np.ones(len(x), dtype=bool)
    for j in box.restricted_dims:
        if j == skip_dim:
            continue
        allowed = box.cat_restriction(j)
        if allowed is not None:
            mask &= cat_mask(x[:, j], allowed)
        else:
            mask &= (x[:, j] >= box.lower[j]) & (x[:, j] <= box.upper[j])
    return mask
