"""The covering approach for discovering several subgroups.

As described in Section 3.2 of the paper: repeatedly run a subgroup
discovery algorithm on the examples *not* covered by previously found
boxes.  Works with any of the algorithms in this package; the caller
supplies a function mapping ``(x, y)`` to a single box.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.subgroup._kernels import contains_many
from repro.subgroup.box import Hyperbox

__all__ = ["covering"]


def covering(
    x: np.ndarray,
    y: np.ndarray,
    discover: Callable[[np.ndarray, np.ndarray], Hyperbox],
    *,
    n_subgroups: int = 3,
    min_remaining: int = 20,
    min_positives: int = 1,
) -> list[Hyperbox]:
    """Find up to ``n_subgroups`` boxes by successive removal (Sec. 3.2).

    Parameters
    ----------
    x, y:
        The full dataset.
    discover:
        Any single-box discovery function ``(x, y) -> Hyperbox`` — e.g.
        a PRIM or BI run reduced to its chosen box.
    n_subgroups:
        Maximal number of boxes to return.
    min_remaining, min_positives:
        Early-stop thresholds on the uncovered examples/positives.

    Returns
    -------
    list of Hyperbox
        The discovered boxes, first found first.  Stops early when too
        few uncovered examples or positives remain, or when the
        discovery function returns an unrestricted box (no signal left).
    """
    # Column-contiguous once, so every round's membership kernel call
    # skips its own layout conversion.
    x = np.asfortranarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")

    remaining = np.ones(len(x), dtype=bool)
    found: list[Hyperbox] = []
    for _ in range(n_subgroups):
        if remaining.sum() < min_remaining or y[remaining].sum() < min_positives:
            break
        box = discover(x[remaining], y[remaining])
        if box.n_restricted == 0:
            break
        found.append(box)
        # Membership through the batched kernel (one box per round: the
        # loop is inherently sequential, each run only sees the points
        # every earlier box left uncovered).
        remaining &= ~contains_many((box,), x)[0]
    return found
