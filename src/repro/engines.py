"""Central kernel-engine registry: one name check, one numba gate.

Every layer that takes an ``engine=`` knob (tree/forest/boosting,
PRIM, BestInterval, ``discover``, the harness, the CLI, benchmarks)
resolves the name through :func:`resolve` instead of scattering
``engine in (...)`` string checks.  Three engines exist:

* ``"vectorized"`` — the numpy sort-once kernels (the default);
* ``"reference"`` — the pinned per-item reference loops;
* ``"native"`` — compiled numba kernels
  (:mod:`repro.metamodels._native`, :mod:`repro.subgroup._native`)
  that break the gather-bound prediction ceiling measured in PR 4.

``"native"`` degrades gracefully: when numba is not importable,
:func:`resolve` returns ``"vectorized"`` and emits **one**
``RuntimeWarning`` per process — never an exception — so every
pipeline, store key and test stays green on a runner without the
optional ``[native]`` extra installed.

Testing hook: ``REDS_NATIVE_PUREPY=1`` forces the native kernels to
run as plain Python (the ``@njit`` decorator becomes the identity).
That keeps the *logic* of the kernels testable on numba-less runners —
the equivalence suites exercise the exact code numba would compile —
at interpreter speed, so only small inputs should go through it.
"""

from __future__ import annotations

import os
import warnings

__all__ = [
    "HAVE_NUMBA",
    "KNOWN_ENGINES",
    "available_engines",
    "native_ready",
    "njit",
    "prange",
    "resolve",
    "warmup_native",
]

#: Every engine name any layer accepts, in default-first order.
KNOWN_ENGINES = ("vectorized", "reference", "native")

try:  # pragma: no cover - exercised only on numba-enabled runners
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the ubiquitous fallback path
    HAVE_NUMBA = False
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator: the kernels run as plain Python."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


def _purepy_forced() -> bool:
    """Whether ``REDS_NATIVE_PUREPY`` asks for pure-Python kernels."""
    return os.environ.get("REDS_NATIVE_PUREPY", "").strip() not in ("", "0")


def native_ready() -> bool:
    """Whether ``engine="native"`` can actually execute its kernels.

    True with numba importable, or with ``REDS_NATIVE_PUREPY`` set
    (the kernels then run undecorated — the testing hook).
    """
    return HAVE_NUMBA or _purepy_forced()


def available_engines() -> tuple[str, ...]:
    """Engine names accepted everywhere (``"native"`` is always
    listed: it resolves to a working engine even without numba)."""
    return KNOWN_ENGINES


_warned_fallback = False


def resolve(engine: str) -> str:
    """Validate an engine name and return the engine that will run.

    Raises one early ``ValueError`` listing the valid names for any
    unknown engine — the single place a bad ``--engine`` /
    ``REDS_ENGINE`` value surfaces.  ``"native"`` without a usable
    backend returns ``"vectorized"`` after warning once per process.
    """
    if engine not in KNOWN_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {KNOWN_ENGINES}")
    if engine == "native":
        if native_ready():
            # Let forked/spawned pool workers know they should warm
            # the compiled kernels at startup (see _init_worker).
            os.environ["REDS_NATIVE_ACTIVE"] = "1"
            return "native"
        global _warned_fallback
        if not _warned_fallback:
            warnings.warn(
                "engine='native' requested but numba is not installed; "
                "falling back to engine='vectorized' (install the native "
                "extra: pip install -e .[native])",
                RuntimeWarning, stacklevel=2)
            _warned_fallback = True
        return "vectorized"
    return engine


def warmup_native() -> bool:
    """Compile-or-load every native kernel on tiny inputs.

    With ``cache=True`` on the kernels this is a disk-cache load after
    the first process has compiled, so pool workers pay milliseconds,
    not a recompilation, before their first real task.  Returns whether
    the kernels are usable; never raises.
    """
    if not native_ready():
        return False
    try:
        from repro.metamodels import _native as _mm_native
        from repro.subgroup import _native as _sg_native

        _mm_native.warmup()
        _sg_native.warmup()
        return True
    except Exception:  # pragma: no cover - defensive: warmup is advisory
        return False
