"""Method registry: build any evaluated method from its paper name.

Naming conventions of Section 8.2:

* ``"P"`` — PRIM peeling with default ``alpha = 0.05``;
* ``"Pc"`` — PRIM with cross-validated ``alpha``;
* ``"PB"`` / ``"PBc"`` — PRIM with bumping (``Q = 50``), default /
  cross-validated hyperparameters;
* ``"BI"`` / ``"BI5"`` — BestInterval with beam size 1 / 5;
* ``"BIc"`` — BestInterval with cross-validated depth ``m``;
* REDS methods start with ``"R"``: then the SD algorithm (``P`` or
  ``BI``), an optional ``c`` (SD hyperparameters tuned on ``D``), the
  metamodel letter (``f`` = random forest, ``x`` = XGBoost-style
  boosting, ``s`` = RBF SVM), and an optional trailing ``p`` for the
  soft-label ("probabilities") modification.  Examples: ``"RPx"``,
  ``"RPfp"``, ``"RPcxp"``, ``"RBIcxp"``.

Defaults follow Table 2: ``mp = 20``, ``Q = 50``, ``L = 10^5`` for
PRIM-based REDS and ``L = 10^4`` for BI-based REDS.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import hyperparams as hp
from repro.core.reds import Sampler, reds
from repro.sampling.designs import quantize_levels
from repro.subgroup.best_interval import best_interval
from repro.subgroup.box import Hyperbox
from repro.subgroup.bumping import prim_bumping
from repro.subgroup.prim import prim_peel

__all__ = ["MethodSpec", "DiscoveryResult", "parse_method", "discover"]

_METAMODEL_BY_LETTER = {"f": "forest", "x": "boosting", "s": "svm"}
_REDS_PATTERN = re.compile(r"^R(P|BI)(c?)([fxs])(p?)$")

#: Table 2 defaults.
DEFAULT_ALPHA = 0.05
DEFAULT_MIN_SUPPORT = 20
DEFAULT_BUMPING_REPEATS = 50
DEFAULT_L_PRIM = 100_000
DEFAULT_L_BI = 10_000


@dataclass(frozen=True)
class MethodSpec:
    """Parsed method name."""

    name: str
    sd: str                      # "prim" | "bumping" | "bi"
    optimize: bool               # the "c" suffix
    beam_size: int = 1           # BI only
    metamodel: str | None = None  # REDS only: "forest" | "boosting" | "svm"
    soft_labels: bool = False    # REDS "p" modification

    @property
    def is_reds(self) -> bool:
        return self.metamodel is not None

    @property
    def family(self) -> str:
        """"prim" for trajectory-producing methods, "bi" otherwise."""
        return "bi" if self.sd == "bi" else "prim"


def parse_method(name: str) -> MethodSpec:
    """Parse a Section 8.2 method name into a :class:`MethodSpec`."""
    plain = {
        "P": MethodSpec(name, "prim", optimize=False),
        "Pc": MethodSpec(name, "prim", optimize=True),
        "PB": MethodSpec(name, "bumping", optimize=False),
        "PBc": MethodSpec(name, "bumping", optimize=True),
        "BI": MethodSpec(name, "bi", optimize=False, beam_size=1),
        "BI5": MethodSpec(name, "bi", optimize=False, beam_size=5),
        "BIc": MethodSpec(name, "bi", optimize=True, beam_size=1),
    }
    if name in plain:
        return plain[name]
    match = _REDS_PATTERN.match(name)
    if match is None:
        raise ValueError(
            f"unknown method name {name!r}; expected one of {sorted(plain)} "
            "or a REDS name like 'RPx', 'RPfp', 'RPcxp', 'RBIcxp'"
        )
    sd_token, c_token, am_token, p_token = match.groups()
    return MethodSpec(
        name=name,
        sd="prim" if sd_token == "P" else "bi",
        optimize=bool(c_token),
        metamodel=_METAMODEL_BY_LETTER[am_token],
        soft_labels=bool(p_token),
    )


@dataclass
class DiscoveryResult:
    """Unified output of any method.

    ``boxes`` is the trajectory-like sequence used for PR AUC (nested
    boxes for PRIM, the Pareto set for bumping, a single box for BI);
    ``chosen_box`` is the "last box" used for the point measures.
    """

    method: str
    boxes: list[Hyperbox]
    chosen_box: Hyperbox
    runtime: float
    hyperparams: dict = field(default_factory=dict)
    train_quality: float = 0.0


def discover(
    name: str,
    x: np.ndarray,
    y: np.ndarray,
    *,
    seed: int = 0,
    alpha: float = DEFAULT_ALPHA,
    min_support: int = DEFAULT_MIN_SUPPORT,
    n_repeats: int = DEFAULT_BUMPING_REPEATS,
    n_new: int | None = None,
    sampler: Sampler | None = None,
    pool: np.ndarray | None = None,
    tune_metamodel: bool = True,
    paste: bool = False,
    engine: str = "vectorized",
    jobs: int | None = 1,
    chunk_rows: int | None = None,
    cat_levels: dict[int, int] | None = None,
) -> DiscoveryResult:
    """Run the method ``name`` on dataset ``(x, y)``.

    Parameters beyond the data mirror Table 2 and the REDS knobs:
    ``alpha`` is used when the method does not optimise it; ``n_new``
    overrides the ``L`` default; ``sampler``/``pool`` set the REDS input
    distribution (Sections 9.1.2 / 9.4); ``tune_metamodel`` can disable
    the caret-style metamodel grid search for quick runs; ``engine``
    selects the kernel engine (``"vectorized"`` / ``"reference"``) for
    PRIM peeling, the BestInterval beam search (see
    :func:`repro.subgroup.prim.prim_peel` and
    :func:`repro.subgroup.best_interval.best_interval`) *and* the
    metamodel layer of REDS methods (tree growth and stacked ensemble
    prediction, see :mod:`repro.metamodels._kernels`); ``jobs`` /
    ``chunk_rows`` fan the data-parallel stages (metamodel tuning
    folds, pool labeling, bumping repeats) out over worker processes
    with bit-identical results.

    ``cat_levels`` declares categorical inputs as a ``{column index:
    level count}`` map (:attr:`repro.data.model.SimulationModel.cat_levels_map`).
    The listed columns must hold integer codes ``0 .. K-1``; subgroup
    discovery then peels/refines them category-wise (subset
    restrictions instead of intervals), and REDS methods draw their
    relabeling sample with those columns quantized to the same codes.
    Hyperparameter optimisation (the ``c`` methods) still scores
    candidates on ordinal-coded data — a deliberate simplification
    that only affects which ``alpha``/``m`` gets picked, never the
    discovery semantics.  The metamodel layer likewise treats the codes
    as ordered integers (the documented ordinal fallback, see
    :mod:`repro.metamodels._kernels`).
    """
    spec = parse_method(name)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if cat_levels:
        bad = [j for j in cat_levels if not 0 <= int(j) < x.shape[1]]
        if bad:
            raise ValueError(
                f"cat_levels columns {bad} out of range for {x.shape[1]} inputs")
        cat_levels = {int(j): int(k) for j, k in cat_levels.items()}
    cat_cols = tuple(sorted(cat_levels)) if cat_levels else ()
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    chosen_params: dict = {}

    # ------------------------------------------------------------------
    # Resolve SD hyperparameters (on D, also for REDS methods).
    # ------------------------------------------------------------------
    if spec.sd in ("prim", "bumping"):
        if spec.optimize:
            alpha = hp.optimize_alpha(x, y, min_support=min_support, seed=seed)
        chosen_params["alpha"] = alpha
    depth = None
    if spec.sd == "bumping":
        if spec.optimize:
            depth = hp.optimize_bumping_features(
                x, y, alpha=alpha, min_support=min_support, seed=seed)
        else:
            depth = x.shape[1]
        chosen_params["m"] = depth
    if spec.sd == "bi":
        if spec.optimize:
            depth = hp.optimize_bi_depth(x, y, beam_size=spec.beam_size, seed=seed)
        else:
            depth = x.shape[1]
        chosen_params["m"] = depth
        chosen_params["bs"] = spec.beam_size

    # ------------------------------------------------------------------
    # Build the SD callable.  For REDS methods the *original* simulated
    # dataset serves as PRIM's validation set: the relabelled points
    # only guide the peeling, while box selection and the minimum-
    # support constraint stay grounded in real simulations.  Otherwise
    # the selection would chase metamodel artefacts into arbitrarily
    # deep (tiny, unstable) boxes, destroying the consistency gains the
    # paper reports.
    # ------------------------------------------------------------------
    validation = (x, y) if spec.is_reds else (None, None)
    if spec.sd == "prim":
        def run_sd(data_x: np.ndarray, data_y: np.ndarray):
            return prim_peel(data_x, data_y, alpha=alpha,
                             min_support=min_support, paste=paste,
                             x_val=validation[0], y_val=validation[1],
                             engine=engine, cat_cols=cat_cols)
    elif spec.sd == "bumping":
        def run_sd(data_x: np.ndarray, data_y: np.ndarray):
            return prim_bumping(
                data_x, data_y, alpha=alpha, min_support=min_support,
                n_repeats=n_repeats, n_features=depth, rng=rng,
                x_val=validation[0], y_val=validation[1],
                engine=engine, cat_cols=cat_cols, jobs=jobs,
            )
    else:
        def run_sd(data_x: np.ndarray, data_y: np.ndarray):
            return best_interval(data_x, data_y, depth=depth,
                                 beam_size=spec.beam_size, engine=engine,
                                 cat_cols=cat_cols)

    # ------------------------------------------------------------------
    # Run, possibly through REDS.
    # ------------------------------------------------------------------
    if spec.is_reds:
        if n_new is None:
            n_new = DEFAULT_L_PRIM if spec.family == "prim" else DEFAULT_L_BI
        if cat_levels and sampler is None and pool is None:
            # The relabeling sample must live in the same mixed input
            # space as D: uniform on the numeric columns, uniform over
            # the integer codes on the categorical ones.
            levels = dict(cat_levels)

            def sampler(n_pts: int, m: int, gen: np.random.Generator):
                return quantize_levels(gen.random((n_pts, m)), levels)
        chosen_params["L"] = n_new if pool is None else len(pool)
        chosen_params["metamodel"] = spec.metamodel
        reds_result = reds(
            x, y, run_sd,
            metamodel=spec.metamodel,
            n_new=n_new,
            soft_labels=spec.soft_labels,
            sampler=sampler,
            pool=pool,
            tune=tune_metamodel,
            rng=rng,
            engine=engine,
            jobs=jobs,
            chunk_rows=chunk_rows,
        )
        sd_output = reds_result.sd_output
    else:
        sd_output = run_sd(x, y)

    runtime = time.perf_counter() - t0
    boxes, chosen_box, train_quality = _extract_boxes(spec, sd_output)
    return DiscoveryResult(
        method=name,
        boxes=boxes,
        chosen_box=chosen_box,
        runtime=runtime,
        hyperparams=chosen_params,
        train_quality=train_quality,
    )


def _extract_boxes(spec: MethodSpec, sd_output) -> tuple[list[Hyperbox], Hyperbox, float]:
    if spec.sd == "prim":
        return (list(sd_output.boxes), sd_output.chosen_box,
                float(sd_output.val_means[sd_output.chosen]))
    if spec.sd == "bumping":
        boxes = list(sd_output.boxes)
        if not boxes:  # degenerate: fall back to the unrestricted box
            full = Hyperbox.unrestricted(1)
            return [full], full, 0.0
        return boxes, sd_output.chosen_box, float(sd_output.precisions.max())
    return [sd_output.box], sd_output.box, float(sd_output.wracc)
