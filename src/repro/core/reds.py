"""REDS — Rule Extraction for Discovering Scenarios (Algorithm 4).

The four steps of the paper's method:

1. train an accurate metamodel ``AM`` on the simulated dataset ``D``;
2. sample ``L`` new points i.i.d. from the same input distribution;
3. label them with the metamodel — hard labels ``I(f_am(x) > bnd)`` or,
   in the "p" modification, the raw probabilities ``f_am(x)``;
4. run a subgroup-discovery algorithm on the relabelled data.

The semi-supervised variant (Sections 6.1 and 9.4) replaces step 2 by an
existing pool of unlabeled points from the same distribution ``p(x)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.metamodels.base import Metamodel, predict_chunked
from repro.metamodels.tuning import make_metamodel, tune_metamodel

__all__ = ["reds", "REDSResult"]

Sampler = Callable[[int, int, np.random.Generator], np.ndarray]


@dataclass
class REDSResult:
    """Output of a REDS run.

    ``sd_output`` is whatever the supplied subgroup-discovery callable
    returned (a :class:`~repro.subgroup.prim.PRIMResult`,
    :class:`~repro.subgroup.bumping.BumpingResult`,
    :class:`~repro.subgroup.best_interval.BIResult`, ...); the
    intermediate artefacts are exposed for inspection and testing.
    """

    sd_output: Any
    metamodel: Metamodel
    x_new: np.ndarray
    y_new: np.ndarray
    train_time: float
    label_time: float
    sd_time: float


def reds(
    x: np.ndarray,
    y: np.ndarray,
    sd: Callable[[np.ndarray, np.ndarray], Any],
    *,
    metamodel: str | Metamodel = "boosting",
    n_new: int = 100_000,
    soft_labels: bool = False,
    sampler: Sampler | None = None,
    pool: np.ndarray | None = None,
    tune: bool = True,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
    jobs: int | None = 1,
    chunk_rows: int | None = None,
) -> REDSResult:
    """Run REDS (Algorithm 4).

    Parameters
    ----------
    x, y:
        The simulated dataset ``D`` (inputs in unit-cube coordinates,
        binary labels).
    sd:
        Subgroup-discovery algorithm applied to the relabelled data.
    metamodel:
        Family name (``"forest"``, ``"boosting"``, ``"svm"``) tuned and
        fitted internally, or an already-constructed (unfitted)
        metamodel instance.
    n_new:
        ``L``, the number of newly generated points (ignored when
        ``pool`` is given).
    soft_labels:
        The "p" modification: label with ``f_am(x)`` in [0, 1] instead
        of hard 0/1 labels.  Only meaningful for probability-producing
        metamodels (forest / boosting).
    sampler:
        Input distribution ``p(x)``; defaults to uniform Monte Carlo,
        matching the deep-uncertainty assumption.
    pool:
        Optional pre-existing unlabeled points from ``p(x)``
        (semi-supervised mode); used verbatim instead of sampling.
    tune:
        Cross-validate the metamodel's hyperparameters (the paper's
        caret default) before the final fit.  Ignored when an instance
        is passed.
    engine:
        Metamodel kernel engine (``"vectorized"`` / ``"reference"``)
        threaded into tuning and fitting when a family name is given;
        ignored when an already-constructed instance is passed.
    jobs:
        Worker processes (None = all CPUs, default 1) for the two
        data-parallel stages: the metamodel tuning grid fans its
        (candidate, fold) cells out, and step 3's labeling of the ``L``
        new points fans row chunks out against a shared-memory map of
        the pool (:func:`repro.metamodels.base.predict_chunked`).
        Labels and fits are bit-identical for every setting — ``jobs``
        only buys wall-clock time on the paper's dominant
        ``label_time``.
    chunk_rows:
        Labeling rows per fan-out chunk (default: one per worker).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if n_new < 1 and pool is None:
        raise ValueError(f"n_new must be >= 1, got {n_new}")
    if rng is None:
        rng = np.random.default_rng()

    t0 = time.perf_counter()
    if isinstance(metamodel, str):
        if tune:
            fitted = tune_metamodel(metamodel, x, y, engine=engine, jobs=jobs)
        else:
            fitted = make_metamodel(metamodel, engine=engine).fit(x, y)
    else:
        fitted = metamodel.fit(x, y)
    train_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    if pool is not None:
        x_new = np.asarray(pool, dtype=float)
        if x_new.shape[1] != x.shape[1]:
            raise ValueError(
                f"pool has {x_new.shape[1]} inputs, training data has {x.shape[1]}"
            )
    else:
        draw = sampler if sampler is not None else _uniform
        x_new = draw(n_new, x.shape[1], rng)
    if soft_labels:
        y_new = np.clip(
            predict_chunked(fitted, x_new, soft=True, jobs=jobs,
                            chunk_rows=chunk_rows),
            0.0, 1.0)
    else:
        y_new = predict_chunked(fitted, x_new, jobs=jobs,
                                chunk_rows=chunk_rows).astype(float)
    label_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    sd_output = sd(x_new, y_new)
    sd_time = time.perf_counter() - t0

    return REDSResult(
        sd_output=sd_output,
        metamodel=fitted,
        x_new=x_new,
        y_new=y_new,
        train_time=train_time,
        label_time=label_time,
        sd_time=sd_time,
    )


def _uniform(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((n, m))
