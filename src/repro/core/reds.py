"""REDS — Rule Extraction for Discovering Scenarios (Algorithm 4).

The four steps of the paper's method:

1. train an accurate metamodel ``AM`` on the simulated dataset ``D``;
2. sample ``L`` new points i.i.d. from the same input distribution;
3. label them with the metamodel — hard labels ``I(f_am(x) > bnd)`` or,
   in the "p" modification, the raw probabilities ``f_am(x)``;
4. run a subgroup-discovery algorithm on the relabelled data.

The semi-supervised variant (Sections 6.1 and 9.4) replaces step 2 by an
existing pool of unlabeled points from the same distribution ``p(x)``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.metamodels.base import Metamodel, predict_chunked
from repro.metamodels.tuning import make_metamodel, tune_metamodel

__all__ = ["clear_fit_cache", "fit_metamodel", "fit_stats",
           "reset_fit_stats", "reds", "REDSResult"]

Sampler = Callable[[int, int, np.random.Generator], np.ndarray]


# ----------------------------------------------------------------------
# Warm-session metamodel fit memo
# ----------------------------------------------------------------------
#
# Fitting (especially the tuned CV grid) dominates repeated discovery
# calls over the same training data.  Under an active warm session
# (``REDS_SESSION=1``) :func:`fit_metamodel` memoizes the fitted model
# by the store's key discipline — config plus source fingerprint plus
# the *content* of (x, y) — so a code edit or different data re-fits
# while identical requests share one object.  The memo is
# bit-identity-safe: fitting is deterministic given (kind, tune,
# engine, x, y) — ``tune_metamodel`` runs a seeded KFold and aggregates
# integer counts, so ``jobs`` never enters the result and is
# deliberately absent from the key.  Single-flight: concurrent requests
# for the same key block on one fit instead of racing N.

_FIT_LOCK = threading.Lock()
_FIT_CACHE: "OrderedDict[str, Metamodel]" = OrderedDict()
_FIT_INFLIGHT: dict[str, threading.Event] = {}
_FIT_STATS = {"fits": 0, "hits": 0}


def _reset_fit_state_after_fork() -> None:
    # Cached fitted models are plain read-only objects, so a forked
    # worker keeps them; but an inherited in-flight event would never
    # be set in the child, and the lock may have been held mid-fork.
    global _FIT_LOCK
    _FIT_LOCK = threading.Lock()
    _FIT_INFLIGHT.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_fit_state_after_fork)


def _fit_cache_cap() -> int:
    try:
        return max(int(os.environ.get("REDS_SESSION_FITS", "8")), 0)
    except ValueError:
        return 8


def fit_stats() -> dict[str, int]:
    """Fit/hit counters plus the number of cached fitted models."""
    with _FIT_LOCK:
        return {**_FIT_STATS, "cached": len(_FIT_CACHE)}


def reset_fit_stats() -> None:
    """Zero the fit/hit counters (tests and benchmarks)."""
    with _FIT_LOCK:
        _FIT_STATS["fits"] = 0
        _FIT_STATS["hits"] = 0


def clear_fit_cache() -> None:
    """Drop every cached fitted model (counters are kept)."""
    with _FIT_LOCK:
        _FIT_CACHE.clear()


def fit_metamodel(kind: str, x: np.ndarray, y: np.ndarray, *,
                  tune: bool = True, engine: str = "vectorized",
                  jobs: int = 1) -> Metamodel:
    """Fit (or, in a warm session, recall) a metamodel of ``kind``.

    The one-shot path is exactly the historical ``reds()`` fit block:
    ``tune_metamodel`` when ``tune`` else a default-parameter fit.
    Inside a warm session the fitted model is memoized — the *same
    object* is returned for identical ``(kind, tune, engine, x, y)``,
    which also keeps the pickled plan context of later
    ``predict_chunked`` fan-outs byte-stable so their pools cache.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)

    def fit() -> Metamodel:
        if tune:
            return tune_metamodel(kind, x, y, engine=engine, jobs=jobs)
        return make_metamodel(kind, engine=engine).fit(x, y)

    # Lazy imports: dataplane/store sit above core in the layer order.
    try:
        from repro.experiments.dataplane import content_key, session_active
        from repro.experiments.store import task_key
    except Exception:  # pragma: no cover - circular-import guard
        return fit()
    if not session_active() or _fit_cache_cap() == 0:
        return fit()
    key = task_key("repro.core.reds.fit_metamodel",
                   {"kind": kind, "tune": bool(tune), "engine": engine,
                    "x": content_key(x), "y": content_key(y)})
    while True:
        with _FIT_LOCK:
            cached = _FIT_CACHE.get(key)
            if cached is not None:
                _FIT_CACHE.move_to_end(key)
                _FIT_STATS["hits"] += 1
                return cached
            event = _FIT_INFLIGHT.get(key)
            if event is None:
                _FIT_INFLIGHT[key] = threading.Event()
                break
        # Another thread is fitting this key: wait, then re-check (the
        # fitter may have failed, in which case this thread takes over).
        event.wait()
    try:
        fitted = fit()
    finally:
        with _FIT_LOCK:
            _FIT_INFLIGHT.pop(key).set()
    with _FIT_LOCK:
        _FIT_CACHE[key] = fitted
        _FIT_STATS["fits"] += 1
        cap = _fit_cache_cap()
        while len(_FIT_CACHE) > cap:
            _FIT_CACHE.popitem(last=False)
    return fitted


@dataclass
class REDSResult:
    """Output of a REDS run.

    ``sd_output`` is whatever the supplied subgroup-discovery callable
    returned (a :class:`~repro.subgroup.prim.PRIMResult`,
    :class:`~repro.subgroup.bumping.BumpingResult`,
    :class:`~repro.subgroup.best_interval.BIResult`, ...); the
    intermediate artefacts are exposed for inspection and testing.
    """

    sd_output: Any
    metamodel: Metamodel
    x_new: np.ndarray
    y_new: np.ndarray
    train_time: float
    label_time: float
    sd_time: float


def reds(
    x: np.ndarray,
    y: np.ndarray,
    sd: Callable[[np.ndarray, np.ndarray], Any],
    *,
    metamodel: str | Metamodel = "boosting",
    n_new: int = 100_000,
    soft_labels: bool = False,
    sampler: Sampler | None = None,
    pool: np.ndarray | None = None,
    tune: bool = True,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
    jobs: int | None = 1,
    chunk_rows: int | None = None,
) -> REDSResult:
    """Run REDS (Algorithm 4).

    Parameters
    ----------
    x, y:
        The simulated dataset ``D`` (inputs in unit-cube coordinates,
        binary labels).
    sd:
        Subgroup-discovery algorithm applied to the relabelled data.
    metamodel:
        Family name (``"forest"``, ``"boosting"``, ``"svm"``) tuned and
        fitted internally, or an already-constructed (unfitted)
        metamodel instance.
    n_new:
        ``L``, the number of newly generated points (ignored when
        ``pool`` is given).
    soft_labels:
        The "p" modification: label with ``f_am(x)`` in [0, 1] instead
        of hard 0/1 labels.  Only meaningful for probability-producing
        metamodels (forest / boosting).
    sampler:
        Input distribution ``p(x)``; defaults to uniform Monte Carlo,
        matching the deep-uncertainty assumption.
    pool:
        Optional pre-existing unlabeled points from ``p(x)``
        (semi-supervised mode); used verbatim instead of sampling.
    tune:
        Cross-validate the metamodel's hyperparameters (the paper's
        caret default) before the final fit.  Ignored when an instance
        is passed.
    engine:
        Metamodel kernel engine (``"vectorized"`` / ``"reference"``)
        threaded into tuning and fitting when a family name is given;
        ignored when an already-constructed instance is passed.
    jobs:
        Worker processes (None = all CPUs, default 1) for the two
        data-parallel stages: the metamodel tuning grid fans its
        (candidate, fold) cells out, and step 3's labeling of the ``L``
        new points fans row chunks out against a shared-memory map of
        the pool (:func:`repro.metamodels.base.predict_chunked`).
        Labels and fits are bit-identical for every setting — ``jobs``
        only buys wall-clock time on the paper's dominant
        ``label_time``.
    chunk_rows:
        Labeling rows per fan-out chunk (default: one per worker).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    if n_new < 1 and pool is None:
        raise ValueError(f"n_new must be >= 1, got {n_new}")
    if rng is None:
        rng = np.random.default_rng()

    t0 = time.perf_counter()
    if isinstance(metamodel, str):
        fitted = fit_metamodel(metamodel, x, y, tune=tune, engine=engine,
                               jobs=jobs)
    else:
        fitted = metamodel.fit(x, y)
    train_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    if pool is not None:
        x_new = np.asarray(pool, dtype=float)
        if x_new.shape[1] != x.shape[1]:
            raise ValueError(
                f"pool has {x_new.shape[1]} inputs, training data has {x.shape[1]}"
            )
    else:
        draw = sampler if sampler is not None else _uniform
        x_new = draw(n_new, x.shape[1], rng)
    if soft_labels:
        y_new = np.clip(
            predict_chunked(fitted, x_new, soft=True, jobs=jobs,
                            chunk_rows=chunk_rows),
            0.0, 1.0)
    else:
        y_new = predict_chunked(fitted, x_new, jobs=jobs,
                                chunk_rows=chunk_rows).astype(float)
    label_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    sd_output = sd(x_new, y_new)
    sd_time = time.perf_counter() - t0

    return REDSResult(
        sd_output=sd_output,
        metamodel=fitted,
        x_new=x_new,
        y_new=y_new,
        train_time=train_time,
        label_time=label_time,
        sd_time=sd_time,
    )


def _uniform(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((n, m))
