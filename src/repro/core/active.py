"""Active-learning REDS — the paper's Section 10 future-work direction.

The paper proposes combining REDS with active learning: instead of
spending the whole simulation budget on one space-filling design, run a
small initial design, then iteratively let the metamodel choose the
most informative points to simulate next (uncertainty sampling), and
only then extract scenarios from the final metamodel.

This module implements that loop for any metamodel with probability
outputs.  ``oracle`` stands for the expensive simulation model: a
callable mapping unit-cube points to binary labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.reds import Sampler
from repro.metamodels.base import Metamodel, predict_chunked
from repro.metamodels.tuning import make_metamodel

__all__ = ["active_reds", "ActiveResult", "STRATEGIES"]

Oracle = Callable[[np.ndarray], np.ndarray]

#: Available acquisition strategies.
STRATEGIES = ("uncertainty", "random")


@dataclass
class ActiveResult:
    """Output of the active-learning loop.

    ``x``/``y`` hold every simulated point (initial design + queries);
    ``sd_output`` is the subgroup-discovery result on the final
    relabelled sample; ``acquisition_history`` records the mean
    predictive uncertainty of each queried batch — useful to verify the
    loop actually concentrates on the boundary.
    """

    sd_output: Any
    metamodel: Metamodel
    x: np.ndarray
    y: np.ndarray
    acquisition_history: list[float] = field(default_factory=list)


def _select_batch(
    strategy: str,
    probabilities: np.ndarray,
    batch: int,
    rng: np.random.Generator,
) -> np.ndarray:
    if strategy == "uncertainty":
        # Smallest margin to the decision boundary first.
        order = np.argsort(np.abs(probabilities - 0.5), kind="stable")
        return order[:batch]
    return rng.choice(len(probabilities), size=batch, replace=False)


def active_reds(
    oracle: Oracle,
    dim: int,
    sd: Callable[[np.ndarray, np.ndarray], Any],
    *,
    initial: int = 100,
    budget: int = 400,
    batch: int = 50,
    metamodel: str = "boosting",
    strategy: str = "uncertainty",
    candidate_pool: int = 4_000,
    n_new: int = 20_000,
    soft_labels: bool = False,
    sampler: Sampler | None = None,
    rng: np.random.Generator | None = None,
    jobs: int | None = 1,
    chunk_rows: int | None = None,
) -> ActiveResult:
    """REDS with an active simulation loop.

    Parameters
    ----------
    oracle:
        The simulation model: unit-cube points -> 0/1 labels.
    dim:
        Input dimensionality M.
    sd:
        Subgroup-discovery algorithm applied to the final relabelled
        sample (same contract as :func:`repro.core.reds.reds`).
    initial:
        Size of the space-filling initial design.
    budget:
        Total number of oracle calls (initial design included).
    batch:
        Points queried per active iteration.
    metamodel / strategy / candidate_pool:
        Metamodel family, acquisition strategy (``"uncertainty"`` or
        ``"random"``) and per-iteration candidate-pool size.
    n_new / soft_labels / sampler:
        Passed to the final REDS labelling step.
    jobs / chunk_rows:
        Worker processes (None = all CPUs) for the per-round candidate
        scoring and the final relabelling, via
        :func:`repro.metamodels.base.predict_chunked`, and — for the
        forest metamodel — for each round's refit, whose independent
        tree fits fan out under the same budget (clamped to the
        ambient worker lease when the loop itself runs inside a
        budgeted plan).  Bit-identical to the serial loop for every
        setting.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if initial < 2:
        raise ValueError(f"initial design must have >= 2 points, got {initial}")
    if budget < initial:
        raise ValueError(f"budget {budget} is below the initial design {initial}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if rng is None:
        rng = np.random.default_rng()
    draw = sampler if sampler is not None else (
        lambda n, m, gen: gen.random((n, m)))

    # Initial space-filling design.
    x = draw(initial, dim, rng)
    y = np.asarray(oracle(x), dtype=float)

    # Every round refits from scratch; the forest's independent tree
    # fits are the dominant cost, so hand them the loop's worker
    # budget.  Other families fit sequentially (their fits are cheap
    # relative to the candidate scoring, which fans out regardless).
    fit_kwargs = (dict(jobs=jobs, chunk_rows=chunk_rows)
                  if metamodel == "forest" else {})

    model = make_metamodel(metamodel, **fit_kwargs).fit(x, y)
    history: list[float] = []
    remaining = budget - initial
    while remaining > 0:
        take = min(batch, remaining)
        candidates = draw(candidate_pool, dim, rng)
        probabilities = np.clip(
            predict_chunked(model, candidates, soft=True,
                            jobs=jobs, chunk_rows=chunk_rows),
            0.0, 1.0)
        picked = _select_batch(strategy, probabilities, take, rng)
        history.append(float(np.abs(probabilities[picked] - 0.5).mean()))

        x_query = candidates[picked]
        y_query = np.asarray(oracle(x_query), dtype=float)
        x = np.vstack([x, x_query])
        y = np.concatenate([y, y_query])
        model = make_metamodel(metamodel, **fit_kwargs).fit(x, y)
        remaining -= take

    # Final REDS step: relabel a large sample with the final metamodel.
    x_new = draw(n_new, dim, rng)
    if soft_labels:
        y_new = np.clip(
            predict_chunked(model, x_new, soft=True,
                            jobs=jobs, chunk_rows=chunk_rows),
            0.0, 1.0)
    else:
        y_new = np.asarray(
            predict_chunked(model, x_new, jobs=jobs, chunk_rows=chunk_rows),
            dtype=float)
    sd_output = sd(x_new, y_new)

    return ActiveResult(
        sd_output=sd_output,
        metamodel=model,
        x=x,
        y=y,
        acquisition_history=history,
    )
