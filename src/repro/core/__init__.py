"""The paper's contribution: REDS and the method registry.

:func:`repro.core.reds.reds` implements Algorithm 4; the
:mod:`repro.core.methods` registry builds every method evaluated in the
paper from its Section 8.2 name (``"P"``, ``"Pc"``, ``"PB"``, ``"PBc"``,
``"BI"``, ``"BI5"``, ``"BIc"``, ``"RPf"``, ``"RPx"``, ``"RPs"``,
``"RPxp"``, ``"RPfp"``, ``"RPcxp"``, ``"RBIcxp"``, ``"RBIcfp"``, ...).
"""

from repro.core.reds import reds, REDSResult
from repro.core.active import active_reds, ActiveResult, STRATEGIES
from repro.core.methods import discover, parse_method, DiscoveryResult, MethodSpec
from repro.core.hyperparams import (
    optimize_alpha,
    optimize_bumping_features,
    optimize_bi_depth,
    depth_grid,
    ALPHA_GRID,
)

__all__ = [
    "reds",
    "REDSResult",
    "active_reds",
    "ActiveResult",
    "STRATEGIES",
    "discover",
    "parse_method",
    "DiscoveryResult",
    "MethodSpec",
    "optimize_alpha",
    "optimize_bumping_features",
    "optimize_bi_depth",
    "depth_grid",
    "ALPHA_GRID",
]
