"""Hyperparameter optimisation for subgroup-discovery algorithms.

The paper's "c" suffix (Section 8.4, Table 2):

* PRIM's peeling fraction ``alpha`` is selected from
  ``{0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2}`` by 5-fold cross-validated
  PR AUC;
* the number of restricted inputs ``m`` of PRIM-with-bumping and BI is
  selected from ``{M - k * ceil(M / 6)}`` (while positive) by 5-fold
  cross-validated PR AUC / WRAcc respectively.
"""

from __future__ import annotations

import numpy as np

from repro.metamodels.tuning import KFold
from repro.metrics.trajectory import trajectory_of
from repro.metrics.quality import wracc_score
from repro.subgroup.best_interval import best_interval
from repro.subgroup.bumping import prim_bumping
from repro.subgroup.prim import prim_peel

__all__ = [
    "ALPHA_GRID",
    "depth_grid",
    "optimize_alpha",
    "optimize_bumping_features",
    "optimize_bi_depth",
]

#: The alpha candidates of Section 8.4.1.
ALPHA_GRID: tuple[float, ...] = (0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2)

#: Bootstrap repetitions used inside cross-validation runs of bumping.
#: The full Q = 50 would make the m-search two orders of magnitude more
#: expensive than the final fit; a reduced Q ranks m values just as well.
CV_BUMPING_REPEATS = 10


def depth_grid(dim: int) -> tuple[int, ...]:
    """The ``m`` candidates ``{M - k * ceil(M / 6) : k >= 0} ∩ N+``."""
    step = int(np.ceil(dim / 6))
    values = []
    m = dim
    while m > 0:
        values.append(m)
        m -= step
    return tuple(values)


def optimize_alpha(
    x: np.ndarray,
    y: np.ndarray,
    *,
    grid: tuple[float, ...] = ALPHA_GRID,
    min_support: int = 20,
    n_splits: int = 5,
    seed: int = 0,
) -> float:
    """Best PRIM ``alpha`` by cross-validated test-fold PR AUC."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    best_alpha = grid[0]
    best_score = -np.inf
    folds = list(KFold(n_splits, seed).split(len(x)))
    for alpha in grid:
        scores = []
        for train, test in folds:
            result = prim_peel(x[train], y[train], alpha=alpha,
                               min_support=min_support)
            _, auc = trajectory_of(result.boxes, x[test], y[test])
            scores.append(auc)
        score = float(np.mean(scores))
        if score > best_score:
            best_score = score
            best_alpha = alpha
    return best_alpha


def optimize_bumping_features(
    x: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float,
    min_support: int = 20,
    n_splits: int = 5,
    seed: int = 0,
    n_repeats: int = CV_BUMPING_REPEATS,
) -> int:
    """Best bumping ``m`` (random-subset size) by cross-validated PR AUC."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    rng = np.random.default_rng(seed)
    best_m = x.shape[1]
    best_score = -np.inf
    folds = list(KFold(n_splits, seed).split(len(x)))
    for m in depth_grid(x.shape[1]):
        scores = []
        for train, test in folds:
            result = prim_bumping(
                x[train], y[train], alpha=alpha, min_support=min_support,
                n_repeats=n_repeats, n_features=m, rng=rng,
            )
            _, auc = trajectory_of(result.boxes, x[test], y[test])
            scores.append(auc)
        score = float(np.mean(scores))
        if score > best_score:
            best_score = score
            best_m = m
    return best_m


def optimize_bi_depth(
    x: np.ndarray,
    y: np.ndarray,
    *,
    beam_size: int = 1,
    n_splits: int = 5,
    seed: int = 0,
) -> int:
    """Best BI ``m`` (max restricted inputs) by cross-validated WRAcc."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    best_m = x.shape[1]
    best_score = -np.inf
    folds = list(KFold(n_splits, seed).split(len(x)))
    for m in depth_grid(x.shape[1]):
        scores = []
        for train, test in folds:
            result = best_interval(x[train], y[train], depth=m,
                                   beam_size=beam_size)
            scores.append(wracc_score(result.box, x[test], y[test]))
        score = float(np.mean(scores))
        if score > best_score:
            best_score = score
            best_m = m
    return best_m
