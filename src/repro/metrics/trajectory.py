"""Peeling trajectories and their PR AUC (Section 4, Figure 5).

A PRIM run yields nested boxes; evaluating each on test data gives a
curve in (recall, precision) space — the peeling trajectory.  The paper
ranks two algorithms by the area of figure ABEF / ACDF in Figure 5: the
region between the trajectory and the *precision* axis, i.e. the
integral of recall over precision from the common starting point A
(full box: recall 1, precision = base rate) to the trajectory's
high-precision end.  This scale reproduces the paper's reported values
(e.g. Table 5: "lake"/Pc has precision 0.974 and PR AUC 0.581, which is
the average recall ~0.91 times the precision span 0.974 - 0.335).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.quality import precision_recall
from repro.subgroup.box import Hyperbox

__all__ = ["peeling_trajectory", "pr_auc", "trajectory_of"]


def _trajectory_chunk(context, start: int, stop: int) -> np.ndarray:
    """Boxes ``[start, stop)`` of a fanned-out trajectory evaluation."""
    boxes = context["boxes"]
    x = context["x"]
    y = context["y"]
    points = np.empty((stop - start, 2))
    for i in range(start, stop):
        prec, rec = precision_recall(boxes[i], x, y)
        points[i - start] = (rec, prec)
    return points


def peeling_trajectory(boxes: Sequence[Hyperbox], x: np.ndarray,
                       y: np.ndarray, *, jobs: int | None = 1,
                       chunk_boxes: int | None = None) -> np.ndarray:
    """``(len(boxes), 2)`` array of (recall, precision) per box.

    With ``jobs`` > 1 (or ``None`` for all CPUs) contiguous box chunks
    fan out over the executor layer of
    :mod:`repro.experiments.parallel`: the box list ships once per
    worker while the test arrays cross process boundaries zero-copy
    through the data plane.  Every box's point runs through the very
    same scalar :func:`precision_recall`, so the concatenated result is
    bit-identical to the serial loop for any ``jobs``/``chunk_boxes``
    setting — the knob a budgeted grid task threads its worker lease
    into when evaluating a long trajectory on a large test set.
    """
    boxes = list(boxes)
    if (jobs is not None and jobs <= 1) or len(boxes) <= 1:
        points = np.empty((len(boxes), 2))
        for i, box in enumerate(boxes):
            prec, rec = precision_recall(box, x, y)
            points[i] = (rec, prec)
        return points
    from repro.experiments.parallel import run_chunked

    parts = run_chunked(
        _trajectory_chunk, len(boxes), jobs=jobs, chunk_rows=chunk_boxes,
        context={"boxes": boxes},
        shared={"x": np.ascontiguousarray(x, dtype=float),
                "y": np.ascontiguousarray(y, dtype=float)})
    return np.concatenate(parts)


def pr_auc(trajectory: np.ndarray) -> float:
    """Area between a peeling trajectory and the precision axis.

    The trajectory is reduced to its upper envelope (best recall per
    precision level) and recall is integrated over precision with the
    trapezoidal rule between the trajectory's extreme precisions.  A
    trajectory that climbs to higher precision while losing little
    recall therefore scores higher — exactly the ranking the paper's
    Figure 5 construction encodes.  A single point yields the rectangle
    ``precision * recall`` so that degenerate one-box outputs (e.g. a
    collapsed bumping Pareto set) still rank sensibly.
    """
    trajectory = np.asarray(trajectory, dtype=float)
    if trajectory.ndim != 2 or trajectory.shape[1] != 2:
        raise ValueError(f"trajectory must be (k, 2), got {trajectory.shape}")
    if len(trajectory) == 0:
        return 0.0

    # Sort by precision, collapse duplicate precisions to max recall.
    precisions = trajectory[:, 1]
    recalls = trajectory[:, 0]
    unique_precisions, inverse = np.unique(precisions, return_inverse=True)
    best_recall = np.zeros(len(unique_precisions))
    np.maximum.at(best_recall, inverse, recalls)

    if len(unique_precisions) == 1:
        return float(unique_precisions[0] * best_recall[0])
    return float(np.trapezoid(best_recall, unique_precisions))


def trajectory_of(boxes: Sequence[Hyperbox], x: np.ndarray,
                  y: np.ndarray) -> tuple[np.ndarray, float]:
    """Convenience: trajectory points and their PR AUC in one call."""
    points = peeling_trajectory(boxes, x, y)
    return points, pr_auc(points)
