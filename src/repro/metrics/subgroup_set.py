"""Quality of *sets* of subgroups (the covering approach's output).

Section 8.5 of the paper: "the quality of a set of scenarios is an
aggregate of their individual qualities" — one usually averages the
per-box measures (following Grosskreutz & Rüping 2009 and Lavrač et
al. 2004).  This module provides that aggregation plus set-level
measures that individual boxes cannot express: joint coverage (recall
of the union), overlap between boxes, and the share of interesting
examples left uncovered.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.subgroup._kernels import contains_many, evaluate_boxes
from repro.subgroup.box import Hyperbox

__all__ = ["SubgroupSetQuality", "evaluate_subgroup_set", "joint_coverage"]


@dataclass(frozen=True)
class SubgroupSetQuality:
    """Aggregate quality of a set of boxes on one dataset."""

    n_boxes: int
    mean_precision: float
    mean_recall: float
    mean_wracc: float
    mean_n_restricted: float
    joint_recall: float       # recall of the union of all boxes
    joint_precision: float    # precision of the union
    overlap_rate: float       # mean pairwise Jaccard overlap of coverage
    uncovered_positive_share: float


def joint_coverage(boxes: Sequence[Hyperbox], x: np.ndarray) -> np.ndarray:
    """Boolean mask of points covered by at least one box."""
    if not boxes:
        return np.zeros(len(x), dtype=bool)
    return contains_many(boxes, x).any(axis=0)


def _pairwise_jaccard(masks: list[np.ndarray]) -> float:
    if len(masks) < 2:
        return 0.0
    values = []
    for a, b in combinations(masks, 2):
        union = (a | b).sum()
        values.append((a & b).sum() / union if union else 0.0)
    return float(np.mean(values))


def evaluate_subgroup_set(
    boxes: Sequence[Hyperbox],
    x: np.ndarray,
    y: np.ndarray,
) -> SubgroupSetQuality:
    """Per-box averages plus set-level coverage measures.

    An empty set is legal (the covering loop may stop immediately) and
    yields all-zero quality with ``uncovered_positive_share = 1``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError(f"x and y disagree: {len(x)} vs {len(y)}")
    total_pos = float(y.sum())

    if not boxes:
        return SubgroupSetQuality(
            n_boxes=0, mean_precision=0.0, mean_recall=0.0, mean_wracc=0.0,
            mean_n_restricted=0.0, joint_recall=0.0, joint_precision=0.0,
            overlap_rate=0.0,
            uncovered_positive_share=1.0 if total_pos else 0.0,
        )

    # One batched kernel call replaces the per-box contains /
    # precision_recall / wracc_score masking passes (three full-data
    # scans per box); the derived measures match the scalar formulas
    # of repro.metrics.quality bit for bit.
    evaluation = evaluate_boxes(boxes, x, y)
    masks = evaluation.masks
    precisions, recalls = evaluation.precision_recall()
    base_rate = float(y.mean())
    wraccs = np.where(
        evaluation.n_inside > 0,
        (evaluation.n_inside / len(y)) * (evaluation.y_means - base_rate),
        0.0)
    restricted = [box.n_restricted for box in boxes]

    union = masks.any(axis=0)
    union_pos = float(y[union].sum())
    joint_recall = union_pos / total_pos if total_pos else 0.0
    joint_precision = union_pos / union.sum() if union.any() else 0.0

    return SubgroupSetQuality(
        n_boxes=len(boxes),
        mean_precision=float(np.mean(precisions)),
        mean_recall=float(np.mean(recalls)),
        mean_wracc=float(np.mean(wraccs)),
        mean_n_restricted=float(np.mean(restricted)),
        joint_recall=joint_recall,
        joint_precision=joint_precision,
        overlap_rate=_pairwise_jaccard(masks),
        uncovered_positive_share=(
            1.0 - joint_recall if total_pos else 0.0),
    )
