"""Point-wise subgroup quality measures.

All functions take a box and an evaluation dataset ``(x, y)`` — in the
paper's methodology that dataset is the independent 20000-point test
sample, never the training data (Section 8.1, Example 8.1).
"""

from __future__ import annotations

import numpy as np

from repro.subgroup.box import Hyperbox

__all__ = [
    "precision",
    "recall",
    "precision_recall",
    "wracc_score",
    "n_restricted",
    "n_irrelevant",
]


def precision_recall(box: Hyperbox, x: np.ndarray,
                     y: np.ndarray) -> tuple[float, float]:
    """``(n+/n, n+/N+)`` of the subgroup defined by ``box`` on ``(x, y)``.

    An empty subgroup has precision 0 by convention (the worst case for
    a scenario that claims to isolate interesting outcomes).
    """
    y = np.asarray(y, dtype=float)
    inside = box.contains(x)
    n = int(inside.sum())
    covered_pos = float(y[inside].sum())
    total_pos = float(y.sum())
    prec = covered_pos / n if n else 0.0
    rec = covered_pos / total_pos if total_pos else 0.0
    return prec, rec


def precision(box: Hyperbox, x: np.ndarray, y: np.ndarray) -> float:
    """Share of interesting examples among those covered by the box."""
    return precision_recall(box, x, y)[0]


def recall(box: Hyperbox, x: np.ndarray, y: np.ndarray) -> float:
    """Share of all interesting examples covered by the box."""
    return precision_recall(box, x, y)[1]


def wracc_score(box: Hyperbox, x: np.ndarray, y: np.ndarray) -> float:
    """Weighted Relative Accuracy ``n/N (n+/n - N+/N)``."""
    y = np.asarray(y, dtype=float)
    inside = box.contains(x)
    n = int(inside.sum())
    if n == 0:
        return 0.0
    return (n / len(y)) * (float(y[inside].mean()) - float(y.mean()))


def n_restricted(box: Hyperbox) -> int:
    """Number of inputs the box restricts (low = interpretable)."""
    return box.n_restricted


def n_irrelevant(box: Hyperbox, relevant: tuple[int, ...] | np.ndarray) -> int:
    """Number of restricted inputs with no influence on the output.

    ``relevant`` lists the indices of inputs that do affect the output
    (ground truth known for the synthetic functions, Table 1's ``I``).
    """
    relevant_set = set(int(j) for j in relevant)
    return sum(1 for j in box.restricted_dims if int(j) not in relevant_set)
