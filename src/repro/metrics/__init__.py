"""Quality measures for scenarios (Section 4 of the paper).

Standard subgroup measures (precision, recall, WRAcc, #restricted) plus
the three the paper introduces: number of irrelevantly restricted
inputs, consistency (expected overlap/union volume ratio across runs),
and PR AUC of a peeling trajectory.
"""

from repro.metrics.quality import (
    precision,
    recall,
    precision_recall,
    wracc_score,
    n_restricted,
    n_irrelevant,
)
from repro.metrics.trajectory import peeling_trajectory, pr_auc, trajectory_of
from repro.metrics.consistency import box_consistency, pairwise_consistency
from repro.metrics.subgroup_set import (
    SubgroupSetQuality,
    evaluate_subgroup_set,
    joint_coverage,
)

__all__ = [
    "SubgroupSetQuality",
    "evaluate_subgroup_set",
    "joint_coverage",
    "precision",
    "recall",
    "precision_recall",
    "wracc_score",
    "n_restricted",
    "n_irrelevant",
    "peeling_trajectory",
    "pr_auc",
    "trajectory_of",
    "box_consistency",
    "pairwise_consistency",
]
