"""Consistency: robustness of discovered scenarios across datasets.

Definition 2 of the paper: for two boxes discovered by the same
algorithm from two same-size datasets of the same model, consistency is
the expected ratio of the volume of their overlap to the volume of
their union.  Infinite bounds are replaced by the reference domain
(the unit cube here); for discrete inputs, counts of distinct levels
replace interval lengths.

The experiments estimate the expectation by averaging ``Vo/Vu`` over
all pairs of (last) boxes from the repeated runs (Section 8.5).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.subgroup.box import Hyperbox

__all__ = ["box_consistency", "pairwise_consistency"]


def box_consistency(
    box_a: Hyperbox,
    box_b: Hyperbox,
    *,
    reference_lower: np.ndarray | None = None,
    reference_upper: np.ndarray | None = None,
    discrete_levels: dict[int, np.ndarray] | None = None,
) -> float:
    """``Vo / Vu`` for one pair of boxes.

    The union of two axis-aligned boxes is not a box, but its volume is
    ``V_a + V_b - Vo``, which is all we need.  Two empty boxes have
    consistency 0 by convention.
    """
    kwargs = dict(
        reference_lower=reference_lower,
        reference_upper=reference_upper,
        discrete_levels=discrete_levels,
    )
    vol_a = box_a.volume(**kwargs)
    vol_b = box_b.volume(**kwargs)
    overlap = box_a.intersection(box_b)
    vol_overlap = overlap.volume(**kwargs) if overlap is not None else 0.0
    vol_union = vol_a + vol_b - vol_overlap
    if vol_union <= 0.0:
        return 0.0
    return vol_overlap / vol_union


def pairwise_consistency(
    boxes: Sequence[Hyperbox],
    *,
    reference_lower: np.ndarray | None = None,
    reference_upper: np.ndarray | None = None,
    discrete_levels: dict[int, np.ndarray] | None = None,
) -> float:
    """Average ``Vo/Vu`` over all unordered pairs of ``boxes``."""
    if len(boxes) < 2:
        raise ValueError("consistency needs at least two boxes")
    values = [
        box_consistency(
            a, b,
            reference_lower=reference_lower,
            reference_upper=reference_upper,
            discrete_levels=discrete_levels,
        )
        for a, b in combinations(boxes, 2)
    ]
    return float(np.mean(values))
