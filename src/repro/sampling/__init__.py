"""Design-of-experiments substrate: space-filling designs and input distributions.

The paper forms training datasets with Latin hypercube sampling for all
analytic functions and a Halton sequence for the "dsgc" simulation
(Section 8.5).  Section 9.1.2 discretises even-numbered inputs for the
mixed-input study and Section 9.4 samples inputs from a logit-normal
distribution for the semi-supervised study.  All of those live here.
"""

from repro.sampling.designs import (
    halton_sequence,
    latin_hypercube,
    uniform_random,
    get_sampler,
    SAMPLERS,
)
from repro.sampling.distributions import (
    logit_normal,
    discretize_even_inputs,
    MIXED_LEVELS,
)

__all__ = [
    "halton_sequence",
    "latin_hypercube",
    "uniform_random",
    "get_sampler",
    "SAMPLERS",
    "logit_normal",
    "discretize_even_inputs",
    "MIXED_LEVELS",
]
