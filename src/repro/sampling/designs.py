"""Space-filling experiment designs on the unit hypercube.

All designs return an ``(n, m)`` float array with rows in ``[0, 1]^m``.
Simulation models scale these to their native input domains themselves
(see :mod:`repro.data.model`), so samplers and models stay decoupled.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "latin_hypercube",
    "halton_sequence",
    "uniform_random",
    "quantize_levels",
    "mixed_design",
    "get_sampler",
    "SAMPLERS",
]

# The first 100 primes are plenty: no model in the study has more than
# 30 inputs, and Halton quality degrades for very high bases anyway.
_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359,
    367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541,
]


def _check_shape(n: int, m: int) -> None:
    if n <= 0:
        raise ValueError(f"number of points must be positive, got {n}")
    if m <= 0:
        raise ValueError(f"number of dimensions must be positive, got {m}")


def uniform_random(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Plain Monte-Carlo sample of ``n`` points in ``[0, 1]^m``."""
    _check_shape(n, m)
    return rng.random((n, m))


def latin_hypercube(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Latin hypercube sample: each margin is stratified into ``n`` cells.

    For every dimension independently, the ``n`` points occupy the ``n``
    equal-width strata ``[i/n, (i+1)/n)`` exactly once, with a uniform
    jitter inside each stratum.  This is the classic McKay et al. design
    the paper uses for all analytic functions.
    """
    _check_shape(n, m)
    # Stratum index permutation per dimension, plus in-stratum jitter.
    samples = np.empty((n, m))
    strata = np.arange(n, dtype=float)
    for j in range(m):
        samples[:, j] = (rng.permutation(strata) + rng.random(n)) / n
    return samples


def _radical_inverse(indices: np.ndarray, base: int) -> np.ndarray:
    """Van der Corput radical inverse of ``indices`` in the given base."""
    result = np.zeros(len(indices), dtype=float)
    fraction = 1.0 / base
    remaining = indices.copy()
    while remaining.any():
        result += fraction * (remaining % base)
        remaining //= base
        fraction /= base
    return result


def halton_sequence(
    n: int,
    m: int,
    rng: np.random.Generator | None = None,
    *,
    skip: int = 20,
) -> np.ndarray:
    """Halton low-discrepancy sequence in ``[0, 1]^m``.

    The paper samples the "dsgc" simulation with a Halton sequence
    (Halton 1964).  When ``rng`` is given, the sequence is randomised with
    a Cranley-Patterson rotation (random shift modulo 1) so repeated
    experiments see different but equally well-spread designs; without it
    the raw deterministic sequence is returned.  The first ``skip``
    elements are dropped, a standard guard against the strongly
    correlated start of the sequence.
    """
    _check_shape(n, m)
    if m > len(_PRIMES):
        raise ValueError(f"Halton sequence supports at most {len(_PRIMES)} dimensions")
    indices = np.arange(skip + 1, skip + n + 1, dtype=np.int64)
    samples = np.column_stack([_radical_inverse(indices, _PRIMES[j]) for j in range(m)])
    if rng is not None:
        samples = (samples + rng.random(m)) % 1.0
    return samples


def quantize_levels(u: np.ndarray,
                    cat_levels: dict[int, int]) -> np.ndarray:
    """Map unit-interval columns of a design to integer category codes.

    The bridge between continuous space-filling designs and categorical
    model inputs: column ``j`` listed in ``cat_levels`` is mapped from
    ``[0, 1)`` to the codes ``0 .. K-1`` by ``floor(u * K)`` (the value
    ``1.0`` maps to ``K - 1``).  Equal-width strata mean a stratified
    design (Latin hypercube, Halton) yields near-balanced level counts —
    the category-aware analogue of its margin stratification — while
    plain Monte-Carlo designs get multinomially distributed counts.

    Parameters
    ----------
    u : ndarray of shape (n, m)
        A design on the unit hypercube.
    cat_levels : dict[int, int]
        Maps column index -> number of category levels (>= 2).

    Returns
    -------
    ndarray of shape (n, m)
        A copy of ``u`` with the listed columns replaced by float codes
        ``0.0 .. K-1``.

    Examples
    --------
    >>> import numpy as np
    >>> u = np.array([[0.1, 0.74], [0.9, 0.26]])
    >>> quantize_levels(u, {1: 4}).tolist()
    [[0.1, 2.0], [0.9, 1.0]]
    """
    x = np.array(u, dtype=float, copy=True)
    for j, k in cat_levels.items():
        if k < 2:
            raise ValueError(f"column {j} needs >= 2 levels, got {k}")
        if j < 0 or j >= x.shape[1]:
            raise ValueError(f"cat_levels column {j} out of range "
                             f"for {x.shape[1]} columns")
        x[:, j] = np.minimum(np.floor(u[:, j] * k), k - 1)
    return x


def mixed_design(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    cat_levels: dict[int, int],
    base: str = "lhs",
) -> np.ndarray:
    """Category-aware design: a base sampler plus level quantization.

    Draws ``n`` points from the named base design and quantizes the
    categorical columns through :func:`quantize_levels`.  With the
    default Latin-hypercube base each category level of each column is
    hit a near-equal number of times (exactly equal when ``n`` is a
    multiple of the level count), the mixed-scope sampling idiom of
    tmip-emat's scope-driven designs.

    Parameters
    ----------
    n, m : int
        Number of points and total number of columns.
    rng : numpy.random.Generator
        Randomness source for the base design.
    cat_levels : dict[int, int]
        Maps column index -> number of category levels.
    base : str
        Base sampler name (``"lhs"``, ``"halton"``, ``"uniform"``).

    Returns
    -------
    ndarray of shape (n, m)
        Numeric columns in ``[0, 1]``, categorical columns holding
        float codes ``0.0 .. K-1``.
    """
    return quantize_levels(get_sampler(base)(n, m, rng), cat_levels)


SAMPLERS = {
    "lhs": latin_hypercube,
    "halton": halton_sequence,
    "uniform": uniform_random,
}


def get_sampler(name: str):
    """Look up a sampler by name (``"lhs"``, ``"halton"``, ``"uniform"``)."""
    try:
        return SAMPLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sampler {name!r}; available: {sorted(SAMPLERS)}"
        ) from None
