"""Input distributions beyond the uniform cube.

Two experiment variants in the paper change how inputs are drawn:

* Section 9.1.2 ("mixed inputs") keeps odd-numbered inputs continuous and
  draws even-numbered inputs i.i.d. from the five levels
  ``{0.1, 0.3, 0.5, 0.7, 0.9}``.
* Section 9.4 (semi-supervised) samples every input from a logit-normal
  distribution with ``mu = 0`` and ``sigma = 1``, which still has support
  ``(0, 1)`` but is no longer uniform.
"""

from __future__ import annotations

import numpy as np

__all__ = ["logit_normal", "discretize_even_inputs", "MIXED_LEVELS"]

#: Discrete levels used for even-numbered inputs in the mixed-input study.
MIXED_LEVELS = np.array([0.1, 0.3, 0.5, 0.7, 0.9])


def logit_normal(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    mu: float = 0.0,
    sigma: float = 1.0,
) -> np.ndarray:
    """Sample ``n`` points in ``(0, 1)^m`` with logit-normal margins.

    A variable is logit-normal when its logit is normal: sampling
    ``z ~ N(mu, sigma)`` and returning ``1 / (1 + exp(-z))``.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    z = rng.normal(mu, sigma, size=(n, m))
    return 1.0 / (1.0 + np.exp(-z))


def discretize_even_inputs(
    x: np.ndarray,
    rng: np.random.Generator,
    levels: np.ndarray = MIXED_LEVELS,
) -> np.ndarray:
    """Replace even-numbered inputs (0-based columns 1, 3, ...) by i.i.d. levels.

    The paper's convention counts inputs from one, so "even inputs"
    are the 2nd, 4th, ... columns.  Continuous columns are left untouched;
    discretised columns are drawn uniformly from ``levels``, matching the
    mixed-input experiment of Section 9.1.2.  Returns a new array.
    """
    x = np.array(x, dtype=float, copy=True)
    n, m = x.shape
    for j in range(1, m, 2):
        x[:, j] = rng.choice(levels, size=n)
    return x
