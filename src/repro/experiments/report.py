"""Text rendering of the paper's tables and figure series.

Benchmarks print these so a run directly shows "the same rows the paper
reports": method columns, metric rows in percent, relative-change
summaries for the box plots, and coarse ASCII curves for trajectory
figures.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "format_table",
    "format_relative",
    "format_series",
    "format_trajectory",
]


def format_table(
    title: str,
    rows: dict[str, dict],
    metrics: tuple[tuple[str, str, float], ...],
    *,
    method_order: tuple[str, ...] | None = None,
) -> str:
    """Render ``{method: {metric: value}}`` as an aligned text table.

    Parameters
    ----------
    title:
        Heading line (underlined in the output).
    rows:
        Aggregated cells, e.g. from
        :func:`repro.experiments.harness.average_over_functions`.
    metrics:
        ``(key, label, scale)`` triples — e.g. PR AUC is reported in
        percent (scale 100) like the paper's tables.
    method_order:
        Column order; defaults to ``rows`` insertion order.

    Returns
    -------
    str
        The table, one metric per row, one method per column.

    Examples
    --------
    >>> print(format_table("demo", {"P": {"pr_auc": 0.31}},
    ...                    (("pr_auc", "PR AUC %", 100.0),)))
    demo
    ----
                      P
    PR AUC %      31.00
    """
    methods = tuple(method_order or rows.keys())
    methods = tuple(m for m in methods if m in rows)
    width = max(max((len(m) for m in methods), default=6) + 2, 9)
    label_width = max((len(label) for _, label, _ in metrics), default=10) + 2

    lines = [title, "-" * len(title)]
    header = " " * label_width + "".join(f"{m:>{width}}" for m in methods)
    lines.append(header)
    for key, label, scale in metrics:
        cells = []
        for method in methods:
            value = rows[method].get(key, float("nan"))
            cells.append(f"{value * scale:>{width}.2f}")
        lines.append(f"{label:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


def format_relative(
    title: str,
    rows: dict[str, dict],
    baseline: str,
    metrics: tuple[tuple[str, str], ...],
) -> str:
    """Relative change in percent w.r.t. a baseline method (the box plots).

    Mirrors Figures 7/8/10/14, which show quality change relative to
    "Pc" or "BIc".
    """
    if baseline not in rows:
        raise KeyError(f"baseline {baseline!r} missing from rows")
    lines = [title, "-" * len(title)]
    for key, label in metrics:
        base = rows[baseline].get(key, float("nan"))
        cells = []
        for method, values in rows.items():
            if method == baseline:
                continue
            value = values.get(key, float("nan"))
            if base == 0 or not np.isfinite(base):
                change = float("nan")
            else:
                change = 100.0 * (value - base) / abs(base)
            cells.append(f"{method}: {change:+.1f}%")
        lines.append(f"{label:<14} vs {baseline}:  " + "  ".join(cells))
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs, series: dict[str, list[float]],
                  scale: float = 100.0) -> str:
    """A figure's line series as a table: one row per x, one col per method."""
    methods = tuple(series.keys())
    width = max(max((len(m) for m in methods), default=8) + 2, 9)
    lines = [title, "-" * len(title)]
    lines.append(f"{x_label:<10}" + "".join(f"{m:>{width}}" for m in methods))
    for i, x in enumerate(xs):
        cells = "".join(f"{series[m][i] * scale:>{width}.2f}" for m in methods)
        lines.append(f"{str(x):<10}" + cells)
    return "\n".join(lines)


def format_trajectory(title: str, trajectories: dict[str, np.ndarray],
                      n_bins: int = 10) -> str:
    """Smoothed peeling trajectories: mean precision per recall bin.

    The paper plots trajectories smoothed across 50 repetitions
    (Figures 11/13); this prints mean precision within recall deciles.
    """
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    methods = tuple(trajectories.keys())
    width = max(max((len(m) for m in methods), default=8) + 2, 9)
    lines = [title, "-" * len(title)]
    lines.append(f"{'recall':<12}" + "".join(f"{m:>{width}}" for m in methods))
    for b in range(n_bins - 1, -1, -1):
        lo, hi = edges[b], edges[b + 1]
        cells = []
        for method in methods:
            points = trajectories[method]
            mask = (points[:, 0] >= lo) & (points[:, 0] <= hi)
            if mask.any():
                cells.append(f"{points[mask, 1].mean():>{width}.3f}")
            else:
                cells.append(f"{'-':>{width}}")
        lines.append(f"[{lo:.1f},{hi:.1f}]  " + "".join(cells))
    return "\n".join(lines)
