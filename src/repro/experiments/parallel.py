"""Parallel experiment engine: fan experiment grids out over processes.

:func:`run_batch` and :func:`run_third_party` in
:mod:`repro.experiments.harness` describe their grids as flat,
deterministic task lists (one kwargs dict per ``run_single`` /
``_third_party_single`` call) and hand them to :func:`execute` here.
Three properties make the parallel path bit-identical to the serial
one (locked down by ``tests/test_parallel_harness.py``):

* **seed-stable task ordering** — every task carries its explicit seed,
  computed from its grid position at dispatch time, so the work a task
  does never depends on which worker picks it up;
* **deterministic collection** — results are gathered by submission
  index, not completion order, so the returned list matches the serial
  loop regardless of worker scheduling;
* **per-worker test-data cache** — the ``lru_cache`` on
  :func:`repro.experiments.harness.get_test_data` does not cross
  process boundaries, so each worker warms its own cache once at
  startup instead of regenerating the 20000-point test sample for
  every task it runs.

``jobs <= 1`` falls back to a plain serial loop (no executor, no
pickling), which is also the default everywhere.

With ``store=`` (an :class:`~repro.experiments.store.ExperimentStore`
or a directory path) :func:`execute` becomes resumable: cached records
are loaded up front, only the missing tasks are dispatched, and every
fresh record is persisted as soon as the pool returns it.  All store
I/O happens in the parent process, so workers need no locking and a
crash mid-grid loses at most the in-flight tasks.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.experiments.store import MISSING, open_store

__all__ = ["default_jobs", "execute", "warm_test_cache"]


def default_jobs() -> int:
    """Worker count for ``jobs=None``: all CPUs, floor 1."""
    return max(os.cpu_count() or 1, 1)


def warm_test_cache(specs: Sequence[tuple[str, str, int]]) -> None:
    """Fill this process's test-data cache for (function, variant, size)."""
    from repro.experiments.harness import get_test_data

    for function, variant, size in specs:
        get_test_data(function, variant, size)


def _init_worker(warmup: tuple[tuple[str, str, int], ...]) -> None:
    """Worker startup: pre-generate the test sets the tasks will need.

    Failures are deliberately swallowed — a broken spec would otherwise
    crash the worker at bootstrap, while the task that actually needs
    it reports the real error through its future.
    """
    try:
        warm_test_cache(warmup)
    except Exception:
        pass


def execute(
    func: Callable,
    tasks: Sequence[dict],
    jobs: int | None = 1,
    *,
    warmup: Sequence[tuple[str, str, int]] = (),
    store=None,
    resume: bool = True,
) -> list:
    """Run ``func(**task)`` for every task, in task-list order.

    ``func`` must be a module-level callable (workers import it by
    qualified name).  ``jobs=None`` uses :func:`default_jobs`; with
    ``jobs <= 1`` or fewer than two tasks everything runs inline in
    this process and ``warmup`` is ignored (the caller's own cache
    already does the work).

    Parameters
    ----------
    store:
        Optional :class:`~repro.experiments.store.ExperimentStore` (or
        directory path) of finished records.  With ``resume=True`` the
        store is consulted first and only keys without a record are
        executed; every fresh result is persisted before returning.
        With ``resume=False`` nothing is read — every task recomputes
        and overwrites its entry (the ``--no-cache`` semantics).

    Returns
    -------
    list
        One result per task, in task-list order, indistinguishable from
        a storeless serial run: cached and fresh records interleave at
        their grid positions.
    """
    tasks = list(tasks)
    store = open_store(store)
    if store is None:
        return _run_pool(func, tasks, jobs, warmup)

    keys = [store.key(func, task) for task in tasks]
    results: dict[int, object] = {}
    pending: list[int] = []
    for index, key in enumerate(keys):
        cached = store.get(key) if resume else MISSING
        if cached is MISSING:
            pending.append(index)
        else:
            results[index] = cached

    # Workers only need the test sets of tasks that actually run; on a
    # nearly-warm store the unfiltered warmup would regenerate every
    # grid function's test sample in every worker for nothing.
    if warmup and pending:
        needed = {(task.get("function"), task.get("variant", "continuous"),
                   task.get("test_size"))
                  for task in (tasks[i] for i in pending)}
        warmup = [spec for spec in warmup if tuple(spec) in needed]

    # Persist each record the moment its task finishes (completion
    # order), so an interrupted grid loses at most the in-flight tasks
    # and the next run resumes from everything that completed.
    fresh = _run_pool(
        func, [tasks[i] for i in pending], jobs, warmup,
        on_result=lambda j, record: store.put(keys[pending[j]], record),
    )
    for index, record in zip(pending, fresh):
        results[index] = record
    return [results[index] for index in range(len(tasks))]


def _run_pool(
    func: Callable,
    tasks: Sequence[dict],
    jobs: int | None,
    warmup: Sequence[tuple[str, str, int]],
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """The storeless core: serial loop or process-pool fan-out.

    ``on_result(index, record)`` fires once per task as soon as its
    result is available — in task order serially, in completion order
    under the pool — and before the full list is returned.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            record = func(**task)
            if on_result is not None:
                on_result(index, record)
            results.append(record)
        return results

    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(tuple(warmup),),
    ) as pool:
        futures = [pool.submit(func, **task) for task in tasks]
        try:
            if on_result is not None:
                index_of = {future: i for i, future in enumerate(futures)}
                for future in as_completed(futures):
                    on_result(index_of[future], future.result())
            return [future.result() for future in futures]
        except BaseException:
            # Fail fast: don't let a long grid grind to completion
            # behind an already-doomed run.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
