"""Plan/executor engine: compile experiment grids, run them anywhere.

Work in this repo — :func:`~repro.experiments.harness.run_batch` /
:func:`~repro.experiments.harness.run_third_party` grids, the
benchmark sweeps, and the row-chunked compute fan-outs of the metamodel
layer — describes itself as a flat, deterministic task list (one kwargs
dict per call of a module-level function) and hands it to
:func:`execute` here.  Execution happens in three explicit layers:

* **Plan.**  :func:`compile_plan` freezes the work into an
  :class:`ExecutionPlan`: the task list (seeds fixed at plan time, from
  grid position), each task's original grid index and store key, and
  the data-plane refs of every shared array (test samples, plan
  context) published once through
  :class:`~repro.experiments.dataplane.DataPlane`.  Nothing about a
  compiled plan depends on which executor later runs it.
* **Executors.**  :class:`SerialExecutor` (the reference loop),
  :class:`ProcessExecutor` (a process pool whose workers map the plan's
  shared arrays zero-copy instead of regenerating or unpickling them),
  and :class:`ShardedExecutor` (the plan split across store-coordinated
  shards so independent invocations cooperate on one grid).  All three
  return bit-identical results in task-list order — locked down by
  ``tests/test_parallel_harness.py``.
* **Data plane.**  Executors that cross process boundaries publish the
  plan's arrays through a :class:`~repro.experiments.dataplane.DataPlane`
  and unlink every segment in a ``finally`` block, so clean runs and
  poisoned tasks alike leave no shared memory behind.

Three properties keep every executor bit-identical to the serial loop:

* **seed-stable task ordering** — every task carries its explicit seed,
  computed from its grid position at plan time, so the work a task does
  never depends on which worker (or shard) picks it up;
* **deterministic collection** — results are gathered by plan index,
  not completion order;
* **shared immutable inputs** — workers read the very same test arrays
  the parent materialized, through the data plane, instead of
  regenerating them per worker.

``jobs <= 1`` falls back to the serial executor (no pool, no pickling),
which is also the default everywhere.

``jobs`` is a **global worker budget**, not a per-level knob.  The
planner splits it once across the grid level and the chunked inner
level: a budgeted executor runs ``min(jobs, tasks)`` grid workers and
hands each a *lease* of ``jobs // workers`` inner workers, delivered
through the plan bootstrap and read back by the task via
:func:`budgeted_jobs`.  A grid task threads its lease into its own
chunked fan-outs (ensemble labeling, metamodel tuning folds, trajectory
evaluation), and :class:`ProcessExecutor` additionally clamps any
nested request to the ambient lease — so ``jobs=8`` means eight
concurrently-working processes total, never ``8 x 8``.  Leases never
change results (every jobs/chunk setting is pinned bit-identical); the
budget is purely a throughput contract.

**Fault tolerance** rides the same layers.  ``execute(retries=N)``
gives every task a :class:`RetryPolicy` (exponential backoff with
seeded deterministic jitter); a task that exhausts its attempts is
*quarantined* — the grid completes the remaining cells and raises a
structured :class:`GridFailureError` at the end instead of dying on the
first error, journalling each failed attempt in the store's
``failures/`` tree.  ``task_timeout=`` arms a per-task watchdog in
:class:`ProcessExecutor`: workers touch heartbeat files as tasks start,
and a heartbeat older than the timeout means a dead or hung worker —
the pool is killed and respawned, in-flight tasks are charged or
requeued by heartbeat attribution.  When a pool cannot be spawned, or
is poisoned twice in one run, execution degrades to the serial loop
with a logged warning rather than crashing.  All of it is exercised
deterministically through :mod:`repro.experiments.faults`
(``REDS_FAULT_PLAN``), and results under injected faults stay
bit-identical to fault-free runs — the engine-equivalence discipline
extended to the failure domain.

With ``store=`` (an :class:`~repro.experiments.store.ExperimentStore`
or a directory path) :func:`execute` becomes resumable: cached records
are loaded up front, only the missing tasks are dispatched, and every
fresh record is persisted as soon as it completes.  All store I/O
happens in the dispatching process, so workers need no locking and a
crash mid-grid loses at most the in-flight tasks.  The store doubles as
the coordination substrate of sharded execution: every task execution
is arbitrated by an atomic store claim marker, shard ``i`` of ``k``
claims the pending tasks whose grid index is congruent to ``i`` first
(the modulo partition is the priority order), and a shard that drains
its own slice **steals** still-unclaimed pending tasks instead of
idling — zero duplicated executions by construction, work-conserving
under skew, and every record still read back from the store as the
sibling invocations publish theirs.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import OrderedDict, deque
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path

from repro.experiments import faults
from repro.experiments.dataplane import (
    ArrayRef,
    DataPlane,
    dataplane_enabled,
    resolve_refs,
    session_active,
)
from repro.experiments.store import MISSING, open_store

__all__ = [
    "ExecutionPlan",
    "GridFailureError",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ShardedExecutor",
    "TaskFailure",
    "EXECUTORS",
    "budgeted_jobs",
    "close_pools",
    "compile_plan",
    "cpu_budget",
    "default_jobs",
    "execute",
    "get_executor",
    "parse_shard",
    "plan_context",
    "pool_stats",
    "reset_pool_stats",
    "run_chunked",
    "warm_test_cache",
    "worker_budget",
]

logger = logging.getLogger(__name__)

#: Names accepted by ``executor=`` arguments and the CLI ``--executor``.
EXECUTORS = ("serial", "process", "sharded")


def cpu_budget() -> int:
    """CPUs actually available to this process, floor 1.

    ``os.cpu_count()`` reports the machine; containers, cgroup limits
    and ``taskset`` restrict processes to fewer cores, which
    ``os.sched_getaffinity`` reflects.  Sizing pools from the machine
    count oversubscribes restricted runners, so every layer that needs
    "how many workers can actually run" — ``jobs=None`` resolution and
    the benchmark floor gates — shares this helper.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(len(getaffinity(0)), 1)
        except OSError:  # pragma: no cover - exotic platform failure
            pass
    return max(os.cpu_count() or 1, 1)


def default_jobs() -> int:
    """Worker count for ``jobs=None``: all *available* CPUs, floor 1."""
    return cpu_budget()


def warm_test_cache(specs: Sequence[tuple[str, str, int]]) -> None:
    """Fill this process's test-data cache for (function, variant, size).

    The pre-data-plane warmup path, kept as the fallback when shared
    memory is unavailable: each worker regenerates the test sets once at
    bootstrap instead of once per task.
    """
    from repro.experiments.harness import get_test_data

    for function, variant, size in specs:
        get_test_data(function, variant, size)


# ----------------------------------------------------------------------
# Execution plans
# ----------------------------------------------------------------------

@dataclass
class ExecutionPlan:
    """A compiled, executor-independent description of a grid's work.

    Attributes
    ----------
    func:
        Module-level task function; workers import it by qualified name.
    tasks:
        One kwargs dict per call.  Seeds are already inside (fixed at
        plan time from grid position), so execution order cannot change
        any result.
    indices:
        Original grid position of each task — the stable identity that
        sharded executors partition on, independent of how many tasks a
        warm store already resolved.
    keys:
        Store key per task (``None`` without a store).
    warmup:
        (function, variant, size) test-data specs the tasks will read;
        the fallback worker bootstrap when the data plane is disabled.
    test_refs:
        Data-plane refs ``{spec: (x_ref, y_ref)}`` of the materialized
        test arrays; workers register them so ``get_test_data`` maps
        shared memory instead of regenerating 20000-point samples.
    context:
        Arbitrary picklable object shipped once per worker (not per
        task) and exposed through :func:`plan_context`; may contain
        :class:`~repro.experiments.dataplane.ArrayRef` values, which are
        resolved at worker bootstrap.
    store:
        The coordinating store (sharded execution reads foreign records
        from it).
    """

    func: Callable
    tasks: list[dict]
    indices: tuple[int, ...] = ()
    keys: tuple[str, ...] | None = None
    warmup: tuple[tuple[str, str, int], ...] = ()
    test_refs: dict | None = None
    context: object = None
    store: object = None

    def __post_init__(self) -> None:
        if not self.indices:
            self.indices = tuple(range(len(self.tasks)))
        if len(self.indices) != len(self.tasks):
            raise ValueError(
                f"{len(self.tasks)} tasks but {len(self.indices)} indices")

    def subset(self, selection: Sequence[int]) -> "ExecutionPlan":
        """A plan over a subset of this plan's tasks (shared refs/context)."""
        return replace(
            self,
            tasks=[self.tasks[j] for j in selection],
            indices=tuple(self.indices[j] for j in selection),
            keys=(None if self.keys is None
                  else tuple(self.keys[j] for j in selection)),
        )

    def __len__(self) -> int:
        return len(self.tasks)


def compile_plan(
    func: Callable,
    tasks: Sequence[dict],
    *,
    indices: Sequence[int] | None = None,
    keys: Sequence[str] | None = None,
    warmup: Sequence[tuple[str, str, int]] = (),
    context: object = None,
    shared: dict | None = None,
    store=None,
    plane: DataPlane | None = None,
) -> ExecutionPlan:
    """Freeze a task list into an :class:`ExecutionPlan`.

    Parameters
    ----------
    shared:
        ``{name: ndarray}`` of large read-only inputs every task needs.
        With a ``plane`` they are published to shared memory and their
        refs merged into the plan context under their names; without
        one they are merged inline (serial execution reads them
        directly).
    plane:
        Data plane to publish through.  When given, the ``warmup`` test
        sets are materialized once here in the parent and published as
        ``test_refs``, replacing per-worker regeneration.
    """
    tasks = list(tasks)
    warmup = tuple(tuple(spec) for spec in warmup)
    test_refs = None
    if plane is not None and warmup:
        from repro.experiments.harness import get_test_data

        test_refs = {}
        for spec in warmup:
            x, y = get_test_data(*spec)
            test_refs[spec] = (plane.publish(x), plane.publish(y))
    if shared:
        published = ({name: plane.publish(array)
                      for name, array in shared.items()}
                     if plane is not None else dict(shared))
        base = dict(context) if isinstance(context, dict) else \
            ({} if context is None else {"context": context})
        context = {**base, **published}
    return ExecutionPlan(
        func=func,
        tasks=tasks,
        indices=tuple(indices) if indices is not None else (),
        keys=tuple(keys) if keys is not None else None,
        warmup=warmup,
        test_refs=test_refs,
        context=context,
        store=store,
    )


# ----------------------------------------------------------------------
# Plan context plumbing (shared arrays / models for chunked tasks)
# ----------------------------------------------------------------------

#: Worker-process context, set once at pool bootstrap (workers are
#: single-threaded, so a plain global is safe there).
_PLAN_CONTEXT: object = None
_CONTEXT_ERROR: BaseException | None = None

#: Inner worker lease of the budgeted plan running in this process:
#: how many workers the current task may use for its own chunked
#: fan-outs.  ``None`` means no budgeted plan is active.  Pool workers
#: receive it at bootstrap (:func:`_init_worker`); in-process budgeted
#: execution installs it thread-locally on :data:`_TLS`.
_WORKER_LEASE: int | None = None

#: In-process (serial-executor) context, thread-local: concurrent
#: in-process executions — e.g. sharded invocations driven from
#: threads — must not see each other's arrays.
_TLS = threading.local()


def plan_context():
    """The running plan's resolved context (shared arrays, models, ...).

    Valid inside task functions while an executor is running a plan
    whose ``context`` is set: the serial executor installs it around its
    loop (per thread), process workers resolve it once at bootstrap.
    """
    local = getattr(_TLS, "context", None)
    if local is not None:
        return local
    if _CONTEXT_ERROR is not None:
        raise RuntimeError(
            "the execution-plan context failed to initialise in this "
            "worker") from _CONTEXT_ERROR
    if _PLAN_CONTEXT is None:
        raise RuntimeError("no execution-plan context is active in this "
                           "process")
    return _PLAN_CONTEXT


def worker_budget() -> int | None:
    """The running task's inner worker lease, ``None`` outside a plan.

    Set by the planner when it splits a global ``jobs`` budget: each
    grid worker gets ``jobs // workers`` inner workers for its own
    chunked fan-outs.  Thread-local installs (in-process budgeted
    execution) shadow the process-wide lease of pool workers.
    """
    lease = getattr(_TLS, "lease", None)
    if lease is not None:
        return lease
    return _WORKER_LEASE


def budgeted_jobs(default: int = 1) -> int:
    """The ``jobs=`` a task should pass to its own chunked fan-outs.

    Inside a budgeted plan this is the worker's lease; outside any plan
    it is ``default`` (1: a directly-called task stays serial, exactly
    the historical behaviour).  Grid tasks thread this into
    ``discover``/``predict_chunked``/``tune_metamodel`` instead of a
    hard-coded ``jobs=1`` — the planner, not the task, decides how the
    global budget splits across levels.
    """
    lease = worker_budget()
    return default if lease is None else lease


def _log_spawn(workers: int, lease: int) -> None:
    """Append one pool-spawn line to the ``REDS_SPAWN_LOG`` file, if set.

    Instrumentation for the oversubscription tests: each line records
    ``<pid> <ambient-lease or -> <pool workers> <per-worker lease>``,
    so a test can assert that a ``jobs=N`` run never puts more than
    ``N`` workers to work at once, across all nesting levels.
    """
    path = os.environ.get("REDS_SPAWN_LOG")
    if not path:
        return
    ambient = worker_budget()
    line = (f"{os.getpid()} {'-' if ambient is None else ambient} "
            f"{workers} {lease}\n")
    with open(path, "a") as handle:
        handle.write(line)


def _init_worker(warmup, test_refs, context, lease: int | None = None) -> None:
    """Worker bootstrap: map shared test data, resolve the plan context.

    Test-data failures are deliberately swallowed — a broken spec would
    otherwise crash the worker at startup, while the task that actually
    needs it reports the real error through its future.  Context
    failures are remembered and re-raised by :func:`plan_context` from
    the task that relies on them.  ``lease`` is the worker's share of
    the plan's global budget, surfaced through :func:`budgeted_jobs`.
    """
    global _PLAN_CONTEXT, _CONTEXT_ERROR, _WORKER_LEASE
    _WORKER_LEASE = lease
    if os.environ.get("REDS_NATIVE_ACTIVE"):
        # An engine="native" run is live in this process tree: load the
        # disk-cached compiled kernels now so no task pays a compile.
        try:
            from repro.engines import warmup_native

            warmup_native()
        except Exception:
            pass
    try:
        if test_refs:
            from repro.experiments.harness import register_test_data

            register_test_data(test_refs)
        elif warmup:
            warm_test_cache(warmup)
    except Exception:
        pass
    try:
        _PLAN_CONTEXT = resolve_refs(context)
        _CONTEXT_ERROR = None
    except BaseException as exc:  # noqa: BLE001 - surfaced via plan_context
        _PLAN_CONTEXT = None
        _CONTEXT_ERROR = exc


# ----------------------------------------------------------------------
# Retry policy, failure accounting and fault-aware task invocation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failed task is re-attempted, and how it backs off.

    Backoff for attempt ``a`` (1-based count of *failures so far*) is
    ``min(backoff_base * backoff_factor**(a-1), backoff_max)`` scaled by
    a deterministic jitter in ``[0.5, 1.0]`` derived from
    ``sha256(seed, token, a)`` — seeded jitter decorrelates sibling
    retries without introducing wall-clock randomness, so the same run
    replays the same delays.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    seed: int = 0

    def delay(self, token: str, attempt: int) -> float:
        """Seconds to wait before re-running ``token`` after ``attempt``
        failures."""
        if attempt <= 0:
            return 0.0
        base = min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                   self.backoff_max)
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{attempt}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (0.5 + 0.5 * draw)


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined task: its grid identity and how it died."""

    index: int
    key: str | None
    attempts: int
    error: str


class GridFailureError(RuntimeError):
    """Raised after a tolerant grid finishes with quarantined tasks.

    Unlike the fail-fast default, this carries the *complete* picture:
    ``failures`` lists every task that exhausted its retries, and
    ``results`` holds the full grid in task order with
    :data:`~repro.experiments.store.MISSING` at the failed positions —
    everything that could complete, did, and was persisted.
    """

    def __init__(self, failures: Sequence[TaskFailure], results: list):
        self.failures = list(failures)
        self.results = results
        super().__init__(self.summary())

    def summary(self) -> str:
        """A compact human-readable failure table."""
        done = sum(1 for r in self.results if r is not MISSING)
        lines = [
            f"{len(self.failures)} task(s) quarantined after retries "
            f"({done} of {len(self.results)} completed)",
            f"  {'grid-index':>10}  {'task key':<12}  {'attempts':>8}  last error",
        ]
        for failure in self.failures:
            key = failure.key[:12] if failure.key else "-"
            error = failure.error.splitlines()[0] if failure.error else ""
            if len(error) > 80:
                error = error[:77] + "..."
            lines.append(f"  {failure.index:>10}  {key:<12}  "
                         f"{failure.attempts:>8}  {error}")
        return "\n".join(lines)


def _token_base(plan: ExecutionPlan, j: int) -> str:
    """Stable identity of task ``j`` for fault decisions and jitter.

    The store key when available (content-addressed, identical across
    executors and shards), else the grid index — never anything
    scheduling-dependent.
    """
    if plan.keys is not None and plan.keys[j] is not None:
        return plan.keys[j]
    return f"i{plan.indices[j]}"


def _invoke(func: Callable, task: dict, token: str | None):
    """Run one task, firing task-level fault injections when armed.

    ``token`` is ``None`` when no fault plan is active (zero overhead on
    the common path).  Only the outermost task scope on a thread
    injects: nested fan-outs inside a task inherit its fate (see
    :func:`repro.experiments.faults.task_scope`).
    """
    if token is None or not faults.enabled():
        return func(**task)
    with faults.task_scope(token) as outermost:
        if outermost:
            faults.maybe_inject("worker_crash", token)
            faults.maybe_inject("task_hang", token)
        return func(**task)


def _guarded_call(func: Callable, task: dict, token: str | None,
                  hb_dir: str | None, hb_name: str):
    """Pool-worker task wrapper: heartbeat files + fault injection.

    The heartbeat is written before the task starts and removed when it
    returns (normally or with an exception), so the dispatcher can
    attribute a poisoned pool: a surviving heartbeat means the task was
    *in flight* on the dead worker (charge an attempt), no heartbeat
    means it was still queued (requeue for free).  Its mtime doubles as
    the watchdog's hang clock.
    """
    hb_path = None
    if hb_dir:
        hb_path = os.path.join(hb_dir, hb_name)
        try:
            with open(hb_path, "w") as handle:
                handle.write(str(os.getpid()))
        except OSError:
            hb_path = None
    try:
        return _invoke(func, task, token)
    finally:
        if hb_path is not None:
            try:
                os.unlink(hb_path)
            except OSError:
                pass


def _record_failure(plan: ExecutionPlan, j: int, attempts: int,
                    error: str, quarantined: bool) -> None:
    """Journal a failed attempt in the store (dispatcher-side only)."""
    if plan.store is None or plan.keys is None or plan.keys[j] is None:
        return
    try:
        plan.store.record_failure(plan.keys[j], attempts=attempts,
                                  error=error, quarantined=quarantined)
    except OSError:  # pragma: no cover - journalling must never kill a run
        pass


def _describe_error(exc: BaseException) -> str:
    text = str(exc)
    return f"{type(exc).__name__}: {text}" if text else type(exc).__name__


def _run_inline(plan: ExecutionPlan, order: Sequence[int],
                attempts: list[int], results: dict[int, object],
                settled: set[int],
                on_result: Callable[[int, object], None] | None,
                policy: RetryPolicy | None,
                failures: list[TaskFailure] | None,
                budget: int | None) -> None:
    """Run ``order``'s tasks inline with retry accounting.

    The shared engine of tolerant serial execution and of a degraded
    :class:`ProcessExecutor` finishing a grid after giving up on pools
    (``attempts`` carries over, so pool attempts still count against
    the budget).  Installs the plan context (and ``budget`` as the
    worker lease) thread-locally, exactly like :class:`SerialExecutor`.
    """
    max_attempts = policy.max_attempts if policy is not None else 1
    previous = getattr(_TLS, "context", None)
    previous_lease = getattr(_TLS, "lease", None)
    _TLS.context = resolve_refs(plan.context)
    if budget is not None:
        _TLS.lease = budget
    try:
        for j in order:
            token_base = _token_base(plan, j)
            while True:
                token = (f"{token_base}#a{attempts[j]}"
                         if faults.enabled() else None)
                try:
                    record = _invoke(plan.func, plan.tasks[j], token)
                except Exception as exc:
                    attempts[j] += 1
                    final = attempts[j] >= max_attempts
                    _record_failure(plan, j, attempts[j],
                                    _describe_error(exc), final)
                    if final:
                        if failures is None:
                            raise
                        failures.append(TaskFailure(
                            index=plan.indices[j],
                            key=(plan.keys[j] if plan.keys is not None
                                 else None),
                            attempts=attempts[j],
                            error=_describe_error(exc)))
                        results[j] = MISSING
                        settled.add(j)
                        break
                    time.sleep(policy.delay(token_base, attempts[j]))
                    continue
                results[j] = record
                settled.add(j)
                if on_result is not None:
                    on_result(j, record)
                break
    finally:
        _TLS.context = previous
        _TLS.lease = previous_lease


def _kill_pool(pool) -> None:
    """Tear a (possibly poisoned) pool down hard: kill workers, reap."""
    if pool is None:
        return
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass


# ----------------------------------------------------------------------
# Warm-session pool cache
# ----------------------------------------------------------------------
#
# Under an active warm session (``REDS_SESSION=1``, normally set by
# ``repro.experiments.session.Session``), pools survive across
# ``execute()``/``run_chunked`` calls instead of being torn down per
# plan.  A cache entry is keyed by ``(workers, lease, plan-context
# signature)`` — the signature is the pickle digest of everything
# ``_init_worker`` consumed, so a cached pool is *exactly* as
# initialized as a fresh spawn for the same plan would be.  Checkout is
# exclusive (the entry is popped), so a pool is never shared by two
# concurrent plans; a healthy pool is checked back in when its plan
# drains, a broken or poisoned one is simply never returned.

_POOL_CACHE: "OrderedDict[tuple, ProcessPoolExecutor]" = OrderedDict()
_POOL_LOCK = threading.Lock()
_POOL_STATS = {"spawned": 0, "reused": 0}
_CHILD_FINALIZER = False


def _reset_pool_cache_after_fork() -> None:
    # A forked child inherits the parent's cache by copy.  Those pool
    # objects belong to the parent — shutting them down from here would
    # poison the parent's live queues — so the child abandons the
    # entries (the OS resources stay owned by the parent) and starts
    # its own cache, with a fresh lock in case the inherited one was
    # held mid-fork.
    # The finalizer flag must also reset: the parent may have set it
    # (to a no-op) before forking, and an inherited True would stop the
    # child from ever registering its own exit hook for nested pools.
    global _POOL_LOCK, _CHILD_FINALIZER
    _POOL_LOCK = threading.Lock()
    _CHILD_FINALIZER = False
    _POOL_CACHE.clear()
    _POOL_STATS["spawned"] = 0
    _POOL_STATS["reused"] = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_pool_cache_after_fork)


def _ensure_child_finalizer() -> None:
    """In a pool worker, arrange cleanup of *its own* cached pools.

    ``atexit`` hooks never run in multiprocessing children (they exit
    via ``os._exit`` after ``_bootstrap``), but
    ``multiprocessing.util.Finalize`` hooks do — so a worker that
    caches nested pools registers one, and its grandchild workers exit
    cleanly when the session's top-level pool shuts down.
    """
    global _CHILD_FINALIZER
    if _CHILD_FINALIZER:
        return
    _CHILD_FINALIZER = True
    import multiprocessing
    from multiprocessing import util as mp_util

    if multiprocessing.parent_process() is not None:
        mp_util.Finalize(None, close_pools, exitpriority=10)


def _pool_cache_cap() -> int:
    """Max cached pools, from ``REDS_SESSION_POOLS`` (default 8, 0 off)."""
    try:
        return max(int(os.environ.get("REDS_SESSION_POOLS", "8")), 0)
    except ValueError:
        return 8


def _pool_key(plan: "ExecutionPlan", workers: int,
              lease: int) -> tuple | None:
    """Cache key for a pool serving ``plan``, or None when uncacheable.

    Returns None outside a warm session, when caching is disabled, or
    when the plan's init payload cannot be pickled (such a plan could
    not reach a process pool anyway, but stay defensive: an uncacheable
    plan just gets the historical spawn-per-call behaviour).
    """
    if not session_active() or _pool_cache_cap() == 0:
        return None
    try:
        payload = pickle.dumps((plan.warmup, plan.test_refs, plan.context),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return (workers, lease, hashlib.sha256(payload).hexdigest())


def _checkout_pool(key: tuple | None) -> ProcessPoolExecutor | None:
    """Pop a cached pool for ``key`` (exclusive), or None on a miss."""
    if key is None:
        return None
    with _POOL_LOCK:
        pool = _POOL_CACHE.pop(key, None)
        if pool is not None:
            _POOL_STATS["reused"] += 1
    return pool


def _checkin_pool(key: tuple | None, pool) -> None:
    """Return a healthy pool to the cache (or shut it down).

    Outside a session — or for an uncacheable plan — this is the
    historical per-call teardown.  A checkin collision (another plan
    already returned a pool under the same key) shuts the incoming pool
    down rather than leaking its workers.
    """
    if pool is None:
        return
    if key is None or not session_active():
        pool.shutdown(wait=True)
        return
    _ensure_child_finalizer()
    evicted = []
    with _POOL_LOCK:
        if key in _POOL_CACHE:
            evicted.append(pool)
        else:
            _POOL_CACHE[key] = pool
            cap = _pool_cache_cap()
            while len(_POOL_CACHE) > cap:
                _, stale = _POOL_CACHE.popitem(last=False)
                evicted.append(stale)
    for stale in evicted:
        _kill_pool(stale)


def _spawn_pool(plan: "ExecutionPlan", workers: int,
                lease: int) -> ProcessPoolExecutor:
    """Spawn (and spawn-log) one worker pool for ``plan``.

    The single funnel for pool creation: the ``pool_spawn_fail`` fault
    point and the ``REDS_SPAWN_LOG`` instrumentation both live here, so
    a warm-session cache hit neither logs a spawn nor rolls the fault
    dice — exactly the observable the spawn-count tests pin.
    """
    faults.maybe_inject("pool_spawn_fail", f"w{workers}-l{lease}")
    _log_spawn(workers, lease)
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(plan.warmup, plan.test_refs, plan.context, lease),
    )
    with _POOL_LOCK:
        _POOL_STATS["spawned"] += 1
    return pool


def pool_stats() -> dict[str, int]:
    """Spawn/reuse counters plus the current cache size."""
    with _POOL_LOCK:
        return {**_POOL_STATS, "cached": len(_POOL_CACHE)}


def reset_pool_stats() -> None:
    """Zero the spawn/reuse counters (cache contents are untouched)."""
    with _POOL_LOCK:
        _POOL_STATS["spawned"] = 0
        _POOL_STATS["reused"] = 0


@atexit.register
def close_pools() -> int:
    """Shut down every cached pool; returns how many were closed.

    In the session-owning process this drains gracefully
    (``shutdown(wait=True)``) so workers exit through their own
    finalizers.  In a forked pool *worker*, cached nested pools are
    torn down with :func:`_kill_pool` instead: a cached pool is idle by
    construction (checkin happens only after every future drained), and
    sentinel-based draining from a worker's exit finalizer can deadlock
    — the call queue's feeder machinery is unreliable in a forked,
    half-exited interpreter, leaving a grandchild blocked on a read
    that never completes while ``multiprocessing.util._exit_function``
    waits to join it.  Killing idle grandworkers loses nothing.
    """
    import multiprocessing

    with _POOL_LOCK:
        pools = list(_POOL_CACHE.values())
        _POOL_CACHE.clear()
    graceful = multiprocessing.parent_process() is None
    for pool in pools:
        if not graceful:
            _kill_pool(pool)
            continue
        try:
            pool.shutdown(wait=True)
        except Exception:  # pragma: no cover - defensive
            _kill_pool(pool)
    return len(pools)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

class SerialExecutor:
    """The reference loop: run every task inline, in plan order.

    ``budget`` (optional) installs a worker lease around the loop: the
    single-task / ``jobs <= 1`` fallback of a budgeted
    :class:`ProcessExecutor` hands its whole budget to the tasks it
    runs inline, so ``execute(jobs=8)`` over one task still means
    eight workers — all of them inside that task's own chunked
    fan-outs, read back via :func:`budgeted_jobs`.
    """

    #: Serial execution reads parent memory directly — no plane needed.
    wants_plane = False

    def __init__(self, budget: int | None = None) -> None:
        self.budget = budget

    def run(self, plan: ExecutionPlan,
            on_result: Callable[[int, object], None] | None = None, *,
            policy: RetryPolicy | None = None,
            failures: list[TaskFailure] | None = None,
            task_timeout: float | None = None) -> list:
        # ``task_timeout`` is accepted for interface parity but cannot be
        # enforced inline: there is no second process to watch the clock,
        # and killing the only interpreter would lose the grid.  The
        # watchdog lives in ProcessExecutor.
        if policy is not None or failures is not None or faults.enabled():
            attempts = [0] * len(plan.tasks)
            results: dict[int, object] = {}
            _run_inline(plan, range(len(plan.tasks)), attempts, results,
                        set(), on_result, policy, failures, self.budget)
            return [results[j] for j in range(len(plan.tasks))]
        previous = getattr(_TLS, "context", None)
        previous_lease = getattr(_TLS, "lease", None)
        _TLS.context = resolve_refs(plan.context)
        if self.budget is not None:
            _TLS.lease = self.budget
        try:
            results = []
            for index, task in enumerate(plan.tasks):
                record = plan.func(**task)
                if on_result is not None:
                    on_result(index, record)
                results.append(record)
            return results
        finally:
            _TLS.context = previous
            _TLS.lease = previous_lease


class ProcessExecutor:
    """Fan a plan out over a process pool (today's ``jobs=N`` path).

    Workers bootstrap by mapping the plan's shared arrays (test data,
    context refs) zero-copy from the data plane — or, when the plane is
    unavailable, by warming their own test cache — then pull tasks until
    the plan drains.  Results are collected by plan index, so the
    returned list matches the serial loop regardless of scheduling.

    ``jobs`` is the plan's **total** worker budget.  The pool takes
    ``min(jobs, tasks)`` workers and every worker receives a lease of
    ``jobs // workers`` inner workers for its own chunked fan-outs
    (via :func:`budgeted_jobs`) — a grid wider than its budget leaves
    lease 1 (pure grid parallelism, the historical behaviour), a
    narrow grid hands the spare budget to the inner level.  Inside a
    budgeted worker any nested request is additionally clamped to the
    ambient lease, so no composition of layers exceeds the top-level
    budget.
    """

    wants_plane = True

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = jobs

    def run(self, plan: ExecutionPlan,
            on_result: Callable[[int, object], None] | None = None, *,
            policy: RetryPolicy | None = None,
            failures: list[TaskFailure] | None = None,
            task_timeout: float | None = None) -> list:
        jobs = default_jobs() if self.jobs is None else self.jobs
        ambient = worker_budget()
        if ambient is not None:
            # Already inside a budgeted plan: the lease caps everything
            # spawned below it, whatever the nested caller asked for.
            jobs = min(jobs, ambient)
        if jobs <= 1 or len(plan.tasks) <= 1:
            return SerialExecutor(budget=max(jobs, 1)).run(
                plan, on_result, policy=policy, failures=failures)
        workers = min(jobs, len(plan.tasks))
        lease = max(1, jobs // workers)
        if (policy is not None or failures is not None
                or task_timeout is not None or faults.enabled()):
            return self._run_tolerant(plan, on_result, policy, failures,
                                      task_timeout, jobs, workers, lease)
        key = _pool_key(plan, workers, lease)
        pool = _checkout_pool(key)
        reused = pool is not None
        if pool is None:
            try:
                pool = _spawn_pool(plan, workers, lease)
            except Exception as exc:
                logger.warning("process pool spawn failed (%s); degrading to "
                               "serial execution", exc)
                return SerialExecutor(budget=max(jobs, 1)).run(plan, on_result)
        while True:
            futures = [pool.submit(plan.func, **task) for task in plan.tasks]
            try:
                out = [None] * len(futures)
                index_of = {future: i for i, future in enumerate(futures)}
                for future in as_completed(futures):
                    i = index_of[future]
                    out[i] = future.result()
                    if on_result is not None:
                        on_result(i, out[i])
            except BrokenProcessPool:
                _kill_pool(pool)
                if not reused:
                    raise
                # A cached pool can have died between plans (a worker
                # OOM-killed, the machine reaping idle processes).  The
                # entry was popped at checkout, so respawn once and
                # re-run: tasks are pure and ``on_result`` callbacks are
                # idempotent store puts, so a full re-run is safe.
                logger.warning("cached worker pool was broken; respawning")
                reused = False
                try:
                    pool = _spawn_pool(plan, workers, lease)
                except Exception as exc:
                    logger.warning("process pool spawn failed (%s); degrading "
                                   "to serial execution", exc)
                    return SerialExecutor(budget=max(jobs, 1)).run(
                        plan, on_result)
                continue
            except BaseException:
                # Fail fast: don't let a long grid grind to completion
                # behind an already-doomed run.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            _checkin_pool(key, pool)
            return out

    def _run_tolerant(self, plan: ExecutionPlan,
                      on_result: Callable[[int, object], None] | None,
                      policy: RetryPolicy | None,
                      failures: list[TaskFailure] | None,
                      task_timeout: float | None,
                      jobs: int, workers: int, lease: int) -> list:
        """The guarded dispatch loop: retries, watchdog, degradation.

        Used whenever a retry policy, a task timeout or an active fault
        plan is in play.  Unlike the fast path's bulk-submit +
        ``as_completed``, this loop owns the task lifecycle explicitly:
        a ready queue, a backoff-delayed queue, and an in-flight map —
        so it can requeue work across pool generations.  Heartbeat
        files (written by :func:`_guarded_call`) attribute blame when a
        pool dies: in-flight tasks are charged an attempt, queued tasks
        requeue for free.  A second poisoning — or a pool that cannot
        be spawned at all — degrades the rest of the grid to the inline
        loop rather than thrashing.
        """
        if policy is None:
            policy = RetryPolicy(max_attempts=1)
        n = len(plan.tasks)
        attempts = [0] * n
        results: dict[int, object] = {}
        settled: set[int] = set()
        ready: deque[int] = deque(range(n))
        delayed: list[tuple[float, int]] = []
        poisonings = 0
        pool = None
        # Warm-session checkout is exclusive: a poisoned pool was already
        # popped from the cache, so it can never be handed to a later
        # plan — only a pool that drains its plan healthy is returned.
        cache_key = _pool_key(plan, workers, lease)
        futures: dict[object, int] = {}
        hb_dir = Path(tempfile.mkdtemp(prefix="reds-hb-"))
        token_bases = [_token_base(plan, j) for j in range(n)]

        def hb_path(j: int) -> Path:
            return hb_dir / f"t{j}"

        def charge(j: int, error: str, exc: BaseException | None) -> None:
            attempts[j] += 1
            final = attempts[j] >= policy.max_attempts
            _record_failure(plan, j, attempts[j], error, final)
            if not final:
                delayed.append((time.monotonic()
                                + policy.delay(token_bases[j], attempts[j]),
                                j))
                return
            if failures is None:
                if exc is not None:
                    raise exc
                raise RuntimeError(error)
            failures.append(TaskFailure(
                index=plan.indices[j],
                key=plan.keys[j] if plan.keys is not None else None,
                attempts=attempts[j], error=error))
            results[j] = MISSING
            settled.add(j)

        def poison(reason: str, candidates: Sequence[int],
                   charged: Sequence[int] = ()) -> None:
            # The whole pool dies together (killing a hung worker kills
            # its siblings too): tasks in ``charged`` were already
            # charged by the caller, the rest are charged or requeued by
            # heartbeat attribution.
            nonlocal pool, poisonings
            poisonings += 1
            _kill_pool(pool)
            pool = None
            futures.clear()
            for j in candidates:
                if j in charged or j in settled:
                    continue
                if hb_path(j).exists():
                    charge(j, reason, None)
                else:
                    ready.append(j)
            for stale in hb_dir.glob("t*"):
                try:
                    stale.unlink()
                except OSError:
                    pass

        try:
            while len(settled) < n:
                if poisonings >= 2:
                    remaining = sorted(
                        set(range(n)) - settled - set(futures.values()))
                    logger.warning(
                        "process pool poisoned %d times; degrading the "
                        "remaining %d task(s) to serial execution",
                        poisonings, len(remaining))
                    delayed.clear()
                    ready.clear()
                    _run_inline(plan, remaining, attempts, results, settled,
                                on_result, policy, failures, budget=jobs)
                    break
                now = time.monotonic()
                if delayed:
                    ripe = sorted(j for t, j in delayed if t <= now)
                    delayed[:] = [(t, j) for t, j in delayed if t > now]
                    ready.extend(ripe)
                if pool is None and ready:
                    pool = _checkout_pool(cache_key)
                    if pool is None:
                        try:
                            pool = _spawn_pool(plan, workers, lease)
                        except Exception as exc:
                            logger.warning(
                                "process pool spawn failed (%s); degrading "
                                "the remaining tasks to serial execution", exc)
                            poisonings = 2
                            continue
                submit_failed = False
                while ready:
                    j = ready.popleft()
                    token = (f"{token_bases[j]}#a{attempts[j]}"
                             if faults.enabled() else None)
                    try:
                        future = pool.submit(_guarded_call, plan.func,
                                             plan.tasks[j], token,
                                             str(hb_dir), f"t{j}")
                    except Exception:
                        ready.appendleft(j)
                        submit_failed = True
                        break
                    futures[future] = j
                if submit_failed:
                    # The unsubmitted task is back at the head of
                    # ``ready``; only the in-flight ones need blame
                    # attribution.
                    poison("worker crashed (pool rejected new work)",
                           list(futures.values()))
                    continue
                if not futures:
                    if delayed:
                        wake = min(t for t, _ in delayed)
                        time.sleep(max(wake - time.monotonic(), 0.0) + 0.001)
                        continue
                    break
                poll = 0.2
                if task_timeout is not None:
                    poll = min(poll, max(task_timeout / 4.0, 0.02))
                if delayed:
                    poll = min(poll, 0.05)
                done, _ = wait(list(futures), timeout=poll,
                               return_when=FIRST_COMPLETED)
                broken: list[int] = []
                for future in done:
                    j = futures.pop(future)
                    exc = future.exception()
                    if exc is None:
                        record = future.result()
                        results[j] = record
                        settled.add(j)
                        if on_result is not None:
                            on_result(j, record)
                    elif isinstance(exc, BrokenProcessPool):
                        broken.append(j)
                    else:
                        charge(j, _describe_error(exc), exc)
                if broken:
                    poison("worker crashed (pool poisoned mid-task)",
                           broken + list(futures.values()))
                    continue
                if task_timeout is not None and futures:
                    wall = time.time()
                    hung = []
                    for future, j in futures.items():
                        try:
                            started = hb_path(j).stat().st_mtime
                        except OSError:
                            continue  # still queued, clock not running
                        if wall - started > task_timeout:
                            hung.append(j)
                    if hung:
                        for j in hung:
                            charge(j, f"task exceeded task_timeout="
                                      f"{task_timeout}s; worker killed",
                                   None)
                        poison("pool killed to recover hung worker(s)",
                               list(futures.values()), charged=hung)
                        continue
            if pool is not None:
                # The plan drained with this pool healthy: hand it back
                # to the warm-session cache instead of killing it.  Any
                # broken pool was already killed inside ``poison()`` with
                # ``pool`` reset to None, so it cannot reach here.
                _checkin_pool(cache_key, pool)
                pool = None
            return [results[j] for j in range(n)]
        finally:
            _kill_pool(pool)
            shutil.rmtree(hb_dir, ignore_errors=True)


class ShardedExecutor:
    """Split one plan across independent store-coordinated invocations.

    Every task execution is arbitrated by an atomic store **claim
    marker** (:meth:`~repro.experiments.store.ExperimentStore.claim`),
    so concurrent invocations against one store never duplicate a task.
    The modulo partition is the *priority order*, not a cage: shard
    ``i`` of ``k`` claims and executes the tasks whose **grid index**
    is congruent to ``i`` first, then — instead of idling while a
    slower sibling still holds pending work — sweeps the remaining
    unclaimed tasks and steals them, and reads every record it did not
    produce from the store as the sibling invocations persist theirs.
    Each invocation therefore returns the full grid, identical to a
    serial run, and a lone shard completes the whole grid by itself.

    Sibling death is survivable: a claim marker's mtime is its lease
    timestamp, and a claim older than ``claim_ttl`` is presumed
    abandoned — this invocation *reclaims* it (atomic takeover, exactly
    one survivor wins) and executes the task itself instead of waiting
    forever.  Pick ``claim_ttl`` comfortably above the worst-case task
    duration; reclaiming a live sibling's lease cannot corrupt results
    (tasks are pure, records last-writer-wins with identical content)
    but duplicates work.  ``claim_ttl=None`` disables reclamation.

    ``timeout`` bounds how long this invocation waits for tasks that
    are claimed elsewhere but whose records never appear (a crashed or
    stalled sibling inside its lease); the deadline resets whenever any
    progress is observed, so it only fires on a genuinely dead grid.
    """

    wants_plane = True

    def __init__(self, shard: int, of: int, *, jobs: int | None = None,
                 poll_interval: float = 0.05, timeout: float = 3600.0,
                 claim_ttl: float | None = 1800.0) -> None:
        if of < 1:
            raise ValueError(f"shard count must be >= 1, got {of}")
        if not 0 <= shard < of:
            raise ValueError(f"shard must be in [0, {of}), got {shard}")
        self.shard = shard
        self.of = of
        self.jobs = jobs
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.claim_ttl = claim_ttl

    @property
    def owner(self) -> str:
        """This invocation's claim-marker identity.

        Deliberately stable across re-runs of the same shard (no pid):
        a shard restarted after a crash re-wins its own stale claims
        and re-executes the tasks it had claimed but never finished.
        """
        return f"shard-{self.shard}/{self.of}"

    def run(self, plan: ExecutionPlan,
            on_result: Callable[[int, object], None] | None = None, *,
            policy: RetryPolicy | None = None,
            failures: list[TaskFailure] | None = None,
            task_timeout: float | None = None) -> list:
        if plan.store is None or plan.keys is None:
            raise ValueError(
                "sharded execution coordinates through the experiment "
                "store; pass store= (and keep resume semantics) so every "
                "shard can read its siblings' records")
        jobs = default_jobs() if self.jobs is None else self.jobs
        inner = ProcessExecutor(jobs) if jobs > 1 else SerialExecutor()
        results: dict[int, object] = {}

        def run_claimed(selection: list[int]) -> None:
            wrapped = None
            if on_result is not None:
                wrapped = lambda j, record: on_result(selection[j], record)  # noqa: E731
            for j, record in zip(selection,
                                 inner.run(plan.subset(selection), wrapped,
                                           policy=policy, failures=failures,
                                           task_timeout=task_timeout)):
                results[j] = record

        # Own slice first — the modulo partition stays the priority
        # order; claims only arbitrate against siblings that already
        # stole into it.
        own = [j for j in range(len(plan.tasks))
               if plan.indices[j] % self.of == self.shard]
        run_claimed([j for j in own
                     if plan.store.claim(plan.keys[j], self.owner)])

        # Claim-then-poll: everything still missing is either being
        # executed by a sibling (its record will appear) or unclaimed
        # pending work this shard steals instead of idling.
        waiting = [j for j in range(len(plan.tasks)) if j not in results]
        deadline = time.monotonic() + self.timeout
        while waiting:
            progress = False
            still_missing = []
            for j in waiting:
                record = plan.store.get(plan.keys[j])
                if record is MISSING:
                    still_missing.append(j)
                else:
                    results[j] = record
                    progress = True
            waiting = still_missing
            if not waiting:
                break
            stolen = [j for j in waiting
                      if plan.store.claim(plan.keys[j], self.owner)]
            if stolen:
                run_claimed(stolen)
                waiting = [j for j in waiting if j not in results]
                progress = True
            if not waiting:
                break
            # Dead-sibling recovery: a claim whose lease expired belongs
            # to an invocation presumed dead — take it over (exactly one
            # survivor wins the atomic takeover) and run it here.
            if self.claim_ttl is not None:
                reclaimed = []
                for j in waiting:
                    age = plan.store.claim_age(plan.keys[j])
                    if age is not None and age > self.claim_ttl and \
                            plan.store.reclaim(plan.keys[j], self.owner,
                                               max_age=self.claim_ttl):
                        reclaimed.append(j)
                if reclaimed:
                    logger.warning(
                        "shard %d/%d reclaimed %d expired claim(s) from "
                        "dead sibling(s)", self.shard, self.of,
                        len(reclaimed))
                    run_claimed(reclaimed)
                    waiting = [j for j in waiting if j not in results]
                    progress = True
            if not waiting:
                break
            # A sibling that quarantined a task after exhausting its
            # retries will never publish a record for it; inherit the
            # failure instead of waiting for one.
            if failures is not None:
                for j in list(waiting):
                    failure = plan.store.failure_for(plan.keys[j])
                    if failure is not None and failure.get("quarantined"):
                        failures.append(TaskFailure(
                            index=plan.indices[j], key=plan.keys[j],
                            attempts=int(failure.get("attempts", 0)),
                            error=str(failure.get("error",
                                                  "quarantined by sibling"))))
                        results[j] = MISSING
                        waiting.remove(j)
                        progress = True
            if not waiting:
                break
            if progress:
                deadline = time.monotonic() + self.timeout
            elif time.monotonic() > deadline:
                missing = [plan.indices[j] for j in waiting]
                raise TimeoutError(
                    f"shard {self.shard}/{self.of} ran out of claimable "
                    f"work, but records for grid indices {missing[:8]}"
                    f"{'...' if len(missing) > 8 else ''} never appeared "
                    f"in the store — those tasks are claimed by sibling "
                    f"shards that have stopped publishing (crashed "
                    f"sibling?); their claims will become reclaimable "
                    f"once older than claim_ttl, or delete the store's "
                    f"claims/ directory to release them and re-run")
            else:
                time.sleep(self.poll_interval)
        return [results[j] for j in range(len(plan.tasks))]


def parse_shard(value) -> tuple[int, int] | None:
    """Normalise and validate a shard spec: ``None``, ``(i, k)`` or an
    ``"i/k"`` string with ``0 <= i < k``."""
    if value is None:
        return None
    if isinstance(value, str):
        try:
            i_text, k_text = value.split("/")
            i, k = int(i_text), int(k_text)
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/k' (e.g. '0/4'), got {value!r}"
            ) from None
    else:
        i, k = value
        i, k = int(i), int(k)
    if k < 1 or not 0 <= i < k:
        raise ValueError(
            f"shard must satisfy 0 <= i < k, got {i}/{k}")
    return i, k


def get_executor(executor=None, *, jobs: int | None = 1, shard=None):
    """Resolve ``executor=``/``jobs=``/``shard=`` into an executor object.

    ``executor`` may be an instance (returned as-is), a name from
    :data:`EXECUTORS`, or ``None`` — in which case ``shard`` selects the
    sharded executor and otherwise ``jobs`` picks serial (``<= 1``) or
    process execution, preserving the historical ``jobs=`` semantics.
    """
    shard = parse_shard(shard)
    if isinstance(executor, (SerialExecutor, ProcessExecutor,
                             ShardedExecutor)):
        if shard is not None and not isinstance(executor, ShardedExecutor):
            raise ValueError(
                f"shard={shard} requires the sharded executor, "
                f"got {type(executor).__name__}")
        if shard is not None and shard != (executor.shard, executor.of):
            raise ValueError(
                f"shard={shard} disagrees with the supplied "
                f"ShardedExecutor({executor.shard}, {executor.of}); "
                f"pass one or the other")
        return executor
    if shard is not None and executor not in (None, "sharded"):
        # Silently dropping the shard here would make every invocation
        # run the full grid — k-fold duplicated work instead of a
        # cooperative split.
        raise ValueError(
            f"shard={shard} requires executor='sharded' (or None), "
            f"got {executor!r}")
    if executor is None:
        executor = "sharded" if shard is not None else (
            "process" if (jobs is None or jobs > 1) else "serial")
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessExecutor(jobs)
    if executor == "sharded":
        if shard is None:
            raise ValueError("executor='sharded' requires shard=(i, k)")
        return ShardedExecutor(shard[0], shard[1], jobs=jobs)
    raise ValueError(
        f"unknown executor {executor!r}; expected one of {EXECUTORS}")


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------

def execute(
    func: Callable,
    tasks: Sequence[dict],
    jobs: int | None = 1,
    *,
    warmup: Sequence[tuple[str, str, int]] = (),
    store=None,
    resume: bool = True,
    executor=None,
    shard=None,
    context: object = None,
    shared: dict | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
) -> list:
    """Compile ``func(**task) for task in tasks`` into a plan and run it.

    ``func`` must be a module-level callable (workers import it by
    qualified name).  ``jobs=None`` uses :func:`default_jobs`; with
    ``jobs <= 1`` (and no explicit executor/shard) everything runs
    inline in this process.

    Parameters
    ----------
    store:
        Optional :class:`~repro.experiments.store.ExperimentStore` (or
        directory path) of finished records.  With ``resume=True`` the
        store is consulted first and only keys without a record are
        executed; every fresh result is persisted before returning.
        With ``resume=False`` nothing is read — every task recomputes
        and overwrites its entry (the ``--no-cache`` semantics).
    executor, shard:
        Pluggable execution strategy: an executor instance, a name from
        :data:`EXECUTORS`, or ``shard=(i, k)`` / ``"i/k"`` for
        store-coordinated sharding (requires ``store``).  The default
        picks serial or process execution from ``jobs``.
    context, shared:
        Plan context shipped once per worker (see :func:`plan_context`)
        and large read-only arrays published through the data plane and
        merged into it by name.
    retries:
        Extra attempts per failed task (default 0: fail fast on the
        first error, the historical behaviour).  With ``retries > 0``
        failures retry under a :class:`RetryPolicy` (exponential
        backoff, seeded jitter), failed attempts are journalled in the
        store's ``failures/`` tree, and a task that exhausts its budget
        is quarantined: the rest of the grid completes (and persists)
        before a :class:`GridFailureError` summarising every quarantined
        task is raised.
    task_timeout:
        Per-task wall-clock limit in seconds, enforced by
        :class:`ProcessExecutor`'s heartbeat watchdog: a worker whose
        task outlives the limit is killed, the pool respawned, and the
        task charged one attempt.  Ignored by purely in-process
        execution (there is no second process to watch the clock).

    Returns
    -------
    list
        One result per task, in task-list order, indistinguishable from
        a storeless serial run: cached and fresh records interleave at
        their grid positions.

    Raises
    ------
    GridFailureError
        Only with ``retries > 0``, after the grid has completed, when at
        least one task was quarantined.  ``.results`` carries the full
        grid (``MISSING`` at failed positions), ``.failures`` the
        per-task post-mortems.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    tasks = list(tasks)
    tolerant = retries > 0
    policy = (RetryPolicy(max_attempts=retries + 1)
              if (tolerant or task_timeout is not None) else None)
    failures: list[TaskFailure] | None = [] if tolerant else None
    store = open_store(store)
    exec_obj = get_executor(executor, jobs=jobs, shard=shard)
    use_plane = exec_obj.wants_plane and dataplane_enabled()
    if isinstance(exec_obj, ShardedExecutor) and not resume:
        # Foreign-shard records are read back from the store, and a
        # reader cannot tell a sibling's fresh overwrite from a stale
        # pre-existing record — the no-cache contract ("nothing is
        # read") is unenforceable across invocations.
        raise ValueError(
            "sharded execution requires resume=True: the store is the "
            "coordination channel; to force recomputation, point the "
            "shards at a fresh store directory instead")

    if store is None:
        if isinstance(exec_obj, ShardedExecutor):
            raise ValueError("sharded execution requires store=")
        plane = DataPlane() if use_plane and (warmup or shared) else None
        try:
            plan = compile_plan(func, tasks, warmup=warmup, context=context,
                                shared=shared, plane=plane)
            out = exec_obj.run(plan, policy=policy, failures=failures,
                               task_timeout=task_timeout)
        finally:
            if plane is not None:
                plane.unlink()
        if failures:
            raise GridFailureError(failures, out)
        return out

    keys = [store.key(func, task) for task in tasks]
    results: dict[int, object] = {}
    pending: list[int] = []
    for index, key in enumerate(keys):
        cached = store.get(key) if resume else MISSING
        if cached is MISSING:
            pending.append(index)
        else:
            results[index] = cached

    # Workers only need the test sets of tasks that actually run here:
    # on a nearly-warm store the unfiltered warmup would materialize
    # every grid function's test sample for nothing, and a sharded
    # invocation normally executes only its own partition — the k
    # cooperating invocations must not each generate and publish the
    # whole grid's test data.  A shard that *steals* foreign tasks may
    # need test sets beyond this filter; get_test_data regenerates them
    # on demand, trading a one-off cost on the stolen path for a lean
    # warmup on the common one.
    if warmup and pending:
        executing = pending
        if isinstance(exec_obj, ShardedExecutor):
            executing = [i for i in pending
                         if i % exec_obj.of == exec_obj.shard]
        needed = {(task.get("function"), task.get("variant", "continuous"),
                   task.get("test_size"))
                  for task in (tasks[i] for i in executing)}
        warmup = [spec for spec in warmup if tuple(spec) in needed]

    plane = DataPlane() if use_plane and pending and (warmup or shared) \
        else None
    try:
        plan = compile_plan(
            func, [tasks[i] for i in pending],
            indices=pending,
            keys=[keys[i] for i in pending],
            warmup=warmup, context=context, shared=shared,
            store=store, plane=plane,
        )
        # Persist each record the moment its task finishes (completion
        # order), so an interrupted grid loses at most the in-flight
        # tasks and the next run — or a sibling shard — resumes from
        # everything that completed.  A success also clears any failure
        # journal left by earlier attempts (this run's or a previous
        # one's), so ``failures/`` only ever describes unresolved tasks.
        def persist(j: int, record) -> None:
            store.put(plan.keys[j], record)
            store.clear_failure(plan.keys[j])

        fresh = exec_obj.run(plan, on_result=persist, policy=policy,
                             failures=failures, task_timeout=task_timeout)
    finally:
        if plane is not None:
            plane.unlink()
    for index, record in zip(pending, fresh):
        results[index] = record
    out = [results[index] for index in range(len(tasks))]
    if failures:
        raise GridFailureError(failures, out)
    return out


# ----------------------------------------------------------------------
# Row-chunked fan-out (the compute data parallelism of the metamodels)
# ----------------------------------------------------------------------

def _chunk_call(worker: Callable, start: int, stop: int):
    """One chunk of a :func:`run_chunked` fan-out."""
    return worker(plan_context(), start, stop)


def run_chunked(
    worker: Callable,
    n_rows: int,
    *,
    jobs: int | None = 1,
    chunk_rows: int | None = None,
    context: dict | None = None,
    shared: dict | None = None,
    executor=None,
) -> list:
    """Fan row chunks of ``[0, n_rows)`` out over the executor layer.

    ``worker(context, start, stop)`` must be a module-level callable
    returning a picklable per-chunk result; ``context`` is shipped once
    per worker and ``shared`` arrays are published through the data
    plane, so each chunk task pickles only its two integers.  Results
    come back in chunk order — for any row-wise computation their
    concatenation is bit-identical to the single-chunk call, whatever
    ``jobs``/``chunk_rows`` say (pinned by the chunked-prediction
    equivalence tests).

    ``chunk_rows=None`` gives every worker one contiguous chunk.
    """
    if n_rows <= 0:
        return []
    effective = default_jobs() if jobs is None else max(jobs, 1)
    ambient = worker_budget()
    if ambient is not None:
        # Chunk for the workers that will actually run: inside a
        # budgeted plan the executor clamps the pool to the lease, so
        # cutting more chunks than that only adds dispatch overhead.
        effective = min(effective, max(ambient, 1))
    if chunk_rows is None:
        chunk_rows = -(-n_rows // effective)
    chunk_rows = max(int(chunk_rows), 1)
    tasks = [dict(worker=worker, start=start,
                  stop=min(start + chunk_rows, n_rows))
             for start in range(0, n_rows, chunk_rows)]
    return execute(_chunk_call, tasks, jobs, context=context, shared=shared,
                   executor=executor)
