"""Parallel experiment engine: fan experiment grids out over processes.

:func:`run_batch` and :func:`run_third_party` in
:mod:`repro.experiments.harness` describe their grids as flat,
deterministic task lists (one kwargs dict per ``run_single`` /
``_third_party_single`` call) and hand them to :func:`execute` here.
Three properties make the parallel path bit-identical to the serial
one (locked down by ``tests/test_parallel_harness.py``):

* **seed-stable task ordering** — every task carries its explicit seed,
  computed from its grid position at dispatch time, so the work a task
  does never depends on which worker picks it up;
* **deterministic collection** — results are gathered by submission
  index, not completion order, so the returned list matches the serial
  loop regardless of worker scheduling;
* **per-worker test-data cache** — the ``lru_cache`` on
  :func:`repro.experiments.harness.get_test_data` does not cross
  process boundaries, so each worker warms its own cache once at
  startup instead of regenerating the 20000-point test sample for
  every task it runs.

``jobs <= 1`` falls back to a plain serial loop (no executor, no
pickling), which is also the default everywhere.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

__all__ = ["default_jobs", "execute", "warm_test_cache"]


def default_jobs() -> int:
    """Worker count for ``jobs=None``: all CPUs, floor 1."""
    return max(os.cpu_count() or 1, 1)


def warm_test_cache(specs: Sequence[tuple[str, str, int]]) -> None:
    """Fill this process's test-data cache for (function, variant, size)."""
    from repro.experiments.harness import get_test_data

    for function, variant, size in specs:
        get_test_data(function, variant, size)


def _init_worker(warmup: tuple[tuple[str, str, int], ...]) -> None:
    """Worker startup: pre-generate the test sets the tasks will need.

    Failures are deliberately swallowed — a broken spec would otherwise
    crash the worker at bootstrap, while the task that actually needs
    it reports the real error through its future.
    """
    try:
        warm_test_cache(warmup)
    except Exception:
        pass


def execute(
    func: Callable,
    tasks: Sequence[dict],
    jobs: int | None = 1,
    *,
    warmup: Sequence[tuple[str, str, int]] = (),
) -> list:
    """Run ``func(**task)`` for every task, in task-list order.

    ``func`` must be a module-level callable (workers import it by
    qualified name).  ``jobs=None`` uses :func:`default_jobs`; with
    ``jobs <= 1`` or fewer than two tasks everything runs inline in
    this process and ``warmup`` is ignored (the caller's own cache
    already does the work).
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [func(**task) for task in tasks]

    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(tuple(warmup),),
    ) as pool:
        futures = [pool.submit(func, **task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # Fail fast: don't let a long grid grind to completion
            # behind an already-doomed run.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
