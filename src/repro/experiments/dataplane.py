"""Shared-memory data plane: publish arrays once, map them zero-copy.

The execution plans of :mod:`repro.experiments.parallel` ship large
read-only arrays (test samples, query matrices, CV datasets) to worker
processes.  Before this module existed every worker either regenerated
the arrays from scratch (the ``get_test_data`` warmup) or received a
pickled copy inside each task's kwargs — both scale with the worker
count, not with the data.  The data plane materializes each array
**once** in the parent, places it in a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`), and hands workers a tiny
picklable :class:`ArrayRef` that maps the segment read-only into their
address space without copying a byte.

Design:

* **Content-addressed refs.**  Every published array is identified by a
  key — by default the SHA-256 of its dtype, shape and bytes
  (:func:`content_key`) — so publishing the same content twice through
  one :class:`DataPlane` reuses the existing segment, and the addressing
  scheme composes with the content-addressed experiment store of
  :mod:`repro.experiments.store` (both layers name immutable values by
  their content, never by their position in a run).
* **Inline fallback, also on failure.**  When shared memory is
  unavailable (exotic platforms, ``REDS_DATAPLANE=0``, or a segment
  allocation failing at runtime — ``/dev/shm`` full, permissions, an
  injected ``shm_publish_fail`` fault) refs simply carry the array
  inline; everything still works, workers just pay the pickling cost
  the plane exists to avoid.  Publishing degrades with a logged
  warning, it never crashes a run.
* **Deterministic teardown.**  :meth:`DataPlane.unlink` removes every
  segment name on both clean and exceptional exits (the executors call
  it from ``finally`` blocks) and an ``atexit`` hook sweeps anything a
  crashed caller left behind, so no run leaks ``/dev/shm`` entries.
  Segments leaked by a *SIGKILLed* prior run (no atexit ran) can be
  collected at startup by :func:`sweep_orphan_segments`: segment names
  embed the creating pid, so anything whose creator is no longer alive
  is an orphan.  The sweep is opt-in via ``REDS_DATAPLANE_SWEEP=1``
  because pid liveness is a heuristic (pids recycle).

Worker-side attaches are cached per process and unregistered from the
``multiprocessing`` resource tracker: on Python < 3.13 an attaching
process registers the segment a second time, and the tracker would
otherwise unlink it prematurely (and warn) when that worker exits while
the parent still owns the segment.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import os
import secrets
import weakref
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments import faults

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None

__all__ = [
    "ArrayRef",
    "DataPlane",
    "content_key",
    "dataplane_enabled",
    "resolve_refs",
    "active_segments",
    "sweep_orphan_segments",
]

logger = logging.getLogger(__name__)

#: Prefix of every segment name this module creates; tests (and humans
#: inspecting /dev/shm) can recognise data-plane segments by it.
SEGMENT_PREFIX = "reds-dp-"


def dataplane_enabled() -> bool:
    """Whether refs may use shared memory (``REDS_DATAPLANE=0`` opts out)."""
    return _shm_module is not None and \
        os.environ.get("REDS_DATAPLANE", "1") != "0"


def content_key(array: np.ndarray) -> str:
    """SHA-256 content address of an array (dtype, shape and bytes).

    Identical content gives identical keys across processes and runs,
    mirroring the task-key scheme of the experiment store.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Parent publishes seed their own entries, workers fill theirs on first
#: resolve, so every process maps each segment at most once.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach_segment(name: str, shape: tuple, dtype: str) -> np.ndarray:
    """Map a named segment read-only, caching the handle for this process."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    if _shm_module is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("shared memory is unavailable on this platform")
    segment = _shm_module.SharedMemory(name=name)
    try:
        # Attaching registers the segment with the resource tracker a
        # second time (bpo-38119); without this unregister the tracker
        # would unlink the parent's segment when this worker exits.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    view.setflags(write=False)
    _ATTACHED[name] = (segment, view)
    return view


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one published array.

    ``segment`` names the shared-memory block holding the data; when it
    is ``None`` the ref is an inline fallback and ``data`` carries the
    array itself (so refs always resolve, with or without a plane).
    """

    key: str
    shape: tuple
    dtype: str
    segment: str | None = None
    data: np.ndarray | None = field(default=None, compare=False, repr=False)

    def resolve(self) -> np.ndarray:
        """The referenced array, read-only; zero-copy when shm-backed."""
        if self.segment is None:
            if self.data is None:
                raise ValueError(f"ref {self.key[:12]} has neither a "
                                 f"segment nor inline data")
            return self.data
        return _attach_segment(self.segment, self.shape, self.dtype)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)
                   * np.dtype(self.dtype).itemsize)


#: Live planes, swept by the atexit hook so interpreter shutdown unlinks
#: whatever an aborted caller did not.
_PLANES: "weakref.WeakSet[DataPlane]" = weakref.WeakSet()


class DataPlane:
    """Parent-side broker of shared-memory segments for one plan.

    Publish arrays before dispatching work, pass the returned refs
    (inside task kwargs or the plan context) to workers, and call
    :meth:`unlink` when the plan finishes — the executors do this in
    ``finally`` blocks so segments never outlive their plan, poisoned
    tasks included.
    """

    def __init__(self) -> None:
        self._segments: dict[str, ArrayRef] = {}
        self._handles: dict[str, object] = {}
        self._unlinked = False
        _PLANES.add(self)
        global _SWEPT
        if not _SWEPT and os.environ.get("REDS_DATAPLANE_SWEEP", "") == "1":
            _SWEPT = True
            sweep_orphan_segments(force=True)

    # ------------------------------------------------------------------
    def _inline_ref(self, array: np.ndarray, key: str) -> ArrayRef:
        data = array.copy()
        data.setflags(write=False)
        ref = ArrayRef(key=key, shape=array.shape,
                       dtype=array.dtype.str, data=data)
        self._segments[key] = ref
        return ref

    def publish(self, array: np.ndarray, key: str | None = None) -> ArrayRef:
        """Place ``array`` in shared memory and return its ref.

        ``key`` defaults to :func:`content_key`; publishing a key this
        plane already holds returns the existing ref without touching
        the data (content addressing makes that safe).  With shared
        memory disabled — or when allocating the segment fails — the
        ref carries a read-only copy inline: publishing degrades, it
        never raises for lack of shared memory.
        """
        if self._unlinked:
            raise RuntimeError("this data plane has been unlinked")
        array = np.ascontiguousarray(array)
        if key is None:
            key = content_key(array)
        existing = self._segments.get(key)
        if existing is not None:
            return existing
        if not dataplane_enabled():
            return self._inline_ref(array, key)
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
        try:
            faults.maybe_inject("shm_publish_fail", key)
            segment = _shm_module.SharedMemory(
                create=True, size=max(array.nbytes, 1), name=name)
        except (faults.InjectedFault, OSError) as exc:
            logger.warning(
                "shared-memory publish failed for %s (%s); degrading to an "
                "inline ref", key[:12], exc)
            return self._inline_ref(array, key)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        view.setflags(write=False)
        ref = ArrayRef(key=key, shape=array.shape,
                       dtype=array.dtype.str, segment=name)
        self._segments[key] = ref
        self._handles[name] = segment
        # Seat the parent's attach cache so in-process resolves (serial
        # executors, chunked fallbacks) reuse this mapping for free.
        _ATTACHED[name] = (segment, view)
        return ref

    def refs(self) -> dict[str, ArrayRef]:
        """All published refs, by content key."""
        return dict(self._segments)

    def segment_names(self) -> list[str]:
        """Names of the live segments this plane owns."""
        return [] if self._unlinked else list(self._handles)

    # ------------------------------------------------------------------
    def unlink(self) -> None:
        """Remove every segment name; idempotent, safe mid-failure.

        Unlinking removes the name immediately (no new process can
        attach) while existing mappings stay valid until each process
        drops them, so in-flight readers are never invalidated.  The
        parent's own mappings are closed here too unless a resolved view
        is still referenced, in which case the OS reclaims them at
        process exit.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for name, segment in self._handles.items():
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            entry = _ATTACHED.pop(name, None)
            del entry
            try:
                segment.close()
            except BufferError:
                # A caller still holds a resolved view; leave the
                # mapping open (it stays valid) and let process exit
                # reclaim it.
                pass
            except OSError:  # pragma: no cover - platform specific
                pass
        self._handles.clear()
        self._segments.clear()

    def __enter__(self) -> "DataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
        except Exception:
            pass


#: Where POSIX shared memory shows up as files (Linux); the orphan sweep
#: is a no-op on platforms without it.
_SHM_ROOT = Path("/dev/shm")

#: One sweep per process is enough; reset by tests.
_SWEPT = False


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # Pid exists but we may not signal it (or the probe failed):
        # err on the side of "alive" — never sweep a live run's data.
        return True
    return True


def sweep_orphan_segments(*, force: bool = False) -> list[str]:
    """Unlink data-plane segments whose creating process is dead.

    Segment names embed the creator's pid
    (``reds-dp-<pid>-<token>``); any segment under ``/dev/shm`` whose
    pid no longer maps to a live process was leaked by a crashed or
    SIGKILLed run — ``atexit`` never fired there — and is removed.
    Segments of live processes (including this one) are never touched.

    Gated by ``REDS_DATAPLANE_SWEEP=1`` unless ``force`` is given,
    because pid liveness is a heuristic: a recycled pid makes a true
    orphan look alive (it is then swept by a later run instead).

    Returns
    -------
    list of str
        The names of the segments that were removed.
    """
    if not force and os.environ.get("REDS_DATAPLANE_SWEEP", "") != "1":
        return []
    if not _SHM_ROOT.is_dir():  # pragma: no cover - non-Linux
        return []
    removed: list[str] = []
    try:
        entries = list(_SHM_ROOT.iterdir())
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return []
    for entry in entries:
        name = entry.name
        if not name.startswith(SEGMENT_PREFIX):
            continue
        pid_text = name[len(SEGMENT_PREFIX):].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        pid = int(pid_text)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        removed.append(name)
    if removed:
        logger.warning("swept %d orphan shared-memory segment(s) left by "
                       "dead processes: %s", len(removed),
                       ", ".join(sorted(removed)))
    return removed


def active_segments() -> list[str]:
    """Segment names of every live (not yet unlinked) plane in this
    process — empty after clean teardown; tests assert on this."""
    names: list[str] = []
    for plane in list(_PLANES):
        names.extend(plane.segment_names())
    return names


@atexit.register
def _sweep_planes() -> None:  # pragma: no cover - interpreter shutdown
    for plane in list(_PLANES):
        try:
            plane.unlink()
        except Exception:
            pass


def resolve_refs(obj):
    """Replace every :class:`ArrayRef` in a nested structure by its array.

    Dicts, lists and tuples are traversed (rebuilt only when something
    inside actually changed); everything else passes through untouched.
    Used on plan contexts at worker bootstrap and by the serial executor.
    """
    if isinstance(obj, ArrayRef):
        return obj.resolve()
    if isinstance(obj, dict):
        return {k: resolve_refs(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(resolve_refs(v) for v in obj)
    return obj
