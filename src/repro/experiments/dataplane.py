"""Shared-memory data plane: publish arrays once, map them zero-copy.

The execution plans of :mod:`repro.experiments.parallel` ship large
read-only arrays (test samples, query matrices, CV datasets) to worker
processes.  Before this module existed every worker either regenerated
the arrays from scratch (the ``get_test_data`` warmup) or received a
pickled copy inside each task's kwargs — both scale with the worker
count, not with the data.  The data plane materializes each array
**once** in the parent, places it in a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`), and hands workers a tiny
picklable :class:`ArrayRef` that maps the segment read-only into their
address space without copying a byte.

Design:

* **Content-addressed refs.**  Every published array is identified by a
  key — by default the SHA-256 of its dtype, shape and bytes
  (:func:`content_key`) — so publishing the same content twice through
  one :class:`DataPlane` reuses the existing segment, and the addressing
  scheme composes with the content-addressed experiment store of
  :mod:`repro.experiments.store` (both layers name immutable values by
  their content, never by their position in a run).
* **Inline fallback, also on failure.**  When shared memory is
  unavailable (exotic platforms, ``REDS_DATAPLANE=0``, or a segment
  allocation failing at runtime — ``/dev/shm`` full, permissions, an
  injected ``shm_publish_fail`` fault) refs simply carry the array
  inline; everything still works, workers just pay the pickling cost
  the plane exists to avoid.  Publishing degrades with a logged
  warning, it never crashes a run.
* **Deterministic teardown.**  :meth:`DataPlane.unlink` removes every
  segment name on both clean and exceptional exits (the executors call
  it from ``finally`` blocks) and an ``atexit`` hook sweeps anything a
  crashed caller left behind, so no run leaks ``/dev/shm`` entries.
  Segments leaked by a *SIGKILLed* prior run (no atexit ran) can be
  collected at startup by :func:`sweep_orphan_segments`: segment names
  embed the creating pid, so anything whose creator is no longer alive
  is an orphan.  The sweep is opt-in via ``REDS_DATAPLANE_SWEEP=1``
  because pid liveness is a heuristic (pids recycle).
* **Resident segments under a warm session.**  With ``REDS_SESSION``
  set (:func:`session_active`, see
  :mod:`repro.experiments.session`) planes publish through a
  process-wide **segment registry** instead of owning segments
  privately: the first publish of a content key creates the segment,
  every later publish — from any plane, any plan — reuses it, and
  :meth:`DataPlane.unlink` merely drops a refcount.  Segments persist
  across plans (that is the point: the same test sample or query
  matrix is published once per *session*, not once per call, which
  also keeps pool-context signatures stable for the warm pool cache of
  :mod:`repro.experiments.parallel`) until :func:`shutdown_resident`
  — called by session teardown and ``atexit`` — unlinks them all, so
  a closed session still leaves zero ``/dev/shm`` entries behind.

Worker-side attaches are cached per process and unregistered from the
``multiprocessing`` resource tracker: on Python < 3.13 an attaching
process registers the segment a second time, and the tracker would
otherwise unlink it prematurely (and warn) when that worker exits while
the parent still owns the segment.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import os
import secrets
import threading
import weakref
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments import faults

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None

__all__ = [
    "ArrayRef",
    "DataPlane",
    "content_key",
    "dataplane_enabled",
    "session_active",
    "resolve_refs",
    "active_segments",
    "resident_stats",
    "reset_resident_stats",
    "resident_segment_names",
    "shutdown_resident",
    "sweep_orphan_segments",
]

logger = logging.getLogger(__name__)

#: Prefix of every segment name this module creates; tests (and humans
#: inspecting /dev/shm) can recognise data-plane segments by it.
SEGMENT_PREFIX = "reds-dp-"


def dataplane_enabled() -> bool:
    """Whether refs may use shared memory (``REDS_DATAPLANE=0`` opts out)."""
    return _shm_module is not None and \
        os.environ.get("REDS_DATAPLANE", "1") != "0"


def session_active() -> bool:
    """Whether a warm execution session is active in this process tree.

    Read from the ``REDS_SESSION`` environment variable (set by
    :class:`repro.experiments.session.Session`, inherited by pool
    workers) so every layer — pool cache, resident segment registry,
    metamodel memo — flips to warm behaviour together, in the parent
    and in nested fan-outs alike.  Unset, empty or ``"0"`` means off:
    the one-shot semantics every pre-session test pins.
    """
    return os.environ.get("REDS_SESSION", "") not in ("", "0")


def content_key(array: np.ndarray) -> str:
    """SHA-256 content address of an array (dtype, shape and bytes).

    Identical content gives identical keys across processes and runs,
    mirroring the task-key scheme of the experiment store.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Parent publishes seed their own entries, workers fill theirs on first
#: resolve, so every process maps each segment at most once.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach_segment(name: str, shape: tuple, dtype: str) -> np.ndarray:
    """Map a named segment read-only, caching the handle for this process."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    if _shm_module is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("shared memory is unavailable on this platform")
    segment = _shm_module.SharedMemory(name=name)
    try:
        # Attaching registers the segment with the resource tracker a
        # second time (bpo-38119); without this unregister the tracker
        # would unlink the parent's segment when this worker exits.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    view.setflags(write=False)
    _ATTACHED[name] = (segment, view)
    return view


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one published array.

    ``segment`` names the shared-memory block holding the data; when it
    is ``None`` the ref is an inline fallback and ``data`` carries the
    array itself (so refs always resolve, with or without a plane).
    """

    key: str
    shape: tuple
    dtype: str
    segment: str | None = None
    data: np.ndarray | None = field(default=None, compare=False, repr=False)

    def resolve(self) -> np.ndarray:
        """The referenced array, read-only; zero-copy when shm-backed."""
        if self.segment is None:
            if self.data is None:
                raise ValueError(f"ref {self.key[:12]} has neither a "
                                 f"segment nor inline data")
            return self.data
        return _attach_segment(self.segment, self.shape, self.dtype)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)
                   * np.dtype(self.dtype).itemsize)


#: Live planes, swept by the atexit hook so interpreter shutdown unlinks
#: whatever an aborted caller did not.
_PLANES: "weakref.WeakSet[DataPlane]" = weakref.WeakSet()


# ----------------------------------------------------------------------
# Resident segment registry (warm sessions)
# ----------------------------------------------------------------------

@dataclass
class _ResidentEntry:
    """One registry slot: the shared ref, its handle, and who uses it.

    ``handle`` is the owning ``SharedMemory`` object (``None`` for an
    inline-fallback ref, which has no segment to unlink).  ``refcount``
    counts the planes currently holding the ref; it may drop to zero —
    the segment *stays resident* then, that is the warm-session point —
    and only :func:`shutdown_resident` actually unlinks anything.
    """

    ref: ArrayRef
    handle: object | None
    refcount: int


_RESIDENT_LOCK = threading.Lock()
_RESIDENT: dict[str, _ResidentEntry] = {}
_RESIDENT_STATS = {"published": 0, "reused": 0}
_CHILD_FINALIZER = False


def _reset_resident_after_fork() -> None:
    # A forked worker inherits the registry by copy, but those segments
    # belong to the parent: unlinking them at worker exit would pull
    # live data out from under every sibling.  The child abandons the
    # inherited entries (the attach cache keeps working — resolves are
    # per-name, not per-registry) and registers only what it publishes
    # itself.  Fresh lock in case the inherited one was held mid-fork.
    # The finalizer flag must also reset: the parent may have set it
    # (to a no-op) before forking, and an inherited True would stop the
    # child from ever registering its own exit hook — leaking every
    # segment the child publishes.
    global _RESIDENT_LOCK, _CHILD_FINALIZER
    _RESIDENT_LOCK = threading.Lock()
    _CHILD_FINALIZER = False
    _RESIDENT.clear()
    _RESIDENT_STATS["published"] = 0
    _RESIDENT_STATS["reused"] = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_resident_after_fork)


def _ensure_child_finalizer() -> None:
    """In a pool worker, arrange unlinking of *its own* resident segments.

    ``atexit`` hooks never run in multiprocessing children, but
    ``multiprocessing.util.Finalize`` hooks do — a worker whose nested
    plans publish resident segments registers one so a clean worker
    shutdown leaves nothing in ``/dev/shm`` (a SIGKILLed worker cannot
    run any hook; ``sweep_orphan_segments`` covers that case).
    """
    global _CHILD_FINALIZER
    if _CHILD_FINALIZER:
        return
    _CHILD_FINALIZER = True
    import multiprocessing
    from multiprocessing import util as mp_util

    if multiprocessing.parent_process() is not None:
        mp_util.Finalize(None, shutdown_resident, exitpriority=10)


def resident_stats() -> dict[str, int]:
    """Registry counters: segments ``published`` (created), publishes
    served from residency (``reused``), and currently ``resident``."""
    with _RESIDENT_LOCK:
        return {**_RESIDENT_STATS, "resident": len(_RESIDENT)}


def reset_resident_stats() -> None:
    """Zero the published/reused counters (tests and benchmarks)."""
    with _RESIDENT_LOCK:
        _RESIDENT_STATS["published"] = 0
        _RESIDENT_STATS["reused"] = 0


def resident_segment_names() -> list[str]:
    """Names of the live resident segments (empty after
    :func:`shutdown_resident`; the zero-leak assertions read this)."""
    with _RESIDENT_LOCK:
        return [entry.ref.segment for entry in _RESIDENT.values()
                if entry.ref.segment is not None]


@atexit.register
def shutdown_resident() -> list[str]:
    """Unlink every resident segment and empty the registry.

    Called by session teardown
    (:meth:`repro.experiments.session.Session.close`) and as an
    ``atexit`` hook, so a warm session — however it ends — leaves zero
    ``/dev/shm`` entries behind.  Idempotent; returns the names of the
    segments that were removed.  Publishes after a shutdown simply
    repopulate the registry (a new session starts cold).
    """
    with _RESIDENT_LOCK:
        entries = list(_RESIDENT.values())
        _RESIDENT.clear()
    removed: list[str] = []
    for entry in entries:
        if entry.handle is None:
            continue
        name = entry.ref.segment
        _ATTACHED.pop(name, None)
        try:
            entry.handle.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            entry.handle.close()
        except BufferError:
            # A resolved view is still referenced somewhere; the name is
            # gone already, the mapping dies with the process.
            pass
        except OSError:  # pragma: no cover - platform specific
            pass
        removed.append(name)
    return removed


class DataPlane:
    """Parent-side broker of shared-memory segments for one plan.

    Publish arrays before dispatching work, pass the returned refs
    (inside task kwargs or the plan context) to workers, and call
    :meth:`unlink` when the plan finishes — the executors do this in
    ``finally`` blocks so segments never outlive their plan, poisoned
    tasks included.

    ``resident`` routes publishes through the process-wide segment
    registry: arrays already resident are reused (same segment name,
    hence byte-identical refs across plans), new ones are created in
    the registry, and :meth:`unlink` drops refcounts instead of
    unlinking — segments then live until :func:`shutdown_resident`.
    The default (``None``) follows :func:`session_active` at
    construction time, so warm sessions get residency everywhere
    without threading a flag through every ``execute()`` call.
    """

    def __init__(self, resident: bool | None = None) -> None:
        self._segments: dict[str, ArrayRef] = {}
        self._handles: dict[str, object] = {}
        self._resident = session_active() if resident is None \
            else bool(resident)
        self._resident_keys: list[str] = []
        self._unlinked = False
        _PLANES.add(self)
        global _SWEPT
        if not _SWEPT and os.environ.get("REDS_DATAPLANE_SWEEP", "") == "1":
            _SWEPT = True
            sweep_orphan_segments(force=True)

    # ------------------------------------------------------------------
    def _inline_ref(self, array: np.ndarray, key: str) -> ArrayRef:
        data = array.copy()
        data.setflags(write=False)
        ref = ArrayRef(key=key, shape=array.shape,
                       dtype=array.dtype.str, data=data)
        self._segments[key] = ref
        return ref

    def _allocate(self, array: np.ndarray,
                  key: str) -> tuple[ArrayRef, object] | None:
        """Create one shm segment for ``array``: ``(ref, handle)``.

        Returns ``None`` when allocation fails (``/dev/shm`` full,
        permissions, an injected ``shm_publish_fail``) — the caller
        degrades to an inline ref.  The parent's attach cache is seated
        so in-process resolves reuse this mapping for free.
        """
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
        try:
            faults.maybe_inject("shm_publish_fail", key)
            segment = _shm_module.SharedMemory(
                create=True, size=max(array.nbytes, 1), name=name)
        except (faults.InjectedFault, OSError) as exc:
            logger.warning(
                "shared-memory publish failed for %s (%s); degrading to an "
                "inline ref", key[:12], exc)
            return None
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        view.setflags(write=False)
        ref = ArrayRef(key=key, shape=array.shape,
                       dtype=array.dtype.str, segment=name)
        _ATTACHED[name] = (segment, view)
        return ref, segment

    def _publish_resident(self, array: np.ndarray, key: str) -> ArrayRef:
        """Publish through the process-wide registry (warm sessions).

        A key already resident is reused — same segment, same ref bytes
        across plans — with its refcount bumped; a new key allocates a
        segment owned by the *registry* (not this plane), so it outlives
        the plan and every later publish of the same content is free.
        Allocation failure degrades to a plane-local inline ref exactly
        like the one-shot path (degraded publishes are not cached: a
        transient failure should not pin an inline copy for the whole
        session).
        """
        with _RESIDENT_LOCK:
            entry = _RESIDENT.get(key)
            if entry is not None:
                entry.refcount += 1
                _RESIDENT_STATS["reused"] += 1
                self._segments[key] = entry.ref
                self._resident_keys.append(key)
                return entry.ref
        allocated = self._allocate(array, key)
        if allocated is None:
            return self._inline_ref(array, key)
        ref, segment = allocated
        _ensure_child_finalizer()
        with _RESIDENT_LOCK:
            racing = _RESIDENT.get(key)
            if racing is None:
                _RESIDENT[key] = _ResidentEntry(ref, segment, 1)
                _RESIDENT_STATS["published"] += 1
            else:
                racing.refcount += 1
                _RESIDENT_STATS["reused"] += 1
        if racing is not None:
            # A concurrent publisher won the key; drop our duplicate
            # segment and share theirs.
            _ATTACHED.pop(ref.segment, None)
            try:
                segment.unlink()
                segment.close()
            except OSError:  # pragma: no cover - platform specific
                pass
            ref = racing.ref
        self._segments[key] = ref
        self._resident_keys.append(key)
        return ref

    def publish(self, array: np.ndarray, key: str | None = None) -> ArrayRef:
        """Place ``array`` in shared memory and return its ref.

        ``key`` defaults to :func:`content_key`; publishing a key this
        plane already holds returns the existing ref without touching
        the data (content addressing makes that safe).  With shared
        memory disabled — or when allocating the segment fails — the
        ref carries a read-only copy inline: publishing degrades, it
        never raises for lack of shared memory.  A resident plane
        consults the process-wide registry first (see
        :meth:`_publish_resident`).
        """
        if self._unlinked:
            raise RuntimeError("this data plane has been unlinked")
        array = np.ascontiguousarray(array)
        if key is None:
            key = content_key(array)
        existing = self._segments.get(key)
        if existing is not None:
            return existing
        if not dataplane_enabled():
            return self._inline_ref(array, key)
        if self._resident:
            return self._publish_resident(array, key)
        allocated = self._allocate(array, key)
        if allocated is None:
            return self._inline_ref(array, key)
        ref, segment = allocated
        self._segments[key] = ref
        self._handles[ref.segment] = segment
        return ref

    def refs(self) -> dict[str, ArrayRef]:
        """All published refs, by content key."""
        return dict(self._segments)

    def segment_names(self) -> list[str]:
        """Names of the live segments this plane owns."""
        return [] if self._unlinked else list(self._handles)

    # ------------------------------------------------------------------
    def unlink(self) -> None:
        """Remove every segment name; idempotent, safe mid-failure.

        Unlinking removes the name immediately (no new process can
        attach) while existing mappings stay valid until each process
        drops them, so in-flight readers are never invalidated.  The
        parent's own mappings are closed here too unless a resolved view
        is still referenced, in which case the OS reclaims them at
        process exit.
        """
        if self._unlinked:
            return
        self._unlinked = True
        if self._resident_keys:
            with _RESIDENT_LOCK:
                for key in self._resident_keys:
                    entry = _RESIDENT.get(key)
                    if entry is not None:
                        entry.refcount -= 1
            # Entries stay registered at refcount 0: the whole point of
            # residency is that the next plan's publish is free.  Actual
            # unlinking happens in shutdown_resident() at session close.
            self._resident_keys.clear()
        for name, segment in self._handles.items():
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            entry = _ATTACHED.pop(name, None)
            del entry
            try:
                segment.close()
            except BufferError:
                # A caller still holds a resolved view; leave the
                # mapping open (it stays valid) and let process exit
                # reclaim it.
                pass
            except OSError:  # pragma: no cover - platform specific
                pass
        self._handles.clear()
        self._segments.clear()

    def __enter__(self) -> "DataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
        except Exception:
            pass


#: Where POSIX shared memory shows up as files (Linux); the orphan sweep
#: is a no-op on platforms without it.
_SHM_ROOT = Path("/dev/shm")

#: One sweep per process is enough; reset by tests.
_SWEPT = False


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # Pid exists but we may not signal it (or the probe failed):
        # err on the side of "alive" — never sweep a live run's data.
        return True
    return True


def sweep_orphan_segments(*, force: bool = False) -> list[str]:
    """Unlink data-plane segments whose creating process is dead.

    Segment names embed the creator's pid
    (``reds-dp-<pid>-<token>``); any segment under ``/dev/shm`` whose
    pid no longer maps to a live process was leaked by a crashed or
    SIGKILLed run — ``atexit`` never fired there — and is removed.
    Segments of live processes (including this one) are never touched.

    Gated by ``REDS_DATAPLANE_SWEEP=1`` unless ``force`` is given,
    because pid liveness is a heuristic: a recycled pid makes a true
    orphan look alive (it is then swept by a later run instead).

    Returns
    -------
    list of str
        The names of the segments that were removed.
    """
    if not force and os.environ.get("REDS_DATAPLANE_SWEEP", "") != "1":
        return []
    if not _SHM_ROOT.is_dir():  # pragma: no cover - non-Linux
        return []
    removed: list[str] = []
    try:
        entries = list(_SHM_ROOT.iterdir())
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return []
    for entry in entries:
        name = entry.name
        if not name.startswith(SEGMENT_PREFIX):
            continue
        pid_text = name[len(SEGMENT_PREFIX):].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        pid = int(pid_text)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        removed.append(name)
    if removed:
        logger.warning("swept %d orphan shared-memory segment(s) left by "
                       "dead processes: %s", len(removed),
                       ", ".join(sorted(removed)))
    return removed


def active_segments() -> list[str]:
    """Segment names of every live (not yet unlinked) plane in this
    process — empty after clean teardown; tests assert on this."""
    names: list[str] = []
    for plane in list(_PLANES):
        names.extend(plane.segment_names())
    return names


@atexit.register
def _sweep_planes() -> None:  # pragma: no cover - interpreter shutdown
    for plane in list(_PLANES):
        try:
            plane.unlink()
        except Exception:
            pass


def resolve_refs(obj):
    """Replace every :class:`ArrayRef` in a nested structure by its array.

    Dicts, lists and tuples are traversed (rebuilt only when something
    inside actually changed); everything else passes through untouched.
    Used on plan contexts at worker bootstrap and by the serial executor.
    """
    if isinstance(obj, ArrayRef):
        return obj.resolve()
    if isinstance(obj, dict):
        return {k: resolve_refs(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(resolve_refs(v) for v in obj)
    return obj
