"""Shared-memory data plane: publish arrays once, map them zero-copy.

The execution plans of :mod:`repro.experiments.parallel` ship large
read-only arrays (test samples, query matrices, CV datasets) to worker
processes.  Before this module existed every worker either regenerated
the arrays from scratch (the ``get_test_data`` warmup) or received a
pickled copy inside each task's kwargs — both scale with the worker
count, not with the data.  The data plane materializes each array
**once** in the parent, places it in a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`), and hands workers a tiny
picklable :class:`ArrayRef` that maps the segment read-only into their
address space without copying a byte.

Design:

* **Content-addressed refs.**  Every published array is identified by a
  key — by default the SHA-256 of its dtype, shape and bytes
  (:func:`content_key`) — so publishing the same content twice through
  one :class:`DataPlane` reuses the existing segment, and the addressing
  scheme composes with the content-addressed experiment store of
  :mod:`repro.experiments.store` (both layers name immutable values by
  their content, never by their position in a run).
* **Inline fallback.**  When shared memory is unavailable (exotic
  platforms, or ``REDS_DATAPLANE=0``) refs simply carry the array
  inline; everything still works, workers just pay the pickling cost the
  plane exists to avoid.
* **Deterministic teardown.**  :meth:`DataPlane.unlink` removes every
  segment name on both clean and exceptional exits (the executors call
  it from ``finally`` blocks) and an ``atexit`` hook sweeps anything a
  crashed caller left behind, so no run leaks ``/dev/shm`` entries.

Worker-side attaches are cached per process and unregistered from the
``multiprocessing`` resource tracker: on Python < 3.13 an attaching
process registers the segment a second time, and the tracker would
otherwise unlink it prematurely (and warn) when that worker exits while
the parent still owns the segment.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import secrets
import weakref
from dataclasses import dataclass, field

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None

__all__ = [
    "ArrayRef",
    "DataPlane",
    "content_key",
    "dataplane_enabled",
    "resolve_refs",
    "active_segments",
]

#: Prefix of every segment name this module creates; tests (and humans
#: inspecting /dev/shm) can recognise data-plane segments by it.
SEGMENT_PREFIX = "reds-dp-"


def dataplane_enabled() -> bool:
    """Whether refs may use shared memory (``REDS_DATAPLANE=0`` opts out)."""
    return _shm_module is not None and \
        os.environ.get("REDS_DATAPLANE", "1") != "0"


def content_key(array: np.ndarray) -> str:
    """SHA-256 content address of an array (dtype, shape and bytes).

    Identical content gives identical keys across processes and runs,
    mirroring the task-key scheme of the experiment store.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Parent publishes seed their own entries, workers fill theirs on first
#: resolve, so every process maps each segment at most once.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach_segment(name: str, shape: tuple, dtype: str) -> np.ndarray:
    """Map a named segment read-only, caching the handle for this process."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    if _shm_module is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("shared memory is unavailable on this platform")
    segment = _shm_module.SharedMemory(name=name)
    try:
        # Attaching registers the segment with the resource tracker a
        # second time (bpo-38119); without this unregister the tracker
        # would unlink the parent's segment when this worker exits.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    view.setflags(write=False)
    _ATTACHED[name] = (segment, view)
    return view


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one published array.

    ``segment`` names the shared-memory block holding the data; when it
    is ``None`` the ref is an inline fallback and ``data`` carries the
    array itself (so refs always resolve, with or without a plane).
    """

    key: str
    shape: tuple
    dtype: str
    segment: str | None = None
    data: np.ndarray | None = field(default=None, compare=False, repr=False)

    def resolve(self) -> np.ndarray:
        """The referenced array, read-only; zero-copy when shm-backed."""
        if self.segment is None:
            if self.data is None:
                raise ValueError(f"ref {self.key[:12]} has neither a "
                                 f"segment nor inline data")
            return self.data
        return _attach_segment(self.segment, self.shape, self.dtype)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)
                   * np.dtype(self.dtype).itemsize)


#: Live planes, swept by the atexit hook so interpreter shutdown unlinks
#: whatever an aborted caller did not.
_PLANES: "weakref.WeakSet[DataPlane]" = weakref.WeakSet()


class DataPlane:
    """Parent-side broker of shared-memory segments for one plan.

    Publish arrays before dispatching work, pass the returned refs
    (inside task kwargs or the plan context) to workers, and call
    :meth:`unlink` when the plan finishes — the executors do this in
    ``finally`` blocks so segments never outlive their plan, poisoned
    tasks included.
    """

    def __init__(self) -> None:
        self._segments: dict[str, ArrayRef] = {}
        self._handles: dict[str, object] = {}
        self._unlinked = False
        _PLANES.add(self)

    # ------------------------------------------------------------------
    def publish(self, array: np.ndarray, key: str | None = None) -> ArrayRef:
        """Place ``array`` in shared memory and return its ref.

        ``key`` defaults to :func:`content_key`; publishing a key this
        plane already holds returns the existing ref without touching
        the data (content addressing makes that safe).  With shared
        memory disabled the ref carries a read-only copy inline.
        """
        if self._unlinked:
            raise RuntimeError("this data plane has been unlinked")
        array = np.ascontiguousarray(array)
        if key is None:
            key = content_key(array)
        existing = self._segments.get(key)
        if existing is not None:
            return existing
        if not dataplane_enabled():
            data = array.copy()
            data.setflags(write=False)
            ref = ArrayRef(key=key, shape=array.shape,
                           dtype=array.dtype.str, data=data)
            self._segments[key] = ref
            return ref
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
        segment = _shm_module.SharedMemory(
            create=True, size=max(array.nbytes, 1), name=name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        view.setflags(write=False)
        ref = ArrayRef(key=key, shape=array.shape,
                       dtype=array.dtype.str, segment=name)
        self._segments[key] = ref
        self._handles[name] = segment
        # Seat the parent's attach cache so in-process resolves (serial
        # executors, chunked fallbacks) reuse this mapping for free.
        _ATTACHED[name] = (segment, view)
        return ref

    def refs(self) -> dict[str, ArrayRef]:
        """All published refs, by content key."""
        return dict(self._segments)

    def segment_names(self) -> list[str]:
        """Names of the live segments this plane owns."""
        return [] if self._unlinked else list(self._handles)

    # ------------------------------------------------------------------
    def unlink(self) -> None:
        """Remove every segment name; idempotent, safe mid-failure.

        Unlinking removes the name immediately (no new process can
        attach) while existing mappings stay valid until each process
        drops them, so in-flight readers are never invalidated.  The
        parent's own mappings are closed here too unless a resolved view
        is still referenced, in which case the OS reclaims them at
        process exit.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for name, segment in self._handles.items():
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            entry = _ATTACHED.pop(name, None)
            del entry
            try:
                segment.close()
            except BufferError:
                # A caller still holds a resolved view; leave the
                # mapping open (it stays valid) and let process exit
                # reclaim it.
                pass
            except OSError:  # pragma: no cover - platform specific
                pass
        self._handles.clear()
        self._segments.clear()

    def __enter__(self) -> "DataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
        except Exception:
            pass


def active_segments() -> list[str]:
    """Segment names of every live (not yet unlinked) plane in this
    process — empty after clean teardown; tests assert on this."""
    names: list[str] = []
    for plane in list(_PLANES):
        names.extend(plane.segment_names())
    return names


@atexit.register
def _sweep_planes() -> None:  # pragma: no cover - interpreter shutdown
    for plane in list(_PLANES):
        try:
            plane.unlink()
        except Exception:
            pass


def resolve_refs(obj):
    """Replace every :class:`ArrayRef` in a nested structure by its array.

    Dicts, lists and tuples are traversed (rebuilt only when something
    inside actually changed); everything else passes through untouched.
    Used on plan contexts at worker bootstrap and by the serial executor.
    """
    if isinstance(obj, ArrayRef):
        return obj.resolve()
    if isinstance(obj, dict):
        return {k: resolve_refs(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(resolve_refs(v) for v in obj)
    return obj
