"""Statistical tests used in the paper's evaluation.

Section 9 ranks methods with pairwise post-hoc Friedman tests across
functions and with the Wilcoxon-Mann-Whitney test for per-function
comparisons (Figure 11).  This module implements the Friedman omnibus
test, the Conover post-hoc pairwise procedure, and thin wrappers around
the rank-sum test, so benchmarks can report the same significance
statements as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = [
    "friedman_test",
    "posthoc_friedman_conover",
    "rank_methods",
    "wilcoxon_mann_whitney",
    "FriedmanResult",
]


@dataclass(frozen=True)
class FriedmanResult:
    """Omnibus Friedman test over a (datasets x methods) score matrix."""

    statistic: float
    p_value: float
    mean_ranks: np.ndarray  # average rank per method (1 = best)


def _validate_scores(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ValueError(f"scores must be (datasets, methods), got {scores.shape}")
    n, k = scores.shape
    if n < 2 or k < 2:
        raise ValueError(f"need >= 2 datasets and >= 2 methods, got {scores.shape}")
    if not np.isfinite(scores).all():
        raise ValueError("scores contain non-finite values")
    return scores


def rank_methods(scores: np.ndarray, higher_is_better: bool = True) -> np.ndarray:
    """Per-dataset ranks (1 = best), ties get average ranks."""
    scores = _validate_scores(scores)
    signed = -scores if higher_is_better else scores
    return np.vstack([sps.rankdata(row) for row in signed])


def friedman_test(scores: np.ndarray, higher_is_better: bool = True) -> FriedmanResult:
    """Friedman's chi-squared test: do the methods differ at all?

    The omnibus test the paper's Section 9 ranking statements rest on.

    Parameters
    ----------
    scores:
        ``scores[i, j]`` is the quality of method ``j`` on dataset
        ``i`` — the layout of the paper's per-function averages.
    higher_is_better:
        Rank direction (False for e.g. runtime or #restricted).

    Returns
    -------
    FriedmanResult
        Test statistic, p-value, and mean rank per method (1 = best).
    """
    scores = _validate_scores(scores)
    ranks = rank_methods(scores, higher_is_better)
    n, k = ranks.shape
    mean_ranks = ranks.mean(axis=0)

    # Friedman statistic with tie correction via scipy for robustness.
    statistic, p_value = sps.friedmanchisquare(*[scores[:, j] for j in range(k)])
    return FriedmanResult(float(statistic), float(p_value), mean_ranks)


def posthoc_friedman_conover(
    scores: np.ndarray,
    higher_is_better: bool = True,
) -> np.ndarray:
    """Pairwise post-hoc p-values after a Friedman test (Conover 1999).

    The statistic compares rank sums with a t-distribution whose
    variance estimate removes the omnibus chi-squared effect, the
    standard "post-hoc Friedman" procedure the paper references.

    Parameters
    ----------
    scores:
        ``(datasets, methods)`` quality matrix as in
        :func:`friedman_test`.
    higher_is_better:
        Rank direction.

    Returns
    -------
    numpy.ndarray
        Symmetric ``(k, k)`` matrix of p-values; the diagonal is 1.
    """
    scores = _validate_scores(scores)
    ranks = rank_methods(scores, higher_is_better)
    n, k = ranks.shape
    rank_sums = ranks.sum(axis=0)

    a = float((ranks**2).sum())
    b = float((rank_sums**2).sum()) / n
    chi2_denominator = a - n * k * (k + 1) ** 2 / 4.0
    if chi2_denominator <= 0:  # all methods tied everywhere
        return np.ones((k, k))
    chi2 = (k - 1) * (b - n * k * (k + 1) ** 2 / 4.0) / chi2_denominator

    df = (n - 1) * (k - 1)
    variance = 2.0 * n * (a - b) / df
    if variance <= 0:
        # Perfectly consistent rankings: any rank-sum difference is
        # maximally significant, equal sums are not.
        p_values = np.where(
            np.abs(rank_sums[:, None] - rank_sums[None, :]) > 0, 0.0, 1.0)
        np.fill_diagonal(p_values, 1.0)
        return p_values

    diff = np.abs(rank_sums[:, None] - rank_sums[None, :])
    t_stats = diff / np.sqrt(variance)
    p_values = 2.0 * sps.t.sf(t_stats, df)
    np.fill_diagonal(p_values, 1.0)
    return np.clip(p_values, 0.0, 1.0)


def wilcoxon_mann_whitney(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    alternative: str = "greater",
) -> float:
    """Rank-sum test p-value, as used for the Figure 11 comparison."""
    sample_a = np.asarray(sample_a, dtype=float)
    sample_b = np.asarray(sample_b, dtype=float)
    if len(sample_a) == 0 or len(sample_b) == 0:
        raise ValueError("both samples must be non-empty")
    return float(sps.mannwhitneyu(sample_a, sample_b,
                                  alternative=alternative).pvalue)
