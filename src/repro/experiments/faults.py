"""Deterministic fault injection for the execution substrate.

This module is the chaos-engineering counterpart of the engine-equivalence
discipline: instead of trusting that the retry/watchdog/degradation machinery
in :mod:`repro.experiments.parallel` works, tests *inject* worker crashes,
task hangs, torn store writes and shared-memory failures — reproducibly —
and assert that grid results stay bit-identical to a fault-free run.

Fault decisions are a pure function of ``(seed, point, token)``: the first
eight bytes of ``sha256(f"{seed}:{point}:{token}")`` interpreted as a uniform
draw in ``[0, 1)`` are compared against the configured rate for the point.
Scheduling order, process identity and wall-clock time never enter the
decision, so the same fault plan replays the same faults on every run.

Injection points
----------------
``worker_crash``
    The worker executing a task dies abruptly (``os._exit`` in a pool
    worker, an :class:`InjectedFault` raised in-process) before any of the
    task's work runs.
``task_hang``
    The task sleeps ``hang_s`` seconds before running normally.  Paired
    with ``task_timeout`` this exercises the watchdog kill/respawn path.
``store_write_torn``
    A store record write persists a truncated payload (still atomically
    renamed into place), simulating a SIGKILL mid-write surviving a crash
    of the atomic-rename discipline.  Only a *resumed* run observes it.
``shm_publish_fail``
    Publishing an array to the shared-memory data plane fails; the plane
    degrades to an inline (pickled) reference.
``pool_spawn_fail``
    Spawning a worker pool fails in the dispatching process (as if the
    OS refused the fork); execution degrades to the serial loop.  The
    token is the pool's ``w<workers>-l<lease>`` shape, so the decision
    is identical for a cold spawn and a warm-session respawn of the
    same pool signature.

Fault plans come from the ``REDS_FAULT_PLAN`` environment variable, a
comma-separated ``key=value`` spec::

    REDS_FAULT_PLAN="seed=42,worker_crash=0.2,task_hang=0.1,hang_s=0.2"

Tokens for grid tasks embed the attempt number (``<key>#a<attempt>``), so a
fault injected on attempt 0 is re-decided — independently — on attempt 1;
a point with rate < 1 therefore cannot wedge a retried task forever.

Nested fan-outs (e.g. chunked labeling inside a grid task) do **not**
inject ``worker_crash``/``task_hang``: only the outermost task scope is
fault-eligible, otherwise a nested chunk shared by every task would crash
deterministically on every attempt of every task.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "check",
    "clear_injection_log",
    "enabled",
    "injection_log",
    "maybe_inject",
    "parse_fault_plan",
    "task_scope",
]

#: Names of the supported injection points.
FAULT_POINTS = ("worker_crash", "task_hang", "store_write_torn",
                "shm_publish_fail", "pool_spawn_fail")

#: Exit status used when a pool worker is crashed by ``worker_crash``.
CRASH_EXIT_CODE = 73

_TLS = threading.local()

# Per-process record of fired injections, in decision order, for
# determinism tests: same REDS_FAULT_PLAN -> same log.
_LOG: list[tuple[str, str]] = []


class InjectedFault(RuntimeError):
    """Raised (or fatal-exited) when a configured fault point fires."""

    def __init__(self, point: str, token: str):
        self.point = point
        self.token = token
        super().__init__(f"injected fault {point!r} at {token!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded specification of fault rates per injection point.

    Examples
    --------
    >>> plan = parse_fault_plan("seed=7,worker_crash=1.0")
    >>> plan.should_inject("worker_crash", "k#a0")
    True
    >>> plan.should_inject("task_hang", "k#a0")
    False
    """

    seed: int = 0
    rates: dict[str, float] = field(default_factory=dict)
    hang_s: float = 0.2

    def should_inject(self, point: str, token: str) -> bool:
        """Deterministically decide whether ``point`` fires for ``token``."""
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(f"{self.seed}:{point}:{token}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        return draw < rate


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``REDS_FAULT_PLAN`` spec string into a :class:`FaultPlan`.

    >>> parse_fault_plan("seed=3,task_hang=0.5,hang_s=0.1").rates
    {'task_hang': 0.5}
    """
    seed = 0
    hang_s = 0.2
    rates: dict[str, float] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, value = chunk.partition("=")
        name = name.strip()
        value = value.strip()
        if name == "seed":
            seed = int(value)
        elif name == "hang_s":
            hang_s = float(value)
        elif name in FAULT_POINTS:
            rate = float(value)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {name!r} must be in [0, 1], got {rate}")
            rates[name] = rate
        else:
            raise ValueError(
                f"unknown fault-plan key {name!r}; expected seed, hang_s or one of {FAULT_POINTS}"
            )
    return FaultPlan(seed=seed, rates=rates, hang_s=hang_s)


@lru_cache(maxsize=8)
def _plan_for_spec(spec: str) -> FaultPlan:
    return parse_fault_plan(spec)


def active_plan() -> FaultPlan | None:
    """The plan configured via ``REDS_FAULT_PLAN``, or None when unset."""
    spec = os.environ.get("REDS_FAULT_PLAN", "").strip()
    if not spec:
        return None
    return _plan_for_spec(spec)


def enabled() -> bool:
    """True when a fault plan is active in this process."""
    return active_plan() is not None


def injection_log() -> tuple[tuple[str, str], ...]:
    """Faults fired in this process so far, as ``(point, token)`` pairs."""
    return tuple(_LOG)


def clear_injection_log() -> None:
    """Reset the per-process injection log (test isolation)."""
    _LOG.clear()


@contextmanager
def task_scope(token: str) -> Iterator[bool]:
    """Mark a dynamic extent as one fault-eligible task execution.

    Yields True only for the *outermost* scope on the current thread:
    nested fan-outs running inside a task share its fate instead of
    injecting their own crashes (which, being keyed on chunk indices
    shared by every task, would fire identically on every attempt).
    """
    depth = getattr(_TLS, "depth", 0)
    _TLS.depth = depth + 1
    try:
        yield depth == 0
    finally:
        _TLS.depth = depth


def check(point: str, token: str) -> bool:
    """Decide-and-log: True when ``point`` fires for ``token``.

    For callers that implement the fault themselves (e.g. the store's torn
    write); has no side effect beyond appending to the injection log.
    """
    plan = active_plan()
    if plan is None or not plan.should_inject(point, token):
        return False
    _LOG.append((point, token))
    return True


def maybe_inject(point: str, token: str) -> None:
    """Fire ``point`` for ``token`` if the active plan says so.

    ``worker_crash`` kills a pool worker with ``os._exit`` (the process
    genuinely dies — no cleanup, no exception crosses the pipe) and raises
    :class:`InjectedFault` when running in the dispatching process itself.
    ``task_hang`` sleeps ``hang_s`` and returns — a hang alone never
    changes results, only timing.  Other points raise
    :class:`InjectedFault` for the caller to handle.
    """
    if not check(point, token):
        return
    if point == "worker_crash":
        if multiprocessing.parent_process() is not None:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(point, token)
    if point == "task_hang":
        plan = active_plan()
        time.sleep(plan.hang_s if plan is not None else 0.0)
        return
    raise InjectedFault(point, token)
