"""Run and aggregate scenario-discovery experiments.

Mirrors the paper's protocol (Section 8.5): training sets of size N are
drawn with the model's design (LHS, or a Halton sequence for "dsgc"),
an independent 20000-point test set measures every quality metric, each
configuration is repeated with different seeds, and consistency is the
average pairwise ``Vo/Vu`` of the chosen boxes across repetitions.

Three input-distribution variants cover the paper's studies:

* ``"continuous"`` — the main experiments (Section 9.1.1);
* ``"mixed"`` — even-numbered inputs discretised to five levels
  (Section 9.1.2);
* ``"logitnormal"`` — the semi-supervised study's non-uniform
  ``p(x)`` (Section 9.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.methods import DiscoveryResult, discover, parse_method
from repro.core.reds import Sampler
from repro.data import SimulationModel, get_model
from repro.metrics import (
    pairwise_consistency,
    peeling_trajectory,
    pr_auc,
    precision_recall,
    n_irrelevant,
    wracc_score,
)
from repro.sampling import (
    MIXED_LEVELS,
    discretize_even_inputs,
    get_sampler,
    logit_normal,
)
from repro.subgroup.box import Hyperbox

__all__ = [
    "RunRecord",
    "evaluate_boxes",
    "run_single",
    "run_batch",
    "run_third_party",
    "aggregate",
    "aggregate_third_party",
    "average_over_functions",
    "make_train_data",
    "get_test_data",
    "register_test_data",
    "reds_sampler_for",
    "discrete_levels_for",
    "DEFAULT_THIRD_PARTY_ALPHA",
]

_TEST_SEED = 987_654
_TEST_SIZE = 20_000

#: Bound on the per-process test-data cache.  Each entry holds a
#: 20000-point sample (~2 MB at M = 10), grids visit functions
#: function-major, and data-plane workers resolve shared memory instead
#: of generating — so a handful of slots suffices and a worker that
#: sweeps many (function, variant, size) cells no longer accumulates
#: every test set it ever touched for the life of the process.
_TEST_CACHE_SIZE = 8

#: Section 9.3: alpha = 0.1 for "TGL" (following [58]), default otherwise.
DEFAULT_THIRD_PARTY_ALPHA = {"TGL": 0.1, "lake": 0.05}


@dataclass
class RunRecord:
    """Metrics of one (function, method, N, seed) run, all on test data."""

    function: str
    method: str
    n: int
    seed: int
    pr_auc: float
    precision: float
    recall: float
    wracc: float
    n_restricted: int
    n_irrelevant: int
    runtime: float
    chosen_box: Hyperbox
    trajectory: np.ndarray = field(repr=False, default=None)


# ----------------------------------------------------------------------
# Data generation
# ----------------------------------------------------------------------

def _variant_postprocess(x: np.ndarray, variant: str,
                         rng: np.random.Generator) -> np.ndarray:
    if variant == "mixed":
        return discretize_even_inputs(x, rng)
    return x


#: Warm-session cache of training datasets, keyed by the full
#: generation config.  Only consulted while ``REDS_SESSION`` is active
#: (see :mod:`repro.experiments.session`); cached arrays are marked
#: read-only so an accidental in-place mutation fails loudly instead of
#: corrupting every later request.
_TRAIN_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_TRAIN_CACHE_SIZE = 16


def make_train_data(
    model: SimulationModel,
    n: int,
    seed: int,
    variant: str = "continuous",
) -> tuple[np.ndarray, np.ndarray]:
    """Training dataset ``D`` for one repetition.

    For mixed-type models (``model.cat_cols`` non-empty) the design's
    categorical columns are quantized to integer codes before labeling,
    so ``D`` lives in the same space discovery and the test sample use.
    Generation is a pure function of the arguments, so a warm session
    memoizes the arrays instead of re-simulating per request.
    """
    from repro.experiments.dataplane import session_active

    key = None
    if session_active():
        key = (model.name, n, seed, variant)
        cached = _TRAIN_CACHE.get(key)
        if cached is not None:
            return cached
    rng = np.random.default_rng(seed)
    if variant == "logitnormal":
        x = logit_normal(n, model.dim, rng)
    else:
        x = get_sampler(model.default_sampler)(n, model.dim, rng)
        x = _variant_postprocess(x, variant, rng)
    x = model.quantize(x)
    y = model.label(x, rng)
    if key is not None:
        x.setflags(write=False)
        y.setflags(write=False)
        while len(_TRAIN_CACHE) >= _TRAIN_CACHE_SIZE:
            _TRAIN_CACHE.pop(next(iter(_TRAIN_CACHE)))
        _TRAIN_CACHE[key] = (x, y)
    return x, y


#: Data-plane refs of test samples published by the execution plan,
#: keyed by (function, variant, size).  Worker bootstrap fills this
#: (:func:`register_test_data`), after which :func:`get_test_data` maps
#: the parent's arrays zero-copy instead of regenerating them.
_PLANE_TEST_DATA: dict[tuple, tuple] = {}


def register_test_data(refs: dict) -> None:
    """Map data-plane test arrays into this process.

    Called by the worker initializer of
    :class:`repro.experiments.parallel.ProcessExecutor` with the plan's
    ``{(function, variant, size): (x_ref, y_ref)}`` refs.
    """
    _PLANE_TEST_DATA.update(refs)


@lru_cache(maxsize=_TEST_CACHE_SIZE)
def get_test_data(function: str, variant: str = "continuous",
                  size: int = _TEST_SIZE) -> tuple[np.ndarray, np.ndarray]:
    """The fixed independent test sample for a function and variant.

    Cached (bounded, :data:`_TEST_CACHE_SIZE` entries): generating 20000
    dsgc simulations takes a few seconds and every method comparison
    reuses the same test set, like the paper.  When the execution plan
    published this sample through the data plane
    (:func:`register_test_data`), the shared-memory arrays are returned
    zero-copy instead of regenerating.  The returned arrays are
    read-only — the cache hands every caller the same objects, so an
    in-place edit would silently corrupt the test set of every later
    run.
    """
    refs = _PLANE_TEST_DATA.get((function, variant, size))
    if refs is not None:
        return refs[0].resolve(), refs[1].resolve()
    model = get_model(function)
    rng = np.random.default_rng(_TEST_SEED)
    if variant == "logitnormal":
        x = logit_normal(size, model.dim, rng)
    else:
        x = rng.random((size, model.dim))
        x = _variant_postprocess(x, variant, rng)
    x = model.quantize(x)
    y = model.label(x, rng)
    x.setflags(write=False)
    y.setflags(write=False)
    return x, y


def reds_sampler_for(variant: str) -> Sampler | None:
    """The ``p(x)`` REDS must sample from under each variant."""
    if variant == "mixed":
        def mixed_sampler(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
            return discretize_even_inputs(rng.random((n, m)), rng)
        return mixed_sampler
    if variant == "logitnormal":
        return logit_normal
    return None  # uniform default inside reds()


def discrete_levels_for(model: SimulationModel,
                        variant: str) -> dict[int, np.ndarray] | None:
    """Per-dimension discrete levels for consistency measures.

    Covers both discretisation sources: the ``"mixed"`` variant's
    five-level grid on every even input (Section 9.1.2) and the integer
    codes of a mixed-type model's categorical columns, whose volume
    contribution is the fraction of levels a box allows.
    """
    levels: dict[int, np.ndarray] = {}
    if variant == "mixed":
        levels.update({j: MIXED_LEVELS for j in range(1, model.dim, 2)})
    for j, k in model.cat_levels_map.items():
        levels[j] = np.arange(k, dtype=float)
    return levels or None


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def evaluate_boxes(
    result: DiscoveryResult,
    x_test: np.ndarray,
    y_test: np.ndarray,
    relevant: tuple[int, ...],
    *,
    jobs: int | None = 1,
) -> dict:
    """All point and trajectory measures of one discovery result.

    Parameters
    ----------
    result:
        Output of :func:`repro.core.methods.discover`.
    x_test, y_test:
        The independent test sample (Section 8.1: never training data).
    relevant:
        Ground-truth relevant input indices of the model, for the
        #irrelevant measure.
    jobs:
        Worker processes for the trajectory evaluation over the test
        sample (None = all CPUs): every box of the peeling trajectory
        is measured on the full 20000-point test set, the slow part of
        evaluation for long trajectories.  Bit-identical for every
        setting; a budgeted grid task passes its worker lease here.

    Returns
    -------
    dict
        ``pr_auc``, ``precision``, ``recall``, ``wracc``,
        ``n_restricted``, ``n_irrelevant`` and the ``trajectory`` array.
    """
    trajectory = peeling_trajectory(result.boxes, x_test, y_test, jobs=jobs)
    prec, rec = precision_recall(result.chosen_box, x_test, y_test)
    return {
        "pr_auc": pr_auc(trajectory),
        "precision": prec,
        "recall": rec,
        "wracc": wracc_score(result.chosen_box, x_test, y_test),
        "n_restricted": result.chosen_box.n_restricted,
        "n_irrelevant": n_irrelevant(result.chosen_box, relevant),
        "trajectory": trajectory,
    }


def run_single(
    function: str,
    method: str,
    n: int,
    seed: int,
    *,
    variant: str = "continuous",
    n_new: int | None = None,
    tune_metamodel: bool = True,
    test_size: int = _TEST_SIZE,
    bumping_repeats: int = 50,
    engine: str = "vectorized",
) -> RunRecord:
    """One experiment: simulate, discover, measure on the test sample.

    One cell of the Section 8.5 protocol — also the unit of work the
    parallel engine dispatches and the result store caches, so its
    output must be a pure function of the arguments.

    Parameters
    ----------
    function:
        Table 1 model name (see ``repro.data.TABLE1``).
    method:
        Section 8.2 method name, e.g. ``"P"``, ``"RPx"``, ``"RBIcxp"``.
    n:
        Number of simulations in the training set.
    seed:
        Seed of this repetition; drives training data and discovery.
    variant:
        Input distribution: ``"continuous"`` (9.1.1), ``"mixed"``
        (9.1.2) or ``"logitnormal"`` (9.4).
    n_new:
        REDS ``L`` override (None = method default).
    tune_metamodel:
        Run the Section 8.4.3 caret-style metamodel tuning.
    test_size:
        Size of the independent test sample.
    bumping_repeats:
        ``Q`` of PRIM-with-bumping.
    engine:
        Kernel engine (``"vectorized"`` / ``"reference"``) threaded
        into :func:`repro.core.methods.discover`.  Both engines are
        pinned bit-identical, but the choice is part of the task
        configuration (and therefore of the store key) so a cached
        record always states how it was produced.

    Returns
    -------
    RunRecord
        Every Table 3-5 measure of the run, evaluated on test data.
    """
    from repro.experiments.parallel import budgeted_jobs

    model = get_model(function)
    x, y = make_train_data(model, n, seed, variant)
    x_test, y_test = get_test_data(function, variant, test_size)

    # Inside a budgeted grid worker this is the worker's lease (its
    # share of the global ``jobs`` budget); outside any executor it is
    # 1, i.e. the serial behaviour.  Results are jobs-invariant, so the
    # lease is purely a throughput knob and not part of the store key.
    inner_jobs = budgeted_jobs()
    result = discover(
        method, x, y,
        seed=seed,
        n_new=n_new,
        n_repeats=bumping_repeats,
        sampler=reds_sampler_for(variant),
        tune_metamodel=tune_metamodel,
        engine=engine,
        jobs=inner_jobs,
        cat_levels=model.cat_levels_map or None,
    )
    measures = evaluate_boxes(result, x_test, y_test, model.relevant,
                              jobs=inner_jobs)
    return RunRecord(
        function=function,
        method=method,
        n=n,
        seed=seed,
        pr_auc=measures["pr_auc"],
        precision=measures["precision"],
        recall=measures["recall"],
        wracc=measures["wracc"],
        n_restricted=measures["n_restricted"],
        n_irrelevant=measures["n_irrelevant"],
        runtime=result.runtime,
        chosen_box=result.chosen_box,
        trajectory=measures["trajectory"],
    )


def run_batch(
    functions: tuple[str, ...],
    methods: tuple[str, ...],
    n: int,
    n_reps: int,
    *,
    variant: str = "continuous",
    n_new: int | None = None,
    tune_metamodel: bool = True,
    base_seed: int = 1_000,
    test_size: int = _TEST_SIZE,
    bumping_repeats: int = 50,
    jobs: int | None = 1,
    store=None,
    resume: bool = True,
    engine: str = "vectorized",
    executor=None,
    shard=None,
    retries: int = 0,
    task_timeout: float | None = None,
) -> list[RunRecord]:
    """The full grid: every function x method x repetition.

    The grid compiles to an
    :class:`~repro.experiments.parallel.ExecutionPlan` (seeds fixed at
    plan time from grid position, test samples published once through
    the data plane) and runs on a pluggable executor.  With ``jobs`` > 1
    (or None for all CPUs) that is a process pool; records come back in
    grid order, identical to the serial run whatever the scheduling.

    Parameters
    ----------
    store:
        Optional :class:`~repro.experiments.store.ExperimentStore` (or
        directory path): finished cells are loaded instead of re-run
        and fresh cells are persisted as they complete, making the grid
        resumable and incremental.  A warm store returns records
        identical to the cold run while executing zero tasks.
    resume:
        With a store, ``False`` ignores existing records (everything
        recomputes and overwrites); reading is the default.
    engine:
        Kernel engine threaded into every cell (part of the task
        configuration, hence of the store key).
    executor, shard:
        Execution strategy (see
        :func:`repro.experiments.parallel.get_executor`):
        ``shard=(i, k)`` or ``"i/k"`` splits the grid across
        store-coordinated invocations that cooperate on one store with
        zero duplicated task executions.
    retries, task_timeout:
        Fault tolerance (see :func:`repro.experiments.parallel.execute`):
        ``retries > 0`` retries failed cells with backoff and completes
        the grid around quarantined ones (raising a structured
        :class:`~repro.experiments.parallel.GridFailureError` at the
        end); ``task_timeout`` arms the per-cell watchdog that kills and
        respawns hung workers.
    """
    from repro.experiments.parallel import execute

    tasks = [
        dict(function=function, method=method, n=n, seed=base_seed + rep,
             variant=variant, n_new=n_new, tune_metamodel=tune_metamodel,
             test_size=test_size, bumping_repeats=bumping_repeats,
             engine=engine)
        for function in functions
        for method in methods
        for rep in range(n_reps)
    ]
    warmup = sorted({(function, variant, test_size) for function in functions})
    return execute(run_single, tasks, jobs, warmup=warmup,
                   store=store, resume=resume, executor=executor, shard=shard,
                   retries=retries, task_timeout=task_timeout)


def _third_party_single(
    dataset: str,
    method: str,
    rep: int,
    fold: int,
    *,
    n_splits: int = 5,
    alpha: float = DEFAULT_THIRD_PARTY_ALPHA["lake"],
    n_new: int | None = None,
    tune_metamodel: bool = True,
    base_seed: int = 77,
    engine: str = "vectorized",
) -> RunRecord:
    """One (repetition, fold) cell of the Section 9.3 cross-validation.

    Rebuilds the fold split from its seeds instead of shipping arrays,
    so a worker process reaches the exact same train/test rows as the
    serial loop.
    """
    from repro.data import third_party_dataset
    from repro.experiments.parallel import budgeted_jobs
    from repro.metamodels.tuning import KFold

    x, y = third_party_dataset(dataset)
    splits = list(KFold(n_splits, seed=base_seed + rep).split(len(x)))
    train, test = splits[fold]
    inner_jobs = budgeted_jobs()
    result = discover(
        method, x[train], y[train],
        seed=base_seed + rep * n_splits + fold,
        alpha=alpha,
        n_new=n_new,
        tune_metamodel=tune_metamodel,
        engine=engine,
        jobs=inner_jobs,
    )
    trajectory = peeling_trajectory(result.boxes, x[test], y[test],
                                    jobs=inner_jobs)
    prec, rec = precision_recall(result.chosen_box, x[test], y[test])
    return RunRecord(
        function=dataset,
        method=method,
        n=len(train),
        seed=base_seed + rep * n_splits + fold,
        pr_auc=pr_auc(trajectory),
        precision=prec,
        recall=rec,
        wracc=wracc_score(result.chosen_box, x[test], y[test]),
        n_restricted=result.chosen_box.n_restricted,
        n_irrelevant=0,  # no ground truth for third-party data
        runtime=result.runtime,
        chosen_box=result.chosen_box,
        trajectory=trajectory,
    )


def run_third_party(
    dataset: str,
    method: str,
    *,
    n_splits: int = 5,
    n_reps: int = 10,
    alpha: float = DEFAULT_THIRD_PARTY_ALPHA["lake"],
    n_new: int | None = None,
    tune_metamodel: bool = True,
    base_seed: int = 77,
    jobs: int | None = 1,
    store=None,
    resume: bool = True,
    engine: str = "vectorized",
    executor=None,
    shard=None,
    retries: int = 0,
    task_timeout: float | None = None,
) -> list[RunRecord]:
    """Section 9.3: repeated k-fold cross-validation on a fixed table.

    No simulation model exists, so quality is measured on held-out
    folds; the paper runs 5-fold CV ten times and averages.  For "TGL"
    the paper follows earlier work and uses ``alpha = 0.1``.  ``jobs``,
    ``executor`` and ``shard`` parallelise the (repetition, fold) cells
    like :func:`run_batch`, ``store``/``resume`` make them cacheable
    the same way, and ``retries``/``task_timeout`` give the cells the
    same fault tolerance.
    """
    from repro.experiments.parallel import execute

    tasks = [
        dict(dataset=dataset, method=method, rep=rep, fold=fold,
             n_splits=n_splits, alpha=alpha, n_new=n_new,
             tune_metamodel=tune_metamodel, base_seed=base_seed,
             engine=engine)
        for rep in range(n_reps)
        for fold in range(n_splits)
    ]
    return execute(_third_party_single, tasks, jobs, store=store,
                   resume=resume, executor=executor, shard=shard,
                   retries=retries, task_timeout=task_timeout)


def aggregate_third_party(records: list[RunRecord]) -> dict:
    """Aggregate third-party records: means + cross-fold consistency."""
    grouped: dict[tuple[str, str], list[RunRecord]] = {}
    for record in records:
        grouped.setdefault((record.function, record.method), []).append(record)
    out: dict[tuple[str, str], dict] = {}
    for key, group in grouped.items():
        boxes = [r.chosen_box for r in group]
        out[key] = {
            "pr_auc": float(np.mean([r.pr_auc for r in group])),
            "precision": float(np.mean([r.precision for r in group])),
            "recall": float(np.mean([r.recall for r in group])),
            "wracc": float(np.mean([r.wracc for r in group])),
            "consistency": (pairwise_consistency(boxes)
                            if len(boxes) >= 2 else float("nan")),
            "n_restricted": float(np.mean([r.n_restricted for r in group])),
            "n_irrelevant": 0.0,
            "runtime": float(np.mean([r.runtime for r in group])),
            "n_reps": len(group),
        }
    return out


def aggregate(records: list[RunRecord], *, variant: str = "continuous") -> dict:
    """Per-(function, method) means plus cross-repetition consistency.

    Parameters
    ----------
    records:
        Flat record list from :func:`run_batch`.
    variant:
        Input-distribution variant the records were generated with;
        ``"mixed"`` switches consistency to discrete-level volumes.

    Returns
    -------
    dict
        ``{(function, method): {metric: value}}`` with the metrics of
        Tables 3-5: pr_auc, precision, recall, wracc, consistency,
        n_restricted, n_irrelevant, runtime, n_reps.
    """
    grouped: dict[tuple[str, str], list[RunRecord]] = {}
    for record in records:
        grouped.setdefault((record.function, record.method), []).append(record)

    out: dict[tuple[str, str], dict] = {}
    for key, group in grouped.items():
        function = key[0]
        model = get_model(function)
        levels = discrete_levels_for(model, variant)
        boxes = [r.chosen_box for r in group]
        consistency = (
            pairwise_consistency(boxes, discrete_levels=levels)
            if len(boxes) >= 2 else float("nan")
        )
        out[key] = {
            "pr_auc": float(np.mean([r.pr_auc for r in group])),
            "precision": float(np.mean([r.precision for r in group])),
            "recall": float(np.mean([r.recall for r in group])),
            "wracc": float(np.mean([r.wracc for r in group])),
            "consistency": consistency,
            "n_restricted": float(np.mean([r.n_restricted for r in group])),
            "n_irrelevant": float(np.mean([r.n_irrelevant for r in group])),
            "runtime": float(np.mean([r.runtime for r in group])),
            "n_reps": len(group),
        }
    return out


def average_over_functions(aggregated: dict, methods: tuple[str, ...]) -> dict:
    """Average each metric over functions, per method (the table rows)."""
    rows: dict[str, dict] = {}
    metrics = ("pr_auc", "precision", "recall", "wracc", "consistency",
               "n_restricted", "n_irrelevant", "runtime")
    for method in methods:
        cells = [v for (fn, meth), v in aggregated.items() if meth == method]
        if not cells:
            continue
        rows[method] = {
            metric: float(np.nanmean([c[metric] for c in cells]))
            for metric in metrics
        }
    return rows
