"""Evaluation harness reproducing Section 8.5 / Section 9.

:mod:`repro.experiments.harness` runs (function, method, N, seed)
combinations and aggregates the paper's quality measures;
:mod:`repro.experiments.parallel` compiles those grids into explicit
execution plans and runs them on pluggable executors — serial, process
pool, or store-coordinated shards — with results identical to the
serial loop; :mod:`repro.experiments.dataplane` is the shared-memory
broker that maps each plan's large read-only arrays zero-copy into
worker processes; :mod:`repro.experiments.store` persists finished
records in an on-disk content-addressed store (the ``store``/``resume``
knobs) so grids are resumable, incremental and shardable;
:mod:`repro.experiments.faults` is the deterministic fault-injection
harness (``REDS_FAULT_PLAN``) behind the substrate's retry/timeout/
degradation machinery — chaos tests replay bit-identically;
:mod:`repro.experiments.session` is the warm execution session
(cached worker pools, resident data plane, memoized metamodel fits)
serving repeated discovery work without per-call cold costs;
:mod:`repro.experiments.design` holds the per-table/figure experiment
configurations; :mod:`repro.experiments.report` renders the paper's
table rows and figure series as text; :mod:`repro.experiments.stats`
implements the significance tests of Section 9.
"""

from repro.experiments.harness import (
    RunRecord,
    evaluate_boxes,
    run_single,
    run_batch,
    run_third_party,
    aggregate,
    aggregate_third_party,
    average_over_functions,
    make_train_data,
    get_test_data,
    register_test_data,
)
from repro.experiments.dataplane import (
    ArrayRef,
    DataPlane,
    content_key,
    dataplane_enabled,
    resident_stats,
    session_active,
    shutdown_resident,
)
from repro.experiments.design import BenchScale, scale_from_env, EXPERIMENTS
from repro.experiments.faults import FaultPlan, InjectedFault, parse_fault_plan
from repro.experiments.parallel import (
    EXECUTORS,
    ExecutionPlan,
    GridFailureError,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ShardedExecutor,
    TaskFailure,
    close_pools,
    compile_plan,
    default_jobs,
    execute,
    get_executor,
    parse_shard,
    pool_stats,
    run_chunked,
    warm_test_cache,
)
from repro.experiments.session import Session
from repro.experiments.store import (
    ExperimentStore,
    ExperimentStoreError,
    open_store,
    task_key,
    code_fingerprint,
)

__all__ = [
    "RunRecord",
    "evaluate_boxes",
    "run_single",
    "run_batch",
    "run_third_party",
    "aggregate",
    "aggregate_third_party",
    "average_over_functions",
    "make_train_data",
    "get_test_data",
    "register_test_data",
    "ArrayRef",
    "DataPlane",
    "Session",
    "content_key",
    "dataplane_enabled",
    "resident_stats",
    "session_active",
    "shutdown_resident",
    "BenchScale",
    "scale_from_env",
    "EXPERIMENTS",
    "FaultPlan",
    "InjectedFault",
    "parse_fault_plan",
    "EXECUTORS",
    "ExecutionPlan",
    "GridFailureError",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ShardedExecutor",
    "TaskFailure",
    "close_pools",
    "compile_plan",
    "default_jobs",
    "execute",
    "get_executor",
    "parse_shard",
    "pool_stats",
    "run_chunked",
    "warm_test_cache",
    "ExperimentStore",
    "ExperimentStoreError",
    "open_store",
    "task_key",
    "code_fingerprint",
]
