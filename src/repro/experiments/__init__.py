"""Evaluation harness reproducing Section 8.5 / Section 9.

:mod:`repro.experiments.harness` runs (function, method, N, seed)
combinations and aggregates the paper's quality measures;
:mod:`repro.experiments.parallel` fans those grids out over a process
pool (the ``jobs`` knob) with results identical to the serial loop;
:mod:`repro.experiments.design` holds the per-table/figure experiment
configurations; :mod:`repro.experiments.report` renders the paper's
table rows and figure series as text.
"""

from repro.experiments.harness import (
    RunRecord,
    evaluate_boxes,
    run_single,
    run_batch,
    run_third_party,
    aggregate,
    aggregate_third_party,
    average_over_functions,
    make_train_data,
    get_test_data,
)
from repro.experiments.design import BenchScale, scale_from_env, EXPERIMENTS
from repro.experiments.parallel import default_jobs, execute, warm_test_cache

__all__ = [
    "RunRecord",
    "evaluate_boxes",
    "run_single",
    "run_batch",
    "run_third_party",
    "aggregate",
    "aggregate_third_party",
    "average_over_functions",
    "make_train_data",
    "get_test_data",
    "BenchScale",
    "scale_from_env",
    "EXPERIMENTS",
    "default_jobs",
    "execute",
    "warm_test_cache",
]
