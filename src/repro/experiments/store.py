"""Persistent content-addressed store for experiment records.

The paper's evaluation (Tables 3-5, Figures 6-14) is built from large
replicated grids of independent runs, and re-generating a grid from
scratch every time is the single biggest cost of working with the
harness.  This module gives :func:`repro.experiments.parallel.execute`
(and everything above it: :func:`~repro.experiments.harness.run_batch`,
:func:`~repro.experiments.harness.run_third_party`, the CLI and the
benchmarks) a durable on-disk cache of finished runs, so a re-run loads
what exists, dispatches only the missing tasks, and appends the new
records — an interrupted grid resumes where it stopped.

Design, in the style of exploratory-modeling tooling such as tmip-emat's
experiment database:

* **Content-addressed keys.**  Every task is identified by the SHA-256
  of its *full* configuration: the qualified name of the task function,
  every keyword argument (dataset, method, N, seed, variant, grid
  position, ...), a store format version, and a fingerprint of the
  package's source code.  Identical configuration = identical key;
  any change = a different key.
* **Invalidation over staleness.**  The code fingerprint hashes every
  result-affecting module under :mod:`repro` (presentation-only modules
  are excluded, see :data:`FINGERPRINT_EXCLUDE`).  Editing an algorithm
  silently *misses* instead of silently returning stale records; old
  entries are simply never read again.
* **Atomic, concurrency-safe writes.**  A record is pickled to a
  temporary file in the store and published with :func:`os.replace`, so
  readers never observe a half-written record and concurrent writers of
  the same key (e.g. two ``jobs=N`` runs sharing a store) are harmless
  last-writer-wins with identical content.
* **Claim markers.**  Work-stealing sharded execution arbitrates "who
  runs this task" through ``O_CREAT | O_EXCL`` claim files under
  ``claims/`` (:meth:`ExperimentStore.claim`): exactly one invocation
  wins each key, which is what makes stealing duplicate-free.  Claims
  are bookkeeping, not results — deleting the directory only releases
  ownership.  A claim's mtime is its lease timestamp: claims older
  than a TTL can be taken over (:meth:`ExperimentStore.reclaim`) so a
  SIGKILLed shard does not wedge the grid forever.
* **Durability and self-verification.**  Record writes fsync the file
  and its directory before and after the rename (opt out with
  ``REDS_STORE_FSYNC=0``), and every record is stored inside an
  envelope carrying its own key.  On read, an entry that fails to
  unpickle *or* whose envelope key does not match is quarantined to
  ``corrupt/`` and treated as a miss — a torn write surviving a crash
  costs one recompute, never a wrong or half-read record.
* **Failure records.**  Retrying executors journal failed attempts
  under ``failures/<key[:2]>/<key>.json`` (attempt count, last error,
  quarantined flag) via :meth:`ExperimentStore.record_failure`, so a
  resumed run knows what was retried and sharded siblings can tell a
  quarantined task from one that is merely slow.  A later success
  clears the failure record.

A warm store must be invisible in the results: the records a store-backed
run returns are *identical*, field by field (runtime included, because
it is loaded, not re-measured), to the cold run that produced them.
``tests/test_store.py`` locks this down.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from collections.abc import Callable, Iterator
from functools import lru_cache
from pathlib import Path

from repro.experiments import faults

__all__ = [
    "ExperimentStore",
    "ExperimentStoreError",
    "open_store",
    "task_key",
    "code_fingerprint",
    "MISSING",
    "STORE_FORMAT",
    "FINGERPRINT_EXCLUDE",
]

#: On-disk layout version; bumping it invalidates every existing entry.
#: Format 2 wraps each record in a ``{"key": ..., "record": ...}``
#: envelope so reads verify they got the record they asked for.
STORE_FORMAT = 2

#: Modules (relative to the ``repro`` package root) whose source does
#: not influence experiment records: presentation, CLI plumbing, this
#: store itself, fault injection (whose contract is precisely that
#: it never changes records) and the warm-session layer (whose contract
#: is that warm state is a cache, never a semantic change).  Everything
#: else is part of the fingerprint.
FINGERPRINT_EXCLUDE = frozenset({
    "cli.py",
    "__main__.py",
    "experiments/store.py",
    "experiments/faults.py",
    "experiments/report.py",
    "experiments/session.py",
    "subgroup/describe.py",
})


def _fsync_enabled() -> bool:
    return os.environ.get("REDS_STORE_FSYNC", "1") != "0"


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _Missing:
    """Sentinel distinguishing "no record" from a stored ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: Returned by :meth:`ExperimentStore.get` when a key has no record.
MISSING = _Missing()


class ExperimentStoreError(RuntimeError):
    """A store directory is unusable (unknown or corrupt format)."""


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the source of every result-affecting repro module.

    Returns
    -------
    str
        Hex digest covering the bytes of each ``.py`` file under the
        installed :mod:`repro` package, except :data:`FINGERPRINT_EXCLUDE`,
        in sorted path order.  Part of every task key, so any code edit
        that could change records invalidates the cache wholesale.
    """
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        if relative in FINGERPRINT_EXCLUDE:
            continue
        digest.update(relative.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _canonical(obj):
    """JSON-stable form of a task kwargs value (tuples become lists)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"task value {obj!r} of type {type(obj).__name__} is not "
        f"storable; keys must be built from JSON-compatible config only"
    )


def task_key(func: Callable | str, task: dict, *,
             fingerprint: str | None = None) -> str:
    """The content address of one task: hash of its full configuration.

    Parameters
    ----------
    func:
        The task function (or its qualified ``module.name`` string) —
        e.g. :func:`repro.experiments.harness.run_single`.
    task:
        The complete keyword arguments of the call, JSON-compatible
        scalars/lists/dicts only.
    fingerprint:
        Code fingerprint to mix in; defaults to :func:`code_fingerprint`.

    Returns
    -------
    str
        64-character hex SHA-256.  Stable across processes and runs for
        the same configuration and source tree.
    """
    name = func if isinstance(func, str) else (
        f"{func.__module__}.{func.__qualname__}")
    payload = json.dumps(
        {
            "format": STORE_FORMAT,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
            "func": name,
            "task": _canonical(task),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ExperimentStore:
    """An on-disk, content-addressed map from task keys to records.

    Records live under ``root/<key[:2]>/<key>.pkl`` (two-character
    fan-out keeps directories small at paper scale: the full grid is
    33 functions x 12 methods x 50 repetitions = ~20k records).  A
    ``meta.json`` at the root pins the layout version.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if absent.
    fingerprint:
        Code fingerprint mixed into every key.  Defaults to
        :func:`code_fingerprint`; tests override it to simulate code
        changes.

    Attributes
    ----------
    hits, misses, writes : int
        Per-instance counters: records served from disk, lookups that
        found nothing, and records persisted.  The CLI and benchmarks
        report these so cache behaviour is visible, never silent.
    """

    def __init__(self, root: str | os.PathLike,
                 *, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._check_meta()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _check_meta(self) -> None:
        meta_path = self.root / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (ValueError, OSError) as exc:
                raise ExperimentStoreError(
                    f"unreadable store metadata at {meta_path}") from exc
            if meta.get("format") != STORE_FORMAT:
                raise ExperimentStoreError(
                    f"store at {self.root} has format {meta.get('format')!r}, "
                    f"this code reads format {STORE_FORMAT}; "
                    f"use a fresh directory")
            return
        self._atomic_write(meta_path,
                           json.dumps({"format": STORE_FORMAT}).encode())

    def path_for(self, key: str) -> Path:
        """Where a key's record lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.pkl"

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{path.stem}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                if _fsync_enabled():
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            if _fsync_enabled():
                _fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def key(self, func: Callable | str, task: dict) -> str:
        """Content address of ``func(**task)`` under this store's code."""
        return task_key(func, task, fingerprint=self.fingerprint)

    def corrupt_path(self, key: str) -> Path:
        """Where a quarantined corrupt entry for ``key`` is parked."""
        return self.root / "corrupt" / key[:2] / f"{key}.pkl"

    def quarantine(self, key: str) -> Path | None:
        """Move a bad record file to ``corrupt/`` and report where.

        The original path becomes a clean miss (the task recomputes);
        the damaged bytes are preserved for post-mortem instead of being
        destroyed.  Returns ``None`` when there was nothing to move.
        """
        src = self.path_for(key)
        dst = self.corrupt_path(key)
        try:
            dst.parent.mkdir(parents=True, exist_ok=True)
            os.replace(src, dst)
        except OSError:
            try:
                src.unlink()
            except OSError:
                pass
            return None
        return dst

    def get(self, key: str, default=MISSING):
        """The stored record for ``key``, or ``default`` if absent.

        A corrupt entry — one that fails to unpickle (e.g. a torn write
        that survived a crash) or whose envelope key does not match the
        key asked for — is treated as a miss and quarantined to
        ``corrupt/``, so the task simply recomputes.  A transient I/O
        failure (permissions, fd exhaustion) is a plain miss: the entry
        is left alone — it may be perfectly valid.
        """
        path = self.path_for(key)
        try:
            handle = open(path, "rb")
        except OSError:  # absent, or transiently unreadable
            self.misses += 1
            return default
        try:
            with handle:
                envelope = pickle.load(handle)
        except OSError:  # read failed mid-load; do not assume corruption
            self.misses += 1
            return default
        except (pickle.UnpicklingError, ValueError, EOFError,
                AttributeError, ImportError, IndexError):
            self.misses += 1
            self.quarantine(key)
            return default
        if (not isinstance(envelope, dict) or envelope.get("key") != key
                or "record" not in envelope):
            # Readable pickle, wrong content: key verification failed.
            self.misses += 1
            self.quarantine(key)
            return default
        self.hits += 1
        return envelope["record"]

    def put(self, key: str, record) -> None:
        """Persist ``record`` under ``key`` (atomic publish via rename).

        The record is wrapped in a ``{"key": ..., "record": ...}``
        envelope so :meth:`get` can verify it reads back the record it
        asked for.  Under an active fault plan the ``store_write_torn``
        injection point truncates the payload (still atomically renamed
        into place) to simulate a torn write surviving a crash.
        """
        payload = pickle.dumps({"key": key, "record": record},
                               protocol=pickle.HIGHEST_PROTOCOL)
        if faults.check("store_write_torn", key):
            payload = payload[: max(1, len(payload) // 2)]
        self._atomic_write(self.path_for(key), payload)
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Failure records (retry forensics)
    # ------------------------------------------------------------------
    def failure_path(self, key: str) -> Path:
        """Where a key's failure record lives (whether or not it exists)."""
        return self.root / "failures" / key[:2] / f"{key}.json"

    def record_failure(self, key: str, *, attempts: int, error: str,
                       quarantined: bool) -> None:
        """Journal a failed attempt for ``key`` (atomic, JSON).

        Written by the dispatching process after every failed attempt;
        ``quarantined=True`` marks the task as having exhausted its
        retry budget for this run.  The record is plain JSON so humans
        (and sharded siblings) can read it without unpickling anything.
        """
        payload = json.dumps(
            {"key": key, "attempts": int(attempts), "error": str(error),
             "quarantined": bool(quarantined), "time": time.time()},
            sort_keys=True).encode()
        self._atomic_write(self.failure_path(key), payload)

    def failure_for(self, key: str) -> dict | None:
        """The journalled failure record for ``key``, or ``None``."""
        try:
            data = json.loads(self.failure_path(key).read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def clear_failure(self, key: str) -> None:
        """Forget ``key``'s failure record (called after a success)."""
        try:
            self.failure_path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Claim markers (sharded work stealing)
    # ------------------------------------------------------------------
    def claim_path(self, key: str) -> Path:
        """Where a key's claim marker lives (whether or not it exists).

        Claims sit under ``claims/`` beside the record tree, so record
        iteration (:meth:`keys`, ``len``) never sees them.
        """
        return self.root / "claims" / key[:2] / f"{key}.claim"

    def claim(self, key: str, owner: str) -> bool:
        """Atomically claim ``key`` for execution by ``owner``.

        First-writer-wins through ``O_CREAT | O_EXCL``: for any key,
        exactly one owner ever creates the marker — the zero-duplicated
        -execution guarantee of work-stealing sharded runs rests on
        this.  A claim already held by the *same* owner is granted
        again, so a shard restarted after a crash re-wins its own stale
        claims and re-executes the tasks it never finished.  Claims
        carry no result: the record stored under the key remains the
        only source of truth, and deleting ``claims/`` merely releases
        ownership.

        Returns
        -------
        bool
            True iff ``owner`` now holds the claim and should execute
            the task.
        """
        path = self.claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self.claim_owner(key) == owner
        try:
            os.write(fd, owner.encode())
            if _fsync_enabled():
                # Claims cannot go through write-temp + rename: the
                # O_CREAT|O_EXCL create *is* the arbitration.  Fsync the
                # fd so the marker (and its lease timestamp) is durable.
                try:
                    os.fsync(fd)
                except OSError:
                    pass
        finally:
            os.close(fd)
        return True

    def claim_owner(self, key: str) -> str | None:
        """Who claimed ``key`` — ``None`` if unclaimed (or mid-write)."""
        try:
            return self.claim_path(key).read_text() or None
        except OSError:
            return None

    def claim_age(self, key: str) -> float | None:
        """Seconds since ``key``'s claim marker was created, or ``None``.

        The marker's mtime is the lease timestamp: a claim much older
        than any plausible task duration belongs to a dead owner.
        """
        try:
            mtime = self.claim_path(key).stat().st_mtime
        except OSError:
            return None
        return max(time.time() - mtime, 0.0)

    def reclaim(self, key: str, owner: str, *, max_age: float) -> bool:
        """Take over a claim whose lease expired (owner presumed dead).

        Arbitration is a single atomic rename of the stale marker to a
        ``.stale`` side file: when several survivors race, exactly one
        rename succeeds, and only that winner proceeds to re-claim the
        key through the normal ``O_CREAT | O_EXCL`` path.  A claim
        younger than ``max_age`` is never touched — callers must pick a
        ``max_age`` comfortably above their worst-case task duration,
        because reclaiming a *live* owner's lease would allow a
        duplicated execution (harmless for results: tasks are pure and
        writes are idempotent last-writer-wins with identical content,
        but wasted work all the same).

        Returns
        -------
        bool
            True iff ``owner`` now holds the claim and should execute
            the task.
        """
        age = self.claim_age(key)
        if age is None:
            # Claim vanished (e.g. manually released); take it normally.
            return self.claim(key, owner)
        if age < max_age:
            return False
        path = self.claim_path(key)
        stale = path.with_suffix(".stale")
        try:
            os.replace(path, stale)
        except OSError:
            return False  # a sibling won the takeover race
        return self.claim(key, owner)

    def keys(self) -> Iterator[str]:
        """All stored keys (order unspecified)."""
        for path in self.root.glob("??/*.pkl"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExperimentStore({str(self.root)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes})")


def open_store(store: "ExperimentStore | str | os.PathLike | None",
               ) -> "ExperimentStore | None":
    """Coerce a user-facing ``store=`` argument to an ExperimentStore.

    Accepts an existing store (returned as-is), a directory path (a
    store is opened there), or ``None`` (no caching; returns ``None``).
    Every layer of the harness funnels its ``store=`` argument through
    this, so callers can pass a plain path string everywhere.
    """
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)
