"""Experiment configurations for every table and figure of the paper.

Each entry of :data:`EXPERIMENTS` describes one evaluation artefact
(table or figure) and the workload that regenerates it.  Benchmarks run
a scaled-down grid by default so the suite finishes on a laptop in
minutes; set the environment variable ``REDS_BENCH_SCALE=full`` to run
the paper-sized grid (33 functions, 50 repetitions, L = 10^5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.data.registry import ALL_FUNCTIONS, MIXED_INPUT_FUNCTIONS

__all__ = ["BenchScale", "scale_from_env", "EXPERIMENTS", "QUICK_FUNCTIONS"]

#: A small but diverse function subset for quick benchmark runs: a noisy
#: Dalal function, low-dimensional deterministic functions, a screening
#: function with inert inputs, and the paper's own ellipse.
QUICK_FUNCTIONS: tuple[str, ...] = (
    "3", "ishigami", "linketal06sin", "ellipse",
)


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade benchmark fidelity against runtime."""

    name: str
    functions: tuple[str, ...]
    n_reps: int
    n_train: int
    n_new_prim: int          # L for PRIM-based REDS
    n_new_bi: int            # L for BI-based REDS
    test_size: int
    tune_metamodel: bool
    n_grid: tuple[int, ...]  # the N sweep where an experiment uses one
    bumping_repeats: int     # Q of PRIM-with-bumping


QUICK = BenchScale(
    name="quick",
    functions=QUICK_FUNCTIONS,
    n_reps=3,
    n_train=300,
    n_new_prim=10_000,
    n_new_bi=3_000,
    test_size=8_000,
    tune_metamodel=False,
    n_grid=(150, 300),
    bumping_repeats=15,
)

FULL = BenchScale(
    name="full",
    functions=ALL_FUNCTIONS,
    n_reps=50,
    n_train=400,
    n_new_prim=100_000,
    n_new_bi=10_000,
    test_size=20_000,
    tune_metamodel=True,
    n_grid=(200, 400, 800),
    bumping_repeats=50,
)


def scale_from_env() -> BenchScale:
    """``REDS_BENCH_SCALE`` in {"quick" (default), "full"}."""
    value = os.environ.get("REDS_BENCH_SCALE", "quick").lower()
    if value == "full":
        return FULL
    if value == "quick":
        return QUICK
    raise ValueError(f"REDS_BENCH_SCALE must be 'quick' or 'full', got {value!r}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Descriptor mapping one paper artefact to its workload."""

    artefact: str          # e.g. "Table 3 / Figure 7"
    section: str
    methods: tuple[str, ...]
    variant: str = "continuous"
    description: str = ""


EXPERIMENTS: dict[str, ExperimentConfig] = {
    "fig6": ExperimentConfig(
        artefact="Figure 6",
        section="8.1",
        methods=("BI", "BIc"),
        description="Demonstration: train-set evaluation is overly "
                    "optimistic and can invert method rankings; "
                    "hyperparameter optimisation helps.",
    ),
    "tab3_fig7": ExperimentConfig(
        artefact="Table 3 / Figure 7",
        section="9.1.1",
        methods=("P", "Pc", "PB", "PBc", "RPf", "RPx", "RPs"),
        description="PRIM-based methods across all functions: PR AUC, "
                    "precision, consistency, #restricted, #irrel.",
    ),
    "tab4_fig8": ExperimentConfig(
        artefact="Table 4 / Figure 8",
        section="9.1.1",
        methods=("BI", "BIc", "BI5", "RBIcfp", "RBIcxp"),
        description="BI-based methods: WRAcc, consistency, #restricted, #irrel.",
    ),
    "fig9": ExperimentConfig(
        artefact="Figure 9",
        section="9.1.1",
        methods=("Pc", "PBc", "RPf", "RPx", "BI", "BIc", "RBIcxp"),
        description="Runtimes contingent on N.",
    ),
    "fig10": ExperimentConfig(
        artefact="Figure 10",
        section="9.1.2",
        methods=("Pc", "PBc", "RPcxp", "BIc", "BI", "RBIcxp"),
        variant="mixed",
        description="Mixed (continuous + discrete) inputs.",
    ),
    "fig11": ExperimentConfig(
        artefact="Figure 11",
        section="9.2.1",
        methods=("P", "Pc", "RPx"),
        description="Peeling trajectories and PR AUC variance on morris.",
    ),
    "fig12": ExperimentConfig(
        artefact="Figure 12",
        section="9.2.2",
        methods=("P", "Pc", "RPx", "RPxp", "BI", "BIc", "RBIcxp"),
        description="Learning curves in N and dependence on L (morris).",
    ),
    "fig13_tab5": ExperimentConfig(
        artefact="Figure 13 / Table 5",
        section="9.3",
        methods=("Pc", "RPf", "RPfp"),
        description="Third-party data (TGL, lake): trajectories and metrics.",
    ),
    "fig14": ExperimentConfig(
        artefact="Figure 14",
        section="9.4",
        methods=("PBc", "RPx", "BI", "RBIcxp"),
        variant="logitnormal",
        description="REDS as a semi-supervised subgroup-discovery method.",
    ),
}
