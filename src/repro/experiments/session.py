"""Warm execution sessions: discovery as queries against resident state.

One-shot invocations pay four fixed costs per call: interpreter start,
worker-pool spawn, data publication, and the metamodel fit.  A
:class:`Session` keeps the last three warm across calls:

* **cached worker pools** — pools keyed by ``(workers, lease,
  plan-context signature)`` survive across ``execute()``/``run_chunked``
  calls (including nested chunked fan-out) instead of being torn down
  per plan (:mod:`repro.experiments.parallel`);
* **a resident data plane** — arrays published once by content key stay
  registered process-wide and are reused by every later plan
  (:mod:`repro.experiments.dataplane`);
* **memoized metamodel fits** — :func:`repro.core.reds.fit_metamodel`
  returns the same fitted object for identical ``(kind, tune, engine,
  x, y)``, keyed by the store's task-key discipline (config + source
  fingerprint + data content).

Warm state is a **cache, never a semantic change**: every result is
bit-identical to the one-shot path at every engine/executor/jobs
setting.  The session only toggles ``REDS_SESSION=1`` while open — the
substrate's own knobs (``REDS_DATAPLANE``, ``REDS_FAULT_PLAN``,
``REDS_SPAWN_LOG``, ...) keep their meaning.

Lifecycle::

    with Session(jobs=4) as session:
        result = session.discover("RPf", x, y)       # fits + spawns once
        labels = session.label(x, y, x_new)          # reuses fit + pool
        more = session.label(x, y, other_new)        # zero cold cost
    # closed: pools shut down, resident segments unlinked, fits dropped

Invalidation rules:

* a **crashed or poisoned pool** is evicted at checkout (checkout pops
  the cache entry) and respawned — PR 8's heartbeat/blame machinery
  runs unchanged against cached pools;
* a **code edit** changes the source fingerprint, so fit memo keys
  miss; **different data** changes the content keys, so both the fit
  memo and the pool signature miss;
* **session close** (or interpreter exit, via atexit) shuts every
  cached pool down, unlinks every resident segment, and drops the fit
  cache — teardown leaves zero leaked shm segments.

Sessions nest refcounted: the warm caches are process-wide, so inner
``with Session(...)`` blocks share state and only the outermost close
tears it down.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Session"]

_LOCK = threading.Lock()
_ACTIVE = 0
_SAVED_ENV: str | None = None


def _enter_session() -> None:
    global _ACTIVE, _SAVED_ENV
    with _LOCK:
        if _ACTIVE == 0:
            _SAVED_ENV = os.environ.get("REDS_SESSION")
            os.environ["REDS_SESSION"] = "1"
        _ACTIVE += 1


def _exit_session() -> None:
    global _ACTIVE, _SAVED_ENV
    with _LOCK:
        if _ACTIVE == 0:
            return
        _ACTIVE -= 1
        if _ACTIVE > 0:
            return
        if _SAVED_ENV is None:
            os.environ.pop("REDS_SESSION", None)
        else:
            os.environ["REDS_SESSION"] = _SAVED_ENV
        _SAVED_ENV = None
    # Teardown outside the refcount lock: pool shutdown waits for
    # workers and resident unlink touches /dev/shm.
    from repro.core.reds import clear_fit_cache
    from repro.experiments.dataplane import shutdown_resident
    from repro.experiments.parallel import close_pools

    close_pools()
    shutdown_resident()
    clear_fit_cache()


class Session:
    """A warm execution session for repeated discovery work.

    Parameters set the session-wide defaults that every request
    inherits (each request may still override them per call):

    ``jobs``
        Worker budget threaded into every fan-out (grid, tuning folds,
        chunked labeling) — the planner splits it across levels exactly
        as the one-shot path does.
    ``engine``
        Kernel engine (``"reference"`` / ``"vectorized"`` /
        ``"native"``) for subgroup discovery and the metamodel layer.
    ``tune``
        Whether string metamodels run the caret-style tuning grid
        (the expensive path the fit memo amortizes best).
    ``metamodel``
        Default metamodel kind for :meth:`label`.

    Open/close is refcounted and re-entrant; use as a context manager.
    """

    def __init__(self, *, jobs: int | None = 1, engine: str = "vectorized",
                 tune: bool = True, metamodel: str = "boosting") -> None:
        self.jobs = jobs
        self.engine = engine
        self.tune = tune
        self.metamodel = metamodel
        self._open = False

    # -- lifecycle -----------------------------------------------------
    def open(self) -> "Session":
        """Activate warm caching (idempotent per session object)."""
        if not self._open:
            _enter_session()
            self._open = True
        return self

    def close(self) -> None:
        """Release this session's hold on the warm caches.

        The outermost close shuts cached pools down, unlinks resident
        segments and drops memoized fits; inner closes only decrement.
        Idempotent.
        """
        if self._open:
            self._open = False
            _exit_session()

    def __enter__(self) -> "Session":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if not self._open:
            raise RuntimeError(
                "session is not open; use `with Session(...) as s:` or "
                "call .open()")

    # -- requests ------------------------------------------------------
    def discover(self, method: str, x: np.ndarray, y: np.ndarray,
                 **kwargs):
        """Run a discovery method against warm state.

        Delegates to :func:`repro.core.methods.discover` with the
        session's ``engine``/``jobs``/``tune`` defaults filled in; any
        keyword argument overrides them per call.  REDS methods reuse
        the memoized metamodel fit and the cached labeling pool.
        """
        self._require_open()
        from repro.core.methods import discover

        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("jobs", self.jobs)
        kwargs.setdefault("tune_metamodel", self.tune)
        return discover(method, x, y, **kwargs)

    def label(self, x: np.ndarray, y: np.ndarray, x_new: np.ndarray, *,
              metamodel: str | None = None, soft: bool = False,
              tune: bool | None = None,
              chunk_rows: int | None = None) -> np.ndarray:
        """Label ``x_new`` with a metamodel fitted on ``(x, y)``.

        The fit comes from the session memo (one fit per distinct
        ``(kind, tune, engine, x, y)``), labeling fans out through
        :func:`repro.metamodels.base.predict_chunked` against the
        cached pool.  ``soft=True`` returns probabilities
        (``predict_proba``) instead of hard labels.
        """
        self._require_open()
        from repro.core.reds import fit_metamodel
        from repro.metamodels.base import predict_chunked

        kind = self.metamodel if metamodel is None else metamodel
        do_tune = self.tune if tune is None else tune
        jobs = 1 if self.jobs is None else self.jobs
        fitted = fit_metamodel(kind, x, y, tune=do_tune,
                               engine=self.engine, jobs=jobs)
        return predict_chunked(fitted, np.asarray(x_new, dtype=float),
                               soft=soft, jobs=self.jobs,
                               chunk_rows=chunk_rows)

    def label_batch(self, requests: Iterable[Mapping]) -> list[np.ndarray]:
        """Serve many :meth:`label` requests against shared warm state.

        Each request is a mapping of :meth:`label` keyword arguments
        (``x``, ``y``, ``x_new``, plus the optional knobs).  Batching is
        what the warm caches make it: the first request for a given
        ``(kind, x, y)`` fits, every later one hits the memo
        (single-flight, so even concurrent callers share one fit), and
        all of them label through one cached pool and one resident copy
        of the data.
        """
        return [self.label(**dict(request)) for request in requests]

    def trajectory(self, boxes: Sequence, x_test: np.ndarray,
                   y_test: np.ndarray) -> np.ndarray:
        """Peeling trajectory of ``boxes`` on held-out test data.

        Delegates to :func:`repro.metrics.trajectory.peeling_trajectory`
        under the session's worker budget; the test arrays publish once
        to the resident plane and the box-evaluation pool is cached.
        """
        self._require_open()
        from repro.metrics.trajectory import peeling_trajectory

        return peeling_trajectory(boxes, x_test, y_test, jobs=self.jobs)

    # -- introspection -------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        """Warm-cache counters: pools, resident segments, fit memo."""
        from repro.core.reds import fit_stats
        from repro.experiments.dataplane import resident_stats
        from repro.experiments.parallel import pool_stats

        return {"pools": pool_stats(), "dataplane": resident_stats(),
                "metamodel": fit_stats()}
