"""Tests for the Hyperbox scenario representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.subgroup.box import Hyperbox


def _box(lo, hi):
    return Hyperbox(np.array(lo, dtype=float), np.array(hi, dtype=float))


class TestConstruction:
    def test_unrestricted(self):
        box = Hyperbox.unrestricted(3)
        assert box.dim == 3
        assert box.n_restricted == 0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            _box([0.5, 0.0], [0.4, 1.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            Hyperbox(np.zeros(2), np.ones(3))

    def test_immutable(self):
        box = Hyperbox.unrestricted(2)
        with pytest.raises(ValueError):
            box.lower[0] = 0.0

    def test_replace_returns_new_box(self):
        box = Hyperbox.unrestricted(2)
        refined = box.replace(0, lower=0.1, upper=0.9)
        assert box.n_restricted == 0
        assert refined.n_restricted == 1
        assert refined.lower[0] == 0.1

    def test_repr_mentions_restrictions(self):
        box = _box([-np.inf, 0.2], [np.inf, 0.8])
        assert "a2" in repr(box)
        assert "a1" not in repr(box)


class TestMembership:
    def test_contains_basic(self):
        box = _box([0.2, -np.inf], [0.6, np.inf])
        x = np.array([[0.3, 5.0], [0.1, 0.0], [0.6, -3.0]])
        np.testing.assert_array_equal(box.contains(x), [True, False, True])

    def test_boundaries_inclusive(self):
        box = _box([0.2], [0.6])
        x = np.array([[0.2], [0.6]])
        assert box.contains(x).all()

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            Hyperbox.unrestricted(3).contains(rng.random((4, 2)))

    def test_unrestricted_contains_everything(self, rng):
        assert Hyperbox.unrestricted(4).contains(rng.random((100, 4)) * 100).all()


class TestRestrictedDims:
    def test_counts_each_dim_once(self):
        box = _box([0.1, -np.inf, 0.0], [0.9, 0.5, np.inf])
        # dim 0 both sides, dim 1 upper only, dim 2 lower only.
        assert box.n_restricted == 3

    def test_restricted_dims_indices(self):
        box = _box([-np.inf, 0.2, -np.inf], [np.inf, np.inf, 0.7])
        np.testing.assert_array_equal(box.restricted_dims, [1, 2])


class TestVolume:
    def test_unit_cube_reference(self):
        assert Hyperbox.unrestricted(3).volume() == pytest.approx(1.0)

    def test_half_interval(self):
        box = _box([0.0, 0.25], [1.0, 0.75])
        assert box.volume() == pytest.approx(0.5)

    def test_clipping_of_infinite_bounds(self):
        box = _box([-np.inf, 0.5], [np.inf, np.inf])
        assert box.volume() == pytest.approx(0.5)

    def test_custom_reference(self):
        box = _box([0.0], [5.0])
        vol = box.volume(reference_lower=np.array([0.0]),
                         reference_upper=np.array([10.0]))
        assert vol == pytest.approx(0.5)

    def test_discrete_levels(self):
        levels = np.array([0.1, 0.3, 0.5, 0.7, 0.9])
        box = _box([0.25, 0.0], [0.75, 1.0])
        vol = box.volume(discrete_levels={0: levels})
        assert vol == pytest.approx(3 / 5)  # covers 0.3, 0.5, 0.7

    def test_degenerate_box_zero_volume(self):
        assert _box([0.5], [0.5]).volume() == pytest.approx(0.0)


class TestIntersection:
    def test_overlap(self):
        a = _box([0.0, 0.0], [0.6, 0.6])
        b = _box([0.4, 0.4], [1.0, 1.0])
        inter = a.intersection(b)
        np.testing.assert_allclose(inter.lower, [0.4, 0.4])
        np.testing.assert_allclose(inter.upper, [0.6, 0.6])

    def test_disjoint_returns_none(self):
        a = _box([0.0], [0.3])
        b = _box([0.5], [0.9])
        assert a.intersection(b) is None

    def test_self_intersection_is_identity(self):
        a = _box([0.1, 0.2], [0.8, 0.9])
        inter = a.intersection(a)
        assert inter.key() == a.key()


class TestProperties:
    @given(
        lows=st.lists(st.floats(0, 0.45), min_size=1, max_size=5),
        widths=st.lists(st.floats(0.05, 0.5), min_size=1, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_volume_of_intersection_never_exceeds_either(self, lows, widths):
        dim = min(len(lows), len(widths))
        a = _box(lows[:dim], [lo + w for lo, w in zip(lows[:dim], widths[:dim])])
        b = Hyperbox.unrestricted(dim).replace(0, lower=0.2, upper=0.8)
        inter = a.intersection(b)
        if inter is not None:
            assert inter.volume() <= min(a.volume(), b.volume()) + 1e-12

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_unrestricted_key_roundtrip(self, dim):
        a = Hyperbox.unrestricted(dim)
        b = Hyperbox.unrestricted(dim)
        assert a.key() == b.key()
