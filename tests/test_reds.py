"""Tests for the REDS algorithm (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.reds import reds
from repro.metrics import trajectory_of
from repro.subgroup.prim import prim_peel
from tests.conftest import planted_box_data


def _prim_sd(x, y):
    return prim_peel(x, y, alpha=0.1, min_support=20)


class TestInterface:
    def test_rejects_mismatched_data(self, rng):
        with pytest.raises(ValueError):
            reds(rng.random((10, 2)), np.zeros(5), _prim_sd, rng=rng)

    def test_rejects_bad_l(self, rng):
        x, y, _ = planted_box_data(50, 2)
        with pytest.raises(ValueError):
            reds(x, y, _prim_sd, n_new=0, rng=rng)

    def test_rejects_pool_width_mismatch(self, rng):
        x, y, _ = planted_box_data(50, 2)
        with pytest.raises(ValueError):
            reds(x, y, _prim_sd, pool=rng.random((100, 3)), rng=rng)

    def test_result_fields(self, rng):
        x, y, _ = planted_box_data(150, 2, seed=1)
        result = reds(x, y, _prim_sd, metamodel="forest", n_new=500,
                      tune=False, rng=rng)
        assert result.x_new.shape == (500, 2)
        assert result.y_new.shape == (500,)
        assert result.train_time >= 0
        assert result.label_time >= 0
        assert result.sd_time >= 0

    def test_hard_labels_binary(self, rng):
        x, y, _ = planted_box_data(150, 2, seed=2)
        result = reds(x, y, _prim_sd, metamodel="forest", n_new=300,
                      tune=False, rng=rng)
        assert set(np.unique(result.y_new)) <= {0.0, 1.0}

    def test_soft_labels_in_unit_interval(self, rng):
        x, y, _ = planted_box_data(150, 2, seed=3)
        result = reds(x, y, _prim_sd, metamodel="forest", n_new=300,
                      soft_labels=True, tune=False, rng=rng)
        assert (result.y_new >= 0).all() and (result.y_new <= 1).all()
        assert len(np.unique(result.y_new)) > 2  # genuinely soft

    def test_pool_used_verbatim(self, rng):
        x, y, _ = planted_box_data(150, 2, seed=4)
        pool = rng.random((250, 2))
        result = reds(x, y, _prim_sd, metamodel="forest", pool=pool,
                      tune=False, rng=rng)
        np.testing.assert_array_equal(result.x_new, pool)

    def test_custom_sampler_used(self, rng):
        x, y, _ = planted_box_data(150, 2, seed=5)
        def half_cube(n, m, gen):
            return gen.random((n, m)) * 0.5
        result = reds(x, y, _prim_sd, metamodel="forest", n_new=200,
                      sampler=half_cube, tune=False, rng=rng)
        assert result.x_new.max() <= 0.5

    def test_prefitted_instance_accepted(self, rng):
        from repro.metamodels import RandomForestModel
        x, y, _ = planted_box_data(150, 2, seed=6)
        result = reds(x, y, _prim_sd, metamodel=RandomForestModel(n_trees=5),
                      n_new=100, rng=rng)
        assert result.metamodel.n_trees == 5


class TestStatisticalBehaviour:
    def test_reds_improves_prim_on_small_data(self):
        """The paper's core claim on a controlled example: with few
        simulations, PRIM on metamodel-relabelled data finds (on
        average over repetitions) a better box than PRIM on the raw
        data."""
        x_test, y_test, _ = planted_box_data(5000, 4, noise=0.0, seed=8)

        plain_scores, reds_scores = [], []
        for seed in range(5):
            x, y, _ = planted_box_data(150, 4, noise=0.05, seed=100 + seed)
            plain = prim_peel(x, y, alpha=0.1)
            plain_scores.append(trajectory_of(plain.boxes, x_test, y_test)[1])
            relabelled = reds(x, y, _prim_sd, metamodel="boosting",
                              n_new=5000, tune=False,
                              rng=np.random.default_rng(seed))
            reds_scores.append(
                trajectory_of(relabelled.sd_output.boxes, x_test, y_test)[1])
        assert np.mean(reds_scores) > np.mean(plain_scores)

    def test_soft_labels_match_prop1_variance_claim(self, rng):
        """Proposition 1: soft labels have no more variance than hard
        Bernoulli labels with the same mean."""
        p = rng.random(10_000) * 0.8 + 0.1
        hard = (rng.random(10_000) < p).astype(float)
        assert p.var() <= hard.var()
