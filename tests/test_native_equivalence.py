"""Differential tests: the compiled ``native`` engine vs both others.

The contract of ``engine="native"`` (ISSUE 9): every layer — tree /
forest / boosting fit and predict, BestInterval, PRIM, ``discover`` —
returns results *bit-identical* to the ``reference`` and
``vectorized`` engines, under categorical columns, sample weights,
tied values, degenerate data, worker fan-out and injected faults
alike; and on a runner without numba the name silently resolves to
``vectorized`` after exactly one warning.

The suite runs with ``REDS_NATIVE_PUREPY=1``: the native kernels
execute as plain Python (the ``@njit`` shim is the identity), so the
exact code numba would compile is exercised on numba-less runners too
— at interpreter speed, which is why the datasets here are small.
"""

import warnings

import numpy as np
import pytest

from repro import engines
from repro.cli import build_parser
from repro.core.methods import discover
from repro.engines import HAVE_NUMBA, available_engines, resolve
from repro.experiments import faults
from repro.experiments.harness import run_batch
from repro.metamodels._native import grow_tree_native
from repro.metamodels.boosting import GradientBoostingModel
from repro.metamodels.forest import RandomForestModel
from repro.metamodels.tree import DecisionTreeRegressor
from repro.subgroup import _kernels
from repro.subgroup._native import box_membership, max_sum_run_native
from repro.subgroup.best_interval import best_interval
from repro.subgroup.box import Hyperbox
from repro.subgroup.prim import prim_peel

ENGINES = ("reference", "vectorized", "native")


@pytest.fixture(autouse=True)
def _purepy_native(monkeypatch):
    """Force pure-Python native kernels; clean the process flags up."""
    monkeypatch.setenv("REDS_NATIVE_PUREPY", "1")
    yield
    monkeypatch.delenv("REDS_NATIVE_ACTIVE", raising=False)


def _datasets():
    """Small but adversarial datasets: ties, constant columns, noise,
    near-degenerate labels."""
    out = []
    rng = np.random.default_rng(0)
    x = rng.normal(size=(160, 5))
    y = ((x[:, 0] > 0.1) & (x[:, 2] < 0.4)).astype(float)
    out.append(("continuous", x, y))

    rng = np.random.default_rng(1)
    x = rng.integers(0, 4, size=(150, 4)).astype(float)  # heavy ties
    y = ((x[:, 0] >= 2) ^ (rng.random(150) < 0.2)).astype(float)
    out.append(("tied", x, y))

    rng = np.random.default_rng(2)
    x = rng.random((120, 4))
    x[:, 1] = 0.5  # constant column: no valid split there
    y = (x[:, 0] > 0.6).astype(float)
    out.append(("constant-col", x, y))

    x = np.ones((40, 3))
    y = np.zeros(40)  # pure node at the root
    out.append(("degenerate", x, y))
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_known_engines_listed(self):
        assert available_engines() == ("vectorized", "reference", "native")

    def test_unknown_engine_raises_listing_valid_names(self):
        with pytest.raises(ValueError, match="vectorized.*reference.*native"):
            resolve("turbo")

    def test_native_resolves_when_ready(self):
        assert resolve("native") == "native"

    def test_warmup_native_runs(self):
        assert engines.warmup_native() is True

    @pytest.mark.skipif(HAVE_NUMBA, reason="fallback needs numba absent")
    def test_fallback_warns_once_and_returns_vectorized(self, monkeypatch):
        monkeypatch.delenv("REDS_NATIVE_PUREPY", raising=False)
        monkeypatch.setattr(engines, "_warned_fallback", False)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            assert resolve("native") == "vectorized"
            assert resolve("native") == "vectorized"
        ours = [w for w in rec if issubclass(w.category, RuntimeWarning)]
        assert len(ours) == 1
        assert "numba" in str(ours[0].message)
        assert "[native]" in str(ours[0].message)

    @pytest.mark.skipif(HAVE_NUMBA, reason="fallback needs numba absent")
    def test_fallback_keeps_model_usable(self, monkeypatch):
        monkeypatch.delenv("REDS_NATIVE_PUREPY", raising=False)
        monkeypatch.setattr(engines, "_warned_fallback", True)
        _, x, y = _datasets()[0]
        model = RandomForestModel(n_trees=3, engine="native").fit(x, y)
        assert model.engine == "vectorized"
        expected = RandomForestModel(n_trees=3).fit(x, y).predict_proba(x)
        np.testing.assert_array_equal(model.predict_proba(x), expected)


# ----------------------------------------------------------------------
# Metamodels
# ----------------------------------------------------------------------

def _assert_same_trees(trees_a, trees_b):
    assert len(trees_a) == len(trees_b)
    for ta, tb in zip(trees_a, trees_b):
        if isinstance(ta, tuple):
            ta, tb = ta[0], tb[0]
        for attr in ("feature", "threshold", "left", "right", "value",
                     "train_leaf_"):
            np.testing.assert_array_equal(
                getattr(ta, attr), getattr(tb, attr), err_msg=attr)


class TestMetamodelEquivalence:
    @pytest.mark.parametrize("name,x,y", _datasets())
    def test_tree_fit_identical(self, name, x, y):
        trees = [DecisionTreeRegressor(max_depth=6, engine=engine).fit(x, y)
                 for engine in ENGINES]
        _assert_same_trees([trees[0]], [trees[1]])
        _assert_same_trees([trees[0]], [trees[2]])

    def test_tree_weighted_min_child_weight_identical(self):
        rng = np.random.default_rng(7)
        x = rng.random((130, 4))
        y = (x[:, 0] + 0.3 * x[:, 1] > 0.7).astype(float)
        w = rng.random(130) * 2.0
        trees = [
            DecisionTreeRegressor(max_depth=5, min_child_weight=1.5,
                                  engine=engine).fit(x, y, sample_weight=w)
            for engine in ENGINES
        ]
        _assert_same_trees([trees[0]], [trees[1]])
        _assert_same_trees([trees[0]], [trees[2]])

    @pytest.mark.parametrize("name,x,y", _datasets()[:3])
    def test_forest_fit_and_predict_identical(self, name, x, y):
        models = [RandomForestModel(n_trees=8, seed=3, engine=engine).fit(x, y)
                  for engine in ENGINES]
        _assert_same_trees(models[0].trees_, models[1].trees_)
        _assert_same_trees(models[0].trees_, models[2].trees_)
        xq = np.random.default_rng(9).random((200, x.shape[1]))
        ref = models[0].predict_proba(xq)
        for model in models[1:]:
            np.testing.assert_array_equal(model.predict_proba(xq), ref)

    def test_forest_native_fanout_identical(self):
        _, x, y = _datasets()[0]
        serial = RandomForestModel(n_trees=6, seed=1,
                                   engine="native").fit(x, y)
        fanned = RandomForestModel(n_trees=6, seed=1, engine="native",
                                   jobs=2).fit(x, y)
        _assert_same_trees(serial.trees_, fanned.trees_)
        xq = np.random.default_rng(4).random((150, x.shape[1]))
        np.testing.assert_array_equal(serial.predict_proba(xq),
                                      fanned.predict_proba(xq))

    def test_boosting_fit_and_predict_identical(self):
        _, x, y = _datasets()[0]
        models = [
            GradientBoostingModel(n_rounds=12, max_depth=3, seed=2,
                                  subsample=0.8, colsample=0.8,
                                  min_child_weight=0.5,
                                  engine=engine).fit(x, y)
            for engine in ENGINES
        ]
        _assert_same_trees(models[0].trees_, models[1].trees_)
        _assert_same_trees(models[0].trees_, models[2].trees_)
        xq = np.random.default_rng(5).random((200, x.shape[1]))
        ref = models[0].decision_function(xq)
        for model in models[1:]:
            np.testing.assert_array_equal(model.decision_function(xq), ref)

    def test_stacked_walk_native_matches_over_jobs(self):
        _, x, y = _datasets()[1]  # tied values stress the rank walk
        model = RandomForestModel(n_trees=5, seed=8,
                                  engine="native").fit(x, y)
        xq = np.random.default_rng(6).random((300, x.shape[1]))
        single = model.predict_proba(xq)
        stacked = model._ensure_stacked()
        fanned = stacked.leaf_value_sum(xq, jobs=2, native=True)
        np.testing.assert_array_equal(fanned / len(model.trees_), single)

    def test_grow_tree_native_rng_protocol_matches(self):
        """Feature subsampling consumes the generator identically."""
        rng = np.random.default_rng(12)
        x = rng.random((100, 6))
        y = (x[:, 0] > 0.5).astype(float)
        arrays = grow_tree_native(
            x, y, np.ones(100), max_depth=4, min_samples_leaf=1,
            min_child_weight=0.0, max_features=2,
            rng=np.random.default_rng(77))
        tree = DecisionTreeRegressor(max_depth=4, max_features=2,
                                     rng=np.random.default_rng(77),
                                     engine="reference").fit(x, y)
        for got, want in zip(arrays, (tree.feature, tree.threshold,
                                      tree.left, tree.right, tree.value,
                                      tree.train_leaf_)):
            np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Subgroup kernels
# ----------------------------------------------------------------------

class TestSubgroupKernels:
    def test_max_sum_run_native_matches(self):
        cases = [
            np.array([1.0]),
            np.array([-1.0, -2.0, -0.5]),
            np.array([0.0, 0.0, 0.0]),
            np.array([1.0, -2.0, 3.0, -1.0, 2.0]),
            np.array([]),
        ]
        rng = np.random.default_rng(3)
        for _ in range(30):
            n = int(rng.integers(1, 40))
            s = rng.normal(size=n)
            s[rng.random(n) < 0.3] = 0.0  # exact ties in the prefixes
            cases.append(s)
        for s in cases:
            assert max_sum_run_native(s) == _kernels.max_sum_run(s)

    def test_max_sum_run_native_nan_semantics_match(self):
        s = np.array([1.0, np.nan, 2.0, -1.0])
        ns, ne, nb = max_sum_run_native(s)
        vs, ve, vb = _kernels.max_sum_run(s)
        assert (ns, ne) == (vs, ve)
        assert np.isnan(nb) and np.isnan(vb)

    def test_contains_many_native_matches(self):
        rng = np.random.default_rng(10)
        x = rng.random((200, 4))
        x[0, 2] = np.nan  # NaN rows must fall outside identically
        boxes = []
        for seed in range(12):
            gen = np.random.default_rng(seed)
            box = Hyperbox.unrestricted(4)
            for j in range(4):
                if gen.random() < 0.5:
                    lo, hi = np.sort(gen.random(2))
                    box = box.replace(j, lower=lo, upper=hi)
            boxes.append(box)
        # One categorical box: codes on column 3.
        xc = x.copy()
        xc[:, 3] = rng.integers(0, 3, size=200)
        cat_box = Hyperbox.unrestricted(4).with_cats(3, (0.0, 2.0))
        for data, box_set in ((x, boxes), (xc, boxes + [cat_box])):
            plain = _kernels.contains_many(box_set, data)
            native = _kernels.contains_many(box_set, data, native=True)
            np.testing.assert_array_equal(native, plain)

    def test_box_membership_every_dim_compared(self):
        """Unrestricted dims still exclude NaN, like the broadcasts."""
        x = np.array([[0.5, np.nan], [0.5, 0.5]])
        out = box_membership(
            np.array([[-np.inf, -np.inf]]), np.array([[np.inf, np.inf]]),
            np.ascontiguousarray(x.T))
        assert out.tolist() == [[False, True]]


# ----------------------------------------------------------------------
# Subgroup discovery end to end
# ----------------------------------------------------------------------

def _bi_key(result):
    return (result.box.key(), result.wracc, result.n_iterations)


def _prim_key(result):
    return (tuple(b.key() for b in result.boxes), result.chosen,
            tuple(result.train_means), tuple(result.val_means))


class TestSubgroupEquivalence:
    @pytest.mark.parametrize("name,x,y", _datasets()[:3])
    def test_best_interval_identical(self, name, x, y):
        results = [best_interval(x, y, beam_size=3, engine=engine)
                   for engine in ENGINES]
        assert _bi_key(results[0]) == _bi_key(results[1])
        assert _bi_key(results[0]) == _bi_key(results[2])

    def test_best_interval_categorical_identical(self):
        rng = np.random.default_rng(21)
        x = rng.random((150, 4))
        x[:, 3] = rng.integers(0, 4, size=150)
        y = ((x[:, 0] > 0.4) & (x[:, 3] >= 2)).astype(float)
        results = [best_interval(x, y, beam_size=2, engine=engine,
                                 cat_cols=(3,))
                   for engine in ENGINES]
        assert _bi_key(results[0]) == _bi_key(results[1])
        assert _bi_key(results[0]) == _bi_key(results[2])

    def test_prim_identical(self):
        rng = np.random.default_rng(22)
        x = rng.random((150, 4))
        x[:, 3] = rng.integers(0, 3, size=150)
        y = ((x[:, 0] > 0.3) & (x[:, 3] <= 1)).astype(float)
        results = [prim_peel(x, y, min_support=10, engine=engine,
                             cat_cols=(3,))
                   for engine in ENGINES]
        assert _prim_key(results[0]) == _prim_key(results[1])
        assert _prim_key(results[0]) == _prim_key(results[2])

    def test_discover_reds_identical(self):
        rng = np.random.default_rng(23)
        x = rng.random((120, 3))
        y = ((x[:, 0] > 0.4) & (x[:, 1] < 0.7)).astype(float)
        outs = []
        for engine in ENGINES:
            result = discover("RPx", x, y, seed=5, n_new=300,
                              tune_metamodel=False, engine=engine)
            outs.append((tuple(b.key() for b in result.boxes),
                         result.chosen_box.key(), result.train_quality))
        assert outs[0] == outs[1]
        assert outs[0] == outs[2]


# ----------------------------------------------------------------------
# Chaos: native under injected faults
# ----------------------------------------------------------------------

class TestNativeChaos:
    def test_native_grid_bit_identical_under_worker_crashes(
            self, monkeypatch):
        """A fanned-out native grid survives injected worker crashes
        (with retries) and returns records bit-identical to the
        fault-free serial run."""
        grid = dict(functions=("willetal06",), methods=("P",),
                    n=100, n_reps=2, test_size=800, engine="native")
        baseline = run_batch(grid["functions"], grid["methods"],
                             grid["n"], grid["n_reps"],
                             test_size=grid["test_size"], engine="native")
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=13,worker_crash=0.3")
        faults.clear_injection_log()
        try:
            records = run_batch(grid["functions"], grid["methods"],
                                grid["n"], grid["n_reps"],
                                test_size=grid["test_size"],
                                engine="native", jobs=2, retries=6)
        finally:
            faults.clear_injection_log()
        assert len(records) == len(baseline)
        for a, b in zip(baseline, records):
            assert (a.function, a.method, a.n, a.seed) == \
                   (b.function, b.method, b.n, b.seed)
            assert a.pr_auc == b.pr_auc
            assert a.precision == b.precision
            assert a.wracc == b.wracc
            np.testing.assert_array_equal(a.chosen_box.lower,
                                          b.chosen_box.lower)
            np.testing.assert_array_equal(a.chosen_box.upper,
                                          b.chosen_box.upper)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCLI:
    def test_engine_native_accepted(self):
        args = build_parser().parse_args(
            ["discover", "--function", "morris", "--engine", "native"])
        assert args.engine == "native"

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "--function", "morris", "--engine", "turbo"])
        err = capsys.readouterr().err
        assert "native" in err  # the choices list names all engines
