"""Additional tests for report formatting and experiment design."""

import numpy as np
import pytest

from repro.experiments.design import EXPERIMENTS, QUICK, QUICK_FUNCTIONS
from repro.experiments.report import (
    format_relative,
    format_series,
    format_table,
    format_trajectory,
)


class TestFormatTableEdges:
    def test_missing_metric_renders_nan(self):
        text = format_table("t", {"P": {}}, (("pr_auc", "PR AUC", 100.0),))
        assert "nan" in text

    def test_method_order_filters_unknown(self):
        text = format_table("t", {"P": {"m": 1.0}}, (("m", "m", 1.0),),
                            method_order=("P", "Ghost"))
        assert "Ghost" not in text

    def test_columns_are_separated(self):
        """Regression: wide values must not run into each other."""
        rows = {"P": {"m": 0.4003}, "Pc": {"m": 0.3965}}
        text = format_table("t", rows, (("m", "metric %", 100.0),))
        line = text.splitlines()[-1]
        assert "40.03" in line and "39.65" in line
        assert "40.0339.65" not in line.replace(" ", "#")

    def test_scale_applied(self):
        text = format_table("t", {"P": {"m": 0.5}}, (("m", "m", 100.0),))
        assert "50.00" in text


class TestFormatRelativeEdges:
    def test_zero_baseline_gives_nan(self):
        rows = {"base": {"m": 0.0}, "other": {"m": 0.5}}
        text = format_relative("t", rows, "base", (("m", "m"),))
        assert "nan" in text

    def test_negative_change_sign(self):
        rows = {"base": {"m": 1.0}, "worse": {"m": 0.5}}
        text = format_relative("t", rows, "base", (("m", "m"),))
        assert "-50.0%" in text


class TestFormatSeriesAndTrajectory:
    def test_series_row_per_x(self):
        text = format_series("t", "N", [1, 2, 3], {"P": [0.1, 0.2, 0.3]})
        assert len(text.splitlines()) == 6  # title, rule, header, 3 rows

    def test_trajectory_empty_bins_dashed(self):
        trajectories = {"P": np.array([[0.95, 0.3]])}
        text = format_trajectory("t", trajectories, n_bins=4)
        assert "-" in text.splitlines()[-1]

    def test_trajectory_bin_means(self):
        points = np.array([[0.95, 0.2], [0.96, 0.4]])
        text = format_trajectory("t", {"P": points}, n_bins=2)
        # Both points fall into the top recall bin; mean precision 0.3.
        assert "0.300" in text


class TestDesignConfigs:
    def test_quick_functions_are_diverse(self):
        from repro.data import get_model
        dims = {get_model(f).dim for f in QUICK_FUNCTIONS}
        assert len(dims) >= 3  # low- and high-dimensional mix

    def test_quick_scale_is_actually_quick(self):
        assert QUICK.n_reps <= 5
        assert QUICK.n_new_prim <= 20_000

    def test_experiment_sections_cover_evaluation(self):
        sections = {config.section for config in EXPERIMENTS.values()}
        assert {"8.1", "9.1.1", "9.1.2", "9.2.1", "9.2.2", "9.3", "9.4"} <= sections

    def test_nine_artefacts(self):
        assert len(EXPERIMENTS) == 9
