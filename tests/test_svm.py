"""Tests for the SMO-trained RBF SVM."""

import numpy as np
import pytest

from repro.metamodels.svm import SVMModel, median_gamma, rbf_kernel
from tests.conftest import planted_box_data


class TestKernel:
    def test_diagonal_is_one(self, rng):
        x = rng.random((10, 3))
        k = rbf_kernel(x, x, gamma=2.0)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_symmetry(self, rng):
        x = rng.random((15, 4))
        k = rbf_kernel(x, x, gamma=0.7)
        np.testing.assert_allclose(k, k.T, atol=1e-12)

    def test_values_in_unit_interval(self, rng):
        k = rbf_kernel(rng.random((8, 2)), rng.random((9, 2)), gamma=1.0)
        assert (k > 0).all() and (k <= 1).all()

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert rbf_kernel(a, b, gamma=0.5)[0, 0] == pytest.approx(np.exp(-0.5))

    def test_median_gamma_positive(self, rng):
        assert median_gamma(rng.random((100, 5))) > 0

    def test_median_gamma_scales_inversely_with_spread(self, rng):
        x = rng.random((200, 3))
        assert median_gamma(10.0 * x) < median_gamma(x)


class TestTraining:
    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            SVMModel(c=0.0)

    def test_rejects_unfitted(self, rng):
        with pytest.raises(RuntimeError):
            SVMModel().decision_function(rng.random((3, 2)))

    def test_linearly_separable(self):
        gen = np.random.default_rng(0)
        x = np.vstack([gen.normal(-2, 0.5, (50, 2)), gen.normal(2, 0.5, (50, 2))])
        y = np.repeat([0, 1], 50)
        model = SVMModel(c=10.0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.98

    def test_xor_needs_kernel(self):
        """The RBF kernel separates XOR, which no linear model can."""
        gen = np.random.default_rng(1)
        x = gen.random((400, 2))
        y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(int)
        model = SVMModel(c=10.0, gamma=10.0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_planted_box(self):
        x, y, box = planted_box_data(600, 3, seed=8)
        model = SVMModel(c=10.0).fit(x, y)
        grid = np.random.default_rng(3).random((1500, 3))
        assert (model.predict(grid) == box.contains(grid)).mean() > 0.85

    def test_single_class_degenerates_gracefully(self, rng):
        x = rng.random((20, 2))
        model = SVMModel().fit(x, np.ones(20))
        assert (model.predict(rng.random((10, 2))) == 1).all()

    def test_dual_constraint_satisfied(self):
        """sum(alpha_i * y_i) = 0 at the SMO solution."""
        x, y, _ = planted_box_data(300, 2, seed=9)
        model = SVMModel(c=1.0).fit(x, y)
        assert abs(model.support_coef_.sum()) < 1e-6

    def test_box_constraint_satisfied(self):
        x, y, _ = planted_box_data(300, 2, seed=10)
        c = 2.0
        model = SVMModel(c=c).fit(x, y)
        assert (np.abs(model.support_coef_) <= c + 1e-9).all()


class TestPrediction:
    def test_platt_probabilities_monotone_in_margin(self):
        x, y, _ = planted_box_data(400, 2, seed=11)
        model = SVMModel(c=5.0).fit(x, y)
        grid = np.random.default_rng(4).random((200, 2))
        scores = model.decision_function(grid)
        probs = model.predict_proba(grid)
        order = np.argsort(scores)
        assert (np.diff(probs[order]) >= -1e-12).all()

    def test_probabilities_in_unit_interval(self):
        x, y, _ = planted_box_data(200, 3, seed=12)
        model = SVMModel().fit(x, y)
        p = model.predict_proba(np.random.default_rng(5).random((100, 3)))
        assert (p >= 0).all() and (p <= 1).all()

    def test_chunked_prediction_matches(self):
        x, y, _ = planted_box_data(200, 2, seed=13)
        model = SVMModel().fit(x, y)
        grid = np.random.default_rng(6).random((500, 2))
        full = model.decision_function(grid)
        parts = np.concatenate([
            model.decision_function(grid[:123]),
            model.decision_function(grid[123:]),
        ])
        np.testing.assert_allclose(full, parts, atol=1e-12)
