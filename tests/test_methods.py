"""Tests for the method-name registry and the unified discover() API."""

import numpy as np
import pytest

from repro.core.methods import DiscoveryResult, discover, parse_method
from tests.conftest import planted_box_data


class TestParsing:
    @pytest.mark.parametrize("name,sd,optimize", [
        ("P", "prim", False),
        ("Pc", "prim", True),
        ("PB", "bumping", False),
        ("PBc", "bumping", True),
        ("BI", "bi", False),
        ("BIc", "bi", True),
    ])
    def test_plain_methods(self, name, sd, optimize):
        spec = parse_method(name)
        assert spec.sd == sd
        assert spec.optimize is optimize
        assert not spec.is_reds

    def test_bi5_beam(self):
        assert parse_method("BI5").beam_size == 5
        assert parse_method("BI").beam_size == 1

    @pytest.mark.parametrize("name,metamodel,soft,optimize,sd", [
        ("RPf", "forest", False, False, "prim"),
        ("RPx", "boosting", False, False, "prim"),
        ("RPs", "svm", False, False, "prim"),
        ("RPxp", "boosting", True, False, "prim"),
        ("RPfp", "forest", True, False, "prim"),
        ("RPcxp", "boosting", True, True, "prim"),
        ("RBIcxp", "boosting", True, True, "bi"),
        ("RBIcfp", "forest", True, True, "bi"),
    ])
    def test_reds_methods(self, name, metamodel, soft, optimize, sd):
        spec = parse_method(name)
        assert spec.is_reds
        assert spec.metamodel == metamodel
        assert spec.soft_labels is soft
        assert spec.optimize is optimize
        assert spec.sd == sd

    @pytest.mark.parametrize("bad", ["", "X", "RP", "RPz", "Rx", "BIC", "pc", "RPxq"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_method(bad)

    def test_family(self):
        assert parse_method("PB").family == "prim"
        assert parse_method("RBIcxp").family == "bi"


class TestDiscover:
    @pytest.mark.parametrize("name", ["P", "BI"])
    def test_plain_methods_run(self, name):
        x, y, _ = planted_box_data(300, 3, seed=0)
        result = discover(name, x, y, seed=0)
        assert isinstance(result, DiscoveryResult)
        assert result.chosen_box.dim == 3
        assert result.runtime > 0

    def test_bumping_runs_with_few_repeats(self):
        x, y, _ = planted_box_data(300, 3, seed=1)
        result = discover("PB", x, y, seed=0, n_repeats=5)
        assert len(result.boxes) >= 1

    def test_reds_prim_runs(self):
        x, y, _ = planted_box_data(200, 3, seed=2)
        result = discover("RPf", x, y, seed=0, n_new=1000, tune_metamodel=False)
        assert result.hyperparams["L"] == 1000
        assert result.hyperparams["metamodel"] == "forest"

    def test_reds_bi_runs(self):
        x, y, _ = planted_box_data(200, 3, seed=3)
        result = discover("RBIcxp", x, y, seed=0, n_new=800, tune_metamodel=False)
        assert len(result.boxes) == 1
        assert "m" in result.hyperparams

    def test_optimized_alpha_recorded(self):
        x, y, _ = planted_box_data(250, 2, seed=4)
        result = discover("Pc", x, y, seed=0)
        from repro.core.hyperparams import ALPHA_GRID
        assert result.hyperparams["alpha"] in ALPHA_GRID

    def test_default_alpha_used_without_c(self):
        x, y, _ = planted_box_data(250, 2, seed=5)
        result = discover("P", x, y, seed=0, alpha=0.13)
        assert result.hyperparams["alpha"] == 0.13

    def test_trajectory_nested_for_prim(self):
        x, y, _ = planted_box_data(300, 3, seed=6)
        result = discover("P", x, y, seed=0)
        assert len(result.boxes) > 2
        assert result.boxes[0].n_restricted == 0

    def test_seed_reproducibility(self):
        x, y, _ = planted_box_data(200, 3, seed=7)
        a = discover("RPx", x, y, seed=11, n_new=500, tune_metamodel=False)
        b = discover("RPx", x, y, seed=11, n_new=500, tune_metamodel=False)
        assert a.chosen_box.key() == b.chosen_box.key()

    def test_custom_sampler_propagates(self):
        x, y, _ = planted_box_data(200, 2, seed=8)
        calls = []
        def sampler(n, m, rng):
            calls.append(n)
            return rng.random((n, m))
        discover("RPf", x, y, seed=0, n_new=300, sampler=sampler,
                 tune_metamodel=False)
        assert calls == [300]

    def test_pool_mode(self):
        x, y, _ = planted_box_data(200, 2, seed=9)
        pool = np.random.default_rng(1).random((400, 2))
        result = discover("RPf", x, y, seed=0, pool=pool, tune_metamodel=False)
        assert result.hyperparams["L"] == 400

    def test_reds_prim_box_keeps_support_on_original_data(self):
        """REDS grounds PRIM's support constraint in the original
        simulations: every trajectory box must contain at least mp real
        points, preventing arbitrarily deep metamodel-artefact boxes."""
        x, y, _ = planted_box_data(200, 3, seed=10)
        result = discover("RPx", x, y, seed=0, n_new=5000,
                          tune_metamodel=False)
        for box in result.boxes:
            assert box.contains(x).sum() >= 20
