"""Tests for the alternative PRIM peeling objectives."""

import numpy as np
import pytest

from repro.subgroup.prim import OBJECTIVES, prim_peel, _peel_score
from tests.conftest import planted_box_data


class TestPeelScore:
    def test_mean_objective_is_mean(self):
        assert _peel_score("mean", 0.7, 50, 100, 0.5, 0.3, 1000) == 0.7

    def test_gain_normalises_by_removed(self):
        # mean improves by 0.2, 50 points removed -> 0.004.
        score = _peel_score("gain", 0.7, 50, 100, 0.5, 0.3, 1000)
        assert score == pytest.approx(0.2 / 50)

    def test_wracc_uses_global_base_rate(self):
        # kept/total * (mean_after - total_mean) = 0.05 * 0.4.
        score = _peel_score("wracc", 0.7, 50, 100, 0.5, 0.3, 1000)
        assert score == pytest.approx(0.05 * 0.4)


class TestObjectives:
    def test_registry(self):
        assert OBJECTIVES == ("mean", "gain", "wracc")

    def test_unknown_objective_rejected(self, rng):
        x, y, _ = planted_box_data(100, 2)
        with pytest.raises(ValueError, match="objective"):
            prim_peel(x, y, objective="lift")

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_all_objectives_produce_nested_boxes(self, objective):
        x, y, _ = planted_box_data(500, 3, seed=1)
        result = prim_peel(x, y, objective=objective)
        assert len(result.boxes) >= 2
        for previous, current in zip(result.boxes, result.boxes[1:]):
            assert (current.lower >= previous.lower).all()
            assert (current.upper <= previous.upper).all()

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_all_objectives_find_planted_box(self, objective):
        x, y, _ = planted_box_data(2000, 3, seed=2)
        result = prim_peel(x, y, objective=objective)
        assert result.val_means[result.chosen] > 0.85

    def test_mean_is_default(self):
        x, y, _ = planted_box_data(400, 2, seed=3)
        default = prim_peel(x, y)
        explicit = prim_peel(x, y, objective="mean")
        assert [b.key() for b in default.boxes] == [b.key() for b in explicit.boxes]

    def test_objectives_can_disagree(self):
        """When candidate cuts remove different numbers of points (as
        with tied/discrete values), normalising by the removed count
        changes which cut wins, so peeling paths genuinely differ."""
        gen = np.random.default_rng(4)
        x = gen.random((900, 3))
        # Discrete second dim with unequal level masses -> unequal cuts.
        x[:, 1] = gen.choice([0.1, 0.5, 0.9], size=900, p=[0.5, 0.3, 0.2])
        y = ((x[:, 0] < 0.45) & (x[:, 1] >= 0.5)).astype(float)
        noise = gen.random(900) < 0.2
        y = np.where(noise, 1 - y, y)
        mean_path = prim_peel(x, y, objective="mean")
        gain_path = prim_peel(x, y, objective="gain")
        mean_keys = [b.key() for b in mean_path.boxes]
        gain_keys = [b.key() for b in gain_path.boxes]
        assert mean_keys != gain_keys


class TestDiscretePeeling:
    def test_tie_fallback_peels_whole_level(self):
        """With 5-level discrete inputs and alpha < 0.2, the fallback
        removes one level at a time instead of stalling."""
        gen = np.random.default_rng(0)
        levels = np.array([0.1, 0.3, 0.5, 0.7, 0.9])
        x = gen.choice(levels, size=(2000, 2))
        y = ((x[:, 0] >= 0.5) & (x[:, 1] >= 0.5)).astype(float)
        result = prim_peel(x, y, alpha=0.05)
        chosen = result.chosen_box
        # The box should exclude the low levels on both inputs.
        assert chosen.lower[0] >= 0.3
        assert chosen.lower[1] >= 0.3
        assert result.val_means[result.chosen] > 0.95

    def test_mixed_continuous_and_discrete(self):
        gen = np.random.default_rng(1)
        x = gen.random((1500, 2))
        x[:, 1] = gen.choice([0.1, 0.3, 0.5, 0.7, 0.9], size=1500)
        y = ((x[:, 0] < 0.5) & (x[:, 1] <= 0.3)).astype(float)
        result = prim_peel(x, y, alpha=0.07)
        assert result.val_means[result.chosen] > 0.9
        # Both the continuous and the discrete dim get restricted.
        assert result.chosen_box.n_restricted == 2
