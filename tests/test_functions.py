"""Tests for the Table 1 function library and registry."""

import numpy as np
import pytest

from repro.data import (
    ALL_FUNCTIONS,
    MIXED_INPUT_FUNCTIONS,
    TABLE1,
    THIRD_PARTY,
    get_model,
    third_party_dataset,
)
from repro.data.registry import _TABLE1_BY_NAME  # noqa: internal check
from repro.data.saltelli import morris, sobol_g
from repro.data.surjanovic import borehole, BOREHOLE_DOMAIN, ishigami

# Functions cheap enough to check with Monte Carlo in a unit test.
_CHEAP = [name for name in ALL_FUNCTIONS if name != "dsgc"]


class TestRegistry:
    def test_all_functions_count_matches_paper(self):
        # "We experiment with all 33 functions" (Section 9.1).
        assert len(ALL_FUNCTIONS) == 33

    def test_mixed_excludes_dsgc(self):
        assert "dsgc" not in MIXED_INPUT_FUNCTIONS
        assert len(MIXED_INPUT_FUNCTIONS) == 32

    def test_third_party_names(self):
        assert THIRD_PARTY == ("TGL", "lake")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model("not-a-function")

    def test_third_party_not_available_as_model(self):
        with pytest.raises(KeyError):
            get_model("TGL")

    @pytest.mark.parametrize("name", _CHEAP)
    def test_dimensions_match_table1(self, name):
        entry = _TABLE1_BY_NAME[name]
        model = get_model(name)
        assert model.dim == entry.dim
        assert model.n_relevant == entry.n_relevant

    @pytest.mark.parametrize("name", _CHEAP)
    def test_share_matches_table1(self, name):
        """Measured share of interesting outcomes tracks Table 1."""
        entry = _TABLE1_BY_NAME[name]
        measured = get_model(name).share(30_000)
        # Published formulas should land close; calibrated surrogates by
        # construction land very close.  Allow Monte-Carlo noise.
        tolerance = 0.03 if not entry.calibrated else 0.015
        assert abs(measured - entry.share) < tolerance, (
            f"{name}: measured {measured:.3f} vs paper {entry.share:.3f}"
        )

    @pytest.mark.parametrize("name", _CHEAP)
    def test_labels_are_binary(self, name, rng):
        model = get_model(name)
        labels = model.label(rng.random((256, model.dim)), rng)
        assert set(np.unique(labels)) <= {0, 1}

    @pytest.mark.parametrize("name", _CHEAP)
    def test_irrelevant_inputs_do_not_change_output(self, name, rng):
        """Ground truth of #irrel: inert inputs must truly be inert."""
        model = get_model(name)
        if not model.irrelevant:
            pytest.skip("all inputs relevant")
        u = rng.random((128, model.dim))
        v = u.copy()
        for j in model.irrelevant:
            v[:, j] = rng.random(128)
        np.testing.assert_allclose(model.prob(u), model.prob(v), atol=1e-12)

    @pytest.mark.parametrize("name", _CHEAP)
    def test_relevant_inputs_do_change_output(self, name, rng):
        """At least one relevant input must influence the output."""
        model = get_model(name)
        u = rng.random((512, model.dim))
        v = u.copy()
        for j in model.relevant:
            v[:, j] = rng.random(512)
        assert not np.allclose(model.prob(u), model.prob(v))


class TestKnownValues:
    def test_borehole_at_domain_center(self):
        center = BOREHOLE_DOMAIN.mean(axis=0, keepdims=True)
        value = borehole(center)[0]
        # The borehole response at mid-domain is around 80 m^3/yr.
        assert 50 < value < 120

    def test_borehole_monotone_in_pressure_difference(self):
        center = BOREHOLE_DOMAIN.mean(axis=0, keepdims=True)
        higher = center.copy()
        higher[0, 3] = BOREHOLE_DOMAIN[1, 3]  # raise Hu
        assert borehole(higher)[0] > borehole(center)[0]

    def test_ishigami_at_origin(self):
        # sin(0) + 7 sin(0)^2 + 0.1*0*sin(0) = 0
        assert ishigami(np.zeros((1, 3)))[0] == pytest.approx(0.0)

    def test_ishigami_known_point(self):
        x = np.array([[np.pi / 2, np.pi / 2, 0.0]])
        assert ishigami(x)[0] == pytest.approx(1.0 + 7.0)

    def test_sobol_g_at_half_vanishes(self):
        # |4*0.5-2| = 0 and a_1 = 0, so the first factor (and the
        # product) is exactly zero at the cube centre.
        assert sobol_g(np.full((1, 8), 0.5))[0] == pytest.approx(0.0)

    def test_sobol_g_mean_is_one(self, rng):
        values = sobol_g(rng.random((100_000, 8)))
        assert abs(values.mean() - 1.0) < 0.02

    def test_morris_requires_20_inputs(self, rng):
        with pytest.raises(ValueError):
            morris(rng.random((5, 19)))

    def test_morris_first_inputs_dominate(self, rng):
        """Inputs 1-10 carry weight-20 main effects, 11-20 only +-1."""
        u = rng.random((2000, 20))
        v = u.copy()
        v[:, :10] = rng.random((2000, 10))
        big_change = np.abs(morris(u) - morris(v)).mean()
        w = u.copy()
        w[:, 10:] = rng.random((2000, 10))
        small_change = np.abs(morris(u) - morris(w)).mean()
        assert big_change > 5 * small_change


class TestNoisyFunctions:
    @pytest.mark.parametrize("name", ["1", "2", "3", "4", "5", "6", "7", "8", "102"])
    def test_probabilities_in_unit_interval(self, name, rng):
        model = get_model(name)
        p = model.prob(rng.random((512, model.dim)))
        assert (p >= 0).all() and (p <= 1).all()

    @pytest.mark.parametrize("name", ["1", "2", "3", "7"])
    def test_noise_is_genuine(self, name, rng):
        """Near the boundary, probabilities are strictly between 0 and 1."""
        model = get_model(name)
        p = model.prob(rng.random((20_000, model.dim)))
        assert ((p > 0.05) & (p < 0.95)).any()


class TestThirdPartyData:
    def test_tgl_shape_and_share(self):
        x, y = third_party_dataset("TGL")
        assert x.shape == (882, 9)
        assert 0.07 < y.mean() < 0.14  # paper: 10.1 %

    def test_lake_shape_and_share(self):
        x, y = third_party_dataset("lake")
        assert x.shape == (1000, 5)
        assert 0.27 < y.mean() < 0.41  # paper: 33.5 %

    def test_fixed_tables_are_reproducible(self):
        xa, ya = third_party_dataset("TGL")
        xb, yb = third_party_dataset("TGL")
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            third_party_dataset("unknown")


class TestTable1:
    def test_has_35_rows(self):
        assert len(TABLE1) == 35

    def test_shares_are_fractions(self):
        for entry in TABLE1:
            assert 0.0 < entry.share < 1.0
