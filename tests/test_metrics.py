"""Tests for the quality-measure layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    box_consistency,
    n_irrelevant,
    n_restricted,
    pairwise_consistency,
    peeling_trajectory,
    pr_auc,
    precision,
    precision_recall,
    recall,
    trajectory_of,
    wracc_score,
)
from repro.subgroup.box import Hyperbox


def _box(lo, hi):
    return Hyperbox(np.array(lo, dtype=float), np.array(hi, dtype=float))


class TestPrecisionRecall:
    def setup_method(self):
        # 6 points on a line, 3 positives at the left end.
        self.x = np.array([[0.1], [0.2], [0.3], [0.7], [0.8], [0.9]])
        self.y = np.array([1, 1, 1, 0, 0, 0], dtype=float)

    def test_perfect_box(self):
        box = _box([0.0], [0.35])
        assert precision_recall(box, self.x, self.y) == (1.0, 1.0)

    def test_partial_box(self):
        box = _box([0.0], [0.75])
        prec, rec = precision_recall(box, self.x, self.y)
        assert prec == pytest.approx(3 / 4)
        assert rec == pytest.approx(1.0)

    def test_empty_box_has_zero_precision(self):
        box = _box([2.0], [3.0])
        assert precision(box, self.x, self.y) == 0.0

    def test_recall_with_no_positives(self):
        box = _box([0.0], [1.0])
        assert recall(box, self.x, np.zeros(6)) == 0.0

    def test_full_box_precision_is_base_rate(self):
        assert precision(Hyperbox.unrestricted(1), self.x, self.y) == pytest.approx(0.5)


class TestWRAcc:
    def test_full_box_zero(self, rng):
        x = rng.random((50, 2))
        y = rng.integers(0, 2, 50).astype(float)
        assert wracc_score(Hyperbox.unrestricted(2), x, y) == pytest.approx(0.0)

    def test_maximum_is_quarter(self):
        """WRAcc is bounded by 0.25 (half the data, all positives, base 0.5)."""
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] < 0.5).astype(float)
        box = _box([0.0], [0.499])
        assert wracc_score(box, x, y) == pytest.approx(0.25, abs=0.01)


class TestRestrictedCounts:
    def test_n_restricted(self):
        box = _box([0.1, -np.inf, -np.inf], [0.9, 0.5, np.inf])
        assert n_restricted(box) == 2

    def test_n_irrelevant(self):
        box = _box([0.1, 0.1, 0.1], [0.9, 0.9, 0.9])
        assert n_irrelevant(box, relevant=(0,)) == 2
        assert n_irrelevant(box, relevant=(0, 1, 2)) == 0

    def test_n_irrelevant_ignores_unrestricted(self):
        box = _box([0.1, -np.inf], [0.9, np.inf])
        assert n_irrelevant(box, relevant=()) == 1


class TestPRAUC:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pr_auc(np.zeros((3, 3)))

    def test_empty_trajectory(self):
        assert pr_auc(np.empty((0, 2))) == 0.0

    def test_single_point_rectangle(self):
        # (recall, precision) = (0.5, 0.8) -> rectangle 0.4.
        assert pr_auc(np.array([[0.5, 0.8]])) == pytest.approx(0.4)

    def test_two_point_trapezoid(self):
        # From (1.0, 0.2) to (0.5, 0.8): integral of recall over
        # precision = 0.75 * 0.6 = 0.45.
        trajectory = np.array([[1.0, 0.2], [0.5, 0.8]])
        assert pr_auc(trajectory) == pytest.approx(0.45)

    def test_higher_precision_reach_scores_more(self):
        shallow = np.array([[1.0, 0.2], [0.8, 0.5]])
        deep = np.array([[1.0, 0.2], [0.8, 0.5], [0.7, 0.9]])
        assert pr_auc(deep) > pr_auc(shallow)

    def test_duplicate_precisions_use_best_recall(self):
        trajectory = np.array([[0.3, 0.5], [0.9, 0.5], [1.0, 0.2]])
        # At precision 0.5, recall 0.9 wins: area = (0.9+1)/2 * 0.3.
        assert pr_auc(trajectory) == pytest.approx(0.285)

    def test_order_invariance(self, rng):
        trajectory = rng.random((20, 2))
        shuffled = trajectory[rng.permutation(20)]
        assert pr_auc(trajectory) == pytest.approx(pr_auc(shuffled))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_unit_square(self, seed):
        trajectory = np.random.default_rng(seed).random((15, 2))
        assert 0.0 <= pr_auc(trajectory) <= 1.0

    def test_trajectory_of_convenience(self):
        x = np.array([[0.1], [0.9]])
        y = np.array([1.0, 0.0])
        boxes = [Hyperbox.unrestricted(1), _box([0.0], [0.5])]
        points, auc = trajectory_of(boxes, x, y)
        assert points.shape == (2, 2)
        assert auc == pr_auc(points)


class TestPeelingTrajectory:
    def test_full_box_first_point(self):
        x = np.array([[0.2], [0.8]])
        y = np.array([1.0, 0.0])
        points = peeling_trajectory([Hyperbox.unrestricted(1)], x, y)
        np.testing.assert_allclose(points[0], [1.0, 0.5])


class TestConsistency:
    def test_identical_boxes(self):
        box = _box([0.2, 0.2], [0.8, 0.8])
        assert box_consistency(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = _box([0.0], [0.2])
        b = _box([0.5], [0.9])
        assert box_consistency(a, b) == 0.0

    def test_hand_computed_overlap(self):
        a = _box([0.0], [0.6])
        b = _box([0.4], [1.0])
        # Vo = 0.2, Vu = 0.6 + 0.6 - 0.2 = 1.0.
        assert box_consistency(a, b) == pytest.approx(0.2)

    def test_infinite_bounds_clipped_to_reference(self):
        a = Hyperbox.unrestricted(1).replace(0, lower=0.5)
        b = Hyperbox.unrestricted(1)
        # a has volume 0.5, b volume 1, overlap 0.5 -> 0.5 / 1.0.
        assert box_consistency(a, b) == pytest.approx(0.5)

    def test_discrete_levels_used(self):
        levels = np.array([0.1, 0.3, 0.5, 0.7, 0.9])
        a = _box([0.0], [0.4])   # covers 0.1, 0.3 -> 2/5
        b = _box([0.2], [0.6])   # covers 0.3, 0.5 -> 2/5, overlap covers 0.3
        value = box_consistency(a, b, discrete_levels={0: levels})
        assert value == pytest.approx((1 / 5) / (3 / 5))

    def test_pairwise_average(self):
        a = _box([0.0], [0.5])
        b = _box([0.0], [0.5])
        c = _box([0.5], [1.0])
        # pairs: (a,b)=1, (a,c)=0, (b,c)=0 -> 1/3.
        assert pairwise_consistency([a, b, c]) == pytest.approx(1 / 3)

    def test_pairwise_needs_two(self):
        with pytest.raises(ValueError):
            pairwise_consistency([_box([0.0], [1.0])])

    def test_symmetry(self, rng):
        a = _box([0.1, 0.2], [0.5, 0.9])
        b = _box([0.3, 0.1], [0.8, 0.6])
        assert box_consistency(a, b) == pytest.approx(box_consistency(b, a))

    @given(
        lo=st.floats(0.0, 0.5), width=st.floats(0.01, 0.5),
        lo2=st.floats(0.0, 0.5), width2=st.floats(0.01, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_unit_interval(self, lo, width, lo2, width2):
        a = _box([lo], [lo + width])
        b = _box([lo2], [lo2 + width2])
        value = box_consistency(a, b)
        assert 0.0 <= value <= 1.0
