"""Tests for subgroup-set (covering output) quality measures."""

import numpy as np
import pytest

from repro.metrics.subgroup_set import (
    evaluate_subgroup_set,
    joint_coverage,
)
from repro.subgroup.box import Hyperbox
from repro.subgroup.covering import covering
from repro.subgroup.prim import prim_peel


def _box(lo, hi):
    return Hyperbox(np.array(lo, dtype=float), np.array(hi, dtype=float))


class TestJointCoverage:
    def test_empty_set_covers_nothing(self, rng):
        x = rng.random((20, 2))
        assert not joint_coverage([], x).any()

    def test_union_semantics(self):
        x = np.array([[0.1], [0.5], [0.9]])
        boxes = [_box([0.0], [0.2]), _box([0.8], [1.0])]
        np.testing.assert_array_equal(
            joint_coverage(boxes, x), [True, False, True])


class TestEvaluateSet:
    def setup_method(self):
        # Two clusters of positives plus background.
        gen = np.random.default_rng(0)
        self.x = gen.random((1000, 2))
        in_a = ((self.x >= 0.05) & (self.x <= 0.30)).all(axis=1)
        in_b = ((self.x >= 0.70) & (self.x <= 0.95)).all(axis=1)
        self.y = (in_a | in_b).astype(float)
        self.box_a = _box([0.05, 0.05], [0.30, 0.30])
        self.box_b = _box([0.70, 0.70], [0.95, 0.95])

    def test_empty_set(self):
        quality = evaluate_subgroup_set([], self.x, self.y)
        assert quality.n_boxes == 0
        assert quality.uncovered_positive_share == 1.0

    def test_two_perfect_boxes(self):
        quality = evaluate_subgroup_set([self.box_a, self.box_b],
                                        self.x, self.y)
        assert quality.n_boxes == 2
        assert quality.mean_precision == pytest.approx(1.0)
        assert quality.joint_recall == pytest.approx(1.0)
        assert quality.joint_precision == pytest.approx(1.0)
        assert quality.uncovered_positive_share == pytest.approx(0.0)
        # Disjoint boxes: no overlap.
        assert quality.overlap_rate == 0.0

    def test_single_box_misses_other_cluster(self):
        quality = evaluate_subgroup_set([self.box_a], self.x, self.y)
        assert 0.0 < quality.joint_recall < 1.0
        assert quality.uncovered_positive_share == pytest.approx(
            1.0 - quality.joint_recall)

    def test_overlapping_boxes_detected(self):
        near_duplicate = _box([0.06, 0.06], [0.31, 0.31])
        quality = evaluate_subgroup_set([self.box_a, near_duplicate],
                                        self.x, self.y)
        assert quality.overlap_rate > 0.5

    def test_mean_recall_vs_joint_recall(self):
        """Joint recall of complementary boxes exceeds the mean."""
        quality = evaluate_subgroup_set([self.box_a, self.box_b],
                                        self.x, self.y)
        assert quality.joint_recall > quality.mean_recall

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            evaluate_subgroup_set([self.box_a], rng.random((5, 2)), np.zeros(3))

    def test_integration_with_covering(self):
        def discover(x, y):
            return prim_peel(x, y).chosen_box
        boxes = covering(self.x, self.y, discover, n_subgroups=2)
        quality = evaluate_subgroup_set(boxes, self.x, self.y)
        assert quality.n_boxes == 2
        assert quality.joint_recall > 0.7
        assert quality.mean_precision > 0.7

    def test_all_negative_labels(self, rng):
        x = rng.random((100, 2))
        quality = evaluate_subgroup_set([self.box_a], x, np.zeros(100))
        assert quality.joint_recall == 0.0
        assert quality.uncovered_positive_share == 0.0
