"""Tests for PCA-PRIM (orthogonal rotations)."""

import numpy as np
import pytest

from repro.metrics.quality import precision_recall
from repro.subgroup.pca_prim import RotatedBox, pca_prim, pca_rotation
from repro.subgroup.prim import prim_peel


def _oblique_band_data(n=2000, seed=0):
    """y = 1 inside a diagonal band — PRIM-hostile, rotation-friendly."""
    gen = np.random.default_rng(seed)
    x = gen.random((n, 2))
    y = (np.abs(x[:, 0] - x[:, 1]) < 0.12).astype(float)
    return x, y


class TestRotation:
    def test_transform_shape(self, rng):
        x = rng.random((100, 3))
        rotation = pca_rotation(x)
        assert rotation.transform(x).shape == (100, 3)

    def test_components_orthonormal(self, rng):
        x = rng.random((200, 4))
        rotation = pca_rotation(x)
        gram = rotation.components @ rotation.components.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_decorrelates_background(self):
        """Rotated background coordinates are uncorrelated."""
        gen = np.random.default_rng(1)
        base = gen.normal(size=(2000, 2))
        x = base @ np.array([[1.0, 0.8], [0.0, 0.6]])  # correlated
        rotation = pca_rotation(x)
        z = rotation.transform(x)
        corr = np.corrcoef(z, rowvar=False)
        assert abs(corr[0, 1]) < 0.05

    def test_uses_background_class_when_available(self):
        x, y = _oblique_band_data()
        with_labels = pca_rotation(x, y)
        without = pca_rotation(x)
        # Same interface; both orthonormal.
        for rotation in (with_labels, without):
            gram = rotation.components @ rotation.components.T
            np.testing.assert_allclose(gram, np.eye(2), atol=1e-10)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            pca_rotation(rng.random(10))

    def test_rejects_mismatched_labels(self, rng):
        with pytest.raises(ValueError):
            pca_rotation(rng.random((10, 2)), np.zeros(5))

    def test_constant_column_handled(self, rng):
        x = rng.random((50, 2))
        x[:, 1] = 0.5
        rotation = pca_rotation(x)
        assert np.isfinite(rotation.transform(x)).all()


class TestRotatedBox:
    def test_contains_raw_points(self):
        x, y = _oblique_band_data()
        _, rotation, rotated = pca_prim(x, y)
        membership = rotated[-1].contains(x)
        assert membership.dtype == bool
        assert 0 < membership.sum() < len(x)

    def test_loadings_shape(self):
        x, y = _oblique_band_data()
        _, rotation, rotated = pca_prim(x, y)
        assert rotated[0].loadings(0).shape == (2,)

    def test_n_restricted_delegates(self):
        x, y = _oblique_band_data()
        result, _, rotated = pca_prim(x, y)
        assert rotated[-1].n_restricted == result.boxes[-1].n_restricted


class TestPCAPrim:
    def test_beats_plain_prim_on_oblique_band(self):
        """The motivating case of Dalal et al.: an oblique region that
        axis-aligned peeling approximates poorly."""
        x, y = _oblique_band_data(seed=2)
        x_test, y_test = _oblique_band_data(seed=3)

        plain = prim_peel(x, y)
        plain_prec, plain_rec = precision_recall(
            plain.chosen_box, x_test, y_test)

        result, rotation, rotated = pca_prim(x, y)
        chosen = RotatedBox(result.boxes[result.chosen], rotation)
        inside = chosen.contains(x_test)
        covered = float(y_test[inside].sum())
        rot_prec = covered / max(inside.sum(), 1)
        rot_rec = covered / max(y_test.sum(), 1)

        def f_score(p, r):
            return 2 * p * r / max(p + r, 1e-9)

        assert f_score(rot_prec, rot_rec) > f_score(plain_prec, plain_rec)

    def test_trajectory_lengths_match(self):
        x, y = _oblique_band_data()
        result, _, rotated = pca_prim(x, y)
        assert len(rotated) == len(result.boxes)

    def test_validation_data_rotated_too(self):
        x, y = _oblique_band_data(seed=4)
        x_val, y_val = _oblique_band_data(n=500, seed=5)
        result, _, _ = pca_prim(x, y, x_val=x_val, y_val=y_val)
        assert 0 <= result.chosen < len(result.boxes)

    def test_objective_forwarded(self):
        x, y = _oblique_band_data(seed=6)
        result, _, _ = pca_prim(x, y, objective="wracc")
        assert len(result.boxes) >= 1
