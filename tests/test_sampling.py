"""Tests for the design-of-experiments substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (
    MIXED_LEVELS,
    discretize_even_inputs,
    get_sampler,
    halton_sequence,
    latin_hypercube,
    logit_normal,
    uniform_random,
)


class TestLatinHypercube:
    def test_shape(self, rng):
        assert latin_hypercube(50, 7, rng).shape == (50, 7)

    def test_range(self, rng):
        x = latin_hypercube(100, 3, rng)
        assert (x >= 0).all() and (x < 1).all()

    def test_stratification(self, rng):
        """Each margin hits every one of the n strata exactly once."""
        n = 40
        x = latin_hypercube(n, 5, rng)
        for j in range(5):
            strata = np.floor(x[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_different_seeds_differ(self):
        a = latin_hypercube(20, 2, np.random.default_rng(1))
        b = latin_hypercube(20, 2, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_same_seed_reproducible(self):
        a = latin_hypercube(20, 2, np.random.default_rng(7))
        b = latin_hypercube(20, 2, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("n,m", [(0, 3), (-1, 3), (5, 0)])
    def test_invalid_shape_rejected(self, rng, n, m):
        with pytest.raises(ValueError):
            latin_hypercube(n, m, rng)

    @given(n=st.integers(1, 200), m=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_stratification_property(self, n, m):
        x = latin_hypercube(n, m, np.random.default_rng(0))
        strata = np.floor(x * n).astype(int)
        for j in range(m):
            assert len(np.unique(strata[:, j])) == n


class TestHalton:
    def test_shape_and_range(self):
        x = halton_sequence(64, 4)
        assert x.shape == (64, 4)
        assert (x >= 0).all() and (x < 1).all()

    def test_deterministic_without_rng(self):
        np.testing.assert_array_equal(halton_sequence(32, 3), halton_sequence(32, 3))

    def test_randomised_shift_changes_points(self):
        raw = halton_sequence(32, 3)
        shifted = halton_sequence(32, 3, np.random.default_rng(0))
        assert not np.allclose(raw, shifted)

    def test_shift_preserves_within_dim_spacing(self):
        """A Cranley-Patterson rotation is a modulo-1 shift per dim."""
        raw = halton_sequence(32, 2)
        shifted = halton_sequence(32, 2, np.random.default_rng(3))
        delta = (shifted - raw) % 1.0
        # The shift is constant per dimension.
        assert np.allclose(delta, delta[0], atol=1e-12)

    def test_first_base_is_van_der_corput(self):
        # With skip=0, the base-2 radical inverse starts 1/2, 1/4, 3/4...
        x = halton_sequence(3, 1, skip=0)
        np.testing.assert_allclose(x[:, 0], [0.5, 0.25, 0.75])

    def test_low_discrepancy_beats_uniform_tail(self):
        """Halton fills the cube more evenly than a bad MC draw could."""
        x = halton_sequence(128, 2)
        counts, _, _ = np.histogram2d(x[:, 0], x[:, 1], bins=4)
        assert counts.min() >= 4  # every 1/16 cell is populated

    def test_dimension_cap(self):
        with pytest.raises(ValueError):
            halton_sequence(10, 101)


class TestUniformAndDistributions:
    def test_uniform_shape(self, rng):
        assert uniform_random(10, 4, rng).shape == (10, 4)

    def test_logit_normal_support(self, rng):
        x = logit_normal(1000, 3, rng)
        assert (x > 0).all() and (x < 1).all()

    def test_logit_normal_median_at_half(self, rng):
        x = logit_normal(20_000, 1, rng, mu=0.0)
        assert abs(np.median(x) - 0.5) < 0.02

    def test_logit_normal_mu_shifts_mass(self, rng):
        lo = logit_normal(5000, 1, np.random.default_rng(0), mu=-2.0)
        hi = logit_normal(5000, 1, np.random.default_rng(0), mu=2.0)
        assert lo.mean() < 0.3 < 0.7 < hi.mean()

    def test_logit_normal_not_uniform(self, rng):
        """Sigma=1 concentrates mass near 0.5 relative to uniform."""
        x = logit_normal(50_000, 1, rng)
        central = ((x > 0.25) & (x < 0.75)).mean()
        assert central > 0.55  # uniform would give 0.5

    def test_logit_normal_invalid_sigma(self, rng):
        with pytest.raises(ValueError):
            logit_normal(10, 2, rng, sigma=0.0)

    def test_discretize_even_inputs_levels(self, rng):
        x = rng.random((200, 6))
        out = discretize_even_inputs(x, rng)
        for j in (1, 3, 5):
            assert set(np.unique(out[:, j])).issubset(set(MIXED_LEVELS))

    def test_discretize_keeps_odd_inputs(self, rng):
        x = rng.random((200, 5))
        out = discretize_even_inputs(x, rng)
        for j in (0, 2, 4):
            np.testing.assert_array_equal(out[:, j], x[:, j])

    def test_discretize_does_not_mutate_input(self, rng):
        x = rng.random((50, 4))
        original = x.copy()
        discretize_even_inputs(x, rng)
        np.testing.assert_array_equal(x, original)


class TestSamplerRegistry:
    @pytest.mark.parametrize("name", ["lhs", "halton", "uniform"])
    def test_lookup(self, name, rng):
        sampler = get_sampler(name)
        assert sampler(8, 2, rng).shape == (8, 2)

    def test_unknown_sampler(self):
        with pytest.raises(KeyError, match="unknown sampler"):
            get_sampler("sobol-scrambled")
