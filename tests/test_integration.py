"""End-to-end integration tests reproducing the paper's key claims.

These are slower than unit tests but pin the headline behaviours the
whole library exists for.  Each claim is tested at reduced scale with
generous margins, averaged over seeds, so they are robust to noise.
"""

import numpy as np
import pytest

from repro import discover, get_model, make_dataset
from repro.experiments.harness import get_test_data, make_train_data, run_single
from repro.metrics import (
    pairwise_consistency,
    trajectory_of,
    wracc_score,
)


@pytest.fixture(scope="module")
def morris_test_data():
    return get_test_data("morris", size=8000)


class TestHeadlineClaims:
    def test_reds_beats_prim_on_morris(self, morris_test_data):
        """Section 9.2: RPx dominates P on PR AUC for morris."""
        x_test, y_test = morris_test_data
        model = get_model("morris")
        p_aucs, reds_aucs = [], []
        for rep in range(3):
            x, y = make_train_data(model, 400, seed=40 + rep)
            plain = discover("P", x, y, seed=rep)
            relabelled = discover("RPx", x, y, seed=rep, n_new=10_000,
                                  tune_metamodel=False)
            p_aucs.append(trajectory_of(plain.boxes, x_test, y_test)[1])
            reds_aucs.append(trajectory_of(relabelled.boxes, x_test, y_test)[1])
        assert np.mean(reds_aucs) > np.mean(p_aucs) * 1.3

    def test_simulation_saving_claim(self, morris_test_data):
        """The 50-75% claim at reduced scale: REDS at N matches or beats
        plain PRIM at 2N."""
        x_test, y_test = morris_test_data
        model = get_model("morris")
        reds_small, plain_large = [], []
        for rep in range(3):
            x_small, y_small = make_train_data(model, 300, seed=50 + rep)
            x_large, y_large = make_train_data(model, 600, seed=50 + rep)
            reds = discover("RPx", x_small, y_small, seed=rep, n_new=10_000,
                            tune_metamodel=False)
            plain = discover("P", x_large, y_large, seed=rep)
            reds_small.append(trajectory_of(reds.boxes, x_test, y_test)[1])
            plain_large.append(trajectory_of(plain.boxes, x_test, y_test)[1])
        assert np.mean(reds_small) >= np.mean(plain_large)

    def test_reds_improves_bi_wracc(self):
        """Section 9.1: RBIcxp beats BI on test WRAcc (morris)."""
        x_test, y_test = get_test_data("morris", size=8000)
        model = get_model("morris")
        bi_scores, reds_scores = [], []
        for rep in range(3):
            x, y = make_train_data(model, 400, seed=60 + rep)
            bi = discover("BI", x, y, seed=rep)
            reds = discover("RBIcxp", x, y, seed=rep, n_new=3000,
                            tune_metamodel=False)
            bi_scores.append(wracc_score(bi.chosen_box, x_test, y_test))
            reds_scores.append(wracc_score(reds.chosen_box, x_test, y_test))
        assert np.mean(reds_scores) > np.mean(bi_scores)

    def test_reds_reduces_irrelevant_restrictions(self):
        """Tables 3e/4d: tuned and REDS methods barely restrict inert
        inputs while plain P does."""
        records_p, records_reds = [], []
        for rep in range(3):
            records_p.append(run_single(
                "linketal06sin", "P", 300, 70 + rep, test_size=4000))
            records_reds.append(run_single(
                "linketal06sin", "RPx", 300, 70 + rep, n_new=5000,
                tune_metamodel=False, test_size=4000))
        mean_p = np.mean([r.n_irrelevant for r in records_p])
        mean_reds = np.mean([r.n_irrelevant for r in records_reds])
        assert mean_reds <= mean_p

    def test_reds_consistency_gain(self):
        """Table 3c: REDS boxes agree more across repetitions."""
        model = get_model("ishigami")
        boxes_p, boxes_reds = [], []
        for rep in range(4):
            x, y = make_train_data(model, 300, seed=80 + rep)
            boxes_p.append(discover("P", x, y, seed=rep).chosen_box)
            boxes_reds.append(discover(
                "RPx", x, y, seed=rep, n_new=5000,
                tune_metamodel=False).chosen_box)
        assert (pairwise_consistency(boxes_reds)
                > pairwise_consistency(boxes_p) * 0.8)

    def test_dimensionality_correlation_direction(self):
        """Section 9.1: REDS gains grow with input dimension — the gain
        on 20-d morris exceeds the gain on 3-d ishigami."""
        gains = {}
        for function in ("ishigami", "morris"):
            x_test, y_test = get_test_data(function, size=6000)
            model = get_model(function)
            p, reds = [], []
            for rep in range(3):
                x, y = make_train_data(model, 300, seed=90 + rep)
                plain = discover("P", x, y, seed=rep)
                relabelled = discover("RPx", x, y, seed=rep, n_new=8000,
                                      tune_metamodel=False)
                p.append(trajectory_of(plain.boxes, x_test, y_test)[1])
                reds.append(trajectory_of(relabelled.boxes, x_test, y_test)[1])
            gains[function] = np.mean(reds) / max(np.mean(p), 1e-9)
        assert gains["morris"] > gains["ishigami"]
