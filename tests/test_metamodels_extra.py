"""Additional metamodel edge cases and cross-model behaviours."""

import numpy as np
import pytest

from repro.metamodels import (
    GradientBoostingModel,
    RandomForestModel,
    SVMModel,
)
from tests.conftest import planted_box_data


class TestCrossModelContract:
    """Every metamodel must satisfy the Metamodel protocol uniformly."""

    @pytest.fixture(params=["forest", "boosting", "svm"])
    def fitted(self, request):
        x, y, _ = planted_box_data(200, 3, seed=42)
        models = {
            "forest": RandomForestModel(n_trees=10, seed=0),
            "boosting": GradientBoostingModel(n_rounds=20, seed=0),
            "svm": SVMModel(),
        }
        return models[request.param].fit(x, y)

    def test_predict_binary(self, fitted, rng):
        labels = fitted.predict(rng.random((50, 3)))
        assert set(np.unique(labels)) <= {0, 1}

    def test_proba_unit_interval(self, fitted, rng):
        p = fitted.predict_proba(rng.random((50, 3)))
        assert (p >= 0).all() and (p <= 1).all()

    def test_prediction_shapes(self, fitted, rng):
        grid = rng.random((17, 3))
        assert fitted.predict(grid).shape == (17,)
        assert fitted.predict_proba(grid).shape == (17,)

    def test_deterministic_predictions(self, fitted, rng):
        grid = rng.random((20, 3))
        np.testing.assert_array_equal(fitted.predict(grid),
                                      fitted.predict(grid))


class TestForestEdgeCases:
    def test_single_tree(self):
        x, y, _ = planted_box_data(100, 2, seed=0)
        model = RandomForestModel(n_trees=1, seed=0).fit(x, y)
        assert model.predict_proba(x).shape == (100,)

    def test_max_depth_cap(self):
        x, y, _ = planted_box_data(300, 2, seed=1)
        model = RandomForestModel(n_trees=5, max_depth=2, seed=0).fit(x, y)
        assert all(tree.depth <= 2 for tree in model.trees_)

    def test_all_same_label(self, rng):
        x = rng.random((60, 2))
        model = RandomForestModel(n_trees=5, seed=0).fit(x, np.ones(60))
        np.testing.assert_allclose(model.predict_proba(x), 1.0)

    def test_mtry_capped_at_dim(self):
        x, y, _ = planted_box_data(80, 2, seed=2)
        model = RandomForestModel(n_trees=2, max_features=99, seed=0)
        model.fit(x, y)  # must not raise
        assert model._resolve_max_features(2) == 2


class TestBoostingEdgeCases:
    def test_single_round(self):
        x, y, _ = planted_box_data(100, 2, seed=3)
        model = GradientBoostingModel(n_rounds=1, seed=0).fit(x, y)
        assert len(model.trees_) == 1

    def test_all_negative_labels_extreme_base(self, rng):
        x = rng.random((50, 2))
        model = GradientBoostingModel(n_rounds=3, seed=0).fit(x, np.zeros(50))
        assert (model.predict(x) == 0).all()
        assert model.base_score_ < -10  # log-odds of the clipped rate

    def test_decision_function_additive(self):
        """Raw score must equal base + sum of shrunken tree outputs."""
        x, y, _ = planted_box_data(150, 2, seed=4)
        model = GradientBoostingModel(n_rounds=7, seed=0).fit(x, y)
        manual = np.full(len(x), model.base_score_)
        for tree, cols in model.trees_:
            manual += model.learning_rate * tree.predict(x[:, cols])
        np.testing.assert_allclose(model.decision_function(x), manual)


class TestSVMEdgeCases:
    def test_explicit_gamma_respected(self):
        x, y, _ = planted_box_data(120, 2, seed=5)
        model = SVMModel(gamma=3.5).fit(x, y)
        assert model.gamma_ == 3.5

    def test_few_support_vectors_than_points(self):
        """Easy problems need only boundary points as SVs."""
        gen = np.random.default_rng(0)
        x = np.vstack([gen.normal(-2, 0.3, (80, 2)), gen.normal(2, 0.3, (80, 2))])
        y = np.repeat([0, 1], 80)
        model = SVMModel(c=1.0).fit(x, y)
        assert len(model.support_x_) < len(x)

    def test_larger_c_fits_train_harder(self):
        gen = np.random.default_rng(1)
        x = gen.random((200, 2))
        y = ((x[:, 0] - 0.5) ** 2 + (x[:, 1] - 0.5) ** 2 < 0.08).astype(int)
        soft = SVMModel(c=0.1).fit(x, y)
        hard = SVMModel(c=100.0).fit(x, y)
        acc = lambda m: (m.predict(x) == y).mean()
        assert acc(hard) >= acc(soft)
