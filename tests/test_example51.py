"""Reproduction of Example 5.1: why PRIM's interactivity matters.

The paper's Section 5 example: output probability
``f(a) = 1`` on [0, 1), ``a - 1`` on [1, 2], ``0`` on (2, h].  Two
intervals are interesting — [0, 1] (precision 1) and [0, 2] (full
recall) — and which of them maximises WRAcc flips at ``h = 3``:
``WRAcc([0,1]) > WRAcc([0,2])  iff  h < 3``.  BI therefore returns a
box that depends on the arbitrary input range ``h``, while PRIM's
nested trajectory exposes both intervals regardless of ``h``.
"""

import numpy as np
import pytest

from repro.subgroup.best_interval import best_interval
from repro.subgroup.prim import prim_peel


def _example_f(a: np.ndarray) -> np.ndarray:
    return np.clip(np.where(a < 1.0, 1.0, a - 1.0) * (a <= 2.0), 0.0, 1.0)


def _wracc_interval(lo: float, hi: float, h: float) -> float:
    """Analytic WRAcc of [lo, hi] under uniform a ~ U[0, h], N -> inf.

    With soft output f, WRAcc = (P(in) * mean_in - P(in) * mean_all)
    where means are of f.  E[f] over [0,h] = 1.5 / h.
    """
    mass = (hi - lo) / h
    # integral of f over [lo, hi] for 0 <= lo <= hi <= 2.
    def integral(t):
        # f = 1 on [0,1), f = t-1 on [1,2]: cumulative integral.
        if t <= 1.0:
            return t
        return 1.0 + (t - 1.0) ** 2 / 2.0
    mean_in = (integral(hi) - integral(lo)) / (hi - lo)
    return mass * (mean_in - 1.5 / h)


class TestAnalyticCrossover:
    def test_paper_formulas(self):
        """WRAcc([0,1]) = 1/h - 1.5/h^2 and WRAcc([0,2]) = 1.5/h - 3/h^2."""
        for h in (2.5, 3.0, 4.0, 6.0):
            assert _wracc_interval(0, 1, h) == pytest.approx(1 / h - 1.5 / h**2)
            assert _wracc_interval(0, 2, h) == pytest.approx(1.5 / h - 3 / h**2)

    def test_crossover_at_three(self):
        assert _wracc_interval(0, 1, 2.5) > _wracc_interval(0, 2, 2.5)
        assert _wracc_interval(0, 1, 4.0) < _wracc_interval(0, 2, 4.0)
        assert _wracc_interval(0, 1, 3.0) == pytest.approx(
            _wracc_interval(0, 2, 3.0))


class TestEmpiricalBehaviour:
    @staticmethod
    def _sample(h: float, n: int = 40_000, seed: int = 0):
        gen = np.random.default_rng(seed)
        a = gen.random(n) * h
        y = (gen.random(n) < _example_f(a)).astype(float)
        return a.reshape(-1, 1) / h, y  # unit-cube coordinates

    def test_bi_output_depends_on_h(self):
        """BI's box flips between ~[0,1] and ~[0,2] as h crosses 3."""
        for h, expected_hi in ((2.2, 1.0), (6.0, 2.0)):
            x, y = self._sample(h)
            result = best_interval(x, y)
            upper_native = result.box.upper[0] * h
            assert upper_native == pytest.approx(expected_hi, abs=0.25), (
                f"h={h}: BI upper bound {upper_native}")

    def test_prim_trajectory_contains_both_intervals(self):
        """PRIM exposes boxes close to [0,2] AND [0,1] in one run,
        independent of h — the paper's argument for interactivity."""
        for h in (2.2, 6.0):
            x, y = self._sample(h, seed=1)
            result = prim_peel(x, y, alpha=0.05)
            uppers = np.array([
                box.upper[0] * h if np.isfinite(box.upper[0]) else h
                for box in result.boxes
            ])
            # Some box ends near 2 (all interesting mass)...
            assert np.min(np.abs(uppers - 2.0)) < 0.25, f"h={h}"
            # ...and a deeper box ends near 1 (the pure region).
            assert np.min(np.abs(uppers - 1.0)) < 0.25, f"h={h}"
