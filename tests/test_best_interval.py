"""Tests for the BestInterval algorithm."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.subgroup._kernels import max_sum_run as _max_sum_run
from repro.subgroup.best_interval import (
    best_interval,
    best_interval_for_dim,
    wracc,
)
from repro.subgroup.box import Hyperbox
from tests.conftest import planted_box_data


def brute_force_best_interval(x_vals: np.ndarray, y: np.ndarray) -> float:
    """Exhaustive best WRAcc over all closed intervals of observed values."""
    base = y.mean()
    values = np.unique(x_vals)
    best = -np.inf
    for lo, hi in itertools.combinations_with_replacement(values, 2):
        mask = (x_vals >= lo) & (x_vals <= hi)
        score = (y[mask] - base).sum() / len(y)
        best = max(best, score)
    return best


class TestKadane:
    def test_single_element(self):
        assert _max_sum_run(np.array([3.0])) == (0, 0, 3.0)

    def test_all_negative_picks_least_bad(self):
        start, end, total = _max_sum_run(np.array([-5.0, -1.0, -3.0]))
        assert (start, end, total) == (1, 1, -1.0)

    def test_classic_case(self):
        sums = np.array([-2.0, 1.0, -3.0, 4.0, -1.0, 2.0, 1.0, -5.0, 4.0])
        start, end, total = _max_sum_run(sums)
        assert total == pytest.approx(6.0)
        assert (start, end) == (3, 6)


class TestBestIntervalForDim:
    def test_matches_brute_force_on_random_data(self):
        gen = np.random.default_rng(0)
        for trial in range(20):
            x = gen.random((60, 1))
            y = gen.integers(0, 2, 60).astype(float)
            refined = best_interval_for_dim(x, y, Hyperbox.unrestricted(1), 0)
            expected = brute_force_best_interval(x[:, 0], y)
            assert wracc(refined, x, y) == pytest.approx(expected, abs=1e-12)

    @given(seed=st.integers(0, 10_000), n=st.integers(10, 80))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_property(self, seed, n):
        gen = np.random.default_rng(seed)
        x = np.round(gen.random((n, 1)), 1)  # duplicates on purpose
        y = gen.integers(0, 2, n).astype(float)
        refined = best_interval_for_dim(x, y, Hyperbox.unrestricted(1), 0)
        expected = brute_force_best_interval(x[:, 0], y)
        assert wracc(refined, x, y) == pytest.approx(expected, abs=1e-12)

    def test_respects_other_dimensions(self):
        """Points outside the box on other dims must not be considered."""
        x = np.array([[0.1, 0.0], [0.2, 0.0], [0.3, 1.0], [0.4, 1.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        box = Hyperbox.unrestricted(2).replace(1, lower=0.5)  # keeps rows 2,3
        refined = best_interval_for_dim(x, y, box, 0)
        # Within the box every point is positive: the best interval spans
        # all of them, so dim 0 stays unrestricted.
        assert not np.isfinite(refined.lower[0])
        assert not np.isfinite(refined.upper[0])

    def test_extreme_run_keeps_side_unbounded(self):
        """Intervals touching the data extremes stay open-ended."""
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (x[:, 0] > 0.6).astype(float)
        refined = best_interval_for_dim(x, y, Hyperbox.unrestricted(1), 0)
        assert np.isfinite(refined.lower[0])
        assert not np.isfinite(refined.upper[0])

    def test_interior_interval_has_both_bounds(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = ((x[:, 0] > 0.4) & (x[:, 0] < 0.6)).astype(float)
        refined = best_interval_for_dim(x, y, Hyperbox.unrestricted(1), 0)
        assert np.isfinite(refined.lower[0]) and np.isfinite(refined.upper[0])
        assert 0.35 < refined.lower[0] < 0.45
        assert 0.55 < refined.upper[0] < 0.65

    def test_soft_labels(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = np.where(x[:, 0] > 0.5, 0.9, 0.1)
        refined = best_interval_for_dim(x, y, Hyperbox.unrestricted(1), 0)
        assert 0.45 < refined.lower[0] < 0.55


class TestWRAcc:
    def test_unrestricted_box_is_zero(self, rng):
        x = rng.random((100, 2))
        y = rng.integers(0, 2, 100).astype(float)
        assert wracc(Hyperbox.unrestricted(2), x, y) == pytest.approx(0.0)

    def test_hand_computed_value(self):
        # 10 points, 4 positives; box covers 5 points with 4 positives.
        x = np.array([[i / 10] for i in range(10)])
        y = np.array([1, 1, 1, 1, 0, 0, 0, 0, 0, 0], dtype=float)
        box = Hyperbox.unrestricted(1).replace(0, upper=0.45)
        # n/N = 5/10, n+/n = 4/5, N+/N = 0.4 -> 0.5 * (0.8 - 0.4) = 0.2
        assert wracc(box, x, y) == pytest.approx(0.2)

    def test_empty_box_is_zero(self, rng):
        box = Hyperbox.unrestricted(2).replace(0, lower=2.0, upper=3.0)
        assert wracc(box, rng.random((50, 2)), np.ones(50)) == 0.0

    def test_precomputed_base_rate_matches(self, rng):
        # The beam inner loop passes pi = y.mean() precomputed; both
        # paths must agree bit for bit on binary and soft labels.
        x = rng.random((200, 3))
        for y in (rng.integers(0, 2, 200).astype(float), rng.random(200)):
            box = Hyperbox.unrestricted(3).replace(1, lower=0.2, upper=0.7)
            assert wracc(box, x, y, float(y.mean())) == wracc(box, x, y)


class TestBeamSearch:
    def test_rejects_bad_beam(self, rng):
        with pytest.raises(ValueError):
            best_interval(rng.random((30, 2)), np.zeros(30), beam_size=0)

    def test_finds_planted_box(self):
        x, y, box = planted_box_data(1500, 3, seed=20)
        result = best_interval(x, y)
        # Active dims restricted close to the truth, inactive dim free.
        assert result.box.n_restricted == 2
        assert result.wracc > 0.8 * wracc(box, x, y)

    def test_depth_limits_restrictions(self):
        x, y, _ = planted_box_data(800, 4, n_active=2, seed=21)
        result = best_interval(x, y, depth=1)
        assert result.box.n_restricted <= 1

    def test_beam_size_never_hurts_training_wracc(self):
        x, y, _ = planted_box_data(600, 4, noise=0.15, seed=22)
        narrow = best_interval(x, y, beam_size=1)
        wide = best_interval(x, y, beam_size=5)
        assert wide.wracc >= narrow.wracc - 1e-12

    def test_all_negative_labels_returns_valid_box(self, rng):
        x = rng.random((100, 3))
        result = best_interval(x, np.zeros(100))
        assert result.wracc <= 1e-12

    def test_converges_within_cap(self):
        x, y, _ = planted_box_data(500, 3, seed=23)
        result = best_interval(x, y, max_iterations=50)
        assert result.n_iterations < 50
