"""Tests for PRIM with bumping and the covering approach."""

import numpy as np
import pytest

from repro.subgroup.box import Hyperbox
from repro.subgroup.bumping import pareto_front, prim_bumping
from repro.subgroup.covering import covering
from repro.subgroup.prim import prim_peel
from tests.conftest import planted_box_data


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front(np.array([[0.5, 0.5]])).tolist() == [0]

    def test_dominated_point_removed(self):
        points = np.array([[0.9, 0.9], [0.5, 0.5]])
        assert pareto_front(points).tolist() == [0]

    def test_incomparable_points_kept(self):
        points = np.array([[0.9, 0.1], [0.1, 0.9], [0.5, 0.5]])
        assert sorted(pareto_front(points).tolist()) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        points = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert len(pareto_front(points)) == 2

    def test_strict_dominance_definition(self):
        """Equal on all measures = no dominance (Definition 1)."""
        points = np.array([[0.5, 0.5], [0.5, 0.6]])
        assert pareto_front(points).tolist() == [1]


class TestParetoSweepEquivalence:
    """The sort-and-sweep front vs the pairwise-scan reference."""

    def test_randomized_identical_indices(self):
        from repro.subgroup.bumping import _pareto_front_reference

        gen = np.random.default_rng(123)
        for trial in range(60):
            n = int(gen.integers(1, 200))
            points = gen.random((n, 2))
            if trial % 2 == 0:
                # Heavy duplication/ties: the regime the keep-all-
                # duplicates and strict-dominance rules care about.
                points = np.round(points, 1)
            np.testing.assert_array_equal(
                pareto_front(points), _pareto_front_reference(points))

    def test_higher_dimensions_fall_back_to_reference(self):
        gen = np.random.default_rng(7)
        points = np.round(gen.random((50, 3)), 1)
        from repro.subgroup.bumping import _pareto_front_reference

        np.testing.assert_array_equal(
            pareto_front(points), _pareto_front_reference(points))


class TestBumping:
    def test_returns_nondominated_sorted_by_recall(self):
        x, y, _ = planted_box_data(600, 3, noise=0.1, seed=30)
        result = prim_bumping(x, y, n_repeats=10, rng=np.random.default_rng(0))
        assert len(result) >= 1
        assert (np.diff(result.recalls) <= 1e-12).all()

    def test_trajectory_anchored_at_full_recall(self):
        """The front starts at the unrestricted-box anchor (Figure 5's A)."""
        x, y, _ = planted_box_data(600, 3, noise=0.1, seed=30)
        result = prim_bumping(x, y, n_repeats=10, rng=np.random.default_rng(0))
        assert result.recalls[0] == pytest.approx(1.0)
        assert result.precisions[0] <= y.mean() + 1e-9

    def test_front_is_pareto_optimal_beyond_anchor(self):
        x, y, _ = planted_box_data(600, 3, noise=0.1, seed=31)
        result = prim_bumping(x, y, n_repeats=10, rng=np.random.default_rng(1))
        # Skip the anchor box (index 0) if it was inserted: the rest
        # must be mutually non-dominated.
        start = 1 if result.boxes[0].n_restricted == 0 else 0
        points = np.column_stack([result.precisions, result.recalls])[start:]
        assert len(pareto_front(points)) == len(points)

    def test_chosen_is_highest_precision(self):
        x, y, _ = planted_box_data(600, 3, seed=32)
        result = prim_bumping(x, y, n_repeats=8, rng=np.random.default_rng(2))
        assert result.precisions[result.chosen] == result.precisions.max()

    def test_feature_subsets_leave_other_dims_unrestricted(self):
        x, y, _ = planted_box_data(400, 6, n_active=2, seed=33)
        result = prim_bumping(x, y, n_repeats=6, n_features=2,
                              rng=np.random.default_rng(3))
        for box in result.boxes:
            assert box.n_restricted <= 2

    def test_mismatched_validation_rejected(self, rng):
        x, y, _ = planted_box_data(100, 2, seed=34)
        with pytest.raises(ValueError):
            prim_bumping(x, y, x_val=rng.random((10, 2)))

    def test_reproducible_with_seeded_rng(self):
        x, y, _ = planted_box_data(300, 3, seed=35)
        a = prim_bumping(x, y, n_repeats=5, rng=np.random.default_rng(9))
        b = prim_bumping(x, y, n_repeats=5, rng=np.random.default_rng(9))
        assert [bx.key() for bx in a.boxes] == [bx.key() for bx in b.boxes]

    def test_beats_or_matches_single_prim_on_front(self):
        """The bumping front must contain a box at least as precise as
        plain PRIM's chosen box at comparable recall (on train data)."""
        x, y, _ = planted_box_data(800, 4, noise=0.1, seed=36)
        plain = prim_peel(x, y)
        front = prim_bumping(x, y, n_repeats=20, rng=np.random.default_rng(4))
        assert front.precisions.max() >= plain.val_means[plain.chosen] - 0.05


class TestCovering:
    @staticmethod
    def _two_cluster_data(seed: int = 0):
        gen = np.random.default_rng(seed)
        x = gen.random((1500, 2))
        in_a = ((x >= 0.05) & (x <= 0.3)).all(axis=1)
        in_b = ((x >= 0.7) & (x <= 0.95)).all(axis=1)
        return x, (in_a | in_b).astype(float)

    def _discover(self, x, y):
        result = prim_peel(x, y)
        return result.chosen_box

    def test_finds_multiple_subgroups(self):
        x, y = self._two_cluster_data()
        boxes = covering(x, y, self._discover, n_subgroups=2)
        assert len(boxes) == 2
        # The two boxes should cover different clusters.
        first_covers_a = boxes[0].contains(np.array([[0.15, 0.15]]))[0]
        second_covers_b = boxes[1].contains(np.array([[0.85, 0.85]]))[0]
        first_covers_b = boxes[0].contains(np.array([[0.85, 0.85]]))[0]
        assert first_covers_a != first_covers_b
        assert second_covers_b or boxes[1].contains(np.array([[0.15, 0.15]]))[0]

    def test_stops_when_no_positives_left(self):
        gen = np.random.default_rng(1)
        x = gen.random((300, 2))
        y = np.zeros(300)
        y[:3] = 1  # fewer than min_positives after first removal
        boxes = covering(x, y, self._discover, n_subgroups=5, min_positives=4)
        assert len(boxes) == 0

    def test_respects_n_subgroups(self):
        x, y = self._two_cluster_data(2)
        boxes = covering(x, y, self._discover, n_subgroups=1)
        assert len(boxes) == 1

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            covering(rng.random((10, 2)), np.zeros(5), self._discover)

    def test_unrestricted_result_stops(self):
        gen = np.random.default_rng(3)
        x = gen.random((200, 2))
        y = np.ones(200)  # PRIM keeps the full box: mean is already 1
        boxes = covering(x, y, lambda a, b: Hyperbox.unrestricted(2))
        assert boxes == []
