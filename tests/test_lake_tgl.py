"""Tests for the lake simulation and the synthetic TGL generator."""

import numpy as np
import pytest

from repro.data.lake import LAKE_DIM, lake_dataset, lake_outcome
from repro.data.lake import _critical_threshold
from repro.data.tgl import TGL_DIM, TGL_SIZE, tgl_dataset, tgl_prob


class TestLakePhysics:
    def test_critical_threshold_is_equilibrium(self):
        """At the returned point, recycling equals decay."""
        b = np.array([0.2, 0.3, 0.42])
        q = np.array([2.5, 3.0, 4.0])
        x = _critical_threshold(b, q)
        residual = x**q / (1.0 + x**q) - b * x
        np.testing.assert_allclose(residual, 0.0, atol=1e-10)

    def test_high_decay_rate_protects_lake(self, rng):
        """b near its maximum: the lake should almost never flip."""
        u = rng.random((300, LAKE_DIM))
        u[:, 0] = 0.95  # large b
        u[:, 2] = 0.1   # small natural inflows
        flips = lake_outcome(u, np.random.default_rng(0))
        assert flips.mean() < 0.1

    def test_low_decay_high_inflow_flips(self, rng):
        u = rng.random((300, LAKE_DIM))
        u[:, 0] = 0.0   # small b
        u[:, 2] = 1.0   # large mean inflow
        flips = lake_outcome(u, np.random.default_rng(0))
        assert flips.mean() > 0.9

    def test_delta_is_irrelevant(self, rng):
        """The discount rate affects utility, not dynamics."""
        u = rng.random((100, LAKE_DIM))
        v = u.copy()
        v[:, 4] = rng.random(100)
        a = lake_outcome(u, np.random.default_rng(5))
        b = lake_outcome(v, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            lake_outcome(rng.random((4, 3)), rng)


class TestLakeDataset:
    def test_shape(self):
        x, y = lake_dataset()
        assert x.shape == (1000, LAKE_DIM)
        assert y.shape == (1000,)

    def test_share_matches_paper(self):
        _, y = lake_dataset()
        assert 0.28 < y.mean() < 0.40  # paper: 33.5 %

    def test_custom_size(self):
        x, y = lake_dataset(n=200, seed=3)
        assert len(x) == len(y) == 200


class TestTGL:
    def test_shape(self):
        x, y = tgl_dataset()
        assert x.shape == (TGL_SIZE, TGL_DIM)

    def test_share_matches_paper(self):
        _, y = tgl_dataset()
        assert 0.07 < y.mean() < 0.14  # paper: 10.1 %

    def test_prob_field_values(self, rng):
        p = tgl_prob(rng.random((1000, TGL_DIM)))
        assert set(np.unique(p)) <= {0.02, 0.90}

    def test_interesting_region_is_low_corner(self):
        inside = np.full((1, TGL_DIM), 0.1)
        outside = np.full((1, TGL_DIM), 0.9)
        assert tgl_prob(inside)[0] > tgl_prob(outside)[0]

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            tgl_prob(rng.random((4, 2)))
