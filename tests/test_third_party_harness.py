"""Tests for the third-party (Section 9.3) evaluation path."""

import numpy as np
import pytest

from repro.experiments.harness import (
    DEFAULT_THIRD_PARTY_ALPHA,
    aggregate_third_party,
    run_third_party,
)


class TestRunThirdParty:
    def test_record_count(self):
        records = run_third_party("lake", "P", n_splits=5, n_reps=2,
                                  tune_metamodel=False)
        assert len(records) == 10  # 5 folds x 2 repetitions

    def test_fold_sizes(self):
        records = run_third_party("lake", "P", n_splits=5, n_reps=1,
                                  tune_metamodel=False)
        # lake has 1000 rows: each training fold holds 800.
        assert all(r.n == 800 for r in records)

    def test_metrics_ranges(self):
        records = run_third_party("TGL", "P", n_splits=5, n_reps=1,
                                  alpha=DEFAULT_THIRD_PARTY_ALPHA["TGL"],
                                  tune_metamodel=False)
        for record in records:
            assert 0.0 <= record.precision <= 1.0
            assert 0.0 <= record.pr_auc <= 1.0
            assert record.n_irrelevant == 0  # no ground truth

    def test_reds_method_runs(self):
        records = run_third_party("lake", "RPf", n_splits=5, n_reps=1,
                                  n_new=2000, tune_metamodel=False)
        assert len(records) == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            run_third_party("unknown", "P", n_reps=1)


class TestAggregateThirdParty:
    def test_aggregation_keys_and_consistency(self):
        records = run_third_party("lake", "P", n_splits=5, n_reps=1,
                                  tune_metamodel=False)
        agg = aggregate_third_party(records)
        assert ("lake", "P") in agg
        cell = agg[("lake", "P")]
        assert cell["n_reps"] == 5
        assert 0.0 <= cell["consistency"] <= 1.0
        assert cell["n_irrelevant"] == 0.0

    def test_tgl_alpha_convention(self):
        # The paper uses alpha = 0.1 for TGL following earlier research.
        assert DEFAULT_THIRD_PARTY_ALPHA["TGL"] == 0.1
        assert DEFAULT_THIRD_PARTY_ALPHA["lake"] == 0.05
