"""Tests for the persistent content-addressed experiment store.

The contract (ISSUE 2 / ROADMAP caching layer): a warm store reproduces
the cold run's records exactly — field by field, runtime included —
while executing zero new tasks; a partially-filled store executes only
the missing tasks; and any code/config change misses instead of
returning stale records.
"""

import json
import pickle

import numpy as np
import pytest

from repro.experiments import parallel
from repro.experiments.harness import run_batch, run_third_party
from repro.experiments.store import (
    MISSING,
    STORE_FORMAT,
    ExperimentStore,
    ExperimentStoreError,
    code_fingerprint,
    open_store,
    task_key,
)

CALLS: list[int] = []


def _tracked(value: int) -> int:
    """Module-level task function whose invocations are observable."""
    CALLS.append(value)
    return value * 2


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


def assert_records_equal(expected, actual, *, include_runtime=False):
    """Field-by-field equality of two record lists.

    ``include_runtime=True`` additionally pins the wall-clock field —
    valid only when ``actual`` was *loaded* from the store (a cached
    record keeps the runtime of the run that produced it), never when
    comparing two independent computations.
    """
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert (a.function, a.method, a.n, a.seed) == \
               (b.function, b.method, b.n, b.seed)
        assert a.pr_auc == b.pr_auc
        assert a.precision == b.precision
        assert a.recall == b.recall
        assert a.wracc == b.wracc
        assert a.n_restricted == b.n_restricted
        assert a.n_irrelevant == b.n_irrelevant
        if include_runtime:
            assert a.runtime == b.runtime
        np.testing.assert_array_equal(a.chosen_box.lower, b.chosen_box.lower)
        np.testing.assert_array_equal(a.chosen_box.upper, b.chosen_box.upper)
        np.testing.assert_array_equal(a.trajectory, b.trajectory)


GRID = dict(functions=("willetal06",), methods=("P", "BI"),
            n=120, n_reps=2, test_size=1500)


def run_grid(**overrides):
    kwargs = dict(GRID)
    kwargs.update(overrides)
    functions = kwargs.pop("functions")
    methods = kwargs.pop("methods")
    n = kwargs.pop("n")
    n_reps = kwargs.pop("n_reps")
    return run_batch(functions, methods, n, n_reps, **kwargs)


class TestTaskKey:
    def test_stable_across_calls(self):
        task = dict(function="ishigami", method="P", n=400, seed=7)
        assert task_key(_tracked, task) == task_key(_tracked, task)

    def test_kwarg_order_irrelevant(self):
        a = task_key(_tracked, dict(n=400, seed=7, method="P"))
        b = task_key(_tracked, dict(method="P", seed=7, n=400))
        assert a == b

    def test_any_config_change_changes_key(self):
        base = dict(function="ishigami", method="P", n=400, seed=7,
                    variant="continuous", n_new=None, tune_metamodel=True)
        reference = task_key(_tracked, base)
        for field, value in [("function", "morris"), ("method", "RPx"),
                             ("n", 401), ("seed", 8), ("variant", "mixed"),
                             ("n_new", 10_000), ("tune_metamodel", False)]:
            changed = dict(base, **{field: value})
            assert task_key(_tracked, changed) != reference, field

    def test_function_identity_is_part_of_key(self):
        task = dict(n=1)
        assert task_key(_tracked, task) != task_key("other.func", task)

    def test_code_fingerprint_is_part_of_key(self):
        task = dict(n=1)
        assert (task_key(_tracked, task, fingerprint="a")
                != task_key(_tracked, task, fingerprint="b"))

    def test_rejects_unstorable_values(self):
        with pytest.raises(TypeError, match="not\\s+storable"):
            task_key(_tracked, dict(x=np.arange(3)))

    def test_fingerprint_covers_algorithm_sources(self):
        # The default fingerprint is a hex digest derived from package
        # sources; it must be importable-state independent (pure file
        # content), hence equal across calls.
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestStoreBasics:
    def test_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        store.put("ab" + "0" * 62, {"answer": 42})
        assert store.get("ab" + "0" * 62) == {"answer": 42}
        assert store.hits == 1 and store.writes == 1

    def test_missing_returns_sentinel(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        assert store.get("ff" + "0" * 62) is MISSING
        assert not MISSING
        assert store.misses == 1

    def test_len_contains_keys(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, i)
        assert len(store) == 3
        assert set(store.keys()) == set(keys)
        assert keys[0] in store
        assert "ee" + "0" * 62 not in store

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        store.put("ab" + "0" * 62, list(range(100)))
        assert not list((tmp_path / "s").rglob("*.tmp"))

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        store.put(key, {"answer": 42})
        store.path_for(key).write_bytes(b"\x80corrupt")
        assert store.get(key) is MISSING
        assert not store.path_for(key).exists()

    def test_transient_read_failure_does_not_delete(self, tmp_path):
        # An OSError on open (here: the path is a directory) is a plain
        # miss; only genuine unpickle corruption may delete the entry.
        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).mkdir()
        assert store.get(key) is MISSING
        assert store.path_for(key).exists()

    def test_meta_format_mismatch_raises(self, tmp_path):
        root = tmp_path / "s"
        ExperimentStore(root)
        (root / "meta.json").write_text(
            json.dumps({"format": STORE_FORMAT + 1}))
        with pytest.raises(ExperimentStoreError, match="format"):
            ExperimentStore(root)

    def test_open_store_coercion(self, tmp_path):
        assert open_store(None) is None
        store = ExperimentStore(tmp_path / "s")
        assert open_store(store) is store
        opened = open_store(tmp_path / "other")
        assert isinstance(opened, ExperimentStore)
        assert opened.root == tmp_path / "other"


class TestClaimMarkers:
    def test_first_claim_wins(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        assert store.claim_owner(key) is None
        assert store.claim(key, "shard-0/2")
        assert store.claim_owner(key) == "shard-0/2"
        assert not store.claim(key, "shard-1/2")
        assert store.claim_owner(key) == "shard-0/2"

    def test_reclaim_by_same_owner_is_granted(self, tmp_path):
        # A shard restarted after a crash re-wins its own stale claims.
        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        assert store.claim(key, "shard-0/2")
        assert store.claim(key, "shard-0/2")

    def test_cross_instance_arbitration(self, tmp_path):
        # Claims coordinate *independent invocations*: a second store
        # object on the same directory sees the first one's claims.
        key = "cd" + "0" * 62
        assert ExperimentStore(tmp_path / "s").claim(key, "shard-0/2")
        other = ExperimentStore(tmp_path / "s")
        assert not other.claim(key, "shard-1/2")
        assert other.claim_owner(key) == "shard-0/2"

    def test_claims_are_not_records(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        assert store.claim(key, "shard-0/2")
        assert len(store) == 0
        assert list(store.keys()) == []
        assert store.get(key) is MISSING

    def test_deleting_claims_releases_ownership(self, tmp_path):
        import shutil

        store = ExperimentStore(tmp_path / "s")
        key = "ab" + "0" * 62
        assert store.claim(key, "shard-0/2")
        shutil.rmtree(store.root / "claims")
        assert store.claim(key, "shard-1/2")


class TestExecuteWithStore:
    def test_second_run_executes_nothing(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(value=i) for i in range(4)]
        first = parallel.execute(_tracked, tasks, store=store)
        assert first == [0, 2, 4, 6]
        assert CALLS == [0, 1, 2, 3]
        second = parallel.execute(_tracked, tasks,
                                  store=ExperimentStore(tmp_path / "s"))
        assert second == first
        assert CALLS == [0, 1, 2, 3], "warm run must not call the task fn"

    def test_partial_store_executes_only_missing(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(value=i) for i in range(6)]
        parallel.execute(_tracked, tasks[:3], store=store)
        CALLS.clear()
        resumed = parallel.execute(_tracked, tasks, store=store)
        assert resumed == [0, 2, 4, 6, 8, 10]
        assert CALLS == [3, 4, 5], "cached prefix must not re-execute"

    def test_results_keep_task_order_with_interleaved_cache(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(value=i) for i in range(6)]
        parallel.execute(_tracked, tasks[::2], store=store)  # 0, 2, 4 cached
        CALLS.clear()
        out = parallel.execute(_tracked, tasks, store=store)
        assert out == [0, 2, 4, 6, 8, 10]
        assert CALLS == [1, 3, 5]

    def test_no_resume_recomputes_and_overwrites(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(value=i) for i in range(3)]
        keys = [store.key(_tracked, task) for task in tasks]
        parallel.execute(_tracked, tasks, store=store)
        store.put(keys[1], -999)  # poison one entry
        poisoned = parallel.execute(_tracked, tasks, store=store)
        assert poisoned == [0, -999, 4], "resume=True must trust the store"
        fresh = parallel.execute(_tracked, tasks, store=store, resume=False)
        assert fresh == [0, 2, 4]
        assert store.get(keys[1]) == 2, "no-cache run must repair the entry"

    def test_store_accepts_plain_path(self, tmp_path):
        tasks = [dict(value=i) for i in range(2)]
        parallel.execute(_tracked, tasks, store=tmp_path / "s")
        CALLS.clear()
        parallel.execute(_tracked, tasks, store=tmp_path / "s")
        assert CALLS == []

    def test_fingerprint_change_invalidates(self, tmp_path):
        tasks = [dict(value=i) for i in range(2)]
        parallel.execute(_tracked, tasks,
                         store=ExperimentStore(tmp_path / "s"))
        CALLS.clear()
        changed = ExperimentStore(tmp_path / "s", fingerprint="edited-code")
        parallel.execute(_tracked, tasks, store=changed)
        assert CALLS == [0, 1], "a code change must miss, never go stale"

    def test_parallel_jobs_persist_every_record(self, tmp_path):
        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(value=i) for i in range(5)]
        out = parallel.execute(_tracked, tasks, jobs=3, store=store)
        assert out == [0, 2, 4, 6, 8]
        assert store.writes == 5
        warm = ExperimentStore(tmp_path / "s")
        assert parallel.execute(_tracked, tasks, jobs=3, store=warm) == out
        assert warm.writes == 0 and warm.hits == 5


class TestRunBatchStore:
    @pytest.fixture(scope="class")
    def cold(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("store")
        store = ExperimentStore(root)
        records = run_grid(store=store)
        assert store.writes == len(records) == 4
        return root, records

    def test_warm_rerun_is_identical_and_executes_nothing(self, cold):
        root, cold_records = cold
        store = ExperimentStore(root)
        warm = run_grid(store=store)
        assert store.writes == 0, "warm store must dispatch zero tasks"
        assert store.hits == len(cold_records)
        assert_records_equal(cold_records, warm, include_runtime=True)

    def test_warm_parallel_rerun_is_identical(self, cold):
        root, cold_records = cold
        store = ExperimentStore(root)
        warm = run_grid(store=store, jobs=3)
        assert store.writes == 0
        assert_records_equal(cold_records, warm, include_runtime=True)

    def test_store_backed_equals_storeless(self, cold):
        _, cold_records = cold
        assert_records_equal(cold_records, run_grid())

    def test_partial_store_runs_only_missing_cells(self, cold, tmp_path):
        _, cold_records = cold
        store = ExperimentStore(tmp_path / "partial")
        # Simulate an interrupted grid: only the "P" cells finished.
        run_grid(methods=("P",), store=store)
        assert store.writes == 2
        resumed = run_grid(store=store)
        assert store.hits == 2 and store.writes == 4
        assert_records_equal(cold_records, resumed)

    def test_partial_store_parallel_resume(self, cold, tmp_path):
        # Exercises the pooled path on a half-warm store, including the
        # warmup filtering down to the functions with pending tasks.
        _, cold_records = cold
        store = ExperimentStore(tmp_path / "partial-par")
        run_grid(methods=("P",), store=store)
        resumed = run_grid(store=store, jobs=2)
        assert store.hits == 2 and store.writes == 4
        assert_records_equal(cold_records, resumed)

    def test_config_change_does_not_hit_cache(self, cold):
        root, _ = cold
        store = ExperimentStore(root)
        run_grid(store=store, n_reps=1, n=121)
        assert store.hits == 0 and store.writes == 2


class TestRunThirdPartyStore:
    def test_warm_rerun_is_identical_and_executes_nothing(self, tmp_path):
        kwargs = dict(n_splits=3, n_reps=2, tune_metamodel=False)
        store = ExperimentStore(tmp_path / "s")
        cold = run_third_party("lake", "P", store=store, **kwargs)
        assert store.writes == len(cold) == 6
        warm_store = ExperimentStore(tmp_path / "s")
        warm = run_third_party("lake", "P", store=warm_store, **kwargs)
        assert warm_store.writes == 0 and warm_store.hits == 6
        assert_records_equal(cold, warm, include_runtime=True)
        assert_records_equal(cold, run_third_party("lake", "P", **kwargs))
