"""Warm execution sessions: equivalence, reuse accounting, zero leaks.

The contract (ISSUE 10): a :class:`repro.experiments.session.Session`
serves repeated discovery work from warm state — cached worker pools,
a resident shared-memory registry, memoized metamodel fits — with
results **bit-identical** to the one-shot path at every
engine/executor/jobs setting, zero redundant pool spawns and zero
redundant segment publications across warm calls (CPU-count
independent: everything here pins explicit ``jobs=`` values, so it
asserts the same counts on a 1-CPU container), and zero leaked shm
segments after session close.
"""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.core import reds as reds_mod
from repro.core.reds import (
    clear_fit_cache,
    fit_metamodel,
    fit_stats,
    reset_fit_stats,
)
from repro.experiments import parallel
from repro.experiments.dataplane import (
    active_segments,
    resident_segment_names,
    resident_stats,
    reset_resident_stats,
    session_active,
    shutdown_resident,
)
from repro.experiments.harness import run_batch
from repro.experiments.parallel import pool_stats, reset_pool_stats
from repro.experiments.session import Session
from repro.metamodels.base import predict_chunked
from repro.metamodels.tuning import make_metamodel

from test_parallel_harness import assert_records_identical


@pytest.fixture(autouse=True)
def _cold_start(monkeypatch):
    """Every test starts and ends with no warm state."""
    monkeypatch.delenv("REDS_SESSION", raising=False)
    parallel.close_pools()
    shutdown_resident()
    clear_fit_cache()
    reset_pool_stats()
    reset_resident_stats()
    reset_fit_stats()
    yield
    parallel.close_pools()
    shutdown_resident()
    clear_fit_cache()


def _toy_data(n=240, m=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, m))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0.9).astype(float)
    return x, y


class TestSessionLifecycle:
    def test_env_toggled_and_restored(self):
        assert not session_active()
        with Session():
            assert session_active()
            assert os.environ.get("REDS_SESSION") == "1"
        assert not session_active()
        assert "REDS_SESSION" not in os.environ

    def test_nested_sessions_refcount(self):
        with Session():
            with Session():
                assert session_active()
            # The inner close must not tear the outer session down.
            assert session_active()
        assert not session_active()

    def test_requests_require_open_session(self):
        session = Session()
        x, y = _toy_data()
        with pytest.raises(RuntimeError, match="not open"):
            session.label(x, y, x)

    def test_close_is_idempotent(self):
        session = Session().open()
        session.close()
        session.close()
        assert not session_active()


class TestFitMemo:
    def test_same_object_and_identical_predictions(self):
        x, y = _toy_data()
        x_new = np.random.default_rng(7).random((500, x.shape[1]))
        cold = make_metamodel("boosting").fit(x, y).predict(x_new)
        before = fit_stats()
        with Session(tune=False):
            a = fit_metamodel("boosting", x, y, tune=False)
            b = fit_metamodel("boosting", x, y, tune=False)
            assert a is b
            warm = a.predict(x_new)
        after = fit_stats()
        assert after["fits"] - before["fits"] == 1
        assert after["hits"] - before["hits"] == 1
        np.testing.assert_array_equal(cold, warm)

    def test_distinct_configs_do_not_collide(self):
        x, y = _toy_data()
        x2, y2 = _toy_data(seed=3)
        with Session(tune=False):
            a = fit_metamodel("boosting", x, y, tune=False)
            b = fit_metamodel("boosting", x2, y2, tune=False)
            c = fit_metamodel("forest", x, y, tune=False)
            assert a is not b
            assert a is not c

    def test_no_memo_outside_session(self):
        x, y = _toy_data()
        a = fit_metamodel("boosting", x, y, tune=False)
        b = fit_metamodel("boosting", x, y, tune=False)
        assert a is not b


class TestWarmEquivalence:
    def test_label_matches_cold_hard_and_soft(self):
        x, y = _toy_data()
        x_new = np.random.default_rng(5).random((3000, x.shape[1]))
        cold_model = make_metamodel("boosting").fit(x, y)
        cold_hard = predict_chunked(cold_model, x_new, jobs=2)
        cold_soft = predict_chunked(cold_model, x_new, soft=True, jobs=2)
        with Session(jobs=2, tune=False) as session:
            warm_hard = session.label(x, y, x_new)
            warm_soft = session.label(x, y, x_new, soft=True)
        np.testing.assert_array_equal(cold_hard, warm_hard)
        np.testing.assert_array_equal(cold_soft, warm_soft)

    def test_label_batch_shares_one_fit(self):
        x, y = _toy_data()
        rng = np.random.default_rng(11)
        news = [rng.random((400, x.shape[1])) for _ in range(3)]
        before = fit_stats()
        with Session(jobs=1, tune=False) as session:
            out = session.label_batch(
                [dict(x=x, y=y, x_new=xn) for xn in news])
        after = fit_stats()
        assert after["fits"] - before["fits"] == 1
        assert after["hits"] - before["hits"] == 2
        cold_model = make_metamodel("boosting").fit(x, y)
        for xn, warm in zip(news, out):
            np.testing.assert_array_equal(cold_model.predict(xn), warm)

    def test_run_batch_warm_identical_to_cold(self):
        kwargs = dict(n_new=1200, tune_metamodel=False, test_size=1200,
                      jobs=2)
        cold = run_batch(("ishigami",), ("P", "RPf"), 120, 2, **kwargs)
        with Session(jobs=2, tune=False):
            warm1 = run_batch(("ishigami",), ("P", "RPf"), 120, 2, **kwargs)
            warm2 = run_batch(("ishigami",), ("P", "RPf"), 120, 2, **kwargs)
        assert_records_identical(cold, warm1)
        assert_records_identical(cold, warm2)

    def test_discover_and_trajectory_match_cold(self):
        from repro.core.methods import discover
        from repro.experiments.harness import get_test_data
        from repro.metrics.trajectory import peeling_trajectory

        x, y = _toy_data(n=150, m=3)
        cold = discover("P", x, y, jobs=1)
        x_test, y_test = get_test_data("ishigami", size=1000)
        cold_traj = peeling_trajectory(cold.boxes, x_test, y_test, jobs=2)
        with Session(jobs=2) as session:
            warm = session.discover("P", x, y, jobs=1)
            warm_traj = session.trajectory(warm.boxes, x_test, y_test)
        np.testing.assert_array_equal(cold.chosen_box.lower,
                                      warm.chosen_box.lower)
        np.testing.assert_array_equal(cold.chosen_box.upper,
                                      warm.chosen_box.upper)
        np.testing.assert_array_equal(cold_traj, warm_traj)


class TestReuseAccounting:
    """The spawn-count regression tests (ISSUE 10 satellite)."""

    def test_warm_labels_spawn_each_signature_once(self, tmp_path,
                                                   monkeypatch):
        log = tmp_path / "spawns.log"
        monkeypatch.setenv("REDS_SPAWN_LOG", str(log))
        x, y = _toy_data()
        x_new = np.random.default_rng(5).random((3000, x.shape[1]))
        reset_pool_stats()
        reset_resident_stats()
        outs = []
        with Session(jobs=2, tune=False) as session:
            outs.append(session.label(x, y, x_new))
            after_first = (len(log.read_text().splitlines()),
                           resident_stats()["published"])
            for _ in range(3):
                outs.append(session.label(x, y, x_new))
            after_last = (len(log.read_text().splitlines()),
                          resident_stats()["published"])
            stats = session.stats()
        # Every warm call after the first: zero new pool spawns, zero
        # new segment publications — one spawn per distinct signature,
        # one publish per distinct content key, total.
        assert after_last == after_first
        assert stats["pools"]["spawned"] == 1
        assert stats["pools"]["reused"] == 3
        assert stats["dataplane"]["reused"] >= 3
        assert stats["metamodel"]["fits"] == 1
        assert stats["metamodel"]["hits"] == 3
        for out in outs[1:]:
            np.testing.assert_array_equal(outs[0], out)

    def test_distinct_signatures_each_spawn_once(self, tmp_path,
                                                 monkeypatch):
        log = tmp_path / "spawns.log"
        monkeypatch.setenv("REDS_SPAWN_LOG", str(log))
        x, y = _toy_data()
        a = np.random.default_rng(1).random((2000, x.shape[1]))
        b = np.random.default_rng(2).random((2000, x.shape[1]))
        reset_pool_stats()
        with Session(jobs=2, tune=False) as session:
            for _ in range(2):
                session.label(x, y, a)
                session.label(x, y, b)
        # Two distinct x_new contents -> two plan signatures -> exactly
        # two spawn-log lines however many times each is requested.
        assert len(log.read_text().splitlines()) == 2
        assert pool_stats()["spawned"] == 2


class TestTeardown:
    def test_close_leaves_zero_warm_state(self):
        x, y = _toy_data()
        x_new = np.random.default_rng(5).random((2000, x.shape[1]))
        with Session(jobs=2, tune=False) as session:
            session.label(x, y, x_new)
            assert pool_stats()["cached"] >= 1
            assert resident_stats()["resident"] >= 1
        assert pool_stats()["cached"] == 0
        assert resident_segment_names() == []
        assert resident_stats()["resident"] == 0
        assert active_segments() == []
        assert fit_stats()["cached"] == 0

    def test_train_cache_entries_are_read_only(self):
        from repro.data import get_model
        from repro.experiments.harness import make_train_data

        model = get_model("ishigami")
        cold_x, cold_y = make_train_data(model, 100, 3)
        with Session():
            x1, y1 = make_train_data(model, 100, 3)
            x2, y2 = make_train_data(model, 100, 3)
            assert x1 is x2 and y1 is y2
            with pytest.raises(ValueError):
                x1[0, 0] = 99.0
        np.testing.assert_array_equal(cold_x, x1)
        np.testing.assert_array_equal(cold_y, y1)


class TestSessionCLI:
    def test_session_subcommand_prints_table_and_stats(self, capsys):
        assert main(["session", "--function", "ishigami",
                     "--methods", "P,BI", "--n", "100", "--reps", "2",
                     "--n-new", "500", "--no-tune",
                     "--test-size", "800", "--jobs", "2"]) == 0
        outerr = capsys.readouterr()
        assert "warm session:" in outerr.out
        assert "pool(s) spawned" in outerr.out
        # The CLI session must also tear down cleanly.
        assert pool_stats()["cached"] == 0
        assert resident_segment_names() == []

    def test_session_matches_compare_table(self, capsys):
        args = ["--function", "ishigami", "--methods", "P", "--n", "100",
                "--reps", "2", "--n-new", "400", "--no-tune",
                "--test-size", "800", "--jobs", "1"]
        assert main(["compare"] + args) == 0
        cold_out = capsys.readouterr().out
        assert main(["session"] + args) == 0
        warm_out = capsys.readouterr().out
        cold_rows = [line for line in cold_out.splitlines()
                     if line and not line.startswith(("-", "ishigami"))
                     and "runtime" not in line]
        warm_rows = [line for line in warm_out.splitlines()
                     if line and not line.startswith(("-", "ishigami"))
                     and "runtime" not in line and "warm session" not in line]
        assert cold_rows == warm_rows
