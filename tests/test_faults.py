"""Chaos suite for the fault-tolerant execution substrate.

The contract (ISSUE 8 / ROADMAP robustness layer): under injected worker
crashes, task hangs, torn store writes and shared-memory failures —
driven deterministically by ``REDS_FAULT_PLAN`` — a grid completes with
results bit-identical to a fault-free run, leaks no shared-memory
segments, and never executes a task twice; tasks that exhaust their
retry budget are quarantined with a structured post-mortem instead of
killing the grid on first error.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import dataplane, faults, parallel
from repro.experiments.faults import FaultPlan, InjectedFault, parse_fault_plan
from repro.experiments.harness import run_batch
from repro.experiments.parallel import (
    GridFailureError,
    RetryPolicy,
    ShardedExecutor,
    execute,
)
from repro.experiments.store import MISSING, open_store

SHM_ROOT = Path("/dev/shm")


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REDS_FAULT_PLAN", raising=False)
    faults.clear_injection_log()
    yield
    faults.clear_injection_log()


def _shm_segments() -> set[str]:
    if not SHM_ROOT.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir(SHM_ROOT)
            if name.startswith(dataplane.SEGMENT_PREFIX)}


# ----------------------------------------------------------------------
# Module-level task functions (workers import them by qualified name)
# ----------------------------------------------------------------------

def _double(value: int) -> int:
    return value * 2


def _fail_once(value: int, markerdir: str) -> int:
    """Fail the first execution of each value, succeed afterwards."""
    marker = Path(markerdir) / f"fail-{value}"
    if not marker.exists():
        marker.write_text("")
        raise ValueError(f"transient failure for {value}")
    return value * 2


def _fail_some(value: int) -> int:
    """Permanently fail values congruent to 1 mod 3."""
    if value % 3 == 1:
        raise ValueError(f"permanent failure for {value}")
    return value * 2


def _fail_unless_marker(value: int, markerdir: str) -> int:
    """Fail until an external fix (the marker file) lands."""
    if not (Path(markerdir) / f"ok-{value}").exists():
        raise ValueError(f"no marker for {value}")
    return value * 2


def _kill_once(value: int, markerdir: str, victims: tuple) -> int:
    """SIGKILL the executing pool worker the first time each victim runs.

    The marker is written *before* the kill, so every retry survives;
    only pool workers die (killing the dispatcher on the degraded
    inline path would take the test run with it).
    """
    if value in victims:
        marker = Path(markerdir) / f"killed-{value}"
        if not marker.exists():
            marker.write_text("")
            if multiprocessing.parent_process() is not None:
                os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _sleep_once(value: int, markerdir: str, victim: int,
                sleep_s: float) -> int:
    """Hang the first execution of ``victim`` for ``sleep_s`` seconds."""
    if value == victim:
        marker = Path(markerdir) / f"slept-{value}"
        if not marker.exists():
            marker.write_text("")
            time.sleep(sleep_s)
    return value * 2


def _count_executions(value: int, countdir: str) -> int:
    """Append one line per *execution* (not per attempt that crashed
    before reaching the task body), so duplicated work is observable."""
    with open(Path(countdir) / f"exec-{value}", "a") as handle:
        handle.write("x\n")
    return value * 2


# ----------------------------------------------------------------------
# Grid helpers (mirrors tests/test_store.py)
# ----------------------------------------------------------------------

GRID = dict(functions=("willetal06",), methods=("P", "BI"),
            n=120, n_reps=2, test_size=1500)


def run_grid(**overrides):
    kwargs = dict(GRID)
    kwargs.update(overrides)
    functions = kwargs.pop("functions")
    methods = kwargs.pop("methods")
    n = kwargs.pop("n")
    n_reps = kwargs.pop("n_reps")
    return run_batch(functions, methods, n, n_reps, **kwargs)


def assert_records_equal(expected, actual):
    """Field-by-field equality of two record lists (runtime excluded)."""
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert (a.function, a.method, a.n, a.seed) == \
               (b.function, b.method, b.n, b.seed)
        assert a.pr_auc == b.pr_auc
        assert a.precision == b.precision
        assert a.recall == b.recall
        assert a.wracc == b.wracc
        assert a.n_restricted == b.n_restricted
        assert a.n_irrelevant == b.n_irrelevant
        np.testing.assert_array_equal(a.chosen_box.lower, b.chosen_box.lower)
        np.testing.assert_array_equal(a.chosen_box.upper, b.chosen_box.upper)
        np.testing.assert_array_equal(a.trajectory, b.trajectory)


# ----------------------------------------------------------------------
# The fault plan itself
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = parse_fault_plan(
            "seed=42,worker_crash=0.2,task_hang=0.1,hang_s=0.3")
        assert plan.seed == 42
        assert plan.rates == {"worker_crash": 0.2, "task_hang": 0.1}
        assert plan.hang_s == 0.3

    def test_parse_tolerates_empty_chunks(self):
        plan = parse_fault_plan(" seed=1 , , store_write_torn=1.0 ,")
        assert plan.seed == 1
        assert plan.rates == {"store_write_torn": 1.0}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            parse_fault_plan("seed=1,worker_crush=0.5")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            parse_fault_plan("worker_crash=1.5")

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = FaultPlan(seed=0, rates={"worker_crash": 1.0})
        for i in range(50):
            assert plan.should_inject("worker_crash", f"k{i}")
            assert not plan.should_inject("task_hang", f"k{i}")

    def test_decisions_are_deterministic(self):
        a = parse_fault_plan("seed=9,worker_crash=0.5")
        b = parse_fault_plan("seed=9,worker_crash=0.5")
        decisions = [a.should_inject("worker_crash", f"k{i}")
                     for i in range(200)]
        assert decisions == [b.should_inject("worker_crash", f"k{i}")
                             for i in range(200)]
        assert any(decisions) and not all(decisions)

    def test_empirical_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=3, rates={"worker_crash": 0.2})
        fired = sum(plan.should_inject("worker_crash", f"k{i}")
                    for i in range(2000))
        assert 0.15 < fired / 2000 < 0.25

    def test_attempt_tokens_are_independent(self):
        # A task crashed on attempt 0 must be able to survive attempt 1:
        # the attempt number is part of the token, so the draw re-rolls.
        plan = FaultPlan(seed=0, rates={"worker_crash": 0.5})
        assert any(plan.should_inject("worker_crash", f"k{i}#a0")
                   and not plan.should_inject("worker_crash", f"k{i}#a1")
                   for i in range(50))

    def test_active_plan_reads_env_and_caches(self, monkeypatch):
        assert faults.active_plan() is None
        assert not faults.enabled()
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=4,task_hang=0.5")
        assert faults.enabled()
        assert faults.active_plan() is faults.active_plan()
        assert faults.active_plan().seed == 4

    def test_check_logs_fired_injections_only(self, monkeypatch):
        monkeypatch.setenv("REDS_FAULT_PLAN",
                           "seed=0,store_write_torn=1.0")
        assert not faults.check("worker_crash", "t0")
        assert faults.check("store_write_torn", "t0")
        assert faults.injection_log() == (("store_write_torn", "t0"),)

    def test_maybe_inject_crash_raises_in_main_process(self, monkeypatch):
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=0,worker_crash=1.0")
        with pytest.raises(InjectedFault) as err:
            faults.maybe_inject("worker_crash", "t1")
        assert err.value.point == "worker_crash"
        assert err.value.token == "t1"

    def test_maybe_inject_hang_sleeps_then_returns(self, monkeypatch):
        monkeypatch.setenv("REDS_FAULT_PLAN",
                           "seed=0,task_hang=1.0,hang_s=0.05")
        start = time.monotonic()
        faults.maybe_inject("task_hang", "t2")
        assert time.monotonic() - start >= 0.04

    def test_task_scope_marks_only_the_outermost(self):
        with faults.task_scope("outer") as outermost:
            assert outermost
            with faults.task_scope("inner") as nested:
                assert not nested
        with faults.task_scope("again") as outermost:
            assert outermost


class TestRetryPolicy:
    def test_zero_attempts_means_no_delay(self):
        assert RetryPolicy().delay("k", 0) == 0.0

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.delay("k", 2) == policy.delay("k", 2)
        assert policy.delay("k", 2) != policy.delay("other", 2)

    def test_delay_within_jittered_backoff_bounds(self):
        policy = RetryPolicy(max_attempts=8)
        for attempt in range(1, 8):
            base = min(policy.backoff_base
                       * policy.backoff_factor ** (attempt - 1),
                       policy.backoff_max)
            delay = policy.delay("k", attempt)
            assert 0.5 * base <= delay <= base

    def test_delay_is_capped(self):
        policy = RetryPolicy(max_attempts=50)
        assert policy.delay("k", 30) <= policy.backoff_max


# ----------------------------------------------------------------------
# Retries and quarantine (serial path)
# ----------------------------------------------------------------------

class TestSerialRetries:
    def test_transient_failures_recover(self, tmp_path):
        tasks = [{"value": v, "markerdir": str(tmp_path)} for v in range(5)]
        out = execute(_fail_once, tasks, retries=1)
        assert out == [v * 2 for v in range(5)]
        assert len(list(tmp_path.glob("fail-*"))) == 5

    def test_exhausted_tasks_are_quarantined_grid_completes(self):
        tasks = [{"value": v} for v in range(6)]
        with pytest.raises(GridFailureError) as err:
            execute(_fail_some, tasks, retries=2)
        exc = err.value
        assert [f.index for f in exc.failures] == [1, 4]
        assert all(f.attempts == 3 for f in exc.failures)
        assert all("permanent failure" in f.error for f in exc.failures)
        assert [r for r in exc.results if r is not MISSING] == [0, 4, 6, 10]
        assert exc.results[1] is MISSING and exc.results[4] is MISSING

    def test_failure_summary_is_a_compact_table(self):
        with pytest.raises(GridFailureError) as err:
            execute(_fail_some, [{"value": 1}, {"value": 2}], retries=1)
        summary = err.value.summary()
        assert "1 task(s) quarantined after retries" in summary
        assert "(1 of 2 completed)" in summary
        assert "grid-index" in summary and "attempts" in summary
        assert "ValueError: permanent failure for 1" in summary

    def test_default_is_fail_fast(self):
        with pytest.raises(ValueError, match="permanent failure"):
            execute(_fail_some, [{"value": v} for v in range(6)])

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries must be >= 0"):
            execute(_double, [{"value": 1}], retries=-1)

    def test_failure_records_journal_and_clear(self, tmp_path):
        store = open_store(tmp_path / "store")
        markerdir = tmp_path / "markers"
        markerdir.mkdir()
        tasks = [{"value": v, "markerdir": str(markerdir)} for v in range(3)]
        keys = [store.key(_fail_unless_marker, task) for task in tasks]

        with pytest.raises(GridFailureError):
            execute(_fail_unless_marker, tasks, store=store, retries=1)
        for key in keys:
            failure = store.failure_for(key)
            assert failure is not None
            assert failure["quarantined"] is True
            assert failure["attempts"] == 2
            assert "no marker" in failure["error"]

        # The operator fixes the environment and re-runs: the grid
        # completes and the failure journal is wiped by the successes.
        for v in range(3):
            (markerdir / f"ok-{v}").write_text("")
        out = execute(_fail_unless_marker, tasks, store=store, retries=1)
        assert out == [0, 2, 4]
        for key in keys:
            assert store.failure_for(key) is None
            assert store.get(key) is not MISSING


# ----------------------------------------------------------------------
# Pool-level fault tolerance: crashes, hangs, degradation
# ----------------------------------------------------------------------

class TestPoolFaultTolerance:
    def test_sigkilled_worker_mid_grid_recovers(self, tmp_path):
        tasks = [{"value": v, "markerdir": str(tmp_path), "victims": (3,)}
                 for v in range(8)]
        out = execute(_kill_once, tasks, jobs=2, retries=2)
        assert out == [v * 2 for v in range(8)]
        assert (tmp_path / "killed-3").exists()

    def test_double_poisoning_degrades_to_serial(self, tmp_path, caplog):
        # Every task kills its first *pooled* execution, so whatever the
        # scheduling, the respawned pool is poisoned again — after two
        # poisonings the dispatcher must degrade the rest to inline
        # serial execution (where _kill_once no longer kills).
        victims = tuple(range(8))
        tasks = [{"value": v, "markerdir": str(tmp_path),
                  "victims": victims} for v in range(8)]
        with caplog.at_level("WARNING", logger="repro.experiments.parallel"):
            out = execute(_kill_once, tasks, jobs=2, retries=5)
        assert out == [v * 2 for v in range(8)]
        assert "degrading the remaining" in caplog.text

    def test_watchdog_kills_hung_worker_and_retries(self, tmp_path):
        tasks = [{"value": v, "markerdir": str(tmp_path), "victim": 2,
                  "sleep_s": 30.0} for v in range(6)]
        start = time.monotonic()
        out = execute(_sleep_once, tasks, jobs=2, retries=1,
                      task_timeout=0.75)
        elapsed = time.monotonic() - start
        assert out == [v * 2 for v in range(6)]
        assert elapsed < 20.0  # nowhere near the 30 s hang
        assert (tmp_path / "slept-2").exists()

    def test_task_timeout_without_retries_fails_fast(self, tmp_path):
        tasks = [{"value": v, "markerdir": str(tmp_path), "victim": 1,
                  "sleep_s": 30.0} for v in range(4)]
        with pytest.raises(RuntimeError, match="task_timeout"):
            execute(_sleep_once, tasks, jobs=2, task_timeout=0.5)

    def test_pool_spawn_failure_degrades_fast_path(self, monkeypatch,
                                                   caplog):
        def broken_pool(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        tasks = [{"value": v} for v in range(5)]
        with caplog.at_level("WARNING", logger="repro.experiments.parallel"):
            out = execute(_double, tasks, jobs=2)
        assert out == [v * 2 for v in range(5)]
        assert "pool spawn failed" in caplog.text

    def test_pool_spawn_failure_degrades_tolerant_path(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        tasks = [{"value": v} for v in range(5)]
        assert execute(_double, tasks, jobs=2, retries=1) == \
            [v * 2 for v in range(5)]


class TestWarmSessionChaos:
    """Fault tolerance composed with the warm-session pool cache.

    A crash must evict the poisoned pool (checkout is exclusive, a
    broken pool is never checked back in), the retried grid must stay
    bit-identical to the fault-free baseline, and later warm calls must
    be served by the healthy respawned pool — never a stale cached one.
    """

    def test_crashed_pool_evicted_respawned_results_identical(
            self, tmp_path):
        from repro.experiments.parallel import pool_stats, reset_pool_stats
        from repro.experiments.session import Session

        calm = [{"value": v, "markerdir": str(tmp_path), "victims": ()}
                for v in range(8)]
        baseline = execute(_kill_once, calm, jobs=2, retries=2)
        tasks = [{"value": v, "markerdir": str(tmp_path), "victims": (3,)}
                 for v in range(8)]
        with Session(jobs=2):
            reset_pool_stats()
            out = execute(_kill_once, tasks, jobs=2, retries=2)
            # The SIGKILL poisoned the first pool; the dispatcher must
            # have evicted it and spawned a replacement mid-grid.
            mid = pool_stats()
            # A follow-up warm call reuses the healthy replacement (the
            # markers exist now, so nothing kills) — and must not spawn.
            again = execute(_kill_once, tasks, jobs=2, retries=2)
            after = pool_stats()
        assert out == baseline
        assert again == baseline
        assert (tmp_path / "killed-3").exists()
        assert mid["spawned"] >= 2
        assert after["spawned"] == mid["spawned"]
        assert after["reused"] >= mid["reused"] + 1
        # Session close drains the cache: no warm pool outlives it.
        assert pool_stats()["cached"] == 0

    def test_chaos_grid_inside_session_matches_baseline(self, monkeypatch):
        from repro.experiments.parallel import pool_stats
        from repro.experiments.session import Session

        baseline = run_grid()
        before = _shm_segments()
        monkeypatch.setenv(
            "REDS_FAULT_PLAN",
            "seed=11,worker_crash=0.25,task_hang=0.25,hang_s=0.05")
        with Session(jobs=2):
            records = run_grid(jobs=2, retries=6)
        monkeypatch.delenv("REDS_FAULT_PLAN")
        assert_records_equal(baseline, records)
        assert pool_stats()["cached"] == 0
        assert _shm_segments() - before == set()


# ----------------------------------------------------------------------
# Store robustness: envelopes, torn writes, leases
# ----------------------------------------------------------------------

class TestStoreRobustness:
    def test_envelope_key_mismatch_is_quarantined(self, tmp_path):
        store = open_store(tmp_path / "store")
        key_a = store.key(_double, {"value": 1})
        key_b = store.key(_double, {"value": 2})
        store.put(key_a, 2)
        # A record copied under the wrong key (sync gone wrong, tooling
        # bug): the envelope check catches it instead of returning the
        # wrong task's result.
        store.path_for(key_b).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key_b).write_bytes(store.path_for(key_a).read_bytes())
        assert store.get(key_b) is MISSING
        assert not store.path_for(key_b).exists()
        assert store.corrupt_path(key_b).exists()
        assert store.get(key_a) == 2

    def test_fsync_can_be_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REDS_STORE_FSYNC", "0")
        store = open_store(tmp_path / "store")
        key = store.key(_double, {"value": 7})
        store.put(key, 14)
        assert store.get(key) == 14

    def test_claim_age_tracks_lease_timestamp(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.claim_age("nope") is None
        assert store.claim("k1", "shard-0/2")
        assert store.claim_age("k1") < 5.0
        old = time.time() - 120.0
        os.utime(store.claim_path("k1"), (old, old))
        assert store.claim_age("k1") > 100.0

    def test_reclaim_honours_fresh_leases(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.claim("k1", "shard-0/2")
        assert not store.reclaim("k1", "shard-1/2", max_age=60.0)
        assert store.claim_owner("k1") == "shard-0/2"

    def test_reclaim_takes_over_expired_leases(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.claim("k1", "shard-0/2")
        old = time.time() - 120.0
        os.utime(store.claim_path("k1"), (old, old))
        assert store.reclaim("k1", "shard-1/2", max_age=60.0)
        assert store.claim_owner("k1") == "shard-1/2"

    def test_reclaim_of_vanished_claim_is_a_normal_claim(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert store.reclaim("k1", "shard-1/2", max_age=60.0)
        assert store.claim_owner("k1") == "shard-1/2"

    def test_torn_writes_resume_cleanly(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        tasks = [{"value": v} for v in range(6)]
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=1,store_write_torn=1.0")
        out = execute(_double, tasks, store=open_store(root))
        assert out == [v * 2 for v in range(6)]
        monkeypatch.delenv("REDS_FAULT_PLAN")

        # Every record on disk is torn.  A resumed (fault-free) run
        # quarantines them to corrupt/ and recomputes — results
        # identical, store healthy afterwards.
        store = open_store(root)
        assert execute(_double, tasks, store=store) == out
        assert len(list((root / "corrupt").rglob("*.pkl"))) == 6
        for task in tasks:
            assert store.get(store.key(_double, task)) == task["value"] * 2


# ----------------------------------------------------------------------
# Sharded leases: reclamation and failure inheritance
# ----------------------------------------------------------------------

class TestClaimReclamation:
    def _stale_claim(self, store, key, owner="shard-1/2", age=120.0):
        assert store.claim(key, owner)
        old = time.time() - age
        os.utime(store.claim_path(key), (old, old))

    def test_expired_claim_is_reclaimed_and_executed(self, tmp_path,
                                                     caplog):
        store = open_store(tmp_path / "store")
        tasks = [{"value": v} for v in range(4)]
        keys = [store.key(_double, task) for task in tasks]
        self._stale_claim(store, keys[2])
        executor = ShardedExecutor(0, 1, jobs=1, poll_interval=0.02,
                                   timeout=30.0, claim_ttl=5.0)
        with caplog.at_level("WARNING", logger="repro.experiments.parallel"):
            out = execute(_double, tasks, store=store, executor=executor)
        assert out == [0, 2, 4, 6]
        assert store.claim_owner(keys[2]) == "shard-0/1"
        assert "reclaimed 1 expired claim" in caplog.text

    def test_claim_ttl_none_disables_reclamation(self, tmp_path):
        store = open_store(tmp_path / "store")
        tasks = [{"value": v} for v in range(3)]
        keys = [store.key(_double, task) for task in tasks]
        self._stale_claim(store, keys[1])
        executor = ShardedExecutor(0, 1, jobs=1, poll_interval=0.02,
                                   timeout=0.5, claim_ttl=None)
        with pytest.raises(TimeoutError, match="claimed by sibling"):
            execute(_double, tasks, store=store, executor=executor)

    def test_fresh_claims_are_waited_on_not_reclaimed(self, tmp_path):
        store = open_store(tmp_path / "store")
        tasks = [{"value": v} for v in range(3)]
        keys = [store.key(_double, task) for task in tasks]
        assert store.claim(keys[1], "shard-1/2")  # live sibling, fresh lease
        executor = ShardedExecutor(0, 1, jobs=1, poll_interval=0.02,
                                   timeout=0.5, claim_ttl=3600.0)
        with pytest.raises(TimeoutError, match="claimed by sibling"):
            execute(_double, tasks, store=store, executor=executor)
        assert store.claim_owner(keys[1]) == "shard-1/2"

    def test_sibling_quarantine_is_inherited(self, tmp_path):
        store = open_store(tmp_path / "store")
        tasks = [{"value": v} for v in range(4)]
        keys = [store.key(_double, task) for task in tasks]
        assert store.claim(keys[1], "shard-1/2")
        store.record_failure(keys[1], attempts=2,
                             error="ValueError: sibling boom",
                             quarantined=True)
        executor = ShardedExecutor(0, 1, jobs=1, poll_interval=0.02,
                                   timeout=30.0, claim_ttl=None)
        with pytest.raises(GridFailureError) as err:
            execute(_double, tasks, store=store, executor=executor,
                    retries=1)
        exc = err.value
        assert len(exc.failures) == 1
        failure = exc.failures[0]
        assert failure.key == keys[1]
        assert failure.attempts == 2
        assert "sibling boom" in failure.error
        assert exc.results[1] is MISSING
        assert [r for r in exc.results if r is not MISSING] == [0, 4, 6]


# ----------------------------------------------------------------------
# Determinism of the whole harness
# ----------------------------------------------------------------------

class TestFaultPlanDeterminism:
    def test_same_plan_replays_bit_identically(self, monkeypatch):
        tasks = [{"value": v} for v in range(12)]
        baseline = execute(_double, tasks)
        spec = "seed=5,worker_crash=0.3,task_hang=0.3,hang_s=0.01"
        logs, outs = [], []
        for _ in range(2):
            monkeypatch.setenv("REDS_FAULT_PLAN", spec)
            faults.clear_injection_log()
            outs.append(execute(_double, tasks, retries=5))
            logs.append(faults.injection_log())
        assert outs[0] == outs[1] == baseline
        assert logs[0] == logs[1]
        assert any(point == "worker_crash" for point, _ in logs[0])
        assert any(point == "task_hang" for point, _ in logs[0])

    def test_hangs_never_change_results(self, monkeypatch):
        tasks = [{"value": v} for v in range(8)]
        baseline = execute(_double, tasks)
        monkeypatch.setenv("REDS_FAULT_PLAN",
                           "seed=2,task_hang=1.0,hang_s=0.01")
        assert execute(_double, tasks) == baseline
        assert len(faults.injection_log()) == 8


# ----------------------------------------------------------------------
# Shared-memory degradation and orphan sweep
# ----------------------------------------------------------------------

class TestShmPublishFallback:
    def test_publish_failure_degrades_to_inline_ref(self, monkeypatch,
                                                    caplog):
        monkeypatch.setenv("REDS_FAULT_PLAN",
                           "seed=0,shm_publish_fail=1.0")
        array = np.arange(12.0).reshape(3, 4)
        with caplog.at_level("WARNING",
                             logger="repro.experiments.dataplane"):
            with dataplane.DataPlane() as plane:
                ref = plane.publish(array, key="k1")
                assert ref.segment is None
                np.testing.assert_array_equal(ref.resolve(), array)
                assert plane.segment_names() == []
        assert ("shm_publish_fail", "k1") in faults.injection_log()
        assert "degrading to an inline ref" in caplog.text

    def test_grid_with_publish_failures_matches_baseline(self, monkeypatch):
        tasks = [{"value": v} for v in range(6)]
        shared = {"table": np.arange(64.0)}
        baseline = execute(_double, tasks, jobs=2, shared=shared)
        before = _shm_segments()
        monkeypatch.setenv("REDS_FAULT_PLAN",
                           "seed=0,shm_publish_fail=1.0")
        out = execute(_double, tasks, jobs=2, shared=shared)
        assert out == baseline
        assert _shm_segments() - before == set()


class TestOrphanSweep:
    @pytest.fixture()
    def dead_pid(self):
        proc = subprocess.Popen([sys.executable, "-c", ""])
        proc.wait()
        return proc.pid

    @pytest.fixture()
    def shm(self):
        if not SHM_ROOT.is_dir():  # pragma: no cover - non-Linux
            pytest.skip("/dev/shm not available")
        created = []

        def make(name):
            path = SHM_ROOT / name
            path.write_bytes(b"x")
            created.append(path)
            return path

        yield make
        for path in created:
            path.unlink(missing_ok=True)

    def test_sweep_removes_only_dead_pid_segments(self, shm, dead_pid):
        orphan = shm(f"{dataplane.SEGMENT_PREFIX}{dead_pid}-deadbeef")
        own = shm(f"{dataplane.SEGMENT_PREFIX}{os.getpid()}-cafe")
        other = shm("unrelated-segment")
        removed = dataplane.sweep_orphan_segments(force=True)
        assert orphan.name in removed
        assert not orphan.exists()
        assert own.exists()
        assert other.exists()

    def test_sweep_is_gated_by_env(self, shm, dead_pid, monkeypatch):
        orphan = shm(f"{dataplane.SEGMENT_PREFIX}{dead_pid}-feedface")
        monkeypatch.delenv("REDS_DATAPLANE_SWEEP", raising=False)
        assert dataplane.sweep_orphan_segments() == []
        assert orphan.exists()
        monkeypatch.setenv("REDS_DATAPLANE_SWEEP", "1")
        assert orphan.name in dataplane.sweep_orphan_segments()
        assert not orphan.exists()

    def test_dataplane_init_sweeps_once(self, shm, dead_pid, monkeypatch):
        monkeypatch.setenv("REDS_DATAPLANE_SWEEP", "1")
        monkeypatch.setattr(dataplane, "_SWEPT", False)
        orphan = shm(f"{dataplane.SEGMENT_PREFIX}{dead_pid}-0beef")
        with dataplane.DataPlane():
            assert not orphan.exists()
        # One sweep per process: a later plane does not rescan.
        late = shm(f"{dataplane.SEGMENT_PREFIX}{dead_pid}-1beef")
        with dataplane.DataPlane():
            assert late.exists()


# ----------------------------------------------------------------------
# The acceptance chaos grid
# ----------------------------------------------------------------------

class TestChaosGrid:
    def test_sharded_chaos_grid_is_bit_identical(self, tmp_path,
                                                 monkeypatch):
        baseline = run_grid()
        before = _shm_segments()
        # All four fault points at rate >= 0.2, against a sharded
        # store-backed pooled grid with retries.
        monkeypatch.setenv(
            "REDS_FAULT_PLAN",
            "seed=11,worker_crash=0.25,task_hang=0.25,hang_s=0.05,"
            "store_write_torn=0.25,shm_publish_fail=0.25")
        # A generous retry budget: fault tokens hash the store keys,
        # which include the source fingerprint, so the draws reshuffle
        # whenever the code changes — the budget keeps the chance of a
        # task drawing crashes on every attempt negligible (0.25^7).
        records = run_grid(jobs=2, shard=(0, 1),
                           store=str(tmp_path / "store"), retries=6)
        assert_records_equal(baseline, records)
        assert _shm_segments() - before == set()
        # Store writes and shm publishes always happen in the
        # dispatching process, so those injections are observable here;
        # crash/hang decisions are evaluated wherever the task lands
        # (pool worker or degraded inline), so their log entries stay
        # in the worker processes.
        fired = {point for point, _ in faults.injection_log()}
        assert {"store_write_torn", "shm_publish_fail"} <= fired

    def test_cooperating_shards_never_duplicate_executions(self, tmp_path,
                                                           monkeypatch):
        countdir = tmp_path / "counts"
        countdir.mkdir()
        tasks = [{"value": v, "countdir": str(countdir)} for v in range(14)]
        monkeypatch.setenv(
            "REDS_FAULT_PLAN",
            "seed=7,worker_crash=0.2,task_hang=0.2,hang_s=0.02")
        results = {}
        errors = []

        def run_shard(i):
            try:
                # Tokens hash the store keys, and these keys embed the
                # per-run tmp_path — the draws differ every run, so the
                # retry budget must make exhaustion negligible (0.2^7).
                results[i] = execute(_count_executions, tasks, jobs=1,
                                     store=str(tmp_path / "store"),
                                     shard=(i, 2), retries=6)
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=run_shard, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        expected = [v * 2 for v in range(14)]
        assert results[0] == expected
        assert results[1] == expected
        # Crashed attempts die before the task body runs, so any
        # duplicated *execution* shows up as a second line.
        for v in range(14):
            assert (countdir / f"exec-{v}").read_text() == "x\n"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCLI:
    def test_parser_accepts_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["compare", "--function", "morris", "--retries", "2",
             "--task-timeout", "1.5"])
        assert args.retries == 2
        assert args.task_timeout == 1.5

    def test_compare_failed_grid_exits_nonzero_with_table(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=1,worker_crash=1.0")
        code = main(["compare", "--function", "willetal06",
                     "--methods", "P", "--n", "120", "--reps", "2",
                     "--no-tune", "--test-size", "1500",
                     "--n-new", "1000", "--retries", "1",
                     "--store", str(tmp_path / "store")])
        assert code == 1
        err = capsys.readouterr().err
        assert "grid incomplete" in err
        assert "quarantined after retries" in err
        assert "grid-index" in err
        assert "re-run to retry the quarantined cells" in err

    def test_compare_retries_ride_out_moderate_chaos(self, monkeypatch,
                                                     capsys):
        monkeypatch.setenv("REDS_FAULT_PLAN", "seed=2,worker_crash=0.3")
        code = main(["compare", "--function", "willetal06",
                     "--methods", "P", "--n", "120", "--reps", "2",
                     "--no-tune", "--test-size", "1500",
                     "--n-new", "1000", "--retries", "8"])
        assert code == 0
        assert "PR AUC %" in capsys.readouterr().out

    def test_discover_retries_recover(self, monkeypatch, capsys):
        from repro.core.methods import discover as real_discover

        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient discover failure")
            return real_discover(*args, **kwargs)

        monkeypatch.setattr("repro.cli.run_discover", flaky)
        code = main(["discover", "--function", "willetal06",
                     "--method", "P", "--n", "150",
                     "--test-size", "1500", "--retries", "1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "attempt 1 failed" in captured.err
        assert "PR AUC" in captured.out
        assert calls["n"] == 2

    def test_discover_exhausted_retries_reraise(self, monkeypatch):
        def always_broken(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.cli.run_discover", always_broken)
        with pytest.raises(RuntimeError, match="boom"):
            main(["discover", "--function", "willetal06", "--method", "P",
                  "--n", "120", "--test-size", "1500", "--retries", "1"])
