"""Engine-equivalence suite for the metamodel tree kernels.

Pins the contract that makes ``engine="vectorized"`` safe everywhere:
for trees, forests and boosting, the fitted flat arrays (feature,
threshold, left, right, value), the training-row leaf assignments and
all predictions are bit-identical to ``engine="reference"`` — including
sample weights, ``min_child_weight``, heavily tied feature values,
feature subsampling (shared generator stream) and degenerate one-class
data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metamodels import (
    DecisionTreeRegressor,
    GradientBoostingModel,
    RandomForestModel,
)
from repro.metamodels._kernels import StackedEnsemble, dense_ranks

TREE_ARRAYS = ("feature", "threshold", "left", "right", "value", "train_leaf_")


def assert_same_tree(tv, tr, context=""):
    for name in TREE_ARRAYS:
        a, b = getattr(tv, name), getattr(tr, name)
        assert np.array_equal(a, b), f"{context}: {name} differs"


def fit_both(x, y, w=None, **kw):
    tv = DecisionTreeRegressor(engine="vectorized", **kw).fit(x, y, w)
    tr = DecisionTreeRegressor(engine="reference", **kw).fit(x, y, w)
    return tv, tr


class TestTreeEquivalence:
    @pytest.mark.parametrize("trial", range(12))
    def test_randomized_fits_bit_equal(self, trial):
        r = np.random.default_rng(trial)
        n = int(r.integers(2, 400))
        m = int(r.integers(1, 8))
        x = r.normal(size=(n, m))
        if trial % 2:
            x = np.round(x, 1)  # heavy ties
        y = r.normal(size=n)
        w = r.random(n) + 1e-3
        if trial % 3 == 0:
            w[r.random(n) < 0.2] = 0.0  # zero-weight rows
            if w.sum() == 0:
                w[0] = 1.0
        for kw in ({}, {"max_depth": 4}, {"min_samples_leaf": 3},
                   {"min_child_weight": 0.5}):
            tv, tr = fit_both(x, y, w, **kw)
            assert_same_tree(tv, tr, f"trial {trial} {kw}")
            xq = r.normal(size=(40, m))
            assert np.array_equal(tv.predict(xq), tr.predict(xq))
            assert np.array_equal(tv.apply(xq), tr.apply(xq))

    @pytest.mark.parametrize("trial", range(8))
    def test_feature_subsampling_same_stream(self, trial):
        r = np.random.default_rng(100 + trial)
        n, m = int(r.integers(20, 300)), int(r.integers(2, 9))
        x = np.round(r.normal(size=(n, m)), 1)
        y = (r.random(n) < 0.5).astype(float)
        k = max(1, m // 2)
        tv = DecisionTreeRegressor(
            engine="vectorized", max_features=k,
            rng=np.random.default_rng(trial)).fit(x, y)
        tr = DecisionTreeRegressor(
            engine="reference", max_features=k,
            rng=np.random.default_rng(trial)).fit(x, y)
        assert_same_tree(tv, tr, f"subsampled trial {trial}")

    def test_one_class_data_is_a_root_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        for y in (np.zeros(50), np.ones(50)):
            tv, tr = fit_both(x, y)
            assert_same_tree(tv, tr)
            assert tv.n_nodes == 1
            assert tv.depth == 0
            assert np.array_equal(tv.train_leaf_, np.zeros(50, dtype=np.int64))

    def test_constant_features_are_a_root_leaf(self):
        x = np.ones((30, 4))
        y = np.arange(30.0)
        tv, tr = fit_both(x, y)
        assert_same_tree(tv, tr)
        assert tv.n_nodes == 1

    def test_single_row(self):
        tv, tr = fit_both(np.array([[1.0, 2.0]]), np.array([3.0]))
        assert_same_tree(tv, tr)

    def test_precomputed_ranks_change_nothing(self):
        r = np.random.default_rng(5)
        x = np.round(r.normal(size=(120, 4)), 1)
        y = r.normal(size=120)
        w = r.random(120) + 0.01
        plain = DecisionTreeRegressor().fit(x, y, w)
        ranked = DecisionTreeRegressor().fit(x, y, w, ranks=dense_ranks(x))
        assert_same_tree(plain, ranked)

    def test_inf_straddling_feature_terminates_and_matches(self):
        # The -inf/+inf midpoint is NaN; such degenerate thresholds
        # would leave a child empty (and growth would never terminate),
        # so both engines must skip them identically.
        x = np.array([[-np.inf], [np.inf], [np.inf], [-np.inf]])
        y = np.array([0.0, 1.0, 1.0, 0.0])
        tv, tr = fit_both(x, y)
        assert_same_tree(tv, tr)
        assert tv.n_nodes == 1  # the only candidate threshold is NaN
        assert np.isfinite(tv.threshold).all()

    def test_overflowing_midpoint_terminates_and_matches(self):
        big = 1.7e308
        x = np.array([[-big], [-big / 2], [big / 2], [big]])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        tv, tr = fit_both(x, y)
        assert_same_tree(tv, tr)
        assert np.isfinite(tv.threshold[tv.feature != -1]).all()
        xq = np.array([[-np.inf], [-1.0], [0.0], [1.0], [np.inf]])
        assert np.array_equal(tv.predict(xq), tr.predict(xq))

    def test_inf_feature_values_with_finite_splits(self):
        # +/-inf feature values are legal inputs; splits between finite
        # values must still work and agree across engines.
        r = np.random.default_rng(9)
        x = r.normal(size=(100, 3))
        x[:5, 0] = np.inf
        x[5:10, 0] = -np.inf
        y = (r.random(100) < 0.5).astype(float)
        tv, tr = fit_both(x, y)
        assert_same_tree(tv, tr)
        xq = r.normal(size=(50, 3))
        xq[0, 0] = np.inf
        xq[1, 0] = -np.inf
        assert np.array_equal(tv.predict(xq), tr.predict(xq))

    def test_nan_feature_values_still_split_and_match(self):
        # NaN rows always fall in the right child (x <= thr is False);
        # a column with a few NaNs must still split on its finite part,
        # identically across engines.
        r = np.random.default_rng(12)
        x = r.normal(size=(60, 2))
        x[:4, 0] = np.nan
        y = (x[:, 0] > 0.0).astype(float)
        y[:4] = 1.0
        for kw in ({}, {"max_depth": 2}):
            tv, tr = fit_both(x, y, **kw)
            assert_same_tree(tv, tr, f"nan {kw}")
        assert tv.n_nodes > 1  # the NaN column still splits
        xq = r.normal(size=(30, 2))
        xq[0, 0] = np.nan
        assert np.array_equal(tv.predict(xq), tr.predict(xq))

    def test_all_nan_column_is_ignored(self):
        r = np.random.default_rng(13)
        x = r.normal(size=(40, 2))
        x[:, 1] = np.nan
        y = (x[:, 0] > 0.0).astype(float)
        tv, tr = fit_both(x, y)
        assert_same_tree(tv, tr)
        assert np.all(tv.feature[tv.feature != -1] == 0)

    def test_train_leaf_matches_apply_on_training_data(self):
        r = np.random.default_rng(7)
        x = np.round(r.normal(size=(200, 5)), 1)
        y = r.normal(size=200)
        tv, tr = fit_both(x, y)
        assert np.array_equal(tv.train_leaf_, tv.apply(x))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_hypothesis_fits_bit_equal(self, data):
        n = data.draw(st.integers(1, 40), label="n")
        m = data.draw(st.integers(1, 4), label="m")
        # A tiny value alphabet forces tied feature values and tied
        # gains — the hard cases for stable-order and tie-break parity.
        vals = st.sampled_from([-1.5, -0.5, 0.0, 0.25, 1.0])
        x = np.array(data.draw(
            st.lists(st.lists(vals, min_size=m, max_size=m),
                     min_size=n, max_size=n), label="x"))
        y = np.array(data.draw(
            st.lists(st.sampled_from([0.0, 1.0, 0.5, -2.0]),
                     min_size=n, max_size=n), label="y"))
        w = np.array(data.draw(
            st.lists(st.sampled_from([0.0, 0.5, 1.0, 2.0]),
                     min_size=n, max_size=n), label="w"))
        if w.sum() <= 0:
            w[0] = 1.0
        mcw = data.draw(st.sampled_from([0.0, 1.0]), label="mcw")
        msl = data.draw(st.integers(1, 3), label="msl")
        tv, tr = fit_both(x.reshape(n, m), y, w,
                          min_child_weight=mcw, min_samples_leaf=msl)
        assert_same_tree(tv, tr, "hypothesis")


class TestForestEquivalence:
    @pytest.mark.parametrize("trial", range(4))
    def test_forest_fit_and_predict_bit_equal(self, trial):
        r = np.random.default_rng(trial)
        n, m = int(r.integers(30, 200)), int(r.integers(2, 7))
        x = np.round(r.normal(size=(n, m)), 1) if trial % 2 \
            else r.normal(size=(n, m))
        # trial 3 exercises the non-binary-response (non-exact-sums) path
        y = r.normal(size=n) if trial == 3 else (r.random(n) < 0.5).astype(float)
        for kw in ({}, {"max_depth": 3}, {"min_samples_leaf": 4},
                   {"max_features": "third"}):
            fv = RandomForestModel(n_trees=9, seed=trial,
                                   engine="vectorized", **kw).fit(x, y)
            fr = RandomForestModel(n_trees=9, seed=trial,
                                   engine="reference", **kw).fit(x, y)
            for t, (tv, tr) in enumerate(zip(fv.trees_, fr.trees_)):
                assert_same_tree(tv, tr, f"trial {trial} {kw} tree {t}")
            xq = r.normal(size=(80, m))
            assert np.array_equal(fv.predict_proba(xq), fr.predict_proba(xq))
            assert np.array_equal(fv.predict(xq), fr.predict(xq))

    def test_forest_block_boundary(self):
        # More trees than one growth block, so block-synchronous growth
        # and the per-tree spawned streams are both exercised.
        r = np.random.default_rng(0)
        x = np.round(r.normal(size=(60, 3)), 1)
        y = (r.random(60) < 0.4).astype(float)
        fv = RandomForestModel(n_trees=19, seed=1, engine="vectorized").fit(x, y)
        fr = RandomForestModel(n_trees=19, seed=1, engine="reference").fit(x, y)
        for t, (tv, tr) in enumerate(zip(fv.trees_, fr.trees_)):
            assert_same_tree(tv, tr, f"tree {t}")

    def test_same_seed_same_forest_across_calls(self):
        r = np.random.default_rng(2)
        x = r.normal(size=(80, 4))
        y = (r.random(80) < 0.5).astype(float)
        a = RandomForestModel(n_trees=5, seed=9).fit(x, y)
        b = RandomForestModel(n_trees=5, seed=9).fit(x, y)
        xq = r.normal(size=(30, 4))
        assert np.array_equal(a.predict_proba(xq), b.predict_proba(xq))


class TestBoostingEquivalence:
    @pytest.mark.parametrize("kw", [
        {},
        {"max_depth": 2},
        {"subsample": 0.7, "colsample": 0.6},
        {"reg_lambda": 0.0, "min_child_weight": 0.0},
    ])
    def test_boosting_fit_and_predict_bit_equal(self, kw):
        r = np.random.default_rng(3)
        n, m = 150, 5
        x = np.round(r.normal(size=(n, m)), 1)
        y = (r.random(n) < 0.5).astype(float)
        gv = GradientBoostingModel(n_rounds=10, seed=3,
                                   engine="vectorized", **kw).fit(x, y)
        gr = GradientBoostingModel(n_rounds=10, seed=3,
                                   engine="reference", **kw).fit(x, y)
        assert gv.base_score_ == gr.base_score_
        for t, ((tv, cv), (tr, cr)) in enumerate(zip(gv.trees_, gr.trees_)):
            assert np.array_equal(cv, cr)
            assert_same_tree(tv, tr, f"{kw} round {t}")
        xq = r.normal(size=(120, m))
        assert np.array_equal(gv.decision_function(xq), gr.decision_function(xq))
        assert np.array_equal(gv.predict_proba(xq), gr.predict_proba(xq))
        assert np.array_equal(gv.predict(xq), gr.predict(xq))


class TestStackedEnsemble:
    def _deep_trees(self, seed=0, n=300, m=6, n_trees=5):
        r = np.random.default_rng(seed)
        x = np.round(r.normal(size=(n, m)), 1)
        y = r.normal(size=n)
        trees = []
        for t in range(n_trees):
            idx = r.integers(0, n, size=n)
            trees.append(DecisionTreeRegressor().fit(x[idx], y[idx]))
        return trees, r

    def test_stacked_equals_per_tree_sum(self):
        trees, r = self._deep_trees()
        xq = r.normal(size=(500, 6))
        stacked = StackedEnsemble(trees)
        expect = np.zeros(500)
        for tree in trees:
            expect += tree.predict(xq)
        assert np.array_equal(stacked.leaf_value_sum(xq), expect)

    def test_stacked_scale_and_init(self):
        trees, r = self._deep_trees(seed=1)
        xq = r.normal(size=(200, 6))
        stacked = StackedEnsemble(trees)
        expect = np.full(200, -0.3)
        for tree in trees:
            expect += 0.1 * tree.predict(xq)
        got = stacked.leaf_value_sum(xq, scale=0.1, init=-0.3)
        assert np.array_equal(got, expect)

    def test_stacked_column_remap(self):
        r = np.random.default_rng(4)
        x = r.normal(size=(150, 6))
        y = r.normal(size=150)
        cols = [np.array([0, 2, 5]), np.array([1, 3, 4])]
        trees = [DecisionTreeRegressor(max_depth=3).fit(x[:, c], y)
                 for c in cols]
        stacked = StackedEnsemble(trees, columns=cols)
        xq = r.normal(size=(70, 6))
        expect = np.zeros(70)
        for tree, c in zip(trees, cols):
            expect += tree.predict(xq[:, c])
        assert np.array_equal(stacked.leaf_value_sum(xq), expect)

    def test_heap_and_pointer_layouts_agree(self):
        # Shallow ensembles use the complete-heap walk, deep ones the
        # pointer walk; force both over the same shallow trees.
        r = np.random.default_rng(6)
        x = np.round(r.normal(size=(200, 4)), 1)
        y = r.normal(size=200)
        trees = [DecisionTreeRegressor(max_depth=3).fit(x, y + t)
                 for t in range(4)]
        xq = r.normal(size=(300, 4))
        heap = StackedEnsemble(trees)
        assert heap._heap is not None
        pointer = StackedEnsemble(trees)
        pointer._heap = None
        pointer._depth_order = np.argsort(pointer._depths, kind="stable")
        assert np.array_equal(heap.leaf_value_sum(xq),
                              pointer.leaf_value_sum(xq))

    def test_root_only_ensemble(self):
        x = np.ones((10, 2))
        y = np.full(10, 3.0)
        trees = [DecisionTreeRegressor().fit(x, y)]
        stacked = StackedEnsemble(trees)
        out = stacked.leaf_value_sum(np.zeros((5, 2)))
        assert np.array_equal(out, np.full(5, 3.0))

    def test_queries_outside_training_range(self):
        trees, r = self._deep_trees(seed=8)
        xq = np.concatenate([
            r.normal(size=(50, 6)) * 100.0,
            np.full((2, 6), 1e300),
            np.full((2, 6), -1e300),
        ])
        stacked = StackedEnsemble(trees)
        expect = np.zeros(len(xq))
        for tree in trees:
            expect += tree.predict(xq)
        assert np.array_equal(stacked.leaf_value_sum(xq), expect)


class TestChunkedPrediction:
    """Multi-process chunked prediction/labeling must be bit-identical
    to the single-chunk path for every chunk size, worker count and
    executor — chunking is a pure throughput knob."""

    def _data(self, seed=0, n=250, m=5, n_query=3000):
        r = np.random.default_rng(seed)
        x = r.random((n, m))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0.7).astype(float)
        xq = r.random((n_query, m))
        return x, y, xq

    @pytest.mark.parametrize("jobs,chunk_rows", [
        (2, None), (3, 700), (2, 123), (2, 4096)])
    def test_forest_proba_bit_equal_across_chunkings(self, jobs, chunk_rows):
        x, y, xq = self._data()
        base = RandomForestModel(n_trees=15, seed=3).fit(x, y)
        expect = base.predict_proba(xq)
        fanned = RandomForestModel(n_trees=15, seed=3, jobs=jobs,
                                   chunk_rows=chunk_rows).fit(x, y)
        assert np.array_equal(fanned.predict_proba(xq), expect)
        assert np.array_equal(fanned.predict(xq), base.predict(xq))

    @pytest.mark.parametrize("jobs,chunk_rows", [(2, None), (3, 511)])
    def test_boosting_decision_bit_equal_across_chunkings(self, jobs,
                                                          chunk_rows):
        x, y, xq = self._data(seed=1)
        base = GradientBoostingModel(n_rounds=25, seed=3).fit(x, y)
        expect = base.decision_function(xq)
        fanned = GradientBoostingModel(n_rounds=25, seed=3, jobs=jobs,
                                       chunk_rows=chunk_rows).fit(x, y)
        assert np.array_equal(fanned.decision_function(xq), expect)
        assert np.array_equal(fanned.predict_proba(xq),
                              base.predict_proba(xq))

    def test_stacked_leaf_value_sum_jobs_knob(self):
        x, y, xq = self._data(seed=2)
        model = RandomForestModel(n_trees=10, seed=0).fit(x, y)
        stacked = StackedEnsemble(model.trees_)
        expect = stacked.leaf_value_sum(xq)
        for jobs, chunk_rows in ((2, None), (3, 999), (2, 100)):
            got = stacked.leaf_value_sum(xq, jobs=jobs, chunk_rows=chunk_rows)
            assert np.array_equal(got, expect), (jobs, chunk_rows)

    def test_predict_chunked_generic_labeling(self):
        from repro.metamodels.base import predict_chunked

        x, y, xq = self._data(seed=4)
        for model in (RandomForestModel(n_trees=10, seed=1).fit(x, y),
                      GradientBoostingModel(n_rounds=20, seed=1).fit(x, y)):
            hard = model.predict(xq)
            soft = model.predict_proba(xq)
            for jobs, chunk_rows in ((1, None), (2, None), (3, 777)):
                assert np.array_equal(
                    predict_chunked(model, xq, jobs=jobs,
                                    chunk_rows=chunk_rows), hard)
                assert np.array_equal(
                    predict_chunked(model, xq, soft=True, jobs=jobs,
                                    chunk_rows=chunk_rows), soft)

    def test_reds_labels_bit_equal_across_jobs(self):
        from repro.core.reds import reds

        x, y, _ = self._data(seed=5)

        def sd(x_new, y_new):
            return float(y_new.sum())

        base = reds(x, y, sd, metamodel="boosting", n_new=4000, tune=False,
                    rng=np.random.default_rng(9), jobs=1)
        for jobs, chunk_rows in ((2, None), (3, 1234)):
            fanned = reds(x, y, sd, metamodel="boosting", n_new=4000,
                          tune=False, rng=np.random.default_rng(9),
                          jobs=jobs, chunk_rows=chunk_rows)
            assert np.array_equal(base.x_new, fanned.x_new)
            assert np.array_equal(base.y_new, fanned.y_new)
            assert base.sd_output == fanned.sd_output

    def test_reds_soft_labels_bit_equal_across_jobs(self):
        from repro.core.reds import reds

        x, y, _ = self._data(seed=6)

        def sd(x_new, y_new):
            return float(y_new.sum())

        base = reds(x, y, sd, metamodel="forest", n_new=3000,
                    soft_labels=True, tune=False,
                    rng=np.random.default_rng(11), jobs=1)
        fanned = reds(x, y, sd, metamodel="forest", n_new=3000,
                      soft_labels=True, tune=False,
                      rng=np.random.default_rng(11), jobs=2)
        assert np.array_equal(base.y_new, fanned.y_new)

    def test_tuning_fanned_folds_pick_identical_model(self):
        from repro.metamodels.tuning import tune_metamodel

        x, y, xq = self._data(seed=7, n=200)
        grid = [{"max_depth": 2, "n_rounds": 15},
                {"max_depth": 3, "n_rounds": 15}]
        serial = tune_metamodel("boosting", x, y, grid=grid, jobs=1)
        fanned = tune_metamodel("boosting", x, y, grid=grid, jobs=2)
        assert serial.max_depth == fanned.max_depth
        assert serial.n_rounds == fanned.n_rounds
        assert np.array_equal(serial.predict_proba(xq),
                              fanned.predict_proba(xq))

    def test_serial_executor_chunking_also_bit_equal(self):
        """chunk_rows alone (no processes) must not change anything."""
        x, y, xq = self._data(seed=8)
        model = RandomForestModel(n_trees=8, seed=2).fit(x, y)
        stacked = StackedEnsemble(model.trees_)
        expect = stacked.leaf_value_sum(xq)
        got = stacked.leaf_value_sum(xq, chunk=100)
        assert np.array_equal(got, expect)


class TestDenseRanks:
    def test_ranks_embed_order_with_ties(self):
        r = np.random.default_rng(0)
        x = np.round(r.normal(size=(100, 3)), 1)
        ranks = dense_ranks(x)
        assert ranks.dtype == np.uint16
        for j in range(3):
            order = np.argsort(x[:, j], kind="stable")
            xv, rv = x[order, j], ranks[order, j]
            assert np.all(np.diff(rv.astype(int)) >= 0)
            same_val = np.diff(xv) == 0
            assert np.array_equal(np.diff(rv.astype(int)) == 0, same_val)

    def test_sample_sort_matches_value_sort(self):
        r = np.random.default_rng(1)
        x = np.round(r.normal(size=(80, 2)), 1)
        ranks = dense_ranks(x)
        idx = r.integers(0, 80, size=80)
        by_rank = np.argsort(ranks[idx], axis=0, kind="stable")
        by_value = np.argsort(x[idx], axis=0, kind="stable")
        assert np.array_equal(by_rank, by_value)
