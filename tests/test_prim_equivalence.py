"""Differential tests: the vectorized peeling engine vs the reference.

``prim_peel(engine="vectorized")`` must reproduce the per-candidate
masking reference *exactly* — same box sequence bit for bit, same
chosen index, same train/validation statistics — across data shapes
that exercise every kernel path: continuous inputs, tied/discrete
levels (the whole-level fallback), soft labels in [0, 1] (the near-tie
re-scoring), all three objectives, validation splits and pasting.
"""

import numpy as np
import pytest

from repro.subgroup import _kernels
from repro.subgroup.prim import ENGINES, OBJECTIVES, prim_peel, _best_peel


def assert_identical_results(a, b):
    """Field-by-field exact equality of two PRIMResults."""
    assert len(a.boxes) == len(b.boxes)
    for box_a, box_b in zip(a.boxes, b.boxes):
        np.testing.assert_array_equal(box_a.lower, box_b.lower)
        np.testing.assert_array_equal(box_a.upper, box_b.upper)
    assert a.chosen == b.chosen
    np.testing.assert_array_equal(a.train_means, b.train_means)
    np.testing.assert_array_equal(a.train_support, b.train_support)
    np.testing.assert_array_equal(a.val_means, b.val_means)


def make_dataset(kind: str, seed: int, n: int = 250, m: int = 6):
    """Randomized datasets covering the kernel's code paths."""
    gen = np.random.default_rng(seed)
    x = gen.random((n, m))
    if kind == "discrete":
        # Few levels everywhere: every peel hits the tie fallback.
        x = np.round(x * 3) / 3
    elif kind == "mixed":
        # Discrete and continuous columns side by side.
        x[:, ::2] = np.round(x[:, ::2] * 4) / 4
    elif kind == "duplicated":
        # Identical columns produce exactly tied candidate scores.
        x[:, 1] = x[:, 0]
    soft = kind in ("soft", "duplicated")
    if soft:
        y = gen.random(n)
    else:
        y = ((x[:, 0] > 0.4) & (x[:, 1] < 0.8)).astype(float)
    return x, y


KINDS = ("continuous", "discrete", "mixed", "soft", "duplicated")


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_exact_equivalence(self, kind, objective):
        for seed in range(5):
            x, y = make_dataset(kind, seed)
            results = [
                prim_peel(x, y, alpha=0.1, min_support=10,
                          objective=objective, engine=engine)
                for engine in ("reference", "vectorized")
            ]
            assert_identical_results(results[0], results[1])

    @pytest.mark.parametrize("kind", KINDS)
    def test_equivalence_with_validation_split(self, kind):
        gen = np.random.default_rng(99)
        x, y = make_dataset(kind, seed=7)
        x_val = gen.random((120, x.shape[1]))
        y_val = gen.random(120)
        results = [
            prim_peel(x, y, alpha=0.08, min_support=8,
                      x_val=x_val, y_val=y_val, engine=engine)
            for engine in ("reference", "vectorized")
        ]
        assert_identical_results(results[0], results[1])

    @pytest.mark.parametrize("kind", KINDS)
    def test_equivalence_with_pasting(self, kind):
        x, y = make_dataset(kind, seed=11)
        results = [
            prim_peel(x, y, alpha=0.15, min_support=10, paste=True,
                      engine=engine)
            for engine in ("reference", "vectorized")
        ]
        assert_identical_results(results[0], results[1])

    @pytest.mark.parametrize("alpha", (0.03, 0.05, 0.2, 0.4))
    def test_equivalence_across_alphas(self, alpha):
        x, y = make_dataset("mixed", seed=3)
        results = [
            prim_peel(x, y, alpha=alpha, min_support=5, engine=engine)
            for engine in ("reference", "vectorized")
        ]
        assert_identical_results(results[0], results[1])

    def test_soft_label_fuzz(self):
        """Broad randomized sweep over shapes, objectives and alphas."""
        gen = np.random.default_rng(2024)
        for trial in range(40):
            n = int(gen.integers(30, 300))
            m = int(gen.integers(1, 8))
            x = gen.random((n, m))
            if trial % 3 == 0:
                x[:, ::2] = np.round(x[:, ::2] * 3) / 3
            y = gen.random(n)
            objective = OBJECTIVES[trial % 3]
            alpha = (0.05, 0.1, 0.3)[trial % 3]
            results = [
                prim_peel(x, y, alpha=alpha, min_support=5,
                          objective=objective, engine=engine)
                for engine in ("reference", "vectorized")
            ]
            assert_identical_results(results[0], results[1])

    def test_unknown_engine_rejected(self):
        x, y = make_dataset("continuous", seed=0)
        with pytest.raises(ValueError, match="engine"):
            prim_peel(x, y, engine="turbo")
        assert set(ENGINES) == {"vectorized", "reference", "native"}


class TestSingleStepKernel:
    """The kernel's per-step answer vs the reference candidate search."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_same_winning_candidate(self, kind, objective):
        for seed in range(8):
            x, y = make_dataset(kind, seed, n=150, m=4)
            total_mean, total_n = float(y.mean()), len(y)
            ref = _best_peel(x, y, np.arange(len(x)), 0.1, objective,
                             total_mean, total_n)
            vec = _kernels.best_peel(x, y, 0.1, objective, total_mean, total_n)
            assert (ref is None) == (vec is None)
            if ref is None:
                continue
            assert vec.dim == ref.dim
            assert vec.new_lower == ref.new_lower
            assert vec.new_upper == ref.new_upper
            np.testing.assert_array_equal(
                vec.keep_rows, np.nonzero(ref.keep_mask)[0])
            assert vec.score == pytest.approx(ref.score, rel=1e-9, abs=1e-12)

    def test_no_candidate_on_constant_data(self):
        x = np.full((50, 3), 0.5)
        y = np.ones(50)
        assert _kernels.best_peel(x, y, 0.05) is None

    def test_single_point_box(self):
        x = np.array([[0.1, 0.9]])
        y = np.array([1.0])
        assert _kernels.best_peel(x, y, 0.05) is None

    def test_discrete_fallback_peels_whole_level(self):
        # 60% of points tie at the minimum: the alpha-quantile cut
        # removes nothing, so the kernel must peel the entire level.
        x = np.array([[0.0]] * 60 + [[0.5]] * 25 + [[1.0]] * 15)
        y = np.array([0.0] * 60 + [1.0] * 40)
        step = _kernels.best_peel(x, y, 0.05)
        assert step.dim == 0
        assert step.new_lower == 0.5
        assert len(step.keep_rows) == 40

    def test_sorted_quantile_matches_numpy(self):
        gen = np.random.default_rng(5)
        for trial in range(200):
            n = int(gen.integers(2, 120))
            x = gen.random((n, 3))
            if trial % 2 == 0:
                x = np.round(x * 4) / 4
            alpha = float(gen.uniform(0.01, 0.49))
            v = np.sort(x, axis=0)
            expected = np.quantile(x, (alpha, 1.0 - alpha), axis=0)
            got = np.stack([_kernels.sorted_quantile(v, alpha),
                            _kernels.sorted_quantile(v, 1.0 - alpha)])
            np.testing.assert_array_equal(got, expected)
