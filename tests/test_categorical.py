"""Categorical scenario dimensions, end to end.

Locks the tentpole of the categorical stack: peel/paste candidate
enumeration over category levels, describe/serialise round-trips,
covering with mixed boxes, and bit-exact reference-vs-vectorized
equivalence on mixed numeric+categorical data for both PRIM and
BestInterval.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.methods import discover
from repro.data import get_lever_model, make_dataset
from repro.subgroup import (
    Hyperbox,
    SortedDataset,
    best_cat_subset,
    best_interval,
    best_interval_for_dim,
    cat_mask,
    contains_many,
    covering,
    evaluate_boxes,
    prim_peel,
)
from repro.subgroup.describe import box_from_dict, box_to_dict, describe_box
from repro.subgroup.prim import _best_peel


def mixed_data(n: int = 600, seed: int = 0):
    """Planted mixed box: a1 in [0.2, 0.7], a3 in {0, 2} of 4 levels."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, 4))
    x[:, 2] = np.floor(x[:, 2] * 4)
    x[:, 3] = np.floor(x[:, 3] * 3)
    y = ((x[:, 0] >= 0.2) & (x[:, 0] <= 0.7)
         & np.isin(x[:, 2], (0.0, 2.0))).astype(float)
    return x, y


# ----------------------------------------------------------------------
# Peel candidate enumeration
# ----------------------------------------------------------------------

class TestPeelCandidates:
    def test_reference_enumerates_one_candidate_per_level(self):
        # 3 levels present, strongly separated response: the best peel
        # must remove exactly the worst whole level.
        x = np.column_stack([np.repeat([0.0, 1.0, 2.0], 10)])
        y = np.concatenate([np.ones(10), np.zeros(10), np.ones(10)])
        step = _best_peel(x, y, np.arange(30), alpha=0.05,
                          cat_cols=frozenset({0}))
        assert step.new_cats == (0.0, 2.0)
        assert step.new_lower is None and step.new_upper is None
        np.testing.assert_array_equal(step.keep_mask, x[:, 0] != 1.0)

    def test_single_level_cannot_be_peeled(self):
        x = np.zeros((25, 1))
        y = np.ones(25)
        assert _best_peel(x, y, np.arange(25), alpha=0.05,
                          cat_cols=frozenset({0})) is None

    def test_peeling_removes_categories_one_at_a_time(self):
        x, y = mixed_data()
        result = prim_peel(x, y, min_support=10, cat_cols=(2, 3))
        # Consecutive boxes differ by at most one category on column 2.
        sizes = []
        for box in result.boxes:
            allowed = box.cat_restriction(2)
            sizes.append(4 if allowed is None else len(allowed))
        assert all(a - b in (0, 1) for a, b in zip(sizes, sizes[1:]))
        chosen = result.chosen_box.cat_restriction(2)
        assert chosen == frozenset({0.0, 2.0})

    def test_categorical_dim_keeps_infinite_bounds(self):
        x, y = mixed_data()
        result = prim_peel(x, y, min_support=10, cat_cols=(2, 3))
        for box in result.boxes:
            for j in (2, 3):
                if box.cat_restriction(j) is not None:
                    assert np.isinf(box.lower[j]) and np.isinf(box.upper[j])


class TestPasteCandidates:
    def test_paste_readmits_over_peeled_category(self):
        x, y = mixed_data()
        with_paste = prim_peel(x, y, min_support=10, cat_cols=(2, 3),
                               paste=True)
        no_paste = prim_peel(x, y, min_support=10, cat_cols=(2, 3))
        # Pasting never hurts the train mean of the chosen box.
        inside_p = with_paste.chosen_box.contains(x)
        inside_n = no_paste.chosen_box.contains(x)
        assert y[inside_p].mean() >= y[inside_n].mean()


# ----------------------------------------------------------------------
# best_cat_subset / BestInterval refinement
# ----------------------------------------------------------------------

class TestBestCatSubset:
    def test_selects_positive_weight_levels(self):
        np.testing.assert_array_equal(
            best_cat_subset([0.5, -1.0, 2.0, 0.0]),
            [True, False, True, False])

    def test_all_nonpositive_keeps_argmax_level(self):
        np.testing.assert_array_equal(
            best_cat_subset([-3.0, -1.0, -2.0]),
            [False, True, False])

    def test_refine_recovers_planted_subset(self):
        x, y = mixed_data()
        box = Hyperbox.unrestricted(4)
        refined = best_interval_for_dim(x, y, box, 2, categorical=True)
        assert refined.cat_restriction(2) == frozenset({0.0, 2.0})

    def test_sorted_dataset_cat_allowed_matches_reference(self):
        x, y = mixed_data()
        dataset = SortedDataset(x, y)
        base_rate = float(y.mean())
        mask = np.ones(len(x), dtype=bool)
        allowed = dataset.cat_allowed(2, mask)
        reference = best_interval_for_dim(
            x, y, Hyperbox.unrestricted(4), 2, base_rate, categorical=True)
        assert frozenset(allowed) == reference.cat_restriction(2)


# ----------------------------------------------------------------------
# Engine equivalence on mixed data
# ----------------------------------------------------------------------

class TestEngineEquivalence:
    @pytest.mark.parametrize("soft", [False, True])
    def test_prim_engines_bit_identical(self, soft):
        x, y = mixed_data(seed=7)
        if soft:
            rng = np.random.default_rng(1)
            y = np.clip(y * 0.9 + rng.random(len(y)) * 0.1, 0.0, 1.0)
        ref = prim_peel(x, y, min_support=10, cat_cols=(2, 3),
                        engine="reference")
        vec = prim_peel(x, y, min_support=10, cat_cols=(2, 3),
                        engine="vectorized")
        assert [b.key() for b in ref.boxes] == [b.key() for b in vec.boxes]
        np.testing.assert_array_equal(ref.train_means, vec.train_means)
        np.testing.assert_array_equal(ref.val_means, vec.val_means)
        assert ref.chosen == vec.chosen

    @pytest.mark.parametrize("beam_size", [1, 3])
    def test_bi_engines_bit_identical(self, beam_size):
        x, y = mixed_data(seed=11)
        ref = best_interval(x, y, beam_size=beam_size, cat_cols=(2, 3),
                            engine="reference")
        vec = best_interval(x, y, beam_size=beam_size, cat_cols=(2, 3),
                            engine="vectorized")
        assert ref.box.key() == vec.box.key()
        assert ref.wracc == vec.wracc

    def test_discover_engines_agree_on_lever_model(self):
        model = get_lever_model("portfolio")
        x, y = make_dataset(model, 400, np.random.default_rng(2))
        results = {
            engine: discover("BI", x, y, seed=0, engine=engine,
                             cat_levels=model.cat_levels_map)
            for engine in ("reference", "vectorized")
        }
        assert (results["reference"].chosen_box.key()
                == results["vectorized"].chosen_box.key())
        # Purely categorical ground truth: tech in {1, 3}, contract 0.
        chosen = results["vectorized"].chosen_box
        assert chosen.cat_restriction(3) == frozenset({1.0, 3.0})
        assert chosen.cat_restriction(4) == frozenset({0.0})


# ----------------------------------------------------------------------
# Membership / batched kernels
# ----------------------------------------------------------------------

class TestMixedMembership:
    def test_contains_many_matches_per_row_contains(self):
        x, y = mixed_data(seed=3)
        boxes = [
            Hyperbox.unrestricted(4),
            Hyperbox.unrestricted(4).with_cats(2, {0.0, 2.0}),
            Hyperbox.unrestricted(4).replace(0, lower=0.2, upper=0.7)
            .with_cats(3, {1.0}),
        ]
        batched = contains_many(boxes, x)
        for row, box in zip(batched, boxes):
            np.testing.assert_array_equal(row, box.contains(x))

    def test_evaluate_boxes_counts_mixed_boxes(self):
        x, y = mixed_data(seed=5)
        box = (Hyperbox.unrestricted(4)
               .replace(0, lower=0.2, upper=0.7)
               .with_cats(2, {0.0, 2.0}))
        evaluation = evaluate_boxes([box], x, y)
        inside = box.contains(x)
        assert evaluation.n_inside[0] == inside.sum()
        assert evaluation.y_sums[0] == y[inside].sum()
        np.testing.assert_array_equal(evaluation.masks[0], inside)

    def test_cat_mask_is_isin(self, rng):
        column = np.floor(rng.random(50) * 5)
        allowed = frozenset({0.0, 3.0})
        np.testing.assert_array_equal(
            cat_mask(column, allowed), np.isin(column, (0.0, 3.0)))


# ----------------------------------------------------------------------
# Covering with mixed boxes
# ----------------------------------------------------------------------

class TestCoveringMixed:
    def test_covering_finds_disjoint_mixed_subgroups(self):
        rng = np.random.default_rng(13)
        x = rng.random((900, 3))
        x[:, 2] = np.floor(x[:, 2] * 4)
        first = (x[:, 0] <= 0.3) & (x[:, 2] == 1.0)
        second = (x[:, 0] >= 0.7) & (x[:, 2] == 3.0)
        y = (first | second).astype(float)

        def one_box(data_x, data_y):
            return prim_peel(data_x, data_y, min_support=10,
                             cat_cols=(2,)).chosen_box

        found = covering(x, y, one_box, n_subgroups=3)
        assert len(found) >= 2
        covered = contains_many(found[:2], x).any(axis=0)
        # The two planted subgroups are both essentially recovered.
        assert y[covered].sum() / y.sum() > 0.9
        assert {found[0].cat_restriction(2), found[1].cat_restriction(2)} \
            == {frozenset({1.0}), frozenset({3.0})}


# ----------------------------------------------------------------------
# describe / restrict round-trips
# ----------------------------------------------------------------------

class TestDescribeRoundTrip:
    def box(self):
        return (Hyperbox.unrestricted(3)
                .replace(0, lower=0.25, upper=0.75)
                .with_cats(2, {0.0, 2.0}))

    def test_describe_renders_category_sets(self):
        text = describe_box(self.box(), input_names=("rain", "cost", "mode"))
        assert "mode in {0, 2}" in text
        assert "0.25 <= rain <= 0.75" in text

    def test_dict_round_trip_preserves_key(self):
        box = self.box()
        rebuilt = box_from_dict(box_to_dict(box))
        assert rebuilt.key() == box.key()

    def test_dict_export_lists_categories(self):
        data = box_to_dict(self.box())
        assert data["restrictions"]["a3"]["categories"] == [0.0, 2.0]

    def test_with_cats_none_clears_restriction(self):
        cleared = self.box().with_cats(2, None)
        assert cleared.cat_restriction(2) is None
        assert 2 not in cleared.restricted_dims

    def test_volume_counts_level_fraction(self):
        box = self.box()
        levels = {2: np.arange(4, dtype=float)}
        assert box.volume(discrete_levels=levels) == pytest.approx(0.25)
