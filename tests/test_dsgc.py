"""Tests for the decentral smart grid control simulation."""

import numpy as np
import pytest

from repro.data.dsgc import DSGC_DIM, dsgc_unstable, simulate_dsgc


def _inputs(tau: float, gamma: float, n: int = 4) -> np.ndarray:
    """Unit-cube inputs with homogeneous tau and gamma.

    tau, gamma given in unit-cube coordinates (0 = range minimum).
    """
    u = np.full((n, DSGC_DIM), 0.5)
    u[:, 0:4] = tau
    u[:, 7:11] = gamma
    return u


class TestPhysics:
    def test_fast_weak_control_is_stable(self):
        """Small delay + small elasticity: damping wins, grid stable."""
        labels = dsgc_unstable(_inputs(tau=0.0, gamma=0.0))
        assert (labels == 0).all()

    def test_slow_strong_control_is_unstable(self):
        """Delay ~10 s with strong elasticity destabilises the grid."""
        labels = dsgc_unstable(_inputs(tau=1.0, gamma=1.0))
        assert (labels == 1).all()

    def test_delay_monotonicity_in_the_bulk(self):
        """Longer reaction delays should not stabilise a strong controller."""
        gentle = simulate_dsgc(_inputs(tau=0.05, gamma=0.9, n=1))
        harsh = simulate_dsgc(_inputs(tau=0.95, gamma=0.9, n=1))
        assert harsh[0] > gentle[0]

    def test_share_near_paper_value(self, rng):
        labels = dsgc_unstable(rng.random((1500, DSGC_DIM)))
        assert 0.45 < labels.mean() < 0.62  # paper: 53.7 %


class TestInterface:
    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            dsgc_unstable(rng.random((4, DSGC_DIM - 1)))

    def test_deterministic(self, rng):
        u = rng.random((16, DSGC_DIM))
        np.testing.assert_array_equal(dsgc_unstable(u), dsgc_unstable(u))

    def test_labels_binary(self, rng):
        labels = dsgc_unstable(rng.random((32, DSGC_DIM)))
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_chunking_invariant(self, rng, monkeypatch):
        """Results must not depend on the internal batch size."""
        import repro.data.dsgc as mod
        u = rng.random((10, DSGC_DIM))
        full = simulate_dsgc(u)
        monkeypatch.setattr(mod, "_CHUNK", 3)
        chunked = simulate_dsgc(u)
        np.testing.assert_allclose(full, chunked)

    def test_amplification_positive(self, rng):
        assert (simulate_dsgc(rng.random((8, DSGC_DIM))) > 0).all()
