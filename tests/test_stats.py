"""Tests for the statistical-test module."""

import numpy as np
import pytest

from repro.experiments.stats import (
    friedman_test,
    posthoc_friedman_conover,
    rank_methods,
    wilcoxon_mann_whitney,
)


def _scores_with_clear_winner(n=20, seed=0):
    """Method 0 clearly best, 1 middling, 2 worst."""
    gen = np.random.default_rng(seed)
    base = gen.random((n, 1))
    return np.hstack([base + 0.5, base + 0.25, base])


class TestRanks:
    def test_best_method_gets_rank_one(self):
        scores = _scores_with_clear_winner()
        ranks = rank_methods(scores)
        np.testing.assert_allclose(ranks[:, 0], 1.0)
        np.testing.assert_allclose(ranks[:, 2], 3.0)

    def test_lower_is_better_flips(self):
        scores = _scores_with_clear_winner()
        ranks = rank_methods(scores, higher_is_better=False)
        np.testing.assert_allclose(ranks[:, 0], 3.0)

    def test_ties_get_average_rank(self):
        scores = np.array([[1.0, 1.0, 0.0]] * 3)
        ranks = rank_methods(scores)
        np.testing.assert_allclose(ranks[:, 0], 1.5)
        np.testing.assert_allclose(ranks[:, 1], 1.5)

    @pytest.mark.parametrize("bad", [np.zeros(5), np.zeros((1, 3)),
                                     np.zeros((5, 1))])
    def test_bad_shapes_rejected(self, bad):
        with pytest.raises(ValueError):
            rank_methods(bad)

    def test_nan_rejected(self):
        scores = np.full((4, 3), np.nan)
        with pytest.raises(ValueError):
            rank_methods(scores)


class TestFriedman:
    def test_detects_clear_differences(self):
        result = friedman_test(_scores_with_clear_winner())
        assert result.p_value < 1e-4
        assert result.mean_ranks[0] < result.mean_ranks[2]

    def test_no_difference_high_p(self):
        gen = np.random.default_rng(1)
        scores = gen.random((30, 3))  # iid: no method effect
        result = friedman_test(scores)
        assert result.p_value > 0.01

    def test_mean_ranks_sum(self):
        result = friedman_test(_scores_with_clear_winner())
        k = 3
        assert result.mean_ranks.sum() == pytest.approx(k * (k + 1) / 2)


class TestPosthoc:
    def test_shape_and_diagonal(self):
        p = posthoc_friedman_conover(_scores_with_clear_winner())
        assert p.shape == (3, 3)
        np.testing.assert_allclose(np.diag(p), 1.0)

    def test_symmetry(self):
        p = posthoc_friedman_conover(_scores_with_clear_winner())
        np.testing.assert_allclose(p, p.T)

    def test_clear_winner_significant(self):
        p = posthoc_friedman_conover(_scores_with_clear_winner())
        assert p[0, 2] < 0.001

    def test_identical_methods_not_significant(self):
        gen = np.random.default_rng(2)
        base = gen.random((25, 1))
        noise = gen.normal(0, 0.01, (25, 3))
        scores = np.hstack([base, base, base]) + noise
        p = posthoc_friedman_conover(scores)
        # Pure noise differences: no confident separation expected.
        assert p[0, 1] > 0.001

    def test_all_tied_returns_ones(self):
        scores = np.ones((10, 3))
        p = posthoc_friedman_conover(scores)
        np.testing.assert_allclose(p, 1.0)

    def test_perfectly_consistent_rankings(self):
        """Zero rank variance must not divide by zero."""
        scores = np.tile(np.array([3.0, 2.0, 1.0]), (8, 1))
        p = posthoc_friedman_conover(scores)
        assert p[0, 2] < 0.05
        np.testing.assert_allclose(np.diag(p), 1.0)


class TestWMW:
    def test_shifted_samples_significant(self):
        gen = np.random.default_rng(3)
        a = gen.normal(1.0, 0.2, 50)
        b = gen.normal(0.0, 0.2, 50)
        assert wilcoxon_mann_whitney(a, b, "greater") < 1e-10

    def test_equal_samples_not_significant(self):
        gen = np.random.default_rng(4)
        a = gen.normal(0, 1, 50)
        b = gen.normal(0, 1, 50)
        assert wilcoxon_mann_whitney(a, b, "greater") > 0.01

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_mann_whitney(np.array([]), np.array([1.0]))
