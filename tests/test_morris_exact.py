"""Brute-force verification of the Morris function implementation.

The vectorised implementation computes third- and fourth-order
interaction sums through elementary symmetric polynomials; this test
re-computes the full quadruple sum naively on small samples to make
sure the algebra is right.
"""

import itertools

import numpy as np
import pytest

from repro.data.saltelli import _morris_w, morris


def morris_naive(x: np.ndarray) -> np.ndarray:
    w = _morris_w(np.asarray(x, dtype=float))
    n, m = w.shape
    out = np.zeros(n)

    def beta1(i):  # 1-based index
        return 20.0 if i <= 10 else (-1.0) ** i

    def beta2(i, j):
        return -15.0 if (i <= 6 and j <= 6) else (-1.0) ** (i + j)

    for row in range(n):
        total = 0.0
        for i in range(1, m + 1):
            total += beta1(i) * w[row, i - 1]
        for i, j in itertools.combinations(range(1, m + 1), 2):
            total += beta2(i, j) * w[row, i - 1] * w[row, j - 1]
        for i, j, k in itertools.combinations(range(1, 6), 3):
            total += -10.0 * w[row, i - 1] * w[row, j - 1] * w[row, k - 1]
        for i, j, k, l in itertools.combinations(range(1, 5), 4):
            total += 5.0 * (w[row, i - 1] * w[row, j - 1]
                            * w[row, k - 1] * w[row, l - 1])
        out[row] = total
    return out


class TestMorrisExact:
    def test_matches_naive_on_random_points(self, rng):
        x = rng.random((25, 20))
        np.testing.assert_allclose(morris(x), morris_naive(x), rtol=1e-10)

    def test_matches_naive_at_cube_corners(self):
        corners = np.array([
            np.zeros(20),
            np.ones(20),
            np.concatenate([np.ones(10), np.zeros(10)]),
        ])
        np.testing.assert_allclose(
            morris(corners), morris_naive(corners), rtol=1e-10)

    def test_w_transform_special_inputs(self):
        """Inputs 3, 5, 7 (1-based) use the rational transform."""
        x = np.full((1, 20), 0.5)
        w = _morris_w(x.copy())
        # Plain transform: 2*(0.5-0.5) = 0.
        assert w[0, 0] == pytest.approx(0.0)
        # Rational transform at 0.5: 2*(1.1*0.5/0.6 - 0.5) = 5/6 - 1 != 0.
        expected = 2.0 * (1.1 * 0.5 / 0.6 - 0.5)
        for j in (2, 4, 6):
            assert w[0, j] == pytest.approx(expected)
