"""Bit-identity of every fanned-out path under the global worker budget.

The planner hands ``jobs`` leases down to trajectory evaluation, batched
box evaluation, forest fitting and the active-learning loop; none of
those knobs may change a single bit of any result.  Each test runs the
same computation serially and fanned out and compares exactly.
"""

import numpy as np

from repro.core.active import active_reds
from repro.metamodels.forest import RandomForestModel
from repro.metrics.trajectory import peeling_trajectory
from repro.subgroup._kernels import evaluate_boxes
from repro.subgroup.box import Hyperbox
from repro.subgroup.bumping import prim_bumping


def _boxes(count: int, dim: int, rng: np.random.Generator) -> list:
    out = []
    for _ in range(count):
        lower = rng.random(dim) * 0.4
        upper = lower + 0.2 + rng.random(dim) * 0.4
        out.append(Hyperbox(lower, np.minimum(upper, 1.0)))
    return out


def _dataset(n: int, dim: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    x = rng.random((n, dim))
    y = (x[:, 0] + 0.3 * x[:, 1] > 0.6).astype(float)
    return x, y, rng


class TestTrajectoryFanout:
    def test_fanned_trajectory_is_bit_identical(self):
        x, y, rng = _dataset(600, 4)
        boxes = _boxes(13, 4, rng)
        serial = peeling_trajectory(boxes, x, y, jobs=1)
        for kwargs in (dict(jobs=2), dict(jobs=None),
                       dict(jobs=3, chunk_boxes=2)):
            fanned = peeling_trajectory(boxes, x, y, **kwargs)
            np.testing.assert_array_equal(serial, fanned)

    def test_single_box_stays_serial(self):
        x, y, rng = _dataset(50, 3)
        boxes = _boxes(1, 3, rng)
        np.testing.assert_array_equal(
            peeling_trajectory(boxes, x, y, jobs=1),
            peeling_trajectory(boxes, x, y, jobs=4))


class TestEvaluateBoxesFanout:
    def _assert_same(self, a, b):
        np.testing.assert_array_equal(a.masks, b.masks)
        np.testing.assert_array_equal(a.n_inside, b.n_inside)
        np.testing.assert_array_equal(a.y_sums, b.y_sums)
        np.testing.assert_array_equal(a.y_means, b.y_means)
        assert a.n_total == b.n_total
        assert a.y_total == b.y_total
        assert a.base_rate == b.base_rate

    def test_binary_labels(self):
        x, y, rng = _dataset(500, 4)
        boxes = _boxes(11, 4, rng)
        serial = evaluate_boxes(boxes, x, y, jobs=1)
        for kwargs in (dict(jobs=2), dict(jobs=3, chunk_boxes=4)):
            self._assert_same(serial, evaluate_boxes(boxes, x, y, **kwargs))

    def test_soft_labels(self):
        x, _, rng = _dataset(400, 3)
        y = rng.random(400)  # not all 0/1: the pairwise-sum regime
        boxes = _boxes(9, 3, rng)
        serial = evaluate_boxes(boxes, x, y, jobs=1)
        self._assert_same(serial, evaluate_boxes(boxes, x, y, jobs=2))


class TestForestFitFanout:
    def test_fanned_fit_grows_identical_trees(self):
        x, y, _ = _dataset(250, 5)
        serial = RandomForestModel(n_trees=11, seed=3, jobs=1).fit(x, y)
        fanned = RandomForestModel(n_trees=11, seed=3, jobs=2).fit(x, y)
        assert len(serial.trees_) == len(fanned.trees_) == 11
        for a, b in zip(serial.trees_, fanned.trees_):
            np.testing.assert_array_equal(a.feature, b.feature)
            np.testing.assert_array_equal(a.threshold, b.threshold)
            np.testing.assert_array_equal(a.value, b.value)
        q = np.random.default_rng(7).random((100, 5))
        np.testing.assert_array_equal(serial.predict_proba(q),
                                      fanned.predict_proba(q))


class TestBumpingFanout:
    """The per-round bumping repeats fan out without changing a bit.

    The repeat randomness (bootstrap rows, feature subsets) is drawn
    up front from one rng stream, so scheduling cannot reorder it; the
    pooled box set — and hence the Pareto front — must match the serial
    loop exactly for every jobs/chunk setting.
    """

    def _assert_same(self, a, b):
        assert [box.key() for box in a.boxes] == [box.key() for box in b.boxes]
        np.testing.assert_array_equal(a.precisions, b.precisions)
        np.testing.assert_array_equal(a.recalls, b.recalls)
        assert a.chosen == b.chosen

    def test_fanned_repeats_are_bit_identical(self):
        x, y, _ = _dataset(300, 5)
        runs = {}
        for jobs, chunk in ((1, None), (2, None), (3, 2), (None, None)):
            runs[(jobs, chunk)] = prim_bumping(
                x, y, n_repeats=9, n_features=3,
                rng=np.random.default_rng(21),
                jobs=jobs, chunk_repeats=chunk)
        serial = runs[(1, None)]
        for key, fanned in runs.items():
            self._assert_same(serial, fanned)

    def test_categorical_repeats_fan_out_identically(self):
        rng = np.random.default_rng(8)
        x = rng.random((350, 4))
        x[:, 3] = np.floor(x[:, 3] * 3)
        y = ((x[:, 0] > 0.4) & (x[:, 3] != 1.0)).astype(float)
        serial = prim_bumping(x, y, n_repeats=8, n_features=3,
                              rng=np.random.default_rng(4),
                              cat_cols=(3,), jobs=1)
        fanned = prim_bumping(x, y, n_repeats=8, n_features=3,
                              rng=np.random.default_rng(4),
                              cat_cols=(3,), jobs=2, chunk_repeats=3)
        self._assert_same(serial, fanned)
        assert any(box.cat_restriction(3) is not None for box in serial.boxes)


def _step_oracle(x: np.ndarray) -> np.ndarray:
    return (x[:, 0] > 0.5).astype(float)


def _summarise_sd(x: np.ndarray, y: np.ndarray):
    # Deterministic stand-in for subgroup discovery: enough to compare
    # the relabelled sample the loop hands to it.
    return (x.shape, float(x.sum()), float(y.sum()))


class TestActiveLearningFanout:
    def _run(self, jobs, soft):
        return active_reds(
            _step_oracle, 3, _summarise_sd,
            initial=30, budget=70, batch=20,
            metamodel="forest", candidate_pool=150, n_new=200,
            soft_labels=soft, rng=np.random.default_rng(11), jobs=jobs)

    def test_fanned_loop_matches_serial(self):
        for soft in (False, True):
            serial = self._run(1, soft)
            fanned = self._run(2, soft)
            np.testing.assert_array_equal(serial.x, fanned.x)
            np.testing.assert_array_equal(serial.y, fanned.y)
            assert serial.acquisition_history == fanned.acquisition_history
            assert serial.sd_output == fanned.sd_output
