"""Tests for the shared-memory data plane.

The broker must round-trip arrays exactly, address them by content,
fall back to inline refs when shared memory is disabled, and leave no
segment behind after ``unlink`` — on clean and failing paths alike.
"""

import numpy as np
import pytest

from repro.experiments.dataplane import (
    ArrayRef,
    DataPlane,
    SEGMENT_PREFIX,
    active_segments,
    content_key,
    dataplane_enabled,
    resolve_refs,
)


class TestContentKey:
    def test_identical_content_identical_key(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert content_key(a) == content_key(a.copy())

    def test_key_covers_values_shape_and_dtype(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert content_key(a) != content_key(a + 1)
        assert content_key(a) != content_key(a.reshape(4, 3))
        assert content_key(a) != content_key(a.astype(np.float32))


class TestDataPlane:
    def test_roundtrip_and_readonly(self):
        with DataPlane() as plane:
            a = np.arange(30, dtype=float).reshape(5, 6)
            ref = plane.publish(a)
            out = ref.resolve()
            np.testing.assert_array_equal(out, a)
            assert not out.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                out[0, 0] = 1.0

    def test_publish_is_idempotent_per_key(self):
        with DataPlane() as plane:
            a = np.arange(8.0)
            assert plane.publish(a) is plane.publish(a.copy())
            assert len(plane.segment_names()) <= 1

    def test_ref_is_content_addressed(self):
        with DataPlane() as plane:
            a = np.arange(8.0)
            assert plane.publish(a).key == content_key(a)

    def test_unlink_removes_segments(self):
        plane = DataPlane()
        plane.publish(np.arange(100.0))
        names = plane.segment_names()
        if dataplane_enabled():
            assert names and all(n.startswith(SEGMENT_PREFIX) for n in names)
        plane.unlink()
        assert plane.segment_names() == []
        assert not set(names) & set(active_segments())
        # Idempotent, and a dead plane refuses new work.
        plane.unlink()
        with pytest.raises(RuntimeError):
            plane.publish(np.arange(3.0))

    @pytest.mark.skipif(not dataplane_enabled(), reason="no shared memory")
    def test_unlinked_segment_name_is_gone(self):
        from multiprocessing import shared_memory

        plane = DataPlane()
        ref = plane.publish(np.arange(16.0))
        plane.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment)

    def test_inline_fallback_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REDS_DATAPLANE", "0")
        with DataPlane() as plane:
            a = np.arange(6.0).reshape(2, 3)
            ref = plane.publish(a)
            assert ref.segment is None
            np.testing.assert_array_equal(ref.resolve(), a)
            assert not ref.resolve().flags.writeable
            assert plane.segment_names() == []

    def test_empty_array_roundtrip(self):
        with DataPlane() as plane:
            a = np.empty((0, 4))
            np.testing.assert_array_equal(plane.publish(a).resolve(), a)


class TestResolveRefs:
    def test_nested_structures(self):
        with DataPlane() as plane:
            a = np.arange(4.0)
            b = np.arange(6.0).reshape(2, 3)
            obj = {"x": plane.publish(a), "nest": [plane.publish(b), 7],
                   "pair": (plane.publish(a), "s")}
            out = resolve_refs(obj)
            np.testing.assert_array_equal(out["x"], a)
            np.testing.assert_array_equal(out["nest"][0], b)
            assert out["nest"][1] == 7
            assert isinstance(out["pair"], tuple)
            assert out["pair"][1] == "s"

    def test_passthrough(self):
        assert resolve_refs(42) == 42
        assert resolve_refs("abc") == "abc"

    def test_ref_without_segment_or_data_fails(self):
        ref = ArrayRef(key="k", shape=(2,), dtype="<f8")
        with pytest.raises(ValueError, match="neither"):
            ref.resolve()
