"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_models_parses(self):
        args = build_parser().parse_args(["list-models"])
        assert args.command == "list-models"

    def test_discover_defaults(self):
        args = build_parser().parse_args(
            ["discover", "--function", "ishigami"])
        assert args.method == "RPx"
        assert args.n == 400
        assert not args.no_tune

    def test_compare_method_list(self):
        args = build_parser().parse_args(
            ["compare", "--function", "morris", "--methods", "P, RPx"])
        assert args.methods == "P, RPx"

    def test_discover_requires_function(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover"])


class TestCommands:
    def test_list_models_output(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "borehole" in out
        assert "dsgc" in out
        assert "share %" in out

    def test_discover_runs_end_to_end(self, capsys):
        code = main([
            "discover", "--function", "willetal06", "--method", "P",
            "--n", "150", "--test-size", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PR AUC" in out
        assert "scenario:" in out
        assert "peeling trajectory" in out

    def test_discover_reds_no_tune(self, capsys):
        code = main([
            "discover", "--function", "willetal06", "--method", "RPf",
            "--n", "150", "--n-new", "1000", "--no-tune",
            "--test-size", "2000",
        ])
        assert code == 0
        assert "RPf" in capsys.readouterr().out

    def test_compare_prints_table(self, capsys):
        code = main([
            "compare", "--function", "willetal06", "--methods", "P,BI",
            "--n", "150", "--reps", "2", "--no-tune",
            "--test-size", "2000", "--n-new", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PR AUC %" in out
        assert "runtime s" in out
