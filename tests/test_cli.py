"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.store import ExperimentStore


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_models_parses(self):
        args = build_parser().parse_args(["list-models"])
        assert args.command == "list-models"

    def test_discover_defaults(self):
        args = build_parser().parse_args(
            ["discover", "--function", "ishigami"])
        assert args.method == "RPx"
        assert args.n == 400
        assert not args.no_tune

    def test_compare_method_list(self):
        args = build_parser().parse_args(
            ["compare", "--function", "morris", "--methods", "P, RPx"])
        assert args.methods == "P, RPx"

    def test_discover_requires_function(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover"])

    def test_compare_store_defaults(self):
        args = build_parser().parse_args(["compare", "--function", "morris"])
        assert args.store is None
        assert args.resume is True

    def test_no_cache_disables_resume(self):
        args = build_parser().parse_args(
            ["compare", "--function", "morris", "--store", "d", "--no-cache"])
        assert args.store == "d"
        assert args.resume is False

    def test_resume_and_no_cache_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--function", "morris", "--store", "d",
                 "--resume", "--no-cache"])

    def test_engine_and_jobs_on_every_run_subcommand(self):
        one = build_parser().parse_args(
            ["discover", "--function", "morris", "--engine", "reference",
             "--jobs", "4"])
        assert one.engine == "reference"
        assert one.jobs == 4
        many = build_parser().parse_args(
            ["compare", "--function", "morris", "--engine", "reference",
             "--jobs", "4"])
        assert many.engine == "reference"
        assert many.jobs == 4

    def test_engine_defaults_to_vectorized(self):
        assert build_parser().parse_args(
            ["discover", "--function", "m"]).engine == "vectorized"
        assert build_parser().parse_args(
            ["compare", "--function", "m"]).engine == "vectorized"

    def test_shard_and_executor_parse(self):
        args = build_parser().parse_args(
            ["compare", "--function", "m", "--store", "d",
             "--shard", "1/4", "--executor", "sharded"])
        assert args.shard == "1/4"
        assert args.executor == "sharded"

    def test_shard_requires_store(self, capsys):
        code = main(["compare", "--function", "morris", "--shard", "0/2"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_shard_conflicts_with_other_executors(self, capsys):
        code = main(["compare", "--function", "morris", "--store", "d",
                     "--shard", "0/2", "--executor", "process"])
        assert code == 2
        assert "sharded executor" in capsys.readouterr().err

    def test_sharded_executor_needs_shard(self, capsys):
        code = main(["compare", "--function", "morris", "--store", "d",
                     "--executor", "sharded"])
        assert code == 2
        assert "--shard" in capsys.readouterr().err

    def test_shard_conflicts_with_no_cache(self, capsys):
        code = main(["compare", "--function", "morris", "--store", "d",
                     "--shard", "0/2", "--no-cache"])
        assert code == 2
        assert "fresh --store" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["nope", "5/2", "0/0"])
    def test_malformed_shard_exits_cleanly(self, capsys, bad):
        code = main(["compare", "--function", "morris", "--store", "d",
                     "--shard", bad])
        assert code == 2
        assert "shard" in capsys.readouterr().err


class TestCommands:
    def test_list_models_output(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "borehole" in out
        assert "dsgc" in out
        assert "share %" in out

    def test_discover_runs_end_to_end(self, capsys):
        code = main([
            "discover", "--function", "willetal06", "--method", "P",
            "--n", "150", "--test-size", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PR AUC" in out
        assert "scenario:" in out
        assert "peeling trajectory" in out

    def test_discover_reds_no_tune(self, capsys):
        code = main([
            "discover", "--function", "willetal06", "--method", "RPf",
            "--n", "150", "--n-new", "1000", "--no-tune",
            "--test-size", "2000",
        ])
        assert code == 0
        assert "RPf" in capsys.readouterr().out

    def test_compare_prints_table(self, capsys):
        code = main([
            "compare", "--function", "willetal06", "--methods", "P,BI",
            "--n", "150", "--reps", "2", "--no-tune",
            "--test-size", "2000", "--n-new", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PR AUC %" in out
        assert "runtime s" in out


class TestCompareStore:
    """The --store / --resume / --no-cache workflow end to end."""

    ARGS = ["compare", "--function", "willetal06", "--methods", "P,BI",
            "--n", "120", "--reps", "2", "--no-tune",
            "--test-size", "1500", "--n-new", "1000"]

    @staticmethod
    def _table(out: str) -> str:
        """The metric table, without the store status line and the
        wall-clock runtime row (re-measured on every fresh run)."""
        return "\n".join(
            line for line in out.splitlines()
            if not line.startswith(("store ", "runtime s")))

    def test_interrupted_grid_resumes_to_cold_result(self, capsys, tmp_path):
        store_dir = str(tmp_path / "records")

        # Cold serial reference run, no store involved.
        assert main(self.ARGS) == 0
        reference = self._table(capsys.readouterr().out)

        # Full store-backed run, then simulate an interruption by
        # deleting half of the persisted records.
        assert main(self.ARGS + ["--store", store_dir]) == 0
        first = capsys.readouterr().out
        assert "0 cached, 4 computed" in first
        assert self._table(first) == reference

        store = ExperimentStore(store_dir)
        for key in sorted(store.keys())[::2]:
            store.path_for(key).unlink()

        # --resume executes only the two missing cells and reproduces
        # the cold table exactly.
        assert main(self.ARGS + ["--store", store_dir, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "2 cached, 2 computed" in resumed
        assert self._table(resumed) == reference

        # Now warm: nothing left to compute.
        assert main(self.ARGS + ["--store", store_dir]) == 0
        warm = capsys.readouterr().out
        assert "4 cached, 0 computed" in warm
        assert self._table(warm) == reference

    def test_no_cache_recomputes_but_still_matches(self, capsys, tmp_path):
        store_dir = str(tmp_path / "records")
        assert main(self.ARGS + ["--store", store_dir]) == 0
        cold = self._table(capsys.readouterr().out)

        assert main(self.ARGS + ["--store", store_dir, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 cached, 4 computed" in out
        assert self._table(out) == cold
