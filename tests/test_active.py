"""Tests for active-learning REDS."""

import numpy as np
import pytest

from repro.core.active import STRATEGIES, active_reds
from repro.subgroup.prim import prim_peel


def _oracle(x: np.ndarray) -> np.ndarray:
    """Planted box on the first two dims."""
    return ((x[:, :2] >= 0.2) & (x[:, :2] <= 0.6)).all(axis=1).astype(float)


def _sd(x, y):
    return prim_peel(x, y, alpha=0.1)


class TestValidation:
    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            active_reds(_oracle, 3, _sd, strategy="entropy", rng=rng)

    def test_budget_below_initial(self, rng):
        with pytest.raises(ValueError):
            active_reds(_oracle, 3, _sd, initial=100, budget=50, rng=rng)

    def test_bad_batch(self, rng):
        with pytest.raises(ValueError):
            active_reds(_oracle, 3, _sd, batch=0, rng=rng)

    def test_tiny_initial(self, rng):
        with pytest.raises(ValueError):
            active_reds(_oracle, 3, _sd, initial=1, budget=10, rng=rng)


class TestLoop:
    def test_respects_budget_exactly(self, rng):
        result = active_reds(
            _oracle, 3, _sd, initial=40, budget=100, batch=30,
            candidate_pool=500, n_new=1000, rng=rng)
        assert len(result.x) == 100
        assert len(result.y) == 100

    def test_partial_last_batch(self, rng):
        result = active_reds(
            _oracle, 3, _sd, initial=40, budget=95, batch=30,
            candidate_pool=500, n_new=1000, rng=rng)
        assert len(result.x) == 95

    def test_no_queries_when_budget_equals_initial(self, rng):
        result = active_reds(
            _oracle, 3, _sd, initial=50, budget=50,
            candidate_pool=500, n_new=1000, rng=rng)
        assert len(result.x) == 50
        assert result.acquisition_history == []

    def test_uncertainty_targets_boundary(self, rng):
        """Uncertainty-sampled queries sit closer to the decision
        boundary than random ones (lower |p - 0.5|)."""
        uncertain = active_reds(
            _oracle, 3, _sd, initial=60, budget=160, batch=50,
            strategy="uncertainty", candidate_pool=2000, n_new=1000,
            rng=np.random.default_rng(0))
        random = active_reds(
            _oracle, 3, _sd, initial=60, budget=160, batch=50,
            strategy="random", candidate_pool=2000, n_new=1000,
            rng=np.random.default_rng(0))
        assert (np.mean(uncertain.acquisition_history)
                < np.mean(random.acquisition_history))

    def test_sd_output_is_prim_result(self, rng):
        result = active_reds(
            _oracle, 3, _sd, initial=50, budget=120, batch=35,
            candidate_pool=800, n_new=2000, rng=rng)
        assert hasattr(result.sd_output, "chosen_box")
        assert result.sd_output.chosen_box.dim == 3

    def test_soft_labels_mode(self, rng):
        captured = {}
        def capture_sd(x, y):
            captured["y"] = y
            return prim_peel(x, y, alpha=0.1)
        active_reds(_oracle, 3, capture_sd, initial=60, budget=60,
                    soft_labels=True, n_new=800, rng=rng)
        assert len(np.unique(captured["y"])) > 2

    def test_custom_sampler_used_everywhere(self, rng):
        def half_cube(n, m, gen):
            return gen.random((n, m)) * 0.5
        result = active_reds(
            _oracle, 2, _sd, initial=40, budget=80, batch=20,
            sampler=half_cube, candidate_pool=400, n_new=500, rng=rng)
        assert result.x.max() <= 0.5

    def test_strategies_registry(self):
        assert set(STRATEGIES) == {"uncertainty", "random"}


class TestQuality:
    def test_active_budget_finds_good_box(self):
        """With a tight budget the active loop locates the planted box
        well (precision and recall both high on fresh data)."""
        result = active_reds(
            _oracle, 4, _sd, initial=80, budget=240, batch=40,
            strategy="uncertainty", candidate_pool=3000, n_new=5000,
            rng=np.random.default_rng(1))
        grid = np.random.default_rng(2).random((4000, 4))
        truth = _oracle(grid)
        inside = result.sd_output.chosen_box.contains(grid)
        covered = float(truth[inside].sum())
        precision = covered / max(inside.sum(), 1)
        recall = covered / max(truth.sum(), 1)
        assert precision > 0.6
        assert recall > 0.4
