"""Tests for the random forest and Newton boosting metamodels."""

import numpy as np
import pytest

from repro.metamodels import GradientBoostingModel, RandomForestModel
from tests.conftest import planted_box_data


class TestRandomForest:
    def test_rejects_bad_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestModel(n_trees=0)

    def test_rejects_unfitted_predict(self, rng):
        with pytest.raises(RuntimeError):
            RandomForestModel().predict_proba(rng.random((3, 2)))

    def test_probability_range(self, rng):
        x, y, _ = planted_box_data(300, 4)
        p = RandomForestModel(n_trees=20, seed=0).fit(x, y).predict_proba(rng.random((50, 4)))
        assert (p >= 0).all() and (p <= 1).all()

    def test_reproducible_with_seed(self, rng):
        x, y, _ = planted_box_data(200, 3)
        grid = rng.random((40, 3))
        a = RandomForestModel(n_trees=10, seed=5).fit(x, y).predict_proba(grid)
        b = RandomForestModel(n_trees=10, seed=5).fit(x, y).predict_proba(grid)
        np.testing.assert_array_equal(a, b)

    def test_learns_planted_box(self):
        x, y, box = planted_box_data(800, 4, seed=1)
        model = RandomForestModel(n_trees=50, seed=0).fit(x, y)
        grid = np.random.default_rng(9).random((2000, 4))
        accuracy = (model.predict(grid) == box.contains(grid)).mean()
        assert accuracy > 0.9

    def test_mtry_string_options(self, rng):
        x, y, _ = planted_box_data(100, 9)
        for option in ("sqrt", "third", 4):
            RandomForestModel(n_trees=3, max_features=option, seed=0).fit(x, y)

    def test_mtry_invalid_string(self, rng):
        x, y, _ = planted_box_data(50, 3)
        with pytest.raises(ValueError):
            RandomForestModel(n_trees=2, max_features="log2").fit(x, y)

    def test_probability_estimates_calibrated_on_noisy_labels(self):
        """Forest leaf averaging approximates P(y=1|x) on noisy data.

        Calibration is judged on region averages: pointwise leaf means
        chase local label-noise clumps, but the average prediction over
        each regime must approach the true rate.
        """
        gen = np.random.default_rng(0)
        x = gen.random((3000, 1))
        prob = np.where(x[:, 0] < 0.5, 0.2, 0.8)
        y = (gen.random(3000) < prob).astype(int)
        model = RandomForestModel(n_trees=60, min_samples_leaf=40, seed=0).fit(x, y)
        grid_low = np.linspace(0.05, 0.40, 50).reshape(-1, 1)
        grid_high = np.linspace(0.60, 0.95, 50).reshape(-1, 1)
        assert model.predict_proba(grid_low).mean() == pytest.approx(0.2, abs=0.1)
        assert model.predict_proba(grid_high).mean() == pytest.approx(0.8, abs=0.1)


class TestGradientBoosting:
    @pytest.mark.parametrize("bad", [
        {"n_rounds": 0},
        {"learning_rate": 0.0},
        {"learning_rate": 1.5},
        {"subsample": 0.0},
        {"colsample": 1.5},
    ])
    def test_rejects_bad_params(self, bad):
        with pytest.raises(ValueError):
            GradientBoostingModel(**bad)

    def test_rejects_unfitted(self, rng):
        with pytest.raises(RuntimeError):
            GradientBoostingModel().predict(rng.random((3, 2)))

    def test_base_score_is_log_odds(self):
        x = np.random.default_rng(0).random((100, 2))
        y = np.zeros(100)
        y[:25] = 1
        model = GradientBoostingModel(n_rounds=1).fit(x, y)
        assert model.base_score_ == pytest.approx(np.log(0.25 / 0.75), abs=1e-6)

    def test_learns_planted_box(self):
        x, y, box = planted_box_data(800, 4, seed=2)
        model = GradientBoostingModel(n_rounds=100, max_depth=3, seed=0).fit(x, y)
        grid = np.random.default_rng(9).random((2000, 4))
        accuracy = (model.predict(grid) == box.contains(grid)).mean()
        assert accuracy > 0.9

    def test_more_rounds_reduce_training_loss(self):
        x, y, _ = planted_box_data(400, 3, seed=3)
        def logloss(model):
            p = np.clip(model.predict_proba(x), 1e-9, 1 - 1e-9)
            return -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        few = GradientBoostingModel(n_rounds=5, seed=0).fit(x, y)
        many = GradientBoostingModel(n_rounds=80, seed=0).fit(x, y)
        assert logloss(many) < logloss(few)

    def test_subsampling_and_colsample_run(self):
        x, y, _ = planted_box_data(200, 5, seed=4)
        model = GradientBoostingModel(
            n_rounds=10, subsample=0.7, colsample=0.6, seed=0).fit(x, y)
        assert model.predict_proba(x).shape == (200,)

    def test_regularisation_shrinks_leaf_values(self):
        x, y, _ = planted_box_data(300, 2, seed=5)
        gentle = GradientBoostingModel(n_rounds=1, reg_lambda=0.0, seed=0).fit(x, y)
        strong = GradientBoostingModel(n_rounds=1, reg_lambda=100.0, seed=0).fit(x, y)
        spread = lambda m: np.ptp(m.decision_function(x))
        assert spread(strong) < spread(gentle)

    def test_probabilities_in_range(self, rng):
        x, y, _ = planted_box_data(200, 3, seed=6)
        p = GradientBoostingModel(n_rounds=30, seed=0).fit(x, y).predict_proba(
            rng.random((100, 3)))
        assert (p > 0).all() and (p < 1).all()

    def test_reproducible_with_seed(self, rng):
        x, y, _ = planted_box_data(150, 3, seed=7)
        grid = rng.random((30, 3))
        a = GradientBoostingModel(n_rounds=20, subsample=0.8, seed=2).fit(x, y)
        b = GradientBoostingModel(n_rounds=20, subsample=0.8, seed=2).fit(x, y)
        np.testing.assert_array_equal(a.predict_proba(grid), b.predict_proba(grid))
