"""Tests for the SimulationModel abstraction and dataset creation."""

import numpy as np
import pytest

from repro.data.model import SimulationModel, make_dataset


def _linear_model(**overrides) -> SimulationModel:
    params = dict(
        name="toy",
        dim=2,
        relevant=(0,),
        kind="real",
        raw=lambda x: x[:, 0],
        threshold=0.5,
    )
    params.update(overrides)
    return SimulationModel(**params)


class TestValidation:
    def test_requires_threshold_for_real(self):
        with pytest.raises(ValueError, match="threshold"):
            _linear_model(threshold=None)

    def test_rejects_bad_relevant_index(self):
        with pytest.raises(ValueError, match="relevant"):
            _linear_model(relevant=(5,))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError, match="dim"):
            _linear_model(dim=0, relevant=())

    def test_rejects_bad_domain_shape(self):
        with pytest.raises(ValueError, match="domain"):
            _linear_model(domain=np.zeros((3, 2)))

    def test_rejects_inverted_domain(self):
        with pytest.raises(ValueError, match="upper"):
            _linear_model(domain=np.array([[1.0, 0.0], [0.0, 1.0]]))


class TestScaling:
    def test_identity_without_domain(self):
        model = _linear_model()
        u = np.array([[0.2, 0.8]])
        np.testing.assert_array_equal(model.scale(u), u)

    def test_affine_with_domain(self):
        model = _linear_model(domain=np.array([[10.0, -1.0], [20.0, 1.0]]))
        u = np.array([[0.0, 0.5], [1.0, 1.0]])
        np.testing.assert_allclose(model.scale(u), [[10.0, 0.0], [20.0, 1.0]])

    def test_scale_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="expected shape"):
            _linear_model().scale(np.zeros((3, 5)))


class TestLabels:
    def test_real_model_binarises_below_threshold(self):
        model = _linear_model()
        u = np.array([[0.2, 0.0], [0.9, 0.0]])
        np.testing.assert_array_equal(model.label(u), [1, 0])

    def test_binary_model_passthrough(self):
        model = _linear_model(
            kind="binary", threshold=None,
            raw=lambda x: (x[:, 0] > 0.5).astype(float),
        )
        u = np.array([[0.2, 0.0], [0.9, 0.0]])
        np.testing.assert_array_equal(model.label(u), [0, 1])

    def test_prob_model_requires_rng(self):
        model = _linear_model(kind="prob", threshold=None, raw=lambda x: x[:, 0])
        with pytest.raises(ValueError, match="rng"):
            model.label(np.array([[0.5, 0.5]]))

    def test_prob_model_labels_are_bernoulli(self, rng):
        model = _linear_model(kind="prob", threshold=None,
                              raw=lambda x: np.full(len(x), 0.7))
        labels = model.label(rng.random((20_000, 2)), rng)
        assert set(np.unique(labels)) <= {0, 1}
        assert abs(labels.mean() - 0.7) < 0.02

    def test_prob_clipped_to_unit_interval(self):
        model = _linear_model(kind="prob", threshold=None,
                              raw=lambda x: x[:, 0] * 3 - 1)
        p = model.prob(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_share_estimates_positive_rate(self):
        model = _linear_model()  # y=1 iff x0 < 0.5 => share 0.5
        assert abs(model.share(50_000) - 0.5) < 0.01


class TestProperties:
    def test_n_relevant_and_irrelevant(self):
        model = _linear_model(dim=4, relevant=(0, 2),
                              raw=lambda x: x[:, 0] + x[:, 2])
        assert model.n_relevant == 2
        assert model.irrelevant == (1, 3)


class TestMakeDataset:
    def test_shapes_and_types(self, rng):
        x, y = make_dataset(_linear_model(), 64, rng)
        assert x.shape == (64, 2)
        assert y.shape == (64,)
        assert y.dtype == np.int64

    def test_uses_unit_cube_coordinates(self, rng):
        model = _linear_model(domain=np.array([[100.0, 100.0], [200.0, 200.0]]))
        x, _ = make_dataset(model, 32, rng)
        assert (x >= 0).all() and (x <= 1).all()

    def test_sampler_override(self, rng):
        x, _ = make_dataset(_linear_model(), 32, rng, sampler="halton")
        assert x.shape == (32, 2)

    def test_default_lhs_stratified(self, rng):
        x, _ = make_dataset(_linear_model(), 50, rng)
        strata = np.floor(x[:, 0] * 50).astype(int)
        assert len(np.unique(strata)) == 50
