"""Tests for PRIM peeling (and pasting)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.subgroup.prim import prim_peel
from tests.conftest import planted_box_data


class TestValidation:
    def test_rejects_bad_alpha(self, rng):
        x, y = rng.random((50, 2)), rng.integers(0, 2, 50)
        for alpha in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                prim_peel(x, y, alpha=alpha)

    def test_rejects_bad_min_support(self, rng):
        with pytest.raises(ValueError):
            prim_peel(rng.random((50, 2)), rng.integers(0, 2, 50), min_support=0)

    def test_rejects_mismatched_val(self, rng):
        with pytest.raises(ValueError):
            prim_peel(rng.random((50, 2)), rng.integers(0, 2, 50),
                      x_val=rng.random((10, 2)))

    def test_rejects_1d_x(self, rng):
        with pytest.raises(ValueError):
            prim_peel(rng.random(50), rng.integers(0, 2, 50))


class TestPeeling:
    def test_boxes_are_nested(self):
        x, y, _ = planted_box_data(500, 3, seed=0)
        result = prim_peel(x, y)
        for previous, current in zip(result.boxes, result.boxes[1:]):
            assert (current.lower >= previous.lower).all()
            assert (current.upper <= previous.upper).all()

    def test_support_strictly_decreases(self):
        x, y, _ = planted_box_data(500, 3, seed=1)
        result = prim_peel(x, y)
        assert (np.diff(result.train_support) < 0).all()

    def test_first_box_is_unrestricted(self):
        x, y, _ = planted_box_data(300, 2, seed=2)
        result = prim_peel(x, y)
        assert result.boxes[0].n_restricted == 0
        assert result.train_means[0] == pytest.approx(y.mean())

    def test_min_support_respected(self):
        x, y, _ = planted_box_data(400, 3, seed=3)
        result = prim_peel(x, y, min_support=30)
        assert result.train_support.min() >= 30

    def test_finds_planted_box(self):
        """With clean labels PRIM should locate the planted region."""
        x, y, box = planted_box_data(2000, 3, seed=4)
        result = prim_peel(x, y, alpha=0.05)
        chosen = result.chosen_box
        # The chosen box must sit inside a slightly inflated true box
        # on the two active dims and be nearly pure.
        assert result.val_means[result.chosen] > 0.9
        assert chosen.lower[0] > 0.1 and chosen.upper[0] < 0.7

    def test_chosen_maximises_validation_mean(self):
        x, y, _ = planted_box_data(500, 3, seed=5)
        result = prim_peel(x, y)
        assert result.chosen == int(np.argmax(result.val_means))

    def test_constant_labels_stop_immediately_still_valid(self, rng):
        x = rng.random((100, 2))
        result = prim_peel(x, np.ones(100))
        # All-positive data: every peel keeps mean 1; trajectory exists
        # and every mean is 1.
        np.testing.assert_allclose(result.train_means, 1.0)

    def test_all_negative_labels(self, rng):
        x = rng.random((100, 2))
        result = prim_peel(x, np.zeros(100))
        np.testing.assert_allclose(result.train_means, 0.0)

    def test_soft_labels_accepted(self, rng):
        x = rng.random((300, 2))
        y = np.clip(x[:, 0], 0, 1)  # soft response rising in x0
        result = prim_peel(x, y, alpha=0.1)
        # Peeling should push the box toward large x0.
        assert result.chosen_box.lower[0] > 0.3

    def test_separate_validation_set(self):
        x, y, _ = planted_box_data(500, 3, seed=6)
        x_val, y_val, _ = planted_box_data(500, 3, seed=7)
        result = prim_peel(x, y, x_val=x_val, y_val=y_val)
        assert 0 <= result.chosen < len(result.boxes)

    def test_validation_support_limits_depth(self):
        """A tiny validation set must stop peeling early."""
        x, y, _ = planted_box_data(1000, 2, seed=8)
        x_val, y_val, _ = planted_box_data(30, 2, seed=9)
        shallow = prim_peel(x, y, x_val=x_val, y_val=y_val, min_support=20)
        deep = prim_peel(x, y, min_support=20)
        assert len(shallow) < len(deep)

    def test_duplicate_values_cannot_stall(self):
        """Ties at the peel quantile must not produce an empty cut loop."""
        gen = np.random.default_rng(0)
        x = np.round(gen.random((300, 2)), 1)  # heavy ties
        y = (x[:, 0] > 0.5).astype(float)
        result = prim_peel(x, y, alpha=0.05)
        assert len(result) >= 2

    def test_alpha_controls_patience(self):
        x, y, _ = planted_box_data(1000, 3, seed=10)
        patient = prim_peel(x, y, alpha=0.03)
        greedy = prim_peel(x, y, alpha=0.3)
        assert len(patient) > len(greedy)


class TestPasting:
    def test_pasting_never_reduces_chosen_mean(self):
        x, y, _ = planted_box_data(800, 3, noise=0.05, seed=11)
        plain = prim_peel(x, y, paste=False)
        pasted = prim_peel(x, y, paste=True)
        assert (pasted.train_means[pasted.chosen]
                >= plain.train_means[plain.chosen] - 1e-12)

    def test_pasting_can_expand_box(self):
        """Over-peeled boxes should grow back toward the true region."""
        x, y, box = planted_box_data(2000, 2, seed=12)
        plain = prim_peel(x, y, alpha=0.2)
        pasted = prim_peel(x, y, alpha=0.2, paste=True)
        vol_plain = plain.chosen_box.volume()
        vol_pasted = pasted.chosen_box.volume()
        assert vol_pasted >= vol_plain - 1e-12


class TestProperties:
    @given(seed=st.integers(0, 1000), alpha=st.sampled_from([0.05, 0.1, 0.2]))
    @settings(max_examples=15, deadline=None)
    def test_means_peak_at_chosen(self, seed, alpha):
        x, y, _ = planted_box_data(400, 3, noise=0.1, seed=seed)
        result = prim_peel(x, y, alpha=alpha)
        assert result.val_means[result.chosen] == result.val_means.max()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_every_box_contains_min_support_points(self, seed):
        x, y, _ = planted_box_data(300, 4, noise=0.2, seed=seed)
        result = prim_peel(x, y, min_support=25)
        for box in result.boxes:
            assert box.contains(x).sum() >= 25
