"""Tests for scenario descriptions and export."""

import json

import numpy as np
import pytest

from repro.subgroup.box import Hyperbox
from repro.subgroup.describe import (
    box_to_dict,
    describe_box,
    describe_trajectory,
    summarize_box,
)


def _box(lo, hi):
    return Hyperbox(np.array(lo, dtype=float), np.array(hi, dtype=float))


class TestDescribeBox:
    def test_unrestricted(self):
        assert describe_box(Hyperbox.unrestricted(3)) == "IF TRUE THEN y = 1"

    def test_interval_condition(self):
        box = _box([0.2, -np.inf], [0.6, np.inf])
        assert describe_box(box) == "IF 0.2 <= a1 <= 0.6 THEN y = 1"

    def test_one_sided_conditions(self):
        box = _box([-np.inf, 0.3], [0.7, np.inf])
        text = describe_box(box)
        assert "a1 <= 0.7" in text
        assert "a2 >= 0.3" in text

    def test_custom_names(self):
        box = _box([0.1], [0.9])
        text = describe_box(box, input_names=["tau"])
        assert "tau" in text and "a1" not in text

    def test_wrong_name_count(self):
        with pytest.raises(ValueError):
            describe_box(_box([0.1], [0.9]), input_names=["a", "b"])

    def test_native_domain_scaling(self):
        box = _box([0.5, -np.inf], [1.0, np.inf])
        domain = np.array([[0.0, 0.0], [10.0, 1.0]])
        text = describe_box(box, domain=domain)
        assert "5 <= a1 <= 10" in text

    def test_domain_keeps_infinities(self):
        box = _box([-np.inf, 0.5], [np.inf, np.inf])
        domain = np.array([[0.0, 0.0], [10.0, 2.0]])
        text = describe_box(box, domain=domain)
        assert "a2 >= 1" in text
        assert "a1" not in text

    def test_bad_domain_shape(self):
        with pytest.raises(ValueError):
            describe_box(_box([0.1], [0.9]), domain=np.zeros((3, 1)))


class TestSummarize:
    def test_counts(self):
        x = np.array([[0.1], [0.3], [0.5], [0.9]])
        y = np.array([1.0, 1.0, 0.0, 0.0])
        summary = summarize_box(_box([0.0], [0.4]), x, y)
        assert summary.n_covered == 2
        assert summary.n_positive_covered == 2
        assert summary.precision == 1.0
        assert summary.recall == 1.0
        assert summary.n_restricted == 1


class TestDescribeTrajectory:
    def test_header_and_rows(self, rng):
        x = rng.random((100, 2))
        y = (x[:, 0] < 0.5).astype(float)
        boxes = [Hyperbox.unrestricted(2), _box([-np.inf, -np.inf], [0.5, np.inf])]
        text = describe_trajectory(boxes, x, y)
        assert "precision" in text
        assert len(text.splitlines()) == 3

    def test_thinning_long_trajectories(self, rng):
        x = rng.random((50, 1))
        y = (x[:, 0] < 0.5).astype(float)
        boxes = [Hyperbox.unrestricted(1)] * 40
        text = describe_trajectory(boxes, x, y, max_rows=10)
        assert len(text.splitlines()) <= 11

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            describe_trajectory([], rng.random((5, 1)), np.zeros(5))


class TestBoxToDict:
    def test_roundtrip_through_json(self):
        box = _box([0.2, -np.inf], [0.6, 0.9])
        payload = json.loads(json.dumps(box_to_dict(box)))
        assert payload["dim"] == 2
        assert payload["n_restricted"] == 2
        assert payload["restrictions"]["a1"] == {"lower": 0.2, "upper": 0.6}
        assert payload["restrictions"]["a2"] == {"lower": None, "upper": 0.9}

    def test_unrestricted_dims_absent(self):
        box = _box([0.2, -np.inf], [0.6, np.inf])
        payload = box_to_dict(box)
        assert "a2" not in payload["restrictions"]

    def test_custom_names(self):
        box = _box([0.2], [0.6])
        payload = box_to_dict(box, input_names=["delay"])
        assert "delay" in payload["restrictions"]

    def test_wrong_name_count(self):
        with pytest.raises(ValueError):
            box_to_dict(_box([0.2], [0.6]), input_names=["a", "b"])
