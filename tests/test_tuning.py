"""Tests for k-fold CV and caret-style metamodel tuning."""

import numpy as np
import pytest

from repro.metamodels import KFold, cross_val_accuracy, make_metamodel, tune_metamodel
from repro.metamodels.tuning import DEFAULT_GRIDS
from tests.conftest import planted_box_data


class TestKFold:
    def test_rejects_too_few_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_partitions_everything_exactly_once(self):
        seen = np.zeros(53, dtype=int)
        for _, test in KFold(5, seed=1).split(53):
            seen[test] += 1
        assert (seen == 1).all()

    def test_train_and_test_disjoint(self):
        for train, test in KFold(4, seed=2).split(40):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == 40

    def test_reproducible(self):
        a = [t.tolist() for _, t in KFold(3, seed=7).split(30)]
        b = [t.tolist() for _, t in KFold(3, seed=7).split(30)]
        assert a == b

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(5, seed=0).split(52)]
        assert max(sizes) - min(sizes) <= 1


class TestCrossVal:
    def test_perfect_model_scores_one(self):
        x, y, _ = planted_box_data(200, 2, seed=0)

        class Oracle:
            def fit(self, x, y):
                return self
            def predict(self, grid):
                inside = ((grid[:, :2] >= 0.2) & (grid[:, :2] <= 0.6)).all(axis=1)
                return inside.astype(int)
            def predict_proba(self, grid):
                return self.predict(grid).astype(float)

        assert cross_val_accuracy(Oracle, x, y) == pytest.approx(1.0)

    def test_accuracy_between_zero_and_one(self):
        x, y, _ = planted_box_data(150, 3, seed=1)
        acc = cross_val_accuracy(
            lambda: make_metamodel("forest", n_trees=5, seed=0), x, y)
        assert 0.0 <= acc <= 1.0


class TestTuning:
    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            make_metamodel("neural-net")

    @pytest.mark.parametrize("kind", ["forest", "boosting", "svm"])
    def test_default_grids_nonempty(self, kind):
        assert len(DEFAULT_GRIDS[kind](10)) >= 2

    def test_tune_returns_fitted_model(self):
        x, y, _ = planted_box_data(120, 3, seed=2)
        model = tune_metamodel("svm", x, y)
        assert model.predict(x).shape == (120,)

    def test_tune_single_class_shortcut(self, rng):
        x = rng.random((60, 2))
        model = tune_metamodel("svm", x, np.zeros(60))
        assert (model.predict(x) == 0).all()

    def test_custom_grid_used(self):
        x, y, _ = planted_box_data(120, 2, seed=3)
        model = tune_metamodel("forest", x, y,
                               grid=[{"n_trees": 3, "seed": 0}])
        assert model.n_trees == 3

    def test_tuning_picks_sensible_svm_c(self):
        """A vanishing C underfits imbalanced overlapping classes; the
        grid search must prefer the workable C."""
        gen = np.random.default_rng(0)
        x = np.vstack([gen.normal(-0.5, 0.4, (90, 2)), gen.normal(0.5, 0.4, (30, 2))])
        y = np.repeat([0, 1], [90, 30])
        model = tune_metamodel("svm", x, y, grid=[{"c": 1e-4}, {"c": 10.0}])
        assert model.c == 10.0
