"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.subgroup.box import Hyperbox


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def planted_box_data(
    n: int,
    dim: int,
    lower: float = 0.2,
    upper: float = 0.6,
    n_active: int = 2,
    noise: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, Hyperbox]:
    """Uniform points with y = 1 exactly inside a planted axis box.

    The box restricts the first ``n_active`` dimensions to
    ``[lower, upper]``; optional label noise flips a share of labels.
    """
    gen = np.random.default_rng(seed)
    x = gen.random((n, dim))
    inside = ((x[:, :n_active] >= lower) & (x[:, :n_active] <= upper)).all(axis=1)
    y = inside.astype(np.int64)
    if noise > 0:
        flips = gen.random(n) < noise
        y = np.where(flips, 1 - y, y)
    bounds_lo = np.full(dim, -np.inf)
    bounds_hi = np.full(dim, np.inf)
    bounds_lo[:n_active] = lower
    bounds_hi[:n_active] = upper
    return x, y, Hyperbox(bounds_lo, bounds_hi)
