"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.subgroup.box import Hyperbox

try:
    from hypothesis import HealthCheck, settings

    # One fixed, derandomized profile so the property-based differential
    # suite (tests/test_property_differential.py) is exactly as
    # reproducible as the seeded tests: no flaky shrink sessions in CI,
    # identical example streams everywhere.  Select explicitly with
    # HYPOTHESIS_PROFILE=ci (the tier-1 workflow does); "dev" allows a
    # larger budget for local exploration.
    settings.register_profile(
        "ci",
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=100, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis always in requirements
    pass


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def planted_box_data(
    n: int,
    dim: int,
    lower: float = 0.2,
    upper: float = 0.6,
    n_active: int = 2,
    noise: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, Hyperbox]:
    """Uniform points with y = 1 exactly inside a planted axis box.

    The box restricts the first ``n_active`` dimensions to
    ``[lower, upper]``; optional label noise flips a share of labels.
    """
    gen = np.random.default_rng(seed)
    x = gen.random((n, dim))
    inside = ((x[:, :n_active] >= lower) & (x[:, :n_active] <= upper)).all(axis=1)
    y = inside.astype(np.int64)
    if noise > 0:
        flips = gen.random(n) < noise
        y = np.where(flips, 1 - y, y)
    bounds_lo = np.full(dim, -np.inf)
    bounds_hi = np.full(dim, np.inf)
    bounds_lo[:n_active] = lower
    bounds_hi[:n_active] = upper
    return x, y, Hyperbox(bounds_lo, bounds_hi)
