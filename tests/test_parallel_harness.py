"""Determinism tests for the plan/executor experiment engine.

``run_batch(..., jobs=4)`` must return ``RunRecord``s identical field
by field (boxes and trajectories included) to the serial run, in the
same grid order, no matter how the pool schedules the tasks.  Runtime
is the one legitimate difference: it is wall-clock measured inside
each run.  The same contract holds for every executor — serial,
process, and store-coordinated shards — and sharded invocations that
cooperate on one store must never execute a task twice.
"""

import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.methods import discover
from repro.experiments import parallel
from repro.experiments.dataplane import active_segments
from repro.experiments.harness import (
    evaluate_boxes as harness_evaluate_boxes,
    get_test_data,
    run_batch,
    run_third_party,
)
from repro.metrics.trajectory import peeling_trajectory
from repro.subgroup import Hyperbox
from repro.subgroup._kernels import evaluate_boxes as kernel_evaluate_boxes


def assert_records_identical(serial, parallel_records):
    """Field-by-field equality, boxes included; runtime excluded."""
    assert len(serial) == len(parallel_records)
    for a, b in zip(serial, parallel_records):
        assert (a.function, a.method, a.n, a.seed) == \
               (b.function, b.method, b.n, b.seed)
        assert a.pr_auc == b.pr_auc
        assert a.precision == b.precision
        assert a.recall == b.recall
        assert a.wracc == b.wracc
        assert a.n_restricted == b.n_restricted
        assert a.n_irrelevant == b.n_irrelevant
        np.testing.assert_array_equal(a.chosen_box.lower, b.chosen_box.lower)
        np.testing.assert_array_equal(a.chosen_box.upper, b.chosen_box.upper)
        np.testing.assert_array_equal(a.trajectory, b.trajectory)


def _delayed_echo(index: int) -> int:
    # Early tasks sleep longest, so completion order is roughly the
    # reverse of submission order.
    time.sleep(0.02 * max(8 - index, 0))
    return index


def _fail_on_one(index: int) -> int:
    if index == 1:
        raise ValueError("boom")
    return index


def _touch_and_echo(index: int, outdir: str) -> int:
    # Records each execution as a unique file, so concurrent sharded
    # invocations can prove zero duplicated task executions.
    path = Path(outdir) / f"exec-{index}-{time.monotonic_ns()}"
    path.write_text("")
    return index


def _context_row(index: int) -> float:
    return float(parallel.plan_context()["values"][index])


def _report_lease(index: int) -> int:
    # What a task would pass to its own chunked fan-outs.
    return parallel.budgeted_jobs()


def _range_sum_chunk(context, start: int, stop: int) -> float:
    return float(sum(context["offset"] + i for i in range(start, stop)))


def _fanout_task(index: int, n_rows: int) -> float:
    # A grid task that spends its whole lease on an inner fan-out —
    # the shape of run_single's discover/evaluate calls.
    parts = parallel.run_chunked(_range_sum_chunk, n_rows,
                                 jobs=parallel.budgeted_jobs(),
                                 context={"offset": index})
    return float(sum(parts))


class TestExecute:
    def test_serial_fallback_preserves_order(self):
        tasks = [dict(index=i) for i in range(5)]
        assert parallel.execute(_delayed_echo, tasks, jobs=1) == list(range(5))

    def test_results_in_task_order_not_completion_order(self):
        tasks = [dict(index=i) for i in range(8)]
        assert parallel.execute(_delayed_echo, tasks, jobs=4) == list(range(8))

    def test_jobs_none_uses_all_cpus(self):
        assert parallel.default_jobs() >= 1
        tasks = [dict(index=i) for i in range(3)]
        assert parallel.execute(_delayed_echo, tasks, jobs=None) == [0, 1, 2]

    def test_single_task_runs_inline(self):
        assert parallel.execute(_delayed_echo, [dict(index=9)], jobs=8) == [9]

    def test_task_failure_propagates(self):
        tasks = [dict(index=i) for i in range(6)]
        with pytest.raises(ValueError, match="boom"):
            parallel.execute(_fail_on_one, tasks, jobs=2)
        with pytest.raises(ValueError, match="boom"):
            parallel.execute(_fail_on_one, tasks, jobs=1)


class TestWorkerBudget:
    """``jobs`` is one global budget, split by the planner across the
    grid level and each task's inner chunked fan-out."""

    def test_outside_any_plan_the_lease_defaults_to_serial(self):
        assert parallel.worker_budget() is None
        assert parallel.budgeted_jobs() == 1
        assert parallel.budgeted_jobs(default=3) == 3

    def test_cpu_budget_respects_affinity(self):
        budget = parallel.cpu_budget()
        assert budget >= 1
        if hasattr(os, "sched_getaffinity"):
            assert budget == len(os.sched_getaffinity(0))
        assert budget <= (os.cpu_count() or 1)
        assert parallel.default_jobs() == budget

    def test_serial_tasks_see_lease_one(self):
        tasks = [dict(index=i) for i in range(3)]
        assert parallel.execute(_report_lease, tasks, jobs=1) == [1, 1, 1]

    def test_single_task_inherits_the_whole_budget(self):
        # One task, jobs=8: the inline fallback hands the full budget
        # to the task's own fan-outs instead of wasting it on a pool.
        assert parallel.execute(_report_lease, [dict(index=0)], jobs=8) == [8]

    def test_narrow_grid_splits_the_budget_across_levels(self):
        # Two tasks, jobs=4: two grid workers, each with a lease of 2.
        tasks = [dict(index=i) for i in range(2)]
        assert parallel.execute(_report_lease, tasks, jobs=4) == [2, 2]

    def test_wide_grid_leaves_lease_one(self):
        # More tasks than budget: pure grid parallelism, lease 1.
        tasks = [dict(index=i) for i in range(6)]
        assert parallel.execute(_report_lease, tasks, jobs=3) == [1] * 6

    def test_nested_fanout_results_match_serial(self):
        tasks = [dict(index=i, n_rows=101 + i) for i in range(2)]
        serial = parallel.execute(_fanout_task, tasks, jobs=1)
        budgeted = parallel.execute(_fanout_task, tasks, jobs=4)
        assert budgeted == serial
        assert serial == [float(sum(range(101))),
                          float(sum(1 + i for i in range(102)))]

    def test_env_budget_matches_serial(self):
        # CI runs the suite once with REDS_BENCH_JOBS=2, driving this
        # test (and everything else) through an explicit multi-worker
        # budget even when the developer machine has one core.
        raw = int(os.environ.get("REDS_BENCH_JOBS", "2"))
        budget = parallel.default_jobs() if raw < 1 else max(raw, 2)
        tasks = [dict(index=i, n_rows=77 + 13 * i) for i in range(3)]
        serial = parallel.execute(_fanout_task, tasks, jobs=1)
        assert parallel.execute(_fanout_task, tasks, jobs=budget) == serial

    def test_budgeted_grid_never_oversubscribes(self, tmp_path, monkeypatch):
        # Instrument every pool spawn: a jobs=N grid with chunked inner
        # fan-out must never put more than N workers to work at once,
        # at any nesting level.
        budget = 4
        log = tmp_path / "spawns.log"
        monkeypatch.setenv("REDS_SPAWN_LOG", str(log))
        tasks = [dict(index=i, n_rows=400) for i in range(2)]
        out = parallel.execute(_fanout_task, tasks, jobs=budget)
        assert out == [float(sum(i + j for j in range(400)))
                       for i in range(2)]

        spawns = [line.split() for line in log.read_text().splitlines()]
        assert spawns, "the budgeted run never logged a pool spawn"
        top = [(int(w), int(lease)) for _, ambient, w, lease in spawns
               if ambient == "-"]
        inner = [(int(ambient), int(w), int(lease))
                 for _, ambient, w, lease in spawns if ambient != "-"]
        # Exactly one top-level pool; its workers carry the whole budget.
        assert top == [(2, 2)]
        assert inner, "the grid workers never fanned out"
        for ambient, workers, lease in inner:
            # A nested pool is clamped to its worker's lease, and the
            # lease it hands down cannot multiply the budget back up.
            assert ambient == 2
            assert workers <= ambient
            assert workers * lease <= ambient
        # Peak concurrently-working processes: each of the two grid
        # workers idles in as_completed while its inner pool (<= its
        # lease) works, so the total stays within the global budget.
        assert sum(w for _, w, _ in inner) <= budget


class TestRunBatchParallel:
    @pytest.fixture(scope="class")
    def grids(self):
        kwargs = dict(variant="continuous", test_size=1500)
        serial = run_batch(("ishigami", "willetal06"), ("P", "BI"), 120, 2,
                           jobs=1, **kwargs)
        fanned = run_batch(("ishigami", "willetal06"), ("P", "BI"), 120, 2,
                           jobs=4, **kwargs)
        return serial, fanned

    def test_records_identical_to_serial(self, grids):
        serial, fanned = grids
        assert_records_identical(serial, fanned)

    def test_grid_order_is_function_method_rep(self, grids):
        _, fanned = grids
        keys = [(r.function, r.method, r.seed) for r in fanned]
        expected = [(fn, m, 1000 + rep)
                    for fn in ("ishigami", "willetal06")
                    for m in ("P", "BI")
                    for rep in range(2)]
        assert keys == expected

    def test_seeds_depend_on_grid_position_only(self, grids):
        serial, _ = grids
        assert [r.seed for r in serial] == [1000, 1001] * 4

    def test_lone_shard_grid_matches_serial(self, grids, tmp_path):
        # One cooperating invocation of a 2-way split: it steals the
        # missing sibling's slice and must still match the serial run.
        serial, _ = grids
        sharded = run_batch(("ishigami", "willetal06"), ("P", "BI"), 120, 2,
                            variant="continuous", test_size=1500,
                            jobs=1, store=str(tmp_path / "store"),
                            shard=(1, 2))
        assert_records_identical(serial, sharded)

    def test_narrow_reds_grid_budget_matches_serial(self):
        # Two REDS cells under jobs=4: each grid worker gets a lease of
        # 2 and fans its labeling/tuning/trajectory stages out — the
        # full nested-budget path — with bit-identical records.
        kwargs = dict(variant="continuous", test_size=1200,
                      n_new=2000, tune_metamodel=False)
        serial = run_batch(("ishigami",), ("RPf",), 150, 2,
                           jobs=1, **kwargs)
        budgeted = run_batch(("ishigami",), ("RPf",), 150, 2,
                             jobs=4, **kwargs)
        assert_records_identical(serial, budgeted)


class TestRunThirdPartyParallel:
    def test_records_identical_to_serial(self):
        kwargs = dict(n_splits=3, n_reps=2, tune_metamodel=False)
        serial = run_third_party("lake", "P", jobs=1, **kwargs)
        fanned = run_third_party("lake", "P", jobs=3, **kwargs)
        assert_records_identical(serial, fanned)
        # rep-major, fold-minor ordering with position-derived seeds
        assert [r.seed for r in serial] == [77, 78, 79, 80, 81, 82]


class TestExecutionPlan:
    def test_seeds_and_indices_fixed_at_plan_time(self):
        tasks = [dict(index=i, seed=100 + i) for i in range(4)]
        plan = parallel.compile_plan(_delayed_echo, tasks)
        assert plan.indices == (0, 1, 2, 3)
        assert [t["seed"] for t in plan.tasks] == [100, 101, 102, 103]

    def test_subset_keeps_grid_identity(self):
        tasks = [dict(index=i) for i in range(6)]
        plan = parallel.compile_plan(_delayed_echo, tasks,
                                     keys=[f"k{i}" for i in range(6)])
        sub = plan.subset([1, 4])
        assert sub.indices == (1, 4)
        assert sub.keys == ("k1", "k4")
        assert [t["index"] for t in sub.tasks] == [1, 4]

    def test_get_executor_resolution(self):
        assert isinstance(parallel.get_executor(jobs=1),
                          parallel.SerialExecutor)
        assert isinstance(parallel.get_executor(jobs=4),
                          parallel.ProcessExecutor)
        assert isinstance(parallel.get_executor(jobs=None),
                          parallel.ProcessExecutor)
        sharded = parallel.get_executor(shard="1/3", jobs=1)
        assert isinstance(sharded, parallel.ShardedExecutor)
        assert (sharded.shard, sharded.of) == (1, 3)
        with pytest.raises(ValueError, match="sharded"):
            parallel.get_executor("sharded")
        with pytest.raises(ValueError, match="unknown executor"):
            parallel.get_executor("mystery")

    def test_parse_shard(self):
        assert parallel.parse_shard(None) is None
        assert parallel.parse_shard("0/4") == (0, 4)
        assert parallel.parse_shard((2, 5)) == (2, 5)
        with pytest.raises(ValueError, match="i/k"):
            parallel.parse_shard("nope")
        for bad in ("5/2", "2/2", "-1/2", "0/0"):
            with pytest.raises(ValueError, match="0 <= i < k"):
                parallel.parse_shard(bad)

    def test_executor_instance_shard_mismatch_is_an_error(self):
        executor = parallel.ShardedExecutor(0, 2)
        assert parallel.get_executor(executor, shard=(0, 2)) is executor
        with pytest.raises(ValueError, match="disagrees"):
            parallel.get_executor(executor, shard=(1, 2))


class TestExecutors:
    def test_all_executors_agree(self, tmp_path):
        tasks = [dict(index=i) for i in range(6)]
        serial = parallel.execute(_delayed_echo, tasks,
                                  executor="serial")
        process = parallel.execute(_delayed_echo, tasks, jobs=3,
                                   executor="process")
        sharded = parallel.execute(_delayed_echo, tasks, jobs=1,
                                   store=str(tmp_path / "s"), shard=(0, 1))
        assert serial == process == sharded == list(range(6))

    def test_serial_contexts_are_thread_isolated(self):
        # Two in-process executions with different contexts must not
        # cross-contaminate when driven from concurrent threads.
        out: dict[int, list] = {}

        def invoke(which: int) -> None:
            values = np.full(30, float(which))
            tasks = [dict(index=i) for i in range(30)]
            out[which] = parallel.execute(_context_row, tasks,
                                          executor="serial",
                                          shared={"values": values})

        threads = [threading.Thread(target=invoke, args=(w,))
                   for w in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert out[1] == [1.0] * 30
        assert out[2] == [2.0] * 30

    def test_context_shared_array_reaches_every_executor(self, tmp_path):
        values = np.linspace(0.0, 1.0, 5)
        tasks = [dict(index=i) for i in range(5)]
        for kwargs in (dict(executor="serial"),
                       dict(jobs=2, executor="process")):
            out = parallel.execute(_context_row, tasks,
                                   shared={"values": values}, **kwargs)
            assert out == list(values)

    def test_sharded_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            parallel.execute(_delayed_echo, [dict(index=0)], shard=(0, 2))

    def test_sharded_rejects_no_cache(self, tmp_path):
        # Foreign records come back from the store, so resume=False
        # ("nothing is read") cannot be honored across invocations.
        with pytest.raises(ValueError, match="resume"):
            parallel.execute(_delayed_echo, [dict(index=0)],
                             store=str(tmp_path / "s"), shard=(0, 2),
                             resume=False)

    def test_shard_with_non_sharded_executor_is_an_error(self):
        # Silently dropping the shard would make every invocation run
        # the full grid — k-fold duplicated work.
        with pytest.raises(ValueError, match="sharded"):
            parallel.get_executor("process", shard=(0, 2))
        with pytest.raises(ValueError, match="sharded"):
            parallel.get_executor(parallel.SerialExecutor(), shard=(0, 2))

    def test_lone_shard_steals_and_completes_the_grid(self, tmp_path):
        # A shard whose siblings never start is not stuck: after its own
        # modulo slice it claims the unowned remainder and finishes.
        executor = parallel.ShardedExecutor(0, 2, poll_interval=0.01,
                                            timeout=0.15)
        tasks = [dict(index=i) for i in range(4)]
        out = parallel.execute(_delayed_echo, tasks, executor=executor,
                               store=str(tmp_path / "s"))
        assert out == list(range(4))

    def test_sharded_times_out_on_claimed_but_dead_tasks(self, tmp_path):
        # Stealing only covers *unclaimed* work: tasks claimed by a
        # sibling that stopped publishing records must surface as a
        # timeout, not hang or get duplicated.
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(tmp_path / "s")
        tasks = [dict(index=i) for i in range(4)]
        for task in tasks[1::2]:
            assert store.claim(store.key(_delayed_echo, task), "shard-1/2")
        executor = parallel.ShardedExecutor(0, 2, poll_interval=0.01,
                                            timeout=0.15)
        with pytest.raises(TimeoutError, match="claimed by sibling"):
            parallel.execute(_delayed_echo, tasks, executor=executor,
                             store=store)


class TestShardedCooperation:
    def test_concurrent_shards_complete_grid_without_duplicates(self, tmp_path):
        """Two concurrent --shard i/k invocations against one store must
        both return the full grid while each task executes exactly once."""
        outdir = tmp_path / "executions"
        outdir.mkdir()
        store_dir = str(tmp_path / "store")
        tasks = [dict(index=i, outdir=str(outdir)) for i in range(8)]

        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def invoke(shard: int) -> None:
            try:
                results[shard] = parallel.execute(
                    _touch_and_echo, tasks, jobs=1,
                    store=store_dir, shard=(shard, 2))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=invoke, args=(shard,))
                   for shard in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results[0] == results[1] == list(range(8))
        executed = sorted(int(p.name.split("-")[1])
                          for p in outdir.iterdir())
        assert executed == list(range(8)), \
            f"duplicated or missing executions: {executed}"

    def test_sequential_shards_also_cooperate(self, tmp_path):
        outdir = tmp_path / "executions"
        outdir.mkdir()
        store_dir = str(tmp_path / "store")
        tasks = [dict(index=i, outdir=str(outdir)) for i in range(5)]
        # Shard 1 runs alone: after draining its own slice it steals the
        # unclaimed remainder and returns the full grid by itself...
        first = parallel.execute(_touch_and_echo, tasks, jobs=1,
                                 store=store_dir,
                                 executor=parallel.ShardedExecutor(
                                     1, 2, poll_interval=0.01, timeout=0.2))
        assert first == list(range(5))
        # ...after which shard 0 serves everything from the store —
        # zero new executions, still zero duplicates.
        second = parallel.execute(_touch_and_echo, tasks, jobs=1,
                                  store=store_dir, shard=(0, 2))
        assert second == list(range(5))
        executed = sorted(int(p.name.split("-")[1]) for p in outdir.iterdir())
        assert executed == list(range(5))

    def test_skewed_grid_is_rebalanced_by_stealing(self, tmp_path):
        # Shard 0 starts late; shard 1 drains its own slice and must
        # steal from shard 0's still-unclaimed slice instead of idling —
        # with every task still executing exactly once.
        from repro.experiments.store import ExperimentStore

        outdir = tmp_path / "executions"
        outdir.mkdir()
        store = ExperimentStore(tmp_path / "store")
        tasks = [dict(index=i, outdir=str(outdir)) for i in range(8)]
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def invoke(shard: int, delay: float) -> None:
            try:
                time.sleep(delay)
                results[shard] = parallel.execute(
                    _touch_and_echo, tasks, jobs=1, store=store,
                    executor=parallel.ShardedExecutor(
                        shard, 2, poll_interval=0.01, timeout=5.0))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=invoke, args=(0, 0.4)),
                   threading.Thread(target=invoke, args=(1, 0.0))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results[0] == results[1] == list(range(8))
        executed = sorted(int(p.name.split("-")[1])
                          for p in outdir.iterdir())
        assert executed == list(range(8)), \
            f"duplicated or missing executions: {executed}"
        # The head start is far longer than shard 1's own slice, so at
        # least one even (shard-0-priority) task was stolen by shard 1.
        owners = {i: store.claim_owner(store.key(_touch_and_echo, task))
                  for i, task in enumerate(tasks)}
        assert all(owners.values())
        assert any(owners[i] == "shard-1/2" for i in range(0, 8, 2)), owners

    def test_shard_one_waits_for_shard_zero(self, tmp_path):
        # The waiting shard must pick records up as they appear, not
        # only if they pre-exist: start shard 1 first, then shard 0.
        store_dir = str(tmp_path / "store")
        tasks = [dict(index=i) for i in range(4)]
        out: dict[int, list] = {}

        def late_shard_zero():
            time.sleep(0.15)
            out[0] = parallel.execute(_delayed_echo, tasks, store=store_dir,
                                      shard=(0, 2))

        waiter = threading.Thread(
            target=lambda: out.__setitem__(1, parallel.execute(
                _delayed_echo, tasks, store=store_dir, shard=(1, 2))))
        runner = threading.Thread(target=late_shard_zero)
        waiter.start()
        runner.start()
        waiter.join()
        runner.join()
        assert out[0] == out[1] == list(range(4))


def _shm_dir_entries() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.iterdir() if p.name.startswith("reds-dp-")}


class TestDataPlaneTeardown:
    def test_poisoned_task_unlinks_all_segments(self):
        """A failing task must not leak shared-memory segments: the
        executor's finalizer unlinks the plan's data plane on the
        exceptional path too."""
        before = _shm_dir_entries()
        tasks = [dict(index=i) for i in range(6)]
        with pytest.raises(ValueError, match="boom"):
            parallel.execute(_fail_on_one, tasks, jobs=2,
                             warmup=[("ishigami", "continuous", 400)])
        assert active_segments() == []
        assert _shm_dir_entries() <= before

    def test_clean_run_unlinks_all_segments(self):
        before = _shm_dir_entries()
        tasks = [dict(index=i) for i in range(4)]
        out = parallel.execute(_delayed_echo, tasks, jobs=2,
                               warmup=[("ishigami", "continuous", 400)])
        assert out == list(range(4))
        assert active_segments() == []
        assert _shm_dir_entries() <= before


class TestTestDataCache:
    def test_cache_is_bounded(self):
        """Regression: the per-process test-data cache must stay small —
        20000-point samples used to accumulate per (function, variant,
        size) for the life of a worker."""
        info = get_test_data.cache_info()
        assert info.maxsize is not None and info.maxsize <= 32
        for size in range(40, 40 + 2 * info.maxsize):
            get_test_data("ishigami", "continuous", size)
        info = get_test_data.cache_info()
        assert info.currsize <= info.maxsize


class TestDegenerateFanoutInputs:
    """Degenerate inputs through the fanned-out evaluation paths.

    Empty box lists, single-row test sets and constant labels must all
    produce the same well-defined answer under every jobs/chunk
    setting — the fan-out machinery may never turn an edge case into a
    shape error or a divergence from the serial loop.
    """

    def _planted(self, n, seed=0, y_const=None):
        gen = np.random.default_rng(seed)
        x = gen.random((n, 3))
        if y_const is None:
            y = ((x[:, 0] > 0.3) & (x[:, 1] < 0.7)).astype(float)
        else:
            y = np.full(n, float(y_const))
        return x, y

    def _boxes(self):
        return [
            Hyperbox.unrestricted(3),
            Hyperbox.unrestricted(3).replace(0, lower=0.3, upper=np.inf)
            .replace(1, lower=-np.inf, upper=0.7),
        ]

    def test_empty_box_list(self):
        x, y = self._planted(40)
        for kwargs in (dict(jobs=1), dict(jobs=4), dict(jobs=3, chunk_boxes=2)):
            trajectory = peeling_trajectory([], x, y, **kwargs)
            assert trajectory.shape == (0, 2)
        for jobs in (1, 4):
            evaluation = kernel_evaluate_boxes([], x, y, jobs=jobs)
            assert evaluation.masks.shape == (0, len(x))
            assert evaluation.n_inside.shape == (0,)
            assert evaluation.n_total == len(x)
            assert evaluation.base_rate == y.mean()

    def test_single_row(self):
        x, y = self._planted(1, seed=3)
        boxes = self._boxes()
        serial = peeling_trajectory(boxes, x, y, jobs=1)
        np.testing.assert_array_equal(
            serial, peeling_trajectory(boxes, x, y, jobs=4, chunk_boxes=1))
        a = kernel_evaluate_boxes(boxes, x, y, jobs=1)
        b = kernel_evaluate_boxes(boxes, x, y, jobs=4)
        np.testing.assert_array_equal(a.n_inside, b.n_inside)
        np.testing.assert_array_equal(a.y_means, b.y_means)

    @pytest.mark.parametrize("y_const", [0.0, 1.0])
    def test_all_identical_labels(self, y_const):
        x, y = self._planted(60, seed=5, y_const=y_const)
        boxes = self._boxes()
        serial = peeling_trajectory(boxes, x, y, jobs=1)
        for kwargs in (dict(jobs=4), dict(jobs=2, chunk_boxes=1)):
            np.testing.assert_array_equal(
                serial, peeling_trajectory(boxes, x, y, **kwargs))
        a = kernel_evaluate_boxes(boxes, x, y, jobs=1)
        b = kernel_evaluate_boxes(boxes, x, y, jobs=3, chunk_boxes=1)
        np.testing.assert_array_equal(a.y_sums, b.y_sums)
        assert a.base_rate == b.base_rate == y_const

    def test_harness_evaluation_degenerate_test_sets(self):
        x_train, y_train = self._planted(300, seed=9)
        result = discover("P", x_train, y_train, seed=0)
        for x_test, y_test in ((self._planted(1, seed=11)),
                               (self._planted(50, seed=13, y_const=1.0))):
            serial = harness_evaluate_boxes(
                result, x_test, y_test, relevant=(0, 1), jobs=1)
            fanned = harness_evaluate_boxes(
                result, x_test, y_test, relevant=(0, 1), jobs=4)
            np.testing.assert_array_equal(serial.pop("trajectory"),
                                          fanned.pop("trajectory"))
            assert serial == fanned
            assert np.isfinite(serial["pr_auc"])
