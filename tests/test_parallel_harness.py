"""Determinism tests for the parallel experiment engine.

``run_batch(..., jobs=4)`` must return ``RunRecord``s identical field
by field (boxes and trajectories included) to the serial run, in the
same grid order, no matter how the pool schedules the tasks.  Runtime
is the one legitimate difference: it is wall-clock measured inside
each run.
"""

import time

import numpy as np
import pytest

from repro.experiments import parallel
from repro.experiments.harness import run_batch, run_third_party


def assert_records_identical(serial, parallel_records):
    """Field-by-field equality, boxes included; runtime excluded."""
    assert len(serial) == len(parallel_records)
    for a, b in zip(serial, parallel_records):
        assert (a.function, a.method, a.n, a.seed) == \
               (b.function, b.method, b.n, b.seed)
        assert a.pr_auc == b.pr_auc
        assert a.precision == b.precision
        assert a.recall == b.recall
        assert a.wracc == b.wracc
        assert a.n_restricted == b.n_restricted
        assert a.n_irrelevant == b.n_irrelevant
        np.testing.assert_array_equal(a.chosen_box.lower, b.chosen_box.lower)
        np.testing.assert_array_equal(a.chosen_box.upper, b.chosen_box.upper)
        np.testing.assert_array_equal(a.trajectory, b.trajectory)


def _delayed_echo(index: int) -> int:
    # Early tasks sleep longest, so completion order is roughly the
    # reverse of submission order.
    time.sleep(0.02 * max(8 - index, 0))
    return index


def _fail_on_one(index: int) -> int:
    if index == 1:
        raise ValueError("boom")
    return index


class TestExecute:
    def test_serial_fallback_preserves_order(self):
        tasks = [dict(index=i) for i in range(5)]
        assert parallel.execute(_delayed_echo, tasks, jobs=1) == list(range(5))

    def test_results_in_task_order_not_completion_order(self):
        tasks = [dict(index=i) for i in range(8)]
        assert parallel.execute(_delayed_echo, tasks, jobs=4) == list(range(8))

    def test_jobs_none_uses_all_cpus(self):
        assert parallel.default_jobs() >= 1
        tasks = [dict(index=i) for i in range(3)]
        assert parallel.execute(_delayed_echo, tasks, jobs=None) == [0, 1, 2]

    def test_single_task_runs_inline(self):
        assert parallel.execute(_delayed_echo, [dict(index=9)], jobs=8) == [9]

    def test_task_failure_propagates(self):
        tasks = [dict(index=i) for i in range(6)]
        with pytest.raises(ValueError, match="boom"):
            parallel.execute(_fail_on_one, tasks, jobs=2)
        with pytest.raises(ValueError, match="boom"):
            parallel.execute(_fail_on_one, tasks, jobs=1)


class TestRunBatchParallel:
    @pytest.fixture(scope="class")
    def grids(self):
        kwargs = dict(variant="continuous", test_size=1500)
        serial = run_batch(("ishigami", "willetal06"), ("P", "BI"), 120, 2,
                           jobs=1, **kwargs)
        fanned = run_batch(("ishigami", "willetal06"), ("P", "BI"), 120, 2,
                           jobs=4, **kwargs)
        return serial, fanned

    def test_records_identical_to_serial(self, grids):
        serial, fanned = grids
        assert_records_identical(serial, fanned)

    def test_grid_order_is_function_method_rep(self, grids):
        _, fanned = grids
        keys = [(r.function, r.method, r.seed) for r in fanned]
        expected = [(fn, m, 1000 + rep)
                    for fn in ("ishigami", "willetal06")
                    for m in ("P", "BI")
                    for rep in range(2)]
        assert keys == expected

    def test_seeds_depend_on_grid_position_only(self, grids):
        serial, _ = grids
        assert [r.seed for r in serial] == [1000, 1001] * 4


class TestRunThirdPartyParallel:
    def test_records_identical_to_serial(self):
        kwargs = dict(n_splits=3, n_reps=2, tune_metamodel=False)
        serial = run_third_party("lake", "P", jobs=1, **kwargs)
        fanned = run_third_party("lake", "P", jobs=3, **kwargs)
        assert_records_identical(serial, fanned)
        # rep-major, fold-minor ordering with position-derived seeds
        assert [r.seed for r in serial] == [77, 78, 79, 80, 81, 82]
