"""Property-based differential tests over mixed numeric+categorical data.

Hypothesis drives randomized dataset/box generation; every property is a
differential check of one pinned invariant:

* batched membership (``contains_many``) agrees with per-row
  ``Hyperbox.contains`` for arbitrary mixed boxes;
* PRIM peeling only ever shrinks coverage (nested trajectory), under
  both engines, and the engines are bit-identical throughout;
* BestInterval's engines agree and its WRAcc is achieved by its box;
* ``pareto_front`` returns a mutually non-dominated subset and never
  drops a non-dominated point.

The suite runs under the fixed, derandomized "ci" profile registered in
``conftest.py`` (select with ``HYPOTHESIS_PROFILE=ci``), so CI sees the
same example stream every run — these are seeded tests with a wider
seed supply, not a flakiness source.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import native_ready
from repro.subgroup import (
    Hyperbox,
    best_interval,
    cat_mask,
    contains_many,
    pareto_front,
    prim_peel,
)
from repro.subgroup.bumping import _pareto_front_reference

#: Engines differentially tested; ``native`` joins when its kernels can
#: execute (numba installed, or ``REDS_NATIVE_PUREPY=1``).
DIFF_ENGINES = (("reference", "vectorized", "native") if native_ready()
                else ("reference", "vectorized"))


# ----------------------------------------------------------------------
# Generators: numpy-backed, parameterised by drawn scalars (fast and
# shrinkable where it matters — sizes, level counts, seeds).
# ----------------------------------------------------------------------

@st.composite
def mixed_datasets(draw, max_rows: int = 200):
    """A mixed dataset: numeric unit-cube columns + coded cat columns."""
    n = draw(st.integers(min_value=30, max_value=max_rows))
    n_numeric = draw(st.integers(min_value=1, max_value=3))
    n_cat = draw(st.integers(min_value=1, max_value=2))
    levels = [draw(st.integers(min_value=2, max_value=5))
              for _ in range(n_cat)]
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    dim = n_numeric + n_cat
    x = rng.random((n, dim))
    cat_cols = tuple(range(n_numeric, dim))
    for j, k in zip(cat_cols, levels):
        x[:, j] = np.floor(x[:, j] * k)
    y = (rng.random(n) < rng.random()).astype(float)
    return x, y, cat_cols, levels


@st.composite
def mixed_boxes(draw, dim: int, cat_cols: tuple, levels: list):
    """A random mixed box over the dataset's columns."""
    box = Hyperbox.unrestricted(dim)
    for j in range(dim):
        if j in cat_cols:
            k = levels[cat_cols.index(j)]
            if draw(st.booleans()):
                allowed = draw(st.sets(
                    st.sampled_from([float(c) for c in range(k)]),
                    min_size=1, max_size=k))
                box = box.with_cats(j, allowed)
        elif draw(st.booleans()):
            a = draw(st.floats(min_value=0.0, max_value=1.0))
            b = draw(st.floats(min_value=0.0, max_value=1.0))
            box = box.replace(j, lower=min(a, b), upper=max(a, b))
    return box


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------

@given(data=st.data(), payload=mixed_datasets())
def test_contains_many_agrees_with_per_row_contains(data, payload):
    x, _, cat_cols, levels = payload
    boxes = [data.draw(mixed_boxes(x.shape[1], cat_cols, levels))
             for _ in range(3)]
    batched = contains_many(boxes, x)
    for row, box in zip(batched, boxes):
        np.testing.assert_array_equal(row, box.contains(x))
    if native_ready():
        np.testing.assert_array_equal(
            contains_many(boxes, x, native=True), batched)


@given(payload=mixed_datasets())
def test_cat_mask_complement_partitions_rows(payload):
    x, _, cat_cols, levels = payload
    j, k = cat_cols[0], levels[0]
    codes = [float(c) for c in range(k)]
    half = frozenset(codes[: max(1, k // 2)])
    rest = frozenset(codes) - half
    inside = cat_mask(x[:, j], half)
    if rest:
        np.testing.assert_array_equal(~inside, cat_mask(x[:, j], rest))
    else:
        assert inside.all()


# ----------------------------------------------------------------------
# PRIM peeling
# ----------------------------------------------------------------------

@settings(max_examples=15)
@given(payload=mixed_datasets(max_rows=120))
def test_peeling_never_increases_coverage_and_engines_agree(payload):
    x, y, cat_cols, _ = payload
    results = {
        engine: prim_peel(x, y, min_support=5, cat_cols=cat_cols,
                          engine=engine)
        for engine in DIFF_ENGINES
    }
    ref = results["reference"]
    for vec in (results[engine] for engine in DIFF_ENGINES[1:]):
        assert [b.key() for b in ref.boxes] == [b.key() for b in vec.boxes]
        np.testing.assert_array_equal(ref.train_means, vec.train_means)
        np.testing.assert_array_equal(ref.train_support, vec.train_support)
        assert ref.chosen == vec.chosen
    vec = results["vectorized"]
    # Peeling is monotone: every box nests in its predecessor.
    supports = [int(box.contains(x).sum()) for box in vec.boxes]
    assert all(a >= b for a, b in zip(supports, supports[1:]))
    np.testing.assert_array_equal(supports, vec.train_support)


# ----------------------------------------------------------------------
# BestInterval
# ----------------------------------------------------------------------

@settings(max_examples=15)
@given(payload=mixed_datasets(max_rows=120))
def test_best_interval_engines_agree_and_wracc_is_consistent(payload):
    x, y, cat_cols, _ = payload
    results = {engine: best_interval(x, y, cat_cols=cat_cols, engine=engine)
               for engine in DIFF_ENGINES}
    ref, vec = results["reference"], results["vectorized"]
    for other in (results[engine] for engine in DIFF_ENGINES[1:]):
        assert ref.box.key() == other.box.key()
        assert ref.wracc == other.wracc
    # The reported WRAcc is the box's actual WRAcc on the data.
    inside = vec.box.contains(x)
    n = len(y)
    wracc = (inside.sum() / n) * (
        (y[inside].mean() if inside.any() else 0.0) - y.mean())
    assert np.isclose(vec.wracc, wracc, rtol=1e-9, atol=1e-12)


# ----------------------------------------------------------------------
# Pareto front
# ----------------------------------------------------------------------

@given(
    points=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=1, max_size=60),
)
def test_pareto_front_is_non_dominated_and_complete(points):
    array = np.asarray(points, dtype=float)
    front = pareto_front(array)
    np.testing.assert_array_equal(front, _pareto_front_reference(array))
    kept = array[front]
    # No kept point dominates another kept point.
    for i in range(len(kept)):
        dominated = ((kept >= kept[i]).all(axis=1)
                     & (kept > kept[i]).any(axis=1))
        assert not dominated.any()
    # Every dropped point is dominated by some kept point.
    dropped = np.setdiff1d(np.arange(len(array)), front)
    for i in dropped:
        dominated = ((array[front] >= array[i]).all(axis=1)
                     & (array[front] > array[i]).any(axis=1))
        assert dominated.any()
