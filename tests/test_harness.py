"""Tests for the experiment harness, design and report modules."""

import numpy as np
import pytest

from repro.data import get_model
from repro.experiments.design import (
    EXPERIMENTS,
    FULL,
    QUICK,
    BenchScale,
    scale_from_env,
)
from repro.experiments.harness import (
    aggregate,
    average_over_functions,
    discrete_levels_for,
    evaluate_boxes,
    get_test_data,
    make_train_data,
    reds_sampler_for,
    run_batch,
    run_single,
)
from repro.experiments import report
from repro.sampling import MIXED_LEVELS


class TestDataGeneration:
    def test_train_data_shapes(self):
        model = get_model("ishigami")
        x, y = make_train_data(model, 100, seed=0)
        assert x.shape == (100, 3)
        assert set(np.unique(y)) <= {0, 1}

    def test_train_reproducible(self):
        model = get_model("ishigami")
        xa, ya = make_train_data(model, 50, seed=3)
        xb, yb = make_train_data(model, 50, seed=3)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)

    def test_mixed_variant_discretises_even_columns(self):
        model = get_model("ishigami")
        x, _ = make_train_data(model, 200, seed=0, variant="mixed")
        assert set(np.unique(x[:, 1])).issubset(set(MIXED_LEVELS))
        assert len(np.unique(x[:, 0])) > 10

    def test_logitnormal_variant_support(self):
        model = get_model("ishigami")
        x, _ = make_train_data(model, 200, seed=0, variant="logitnormal")
        assert (x > 0).all() and (x < 1).all()

    def test_test_data_cached(self):
        a = get_test_data("ishigami", size=500)
        b = get_test_data("ishigami", size=500)
        assert a[0] is b[0]

    def test_test_data_is_read_only(self):
        # Regression: the cache hands every caller the same arrays, so
        # an in-place edit used to corrupt the test set of every later
        # run sharing the cache entry.
        x, y = get_test_data("ishigami", size=500)
        with pytest.raises(ValueError):
            x[0, 0] = 123.0
        with pytest.raises(ValueError):
            y[0] = 123.0
        x_again, _ = get_test_data("ishigami", size=500)
        assert x_again[0, 0] != 123.0

    def test_reds_sampler_variants(self, rng):
        assert reds_sampler_for("continuous") is None
        mixed = reds_sampler_for("mixed")(50, 4, rng)
        assert set(np.unique(mixed[:, 1])).issubset(set(MIXED_LEVELS))
        logit = reds_sampler_for("logitnormal")(50, 4, rng)
        assert (logit > 0).all() and (logit < 1).all()

    def test_discrete_levels_for_mixed(self):
        model = get_model("ishigami")
        levels = discrete_levels_for(model, "mixed")
        assert set(levels) == {1}
        assert discrete_levels_for(model, "continuous") is None


class TestRunAndAggregate:
    def test_run_single_record(self):
        record = run_single("ishigami", "P", 150, seed=0, test_size=2000)
        assert record.function == "ishigami"
        assert 0.0 <= record.precision <= 1.0
        assert 0.0 <= record.pr_auc <= 1.0
        assert record.n_restricted >= 0
        assert record.runtime > 0

    def test_run_batch_and_aggregate(self):
        records = run_batch(("ishigami",), ("P", "BI"), 150, 3, test_size=2000)
        assert len(records) == 6
        agg = aggregate(records)
        assert ("ishigami", "P") in agg
        assert agg[("ishigami", "P")]["n_reps"] == 3
        assert 0.0 <= agg[("ishigami", "P")]["consistency"] <= 1.0

    def test_average_over_functions(self):
        records = run_batch(("ishigami", "willetal06"), ("P",), 150, 2,
                            test_size=2000)
        rows = average_over_functions(aggregate(records), ("P",))
        assert "P" in rows
        assert 0.0 <= rows["P"]["precision"] <= 1.0

    def test_irrelevant_count_uses_ground_truth(self):
        record = run_single("linketal06sin", "P", 200, seed=0, test_size=2000)
        # linketal06sin has 8 inert inputs; plain PRIM usually restricts some.
        assert record.n_irrelevant <= record.n_restricted


class TestDesign:
    def test_scale_default_quick(self, monkeypatch):
        monkeypatch.delenv("REDS_BENCH_SCALE", raising=False)
        assert scale_from_env() is QUICK

    def test_scale_full(self, monkeypatch):
        monkeypatch.setenv("REDS_BENCH_SCALE", "full")
        assert scale_from_env() is FULL

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REDS_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_every_experiment_has_methods(self):
        for key, config in EXPERIMENTS.items():
            assert config.methods, key
            assert config.artefact

    def test_full_scale_matches_paper(self):
        assert FULL.n_reps == 50
        assert FULL.n_new_prim == 100_000
        assert FULL.n_new_bi == 10_000
        assert len(FULL.functions) == 33


class TestReport:
    def test_format_table(self):
        rows = {"P": {"pr_auc": 0.4}, "RPx": {"pr_auc": 0.5}}
        text = report.format_table(
            "Table 3a", rows, (("pr_auc", "PR AUC", 100.0),),
            method_order=("P", "RPx"))
        assert "Table 3a" in text
        assert "40.00" in text and "50.00" in text

    def test_format_relative(self):
        rows = {"Pc": {"pr_auc": 0.4}, "RPx": {"pr_auc": 0.5}}
        text = report.format_relative("Fig 7", rows, "Pc", (("pr_auc", "PR AUC"),))
        assert "+25.0%" in text

    def test_format_relative_missing_baseline(self):
        with pytest.raises(KeyError):
            report.format_relative("x", {"A": {}}, "missing", ())

    def test_format_series(self):
        text = report.format_series("Fig 12", "N", [200, 400],
                                    {"P": [0.1, 0.2], "RPx": [0.2, 0.3]})
        assert "200" in text and "30.00" in text

    def test_format_trajectory(self):
        trajectories = {"P": np.array([[0.9, 0.4], [0.2, 0.8]])}
        text = report.format_trajectory("Fig 11", trajectories, n_bins=5)
        assert "recall" in text
        assert "0.400" in text
