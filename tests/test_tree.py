"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metamodels.tree import DecisionTreeRegressor


class TestValidation:
    def test_rejects_unfitted_predict(self, rng):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(rng.random((3, 2)))

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(rng.random((5, 2)), np.zeros(4))

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    def test_rejects_negative_weights(self, rng):
        tree = DecisionTreeRegressor()
        with pytest.raises(ValueError):
            tree.fit(rng.random((4, 1)), np.zeros(4), sample_weight=np.array([1, -1, 1, 1]))

    def test_max_features_requires_rng(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=2)


class TestFitting:
    def test_constant_target_single_leaf(self, rng):
        tree = DecisionTreeRegressor().fit(rng.random((30, 3)), np.full(30, 0.7))
        assert tree.n_nodes == 1
        np.testing.assert_allclose(tree.predict(rng.random((5, 3))), 0.7)

    def test_recovers_single_split(self):
        """A step function in one feature is learned exactly."""
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.53).astype(float)
        tree = DecisionTreeRegressor().fit(x, y)
        grid = np.array([[0.1], [0.5], [0.6], [0.9]])
        np.testing.assert_allclose(tree.predict(grid), [0, 0, 1, 1])

    def test_split_threshold_at_midpoint(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.threshold[0] == pytest.approx(0.5)

    def test_represents_xor_at_full_depth(self, rng):
        """Greedy splitting sees no first-cut gain on XOR, but an
        unrestricted tree still carves the four quadrants out."""
        x = rng.random((600, 2))
        y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(float)
        tree = DecisionTreeRegressor().fit(x, y)
        assert ((tree.predict(x) > 0.5) == (y > 0.5)).mean() > 0.99

    def test_max_depth_respected(self, rng):
        x = rng.random((500, 4))
        y = rng.random(500)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self, rng):
        x = rng.random((100, 2))
        y = rng.random(100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(x, y)
        leaves = tree.apply(x)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_sample_weights_shift_leaf_means(self):
        x = np.zeros((4, 1))  # unsplittable: one leaf
        y = np.array([0.0, 0.0, 1.0, 1.0])
        heavy_ones = DecisionTreeRegressor().fit(
            x, y, sample_weight=np.array([1.0, 1.0, 9.0, 9.0]))
        assert heavy_ones.predict(np.zeros((1, 1)))[0] == pytest.approx(0.9)

    def test_zero_weight_points_ignored_in_values(self):
        x = np.zeros((3, 1))
        y = np.array([0.0, 1.0, 1.0])
        tree = DecisionTreeRegressor().fit(
            x, y, sample_weight=np.array([1.0, 0.0, 0.0]))
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(0.0)

    def test_duplicate_feature_values_never_split_between(self):
        x = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        tree = DecisionTreeRegressor().fit(x, y)
        # Only a split between 1.0 and 2.0 is legal.
        if tree.n_nodes > 1:
            assert 1.0 < tree.threshold[0] < 2.0


class TestPrediction:
    def test_apply_returns_leaves(self, rng):
        x = rng.random((200, 3))
        y = rng.random(200)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        leaves = tree.apply(x)
        assert (tree.feature[leaves] == -1).all()

    def test_predictions_bounded_by_training_targets(self, rng):
        x = rng.random((300, 4))
        y = rng.random(300)
        tree = DecisionTreeRegressor(max_depth=5).fit(x, y)
        pred = tree.predict(rng.random((100, 4)))
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12

    def test_training_fit_is_exact_with_full_depth(self, rng):
        """Distinct inputs + unlimited depth => zero training error."""
        x = rng.random((64, 2))
        y = rng.random(64)
        tree = DecisionTreeRegressor().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y, atol=1e-12)

    def test_set_leaf_values(self, rng):
        x = rng.random((50, 2))
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        leaves = np.unique(tree.apply(x))
        tree.set_leaf_values({int(leaf): 42.0 for leaf in leaves})
        np.testing.assert_allclose(tree.predict(x), 42.0)

    def test_set_leaf_values_rejects_internal_node(self, rng):
        x = rng.random((50, 2))
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        internal = int(np.nonzero(tree.feature != -1)[0][0])
        with pytest.raises(ValueError):
            tree.set_leaf_values({internal: 0.0})


class TestProperties:
    @given(
        data=hnp.arrays(np.float64, st.tuples(st.integers(5, 60), st.integers(1, 4)),
                        elements=st.floats(0, 1, allow_nan=False)),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_training_mse_never_worse_than_constant(self, data, seed):
        """Any tree at least matches the best constant predictor."""
        gen = np.random.default_rng(seed)
        y = gen.random(len(data))
        tree = DecisionTreeRegressor(max_depth=3).fit(data, y)
        mse_tree = np.mean((tree.predict(data) - y) ** 2)
        mse_const = np.mean((y.mean() - y) ** 2)
        assert mse_tree <= mse_const + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_leaf_values_are_leaf_means(self, seed):
        gen = np.random.default_rng(seed)
        x = gen.random((80, 3))
        y = gen.random(80)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        leaves = tree.apply(x)
        for leaf in np.unique(leaves):
            expected = y[leaves == leaf].mean()
            assert tree.value[leaf] == pytest.approx(expected)
