"""Tests for subgroup-discovery hyperparameter optimisation."""

import numpy as np
import pytest

from repro.core.hyperparams import (
    ALPHA_GRID,
    depth_grid,
    optimize_alpha,
    optimize_bi_depth,
    optimize_bumping_features,
)
from tests.conftest import planted_box_data


class TestDepthGrid:
    def test_matches_paper_formula_m20(self):
        # M = 20: ceil(20/6) = 4 -> {20, 16, 12, 8, 4}.
        assert depth_grid(20) == (20, 16, 12, 8, 4)

    def test_matches_paper_formula_m10(self):
        # M = 10: ceil(10/6) = 2 -> {10, 8, 6, 4, 2}.
        assert depth_grid(10) == (10, 8, 6, 4, 2)

    def test_small_dimension(self):
        assert depth_grid(3) == (3, 2, 1)

    def test_all_positive(self):
        for m in range(1, 40):
            assert all(v > 0 for v in depth_grid(m))
            assert depth_grid(m)[0] == m


class TestOptimizeAlpha:
    def test_returns_grid_member(self):
        x, y, _ = planted_box_data(300, 3, seed=0)
        assert optimize_alpha(x, y) in ALPHA_GRID

    def test_custom_grid(self):
        x, y, _ = planted_box_data(200, 2, seed=1)
        assert optimize_alpha(x, y, grid=(0.07, 0.13)) in (0.07, 0.13)

    def test_deterministic_given_seed(self):
        x, y, _ = planted_box_data(250, 3, seed=2)
        assert optimize_alpha(x, y, seed=5) == optimize_alpha(x, y, seed=5)


class TestOptimizeDepths:
    def test_bi_depth_in_grid(self):
        x, y, _ = planted_box_data(300, 4, seed=3)
        assert optimize_bi_depth(x, y) in depth_grid(4)

    def test_bi_depth_prefers_sparse_truth(self):
        """With 2 active of 8 inputs, a small depth should win: deeper
        searches overfit inert dimensions."""
        x, y, _ = planted_box_data(400, 8, n_active=2, noise=0.05, seed=4)
        depth = optimize_bi_depth(x, y)
        assert depth <= 6

    def test_bumping_features_in_grid(self):
        x, y, _ = planted_box_data(250, 4, seed=5)
        m = optimize_bumping_features(x, y, alpha=0.1, n_repeats=3)
        assert m in depth_grid(4)
