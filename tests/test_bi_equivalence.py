"""Differential tests: the vectorized BI engine vs the reference.

``best_interval(engine="vectorized")`` must reproduce the per-call
re-sorting/masking reference *exactly* — same box bounds bit for bit,
same WRAcc, same iteration count — across data shapes that exercise
every kernel path: continuous inputs, tied/discrete levels, soft
labels in [0, 1], duplicated columns (exactly tied candidates), and
``depth``/``beam_size`` grids.  The sort-once machinery
(:class:`~repro.subgroup._kernels.SortedDataset`), the vectorized
max-sum-run search and the batched box-evaluation kernels are also
pinned against their scalar references here.
"""

import numpy as np
import pytest

from repro.subgroup import _kernels
from repro.subgroup.best_interval import (
    BI_ENGINES,
    best_interval,
    best_interval_for_dim,
    wracc,
)
from repro.subgroup.box import Hyperbox


def assert_identical_results(a, b):
    """Field-by-field exact equality of two BIResults."""
    np.testing.assert_array_equal(a.box.lower, b.box.lower)
    np.testing.assert_array_equal(a.box.upper, b.box.upper)
    assert a.wracc == b.wracc
    assert a.n_iterations == b.n_iterations


def make_dataset(kind: str, seed: int, n: int = 250, m: int = 6):
    """Randomized datasets covering the kernel's code paths."""
    gen = np.random.default_rng(seed)
    x = gen.random((n, m))
    if kind == "discrete":
        # Few levels everywhere: every refinement groups tied values.
        x = np.round(x * 3) / 3
    elif kind == "mixed":
        # Discrete and continuous columns side by side.
        x[:, ::2] = np.round(x[:, ::2] * 4) / 4
    elif kind == "duplicated":
        # Identical columns produce exactly tied candidate boxes.
        x[:, 1] = x[:, 0]
    if kind in ("soft", "duplicated"):
        y = gen.random(n)
    else:
        y = ((x[:, 0] > 0.4) & (x[:, 1] < 0.8)).astype(float)
    return x, y


KINDS = ("continuous", "discrete", "mixed", "soft", "duplicated")


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("beam_size", (1, 3, 5))
    def test_exact_equivalence_across_beams(self, kind, beam_size):
        for seed in range(4):
            x, y = make_dataset(kind, seed)
            results = [
                best_interval(x, y, beam_size=beam_size, engine=engine)
                for engine in ("reference", "vectorized")
            ]
            assert_identical_results(results[0], results[1])

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("depth", (None, 1, 2, 4))
    def test_exact_equivalence_across_depths(self, kind, depth):
        x, y = make_dataset(kind, seed=7)
        results = [
            best_interval(x, y, depth=depth, beam_size=3, engine=engine)
            for engine in ("reference", "vectorized")
        ]
        assert_identical_results(results[0], results[1])

    def test_fuzz(self):
        """Broad randomized sweep over shapes, labels, beams, depths."""
        gen = np.random.default_rng(2025)
        for trial in range(40):
            n = int(gen.integers(25, 300))
            m = int(gen.integers(1, 8))
            x = gen.random((n, m))
            if trial % 3 == 0:
                x[:, ::2] = np.round(x[:, ::2] * 3) / 3
            y = gen.random(n) if trial % 2 else gen.integers(0, 2, n).astype(float)
            beam_size = (1, 2, 5)[trial % 3]
            depth = (None, 1, 3)[trial % 3]
            results = [
                best_interval(x, y, beam_size=beam_size, depth=depth,
                              engine=engine)
                for engine in ("reference", "vectorized")
            ]
            assert_identical_results(results[0], results[1])

    def test_degenerate_labels(self):
        gen = np.random.default_rng(5)
        x = gen.random((80, 3))
        for y in (np.zeros(80), np.ones(80)):
            results = [
                best_interval(x, y, beam_size=2, engine=engine)
                for engine in ("reference", "vectorized")
            ]
            assert_identical_results(results[0], results[1])

    def test_unknown_engine_rejected(self):
        x, y = make_dataset("continuous", seed=0)
        with pytest.raises(ValueError, match="engine"):
            best_interval(x, y, engine="turbo")
        assert set(BI_ENGINES) == {"vectorized", "reference", "native"}


class TestSortedDatasetRefinement:
    """The sort-once refinement vs the re-sorting reference, per call."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_same_refined_bounds(self, kind):
        for seed in range(6):
            x, y = make_dataset(kind, seed, n=150, m=4)
            x = np.asarray(x, dtype=float)
            y = np.asarray(y, dtype=float)
            dataset = _kernels.SortedDataset(x, y)
            gen = np.random.default_rng(seed)
            box = Hyperbox.unrestricted(4).replace(
                int(gen.integers(0, 4)), lower=0.2, upper=0.8)
            mask_for = dataset.except_masks(box)
            for j in range(4):
                reference = best_interval_for_dim(x, y, box, j)
                bounds = dataset.interval_bounds(j, mask_for(j))
                assert bounds is not None
                refined = box.replace(j, lower=bounds[0], upper=bounds[1])
                np.testing.assert_array_equal(refined.lower, reference.lower)
                np.testing.assert_array_equal(refined.upper, reference.upper)

    def test_empty_mask_returns_none(self):
        x = np.linspace(0, 1, 20).reshape(-1, 2)
        y = np.ones(10)
        dataset = _kernels.SortedDataset(x, y)
        assert dataset.interval_bounds(0, np.zeros(10, dtype=bool)) is None

    def test_except_masks_match_reference(self):
        from repro.subgroup.best_interval import _contains_except

        gen = np.random.default_rng(11)
        x = np.round(gen.random((120, 5)), 1)
        dataset = _kernels.SortedDataset(x, np.zeros(120))
        box = (Hyperbox.unrestricted(5)
               .replace(1, lower=0.2)
               .replace(3, lower=0.1, upper=0.6))
        mask_for = dataset.except_masks(box)
        for j in range(5):
            np.testing.assert_array_equal(
                mask_for(j), _contains_except(x, box, j))


class TestMaxSumRun:
    """The vectorized prefix-scan search vs a sequential exact Kadane."""

    @staticmethod
    def sequential_kadane(sums):
        best_sum = -np.inf
        best_start = best_end = 0
        run_sum = 0.0
        run_start = 0
        for i, value in enumerate(sums):
            if run_sum <= 0.0:
                run_sum = value
                run_start = i
            else:
                run_sum += value
            if run_sum > best_sum:
                best_sum = run_sum
                best_start, best_end = run_start, i
        return best_start, best_end, float(best_sum)

    def test_matches_sequential_kadane_exactly(self):
        # Integer-valued floats keep both formulations in exact
        # arithmetic, so ties and resets must agree index for index.
        gen = np.random.default_rng(3)
        for _ in range(500):
            n = int(gen.integers(1, 50))
            sums = gen.integers(-3, 4, n).astype(float)
            assert _kernels.max_sum_run(sums) == self.sequential_kadane(sums)

    def test_pinned_small_cases(self):
        assert _kernels.max_sum_run(np.array([3.0])) == (0, 0, 3.0)
        assert _kernels.max_sum_run(np.array([-5.0, -1.0, -3.0])) == (1, 1, -1.0)
        start, end, total = _kernels.max_sum_run(
            np.array([-2.0, 1.0, -3.0, 4.0, -1.0, 2.0, 1.0, -5.0, 4.0]))
        assert (start, end, total) == (3, 6, 6.0)


class TestBatchedEvaluation:
    """contains_many / evaluate_boxes vs the per-box scalar paths."""

    @staticmethod
    def random_boxes(gen, dim, count):
        boxes = []
        for _ in range(count):
            box = Hyperbox.unrestricted(dim)
            for j in range(dim):
                roll = gen.random()
                lo, hi = np.sort(gen.random(2))
                if roll < 0.3:
                    box = box.replace(j, lower=lo, upper=hi)
                elif roll < 0.5:
                    box = box.replace(j, lower=lo)
                elif roll < 0.7:
                    box = box.replace(j, upper=hi)
            boxes.append(box)
        boxes.append(Hyperbox.unrestricted(dim))
        # An empty box (bounds outside the data range) as well.
        boxes.append(Hyperbox.unrestricted(dim).replace(0, lower=2.0, upper=3.0))
        return boxes

    def test_contains_many_matches_contains(self):
        gen = np.random.default_rng(21)
        x = gen.random((300, 4))
        boxes = self.random_boxes(gen, 4, 40)
        masks = _kernels.contains_many(boxes, x)
        assert masks.shape == (len(boxes), 300)
        for box, mask in zip(boxes, masks):
            np.testing.assert_array_equal(mask, box.contains(x))

    def test_contains_many_empty_box_list(self):
        x = np.zeros((5, 2))
        assert _kernels.contains_many([], x).shape == (0, 5)

    @pytest.mark.parametrize("labels", ("binary", "soft"))
    def test_evaluate_boxes_bit_exact_stats(self, labels):
        gen = np.random.default_rng(33)
        x = gen.random((250, 3))
        y = (gen.integers(0, 2, 250).astype(float) if labels == "binary"
             else gen.random(250))
        boxes = self.random_boxes(gen, 3, 25)
        evaluation = _kernels.evaluate_boxes(boxes, x, y)
        for i, box in enumerate(boxes):
            inside = box.contains(x)
            n = int(inside.sum())
            assert evaluation.n_inside[i] == n
            if n:
                assert evaluation.y_sums[i] == float(y[inside].sum())
                assert evaluation.y_means[i] == float(y[inside].mean())
            else:
                assert evaluation.y_sums[i] == 0.0
                assert evaluation.y_means[i] == 0.0
        assert evaluation.n_total == 250
        assert evaluation.y_total == float(y.sum())
        assert evaluation.base_rate == float(y.mean())

    def test_beam_scoring_matches_wracc(self):
        # The vectorized engine's candidate scoring path must agree
        # with the public scalar wracc on the boxes it reports.
        gen = np.random.default_rng(8)
        x = gen.random((400, 5))
        y = gen.random(400)
        result = best_interval(x, y, beam_size=4, engine="vectorized")
        assert result.wracc == wracc(result.box, x, y)
