from setuptools import find_packages, setup

# Offline environments here lack the `wheel` package, so PEP 660 editable
# installs fail; this shim enables the legacy `pip install -e .` path.
setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        # Optional compiled kernels (engine="native"); everything works
        # without it — the name resolves to "vectorized" with a warning.
        "native": ["numba"],
    },
)
