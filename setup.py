from setuptools import setup

# Offline environments here lack the `wheel` package, so PEP 660 editable
# installs fail; this shim enables the legacy `pip install -e .` path.
setup()
